//! Property-style checks on the seven benchmark kernels: every valid
//! input runs cleanly, deterministically, and produces observable,
//! input-dependent output.

use peppa_x::vm::{ExecLimits, RunStatus, Vm};
use proptest::prelude::*;

fn bench_names() -> &'static [&'static str] {
    &[
        "Pathfinder",
        "Needle",
        "Particlefilter",
        "CoMD",
        "Hpccg",
        "Xsbench",
        "FFT",
    ]
}

#[test]
fn every_benchmark_prints_ir_and_verifies() {
    for name in bench_names() {
        let b = peppa_x::apps::benchmark_by_name(name).unwrap();
        peppa_x::ir::verify(&b.module).unwrap_or_else(|e| panic!("{name}: {e}"));
        let text = b.module.to_string();
        assert!(text.contains("fn @main"), "{name}: no main in IR dump");
        // Every instruction line carries a sid for source mapping.
        assert!(text.contains("; sid "), "{name}: no sid annotations");
    }
}

#[test]
fn injections_never_escape_the_sandbox() {
    // Whatever a bit flip does, the VM must contain it: the run ends in
    // Ok/Trap/Hang, never a panic. Hammer each benchmark with faults on
    // its small reference workload.
    use peppa_x::stats::Pcg64;
    use peppa_x::vm::{Injection, InjectionTarget};
    let mut rng = Pcg64::new(0xc0ffee);
    for name in bench_names() {
        let b = peppa_x::apps::benchmark_by_name(name).unwrap();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let golden = vm.run_numeric(&b.reference_input, None);
        assert_eq!(golden.status, RunStatus::Ok, "{name}");
        let faulty_limits = ExecLimits {
            max_dynamic: golden.profile.dynamic * 4 + 10_000,
            ..ExecLimits::default()
        };
        let fvm = Vm::new(&b.module, faulty_limits);
        for _ in 0..30 {
            let inj = Injection {
                target: InjectionTarget::DynamicIndex(
                    rng.gen_range_u64(golden.profile.value_dynamic),
                ),
                bit: rng.gen_range_u64(64) as u32,
                burst: 0,
            };
            let out = fvm.run_numeric(&b.reference_input, Some(inj));
            // Any status is fine; reaching here means no panic. Also the
            // profile must stay bounded.
            assert!(
                out.profile.dynamic <= faulty_limits.max_dynamic + 1,
                "{name}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_valid_inputs_run_cleanly(seed in 0u64..5000) {
        // Sampled inputs within spec either run cleanly or are filtered
        // by the generator — the generator's output must always be Ok.
        let b = peppa_x::apps::benchmark_by_name("Needle").unwrap();
        let inputs = peppa_x::apps::random_inputs(
            &b, 1, seed, ExecLimits::default(), peppa_x::apps::gen::DEFAULT_DYNAMIC_CAP);
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&inputs[0], None);
        prop_assert_eq!(out.status, RunStatus::Ok);
        prop_assert!(!out.output.is_empty());
    }

    #[test]
    fn pathfinder_cost_lower_bounded_by_rows(
        rows in 4i64..40, cols in 4i64..40, vseed in 1i64..100000,
    ) {
        // Every grid cell costs at least 1, so the min path costs >= rows.
        let b = peppa_x::apps::benchmark_by_name("Pathfinder").unwrap();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&[rows as f64, cols as f64, vseed as f64, 5.0], None);
        prop_assert_eq!(out.status, RunStatus::Ok);
        let best = f64::from_bits(out.output[0]) / 10000.0;
        prop_assert!(best >= rows as f64 - 1e-9, "cost {} < rows {}", best, rows);
    }

    #[test]
    fn needle_score_bounded(len in 4i64..32, penalty in 1i64..12, seed in 1i64..100000) {
        // Alignment score of two length-n sequences is at most 5n (all
        // matches) and at least -(len1+len2)*penalty-ish.
        let b = peppa_x::apps::benchmark_by_name("Needle").unwrap();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&[len as f64, len as f64, penalty as f64, seed as f64], None);
        prop_assert_eq!(out.status, RunStatus::Ok);
        let score = out.output[0] as i64;
        prop_assert!(score <= 5 * len);
        prop_assert!(score >= -2 * len * penalty - 6 * len);
    }
}

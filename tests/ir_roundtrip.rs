//! Print → parse → execute round-trips over the real benchmark modules:
//! the reparsed module must behave identically to the original.

use peppa_x::ir::parse_module;
use peppa_x::vm::{ExecLimits, Vm};

#[test]
fn all_benchmarks_roundtrip_through_text() {
    for bench in peppa_x::apps::all_benchmarks() {
        let text = bench.module.to_string();
        let reparsed =
            parse_module(&text).unwrap_or_else(|e| panic!("{}: reparse failed: {e}", bench.name));
        assert_eq!(
            reparsed.num_instrs, bench.module.num_instrs,
            "{}: instruction count changed",
            bench.name
        );

        let vm0 = Vm::new(&bench.module, ExecLimits::default());
        let vm1 = Vm::new(&reparsed, ExecLimits::default());
        let a = vm0.run_numeric(&bench.reference_input, None);
        let b = vm1.run_numeric(&bench.reference_input, None);
        assert_eq!(a.status, b.status, "{}", bench.name);
        assert_eq!(
            a.output, b.output,
            "{}: outputs differ after round-trip",
            bench.name
        );
        assert_eq!(
            a.profile.exec_counts, b.profile.exec_counts,
            "{}: profiles differ after round-trip",
            bench.name
        );
    }
}

#[test]
fn roundtrip_preserves_fault_injection_behaviour() {
    // The same fault site must produce the same outcome in the reparsed
    // module — sids and dynamic ordering survive the text format.
    use peppa_x::vm::{Injection, InjectionTarget};
    let bench = peppa_x::apps::benchmark_by_name("FFT").unwrap();
    let text = bench.module.to_string();
    let reparsed = parse_module(&text).unwrap();
    let vm0 = Vm::new(&bench.module, ExecLimits::default());
    let vm1 = Vm::new(&reparsed, ExecLimits::default());
    for (site, bit) in [(5u64, 3u32), (100, 40), (999, 62), (12345, 17)] {
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(site),
            bit,
            burst: 0,
        };
        let a = vm0.run_numeric(&bench.reference_input, Some(inj));
        let b = vm1.run_numeric(&bench.reference_input, Some(inj));
        assert_eq!(a.status, b.status, "site {site} bit {bit}");
        assert_eq!(a.output, b.output, "site {site} bit {bit}");
    }
}

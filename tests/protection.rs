//! Integration test for the §6 case study: plan, protect, stress.

use peppa_x::protect::plan::{measure_for_planning, plan_from_measurement};
use peppa_x::protect::{apply_protection, measure_coverage};
use peppa_x::vm::{ExecLimits, RunStatus, Vm};
use std::collections::HashSet;

/// A kernel whose SDC profile shifts with its input: with `mode` small,
/// the hot path is the multiply-accumulate; with `mode` large, a
/// different (normally cold) chain dominates. Protection planned on one
/// mode under-covers the other — the essence of Figure 9.
const SHIFTY: &str = r#"
    fn main(n: int, mode: int) {
        let acc = 0;
        if (mode < 10) {
            for (i = 0; i < n; i = i + 1) { acc = acc + i * 3; }
        } else {
            for (i = 0; i < n; i = i + 1) {
                let x = i * 5 + mode;
                let y = x * x - i;
                acc = acc + y;
            }
        }
        output acc;
    }
"#;

#[test]
fn protection_planned_on_one_input_weakens_on_another() {
    let m = peppa_x::lang::compile(SHIFTY, "shifty").unwrap();
    let limits = ExecLimits::default();
    let plan_input = [30.0, 1.0]; // "reference": cold chain never runs
    let stress_input = [30.0, 50.0]; // stress: cold chain dominates

    let measured = measure_for_planning(&m, &plan_input, limits, 30, 5, 0).unwrap();
    let plan = plan_from_measurement(&m, &plan_input, limits, &measured, 0.7);
    assert!(!plan.selected.is_empty());

    let selected: HashSet<_> = plan.selected.iter().copied().collect();
    let protected = apply_protection(&m, &selected);

    let on_plan_input =
        measure_coverage(&m, &protected.module, &plan_input, limits, 300, 1, 0).unwrap();
    let on_stress_input =
        measure_coverage(&m, &protected.module, &stress_input, limits, 300, 2, 0).unwrap();

    assert!(
        on_plan_input.coverage > on_stress_input.coverage,
        "stress coverage {} not below planned-input coverage {}",
        on_stress_input.coverage,
        on_plan_input.coverage
    );
}

#[test]
fn protected_benchmarks_stay_functionally_correct() {
    // Protect every benchmark at 50% and confirm outputs are unchanged
    // on the reference input.
    for bench in peppa_x::apps::all_benchmarks() {
        let limits = ExecLimits::default();
        let measured = measure_for_planning(&bench.module, &bench.reference_input, limits, 4, 9, 0)
            .unwrap_or_else(|e| panic!("{}: {e}", bench.name));
        let plan = plan_from_measurement(
            &bench.module,
            &bench.reference_input,
            limits,
            &measured,
            0.5,
        );
        let selected: HashSet<_> = plan.selected.iter().copied().collect();
        let protected = apply_protection(&bench.module, &selected);

        let vm0 = Vm::new(&bench.module, limits);
        let vm1 = Vm::new(&protected.module, limits);
        let a = vm0.run_numeric(&bench.reference_input, None);
        let b = vm1.run_numeric(&bench.reference_input, None);
        assert_eq!(
            b.status,
            RunStatus::Ok,
            "{}: protected run failed",
            bench.name
        );
        assert_eq!(
            a.output, b.output,
            "{}: protection changed behaviour",
            bench.name
        );
        assert!(
            b.profile.dynamic > a.profile.dynamic,
            "{}: protection added no work?",
            bench.name
        );
    }
}

//! Cross-crate integration tests: the full PEPPA-X pipeline and its
//! paper-level claims, exercised end-to-end at reduced trial counts.

use peppa_x::core::{
    baseline_search, derive_sdc_scores, fitness_of_input, fuzz_small_input, BaselineConfig,
    PeppaConfig, PeppaX, SmallInputConfig,
};
use peppa_x::inject::{run_campaign, CampaignConfig};
use peppa_x::stats::spearman;
use peppa_x::vm::ExecLimits;

fn limits() -> ExecLimits {
    ExecLimits::default()
}

#[test]
fn sdc_bound_input_beats_reference_input() {
    // §5.1's headline claim: the SDC-bound input exposes a higher SDC
    // probability than the default reference input.
    let bench = peppa_x::apps::benchmark_by_name("Xsbench").unwrap();
    let cfg = PeppaConfig {
        seed: 3,
        population: 10,
        distribution_trials: 10,
        final_fi_trials: 150,
        ..Default::default()
    };
    let px = PeppaX::prepare(&bench, cfg).unwrap();
    let report = px.search(&[12]);
    let bound = report.sdc_bound();

    let reference = run_campaign(
        &bench.module,
        &bench.reference_input,
        limits(),
        CampaignConfig {
            trials: 150,
            seed: 3,
            ..Default::default()
        },
    )
    .unwrap();

    assert!(
        bound.sdc.sdc_prob() >= reference.sdc_prob(),
        "SDC-bound {} < reference {}",
        bound.sdc.sdc_prob(),
        reference.sdc_prob()
    );
}

#[test]
fn fitness_correlates_with_measured_sdc() {
    // §4.2.5's premise: the Eq.-2 potential ranks inputs like statistical
    // FI does. Check rank correlation across a handful of inputs.
    let bench = peppa_x::apps::benchmark_by_name("Pathfinder").unwrap();
    let small = fuzz_small_input(&bench, limits(), SmallInputConfig::default()).unwrap();
    let scores = derive_sdc_scores(&bench, &small.input, limits(), 12, 5, true, 0).unwrap();

    let inputs = peppa_x::apps::random_inputs(
        &bench,
        6,
        99,
        limits(),
        peppa_x::apps::gen::DEFAULT_DYNAMIC_CAP,
    );
    let mut fits = Vec::new();
    let mut sdcs = Vec::new();
    for (i, input) in inputs.iter().enumerate() {
        let (f, _) = fitness_of_input(&bench, &scores, input, limits()).unwrap();
        let c = run_campaign(
            &bench.module,
            input,
            limits(),
            CampaignConfig {
                trials: 200,
                seed: 7 + i as u64,
                ..Default::default()
            },
        )
        .unwrap();
        fits.push(f);
        sdcs.push(c.sdc_prob());
    }
    let rho = spearman(&fits, &sdcs);
    assert!(
        rho > -0.5,
        "fitness anti-correlates strongly with SDC: rho = {rho}"
    );
}

#[test]
fn sdc_sensitivity_distribution_is_stationary() {
    // §3.2.3: per-instruction SDC scores measured under two different
    // inputs should rank instructions similarly.
    let bench = peppa_x::apps::benchmark_by_name("Needle").unwrap();
    let a = derive_sdc_scores(&bench, &[8.0, 8.0, 4.0, 11.0], limits(), 20, 2, true, 0).unwrap();
    let b = derive_sdc_scores(&bench, &[12.0, 10.0, 6.0, 777.0], limits(), 20, 3, true, 0).unwrap();
    // Compare over instructions scored under both inputs.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for sid in 0..bench.module.num_instrs {
        if a.score[sid] > 0.0 || b.score[sid] > 0.0 {
            xs.push(a.score[sid]);
            ys.push(b.score[sid]);
        }
    }
    assert!(xs.len() > 10);
    let rho = spearman(&xs, &ys);
    assert!(rho > 0.2, "distribution not stationary: rho = {rho}");
}

#[test]
fn peppa_and_baseline_comparable_interfaces() {
    // Figure 5's experiment glue: equal budgets are comparable and both
    // sides produce probabilities.
    let bench = peppa_x::apps::benchmark_by_name("FFT").unwrap();
    let cfg = PeppaConfig {
        seed: 21,
        population: 8,
        distribution_trials: 8,
        final_fi_trials: 100,
        ..Default::default()
    };
    let px = PeppaX::prepare(&bench, cfg).unwrap();
    let report = px.search(&[6]);
    let budget = report.checkpoints[0].search_cost_dynamic;

    let baseline = baseline_search(
        &bench,
        budget,
        BaselineConfig {
            seed: 2,
            fi_trials: 100,
            ..Default::default()
        },
    );
    let base_best = baseline.best_at_budget(budget).unwrap_or(0.0);
    let peppa_best = report.checkpoints[0].sdc.sdc_prob();
    assert!((0.0..=1.0).contains(&base_best));
    assert!((0.0..=1.0).contains(&peppa_best));
}

#[test]
fn whole_pipeline_deterministic() {
    let bench = peppa_x::apps::benchmark_by_name("Particlefilter").unwrap();
    let cfg = PeppaConfig {
        seed: 77,
        population: 8,
        distribution_trials: 6,
        final_fi_trials: 60,
        ..Default::default()
    };
    let r1 = PeppaX::prepare(&bench, cfg).unwrap().search(&[4]);
    let r2 = PeppaX::prepare(&bench, cfg).unwrap().search(&[4]);
    assert_eq!(r1.checkpoints[0].input, r2.checkpoints[0].input);
    assert_eq!(r1.checkpoints[0].sdc.sdc, r2.checkpoints[0].sdc.sdc);
    assert_eq!(r1.analysis_cost_dynamic, r2.analysis_cost_dynamic);
}

//! Evaluate the SDC resilience of *your own* kernel: write it in MiniC,
//! compile to PIR, inject faults, inspect per-instruction sensitivity.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use peppa_x::analysis::prune_fi_space;
use peppa_x::inject::{per_instruction_sdc, run_campaign, CampaignConfig, PerInstrConfig};
use peppa_x::ir::printer::print_function;
use peppa_x::vm::ExecLimits;

/// A small stencil kernel with a mix of masked (min/max-clamped) and
/// propagating (accumulated) dataflow.
const SOURCE: &str = r#"
    global float field[256];
    global float next[256];

    fn main(n: int, steps: int, alpha: float) {
        // Initialize a 1-D field with a spike in the middle.
        for (i = 0; i < n; i = i + 1) { field[i] = 0.0; }
        field[n / 2] = 100.0;

        // Jacobi-style diffusion with clamping.
        for (t = 0; t < steps; t = t + 1) {
            for (i = 1; i < n - 1; i = i + 1) {
                let v = field[i] + alpha * (field[i - 1] - 2.0 * field[i] + field[i + 1]);
                next[i] = fmax(0.0, fmin(v, 100.0));
            }
            for (i = 1; i < n - 1; i = i + 1) { field[i] = next[i]; }
        }

        let total = 0.0;
        for (i = 0; i < n; i = i + 1) { total = total + field[i]; }
        output floor(total * 1000.0 + 0.5);
        output floor(field[n / 2] * 1000.0 + 0.5);
    }
"#;

fn main() {
    // 1. Compile MiniC to PIR and dump the entry function's IR.
    let module = peppa_x::lang::compile(SOURCE, "diffusion").expect("compiles");
    println!(
        "compiled `diffusion`: {} static instructions\n",
        module.num_instrs
    );
    println!("{}", print_function(&module, module.entry_func()));

    let input = [64.0, 12.0, 0.2];
    let limits = ExecLimits::default();

    // 2. Overall SDC probability.
    let campaign = run_campaign(
        &module,
        &input,
        limits,
        CampaignConfig {
            trials: 600,
            seed: 3,
            ..Default::default()
        },
    )
    .expect("golden run OK");
    println!(
        "overall: SDC {:.2}%  crash {:.2}%  benign {:.2}%",
        campaign.sdc_prob() * 100.0,
        campaign.crash_prob() * 100.0,
        campaign.benign as f64 / campaign.trials as f64 * 100.0
    );

    // 3. Prune the FI space (the paper's §4.2.2 heuristic) and measure
    //    per-representative SDC probabilities.
    let pruning = prune_fi_space(&module);
    println!(
        "\npruning: {} injectable instructions -> {} subgroups ({:.1}% pruned)",
        pruning.injectable,
        pruning.groups.len(),
        pruning.pruning_ratio() * 100.0
    );

    let reps = pruning.representatives();
    let measured = per_instruction_sdc(
        &module,
        &input,
        limits,
        PerInstrConfig {
            trials_per_instr: 40,
            seed: 5,
            ..Default::default()
        },
        Some(&reps),
    )
    .expect("measurement");

    // 4. Show the five most and least SDC-sensitive representatives.
    let mut ranked: Vec<(u32, f64)> = measured
        .measured_sids()
        .into_iter()
        .map(|sid| (sid.0, measured.sdc_prob[sid.0 as usize].unwrap()))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nmost SDC-sensitive representatives:");
    let instrs = module.all_instrs();
    for (sid, p) in ranked.iter().take(5) {
        println!(
            "  sid {:>4} {:<8} {:.1}%",
            sid,
            instrs[*sid as usize].1.op.mnemonic(),
            p * 100.0
        );
    }
    println!("least sensitive:");
    for (sid, p) in ranked.iter().rev().take(5) {
        println!(
            "  sid {:>4} {:<8} {:.1}%",
            sid,
            instrs[*sid as usize].1.op.mnemonic(),
            p * 100.0
        );
    }
}

//! Head-to-head: PEPPA-X's guided search vs the baseline's
//! random-input + statistical-FI search at the same budget (Figure 5's
//! experiment on one benchmark).
//!
//! ```sh
//! cargo run --release --example compare_with_baseline
//! ```

use peppa_x::core::{baseline_search, BaselineConfig, PeppaConfig, PeppaX};

fn main() {
    let bench = peppa_x::apps::benchmark_by_name("Xsbench").expect("benchmark exists");

    let px = PeppaX::prepare(
        &bench,
        PeppaConfig {
            seed: 5,
            population: 12,
            distribution_trials: 15,
            final_fi_trials: 400,
            ..Default::default()
        },
    )
    .expect("prepare");

    let checkpoints = [10, 25, 50];
    let report = px.search(&checkpoints);

    // Give the baseline the same dynamic-instruction budget PEPPA-X
    // consumed in total.
    let budget = report.checkpoints.last().unwrap().search_cost_dynamic;
    let baseline = baseline_search(
        &bench,
        budget,
        BaselineConfig {
            seed: 17,
            fi_trials: 400,
            ..Default::default()
        },
    );

    println!("benchmark: {} — equal-budget comparison\n", bench.name);
    println!(
        "{:>12} {:>14} {:>14}",
        "generations", "PEPPA-X SDC", "baseline SDC"
    );
    for cp in &report.checkpoints {
        let base = baseline
            .best_at_budget(cp.search_cost_dynamic)
            .unwrap_or(0.0);
        println!(
            "{:>12} {:>13.2}% {:>13.2}%",
            cp.generation,
            cp.sdc.sdc_prob() * 100.0,
            base * 100.0
        );
    }
    println!(
        "\nbaseline evaluated {} random inputs with full FI campaigns;\n\
         PEPPA-X evaluated {} candidates with one profiled run each.",
        baseline.evals.len(),
        report.ga_evaluations
    );
}

//! Reproduce the paper's case study (§6) on one benchmark: protect it
//! with knapsack-selected instruction duplication, then stress-test the
//! protection with an SDC-bound input.
//!
//! ```sh
//! cargo run --release --example stress_test_protection
//! ```

use peppa_x::core::{PeppaConfig, PeppaX};
use peppa_x::protect::plan::{measure_for_planning, plan_from_measurement};
use peppa_x::protect::{apply_protection, measure_coverage};
use peppa_x::vm::ExecLimits;
use std::collections::HashSet;

fn main() {
    let bench = peppa_x::apps::benchmark_by_name("Needle").expect("benchmark exists");
    let limits = ExecLimits::default();

    // Find an SDC-bound input with PEPPA-X first.
    let px = PeppaX::prepare(
        &bench,
        PeppaConfig {
            seed: 13,
            population: 12,
            distribution_trials: 15,
            final_fi_trials: 400,
            ..Default::default()
        },
    )
    .expect("prepare");
    let search = px.search(&[40]);
    let bound = search.sdc_bound();
    println!(
        "SDC-bound input {:?} -> {:.2}% SDC probability",
        bound.input,
        bound.sdc.sdc_prob() * 100.0
    );

    // Plan protection with the *reference* input (what developers do).
    let measured = measure_for_planning(&bench.module, &bench.reference_input, limits, 30, 99, 0)
        .expect("planning measurement");

    println!(
        "\n{:>7} {:>10} {:>12} {:>10} {:>11}",
        "level", "expected", "ref-actual", "stressed", "#protected"
    );
    for level in [0.3, 0.5, 0.7] {
        let plan = plan_from_measurement(
            &bench.module,
            &bench.reference_input,
            limits,
            &measured,
            level,
        );
        let selected: HashSet<_> = plan.selected.iter().copied().collect();
        let protected = apply_protection(&bench.module, &selected);

        let ref_cov = measure_coverage(
            &bench.module,
            &protected.module,
            &bench.reference_input,
            limits,
            400,
            1,
            0,
        )
        .expect("ref coverage");
        let stress_cov = measure_coverage(
            &bench.module,
            &protected.module,
            &bound.input,
            limits,
            400,
            2,
            0,
        )
        .expect("stress coverage");

        println!(
            "{:>6.0}% {:>9.1}% {:>11.1}% {:>9.1}% {:>11}",
            level * 100.0,
            plan.expected_coverage * 100.0,
            ref_cov.coverage * 100.0,
            stress_cov.coverage * 100.0,
            plan.selected.len()
        );
    }
    println!(
        "\nIf the stressed column sits far below the expected column, the\n\
         protection was tuned to the reference input — the paper's point."
    );
}

//! Quickstart: measure a benchmark's SDC probability, then let PEPPA-X
//! find an input that bounds it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use peppa_x::apps;
use peppa_x::core::{PeppaConfig, PeppaX};
use peppa_x::inject::{run_campaign, CampaignConfig};
use peppa_x::vm::ExecLimits;

fn main() {
    // 1. Pick a benchmark. Seven HPC kernels ship with the crate.
    let bench = apps::benchmark_by_name("Pathfinder").expect("benchmark exists");
    println!(
        "benchmark: {} ({}) — {} static instructions",
        bench.name,
        bench.suite,
        bench.static_instrs()
    );

    // 2. Statistical fault injection with the suite's reference input —
    //    what the paper's §3 calls the over-optimistic default view.
    let limits = ExecLimits::default();
    let cfg = CampaignConfig {
        trials: 500,
        seed: 1,
        ..Default::default()
    };
    let reference = run_campaign(&bench.module, &bench.reference_input, limits, cfg)
        .expect("reference input runs cleanly");
    println!(
        "reference input: SDC probability {:.2}% (95% CI ±{:.2}pp), crash {:.2}%",
        reference.sdc_prob() * 100.0,
        reference.sdc_ci.half_width * 100.0,
        reference.crash_prob() * 100.0
    );

    // 3. Run PEPPA-X: small-FI-input fuzzing, pruned distribution
    //    analysis, then a GA search guided by the Eq.-2 fitness.
    let peppa_cfg = PeppaConfig {
        seed: 7,
        population: 12,
        distribution_trials: 20,
        final_fi_trials: 500,
        ..Default::default()
    };
    let px = PeppaX::prepare(&bench, peppa_cfg).expect("preparation");
    println!(
        "prepared: small FI input {:?} covers {:.0}% of instructions at {}x less work",
        px.small.input,
        px.small.coverage * 100.0,
        (px.small.reference_dynamic / px.small.dynamic.max(1)).max(1)
    );

    let report = px.search(&[10, 30, 60]);
    for cp in &report.checkpoints {
        println!(
            "generation {:>3}: fitness {:.4}, measured SDC probability {:.2}%",
            cp.generation,
            cp.fitness,
            cp.sdc.sdc_prob() * 100.0
        );
    }

    let bound = report.sdc_bound();
    println!(
        "\nSDC-bound input {:?} -> {:.2}% SDC probability ({}x the reference input)",
        bound.input,
        bound.sdc.sdc_prob() * 100.0,
        (bound.sdc.sdc_prob() / reference.sdc_prob().max(1e-9)).round()
    );
}

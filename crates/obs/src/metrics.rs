//! Lock-free counters and histograms with JSON snapshot export.
//!
//! Hot-path updates are single atomic RMW operations; registration
//! (name → handle) takes a lock only on first use. Snapshots are
//! wait-free reads of the atomics, so they can run concurrently with a
//! live campaign.

use crate::event::{Event, Observer, Outcome};
use serde::Value;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ magnitude buckets: bucket `i` holds values `v` with
/// `floor(log2(v)) == i` (bucket 0 also holds 0).
const BUCKETS: usize = 64;

/// A histogram over `u64` samples (latencies in ns, sizes, ...) with
/// power-of-two buckets — coarse, but constant-memory and lock-free.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        let b = if value == 0 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Approximate quantile from the log₂ buckets: returns the geometric
    /// midpoint of the bucket containing the `q`-quantile sample.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                // Midpoint of [2^i, 2^(i+1)).
                return if i == 0 {
                    1
                } else {
                    (1u64 << i) + (1u64 << (i - 1))
                };
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    fn snapshot_value(&self) -> Value {
        let buckets: Vec<(String, Value)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.load(Ordering::Relaxed) > 0)
            .map(|(i, b)| {
                (
                    format!("lt_{}", 1u128 << (i + 1)),
                    Value::UInt(b.load(Ordering::Relaxed)),
                )
            })
            .collect();
        Value::Object(vec![
            ("count".into(), Value::UInt(self.count())),
            ("sum".into(), Value::UInt(self.sum())),
            ("mean".into(), Value::Float(self.mean())),
            ("p50".into(), Value::UInt(self.quantile(0.5))),
            ("p90".into(), Value::UInt(self.quantile(0.9))),
            ("p99".into(), Value::UInt(self.quantile(0.99))),
            ("max".into(), Value::UInt(self.max.load(Ordering::Relaxed))),
            ("buckets".into(), Value::Object(buckets)),
        ])
    }
}

/// A named collection of counters and histograms.
///
/// Handles are `Arc`s: fetch once (`counter(name)`), update lock-free
/// thereafter. The registry itself implements [`Observer`], mapping the
/// pipeline event stream onto a canonical metric set (outcome counters,
/// trial latency, GA progress), so attaching it to a campaign yields a
/// snapshot whose `campaign.outcome.*` counters match the
/// `CampaignResult` exactly.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns (registering on first use) the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap();
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Returns (registering on first use) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().unwrap();
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Point-in-time value of a counter (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .unwrap()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Snapshot of every metric as a JSON value tree.
    pub fn snapshot(&self) -> Value {
        let counters: Vec<(String, Value)> = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, c)| (k.clone(), Value::UInt(c.get())))
            .collect();
        let histograms: Vec<(String, Value)> = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot_value()))
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }

    /// Pretty-printed JSON snapshot (the `--metrics-out` artifact).
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).unwrap()
    }
}

impl Observer for MetricsRegistry {
    fn on_event(&self, event: &Event) {
        match event {
            Event::CampaignStarted { trials, .. } => {
                self.counter("campaign.started").inc();
                self.counter("campaign.trials.planned").add(*trials as u64);
                // Pre-register every outcome counter so a snapshot always
                // shows all four, including zero-count outcomes.
                for o in [Outcome::Sdc, Outcome::Crash, Outcome::Hang, Outcome::Benign] {
                    self.counter(&format!("campaign.outcome.{}", o.name()));
                }
            }
            Event::GoldenRun {
                dynamic,
                value_dynamic,
                ..
            } => {
                self.counter("golden.runs").inc();
                self.counter("golden.dynamic_instrs").add(*dynamic);
                self.counter("golden.value_dynamic_instrs")
                    .add(*value_dynamic);
            }
            Event::TrialFinished {
                outcome,
                latency_ns,
                ..
            } => {
                self.counter(&format!("campaign.outcome.{}", outcome.name()))
                    .inc();
                self.counter("campaign.trials.finished").inc();
                self.histogram("campaign.trial_latency_ns")
                    .record(*latency_ns);
            }
            Event::StaticSkip { .. } => {
                self.counter("campaign.static_skips").inc();
            }
            Event::CampaignFinished { wall_ns, .. } => {
                self.counter("campaign.finished").inc();
                self.counter("campaign.wall_ns").add(*wall_ns);
            }
            Event::SearchStarted { .. } => {
                self.counter("search.started").inc();
            }
            Event::GenerationFinished {
                evaluations,
                cache_hits,
                ..
            } => {
                self.counter("search.generations").inc();
                // Running totals are tracked by the emitter; store the
                // latest value for the snapshot by overwriting via
                // add-of-delta semantics being unavailable on atomics,
                // so use dedicated gauges:
                self.gauge_set("search.evaluations", *evaluations);
                self.gauge_set("search.cache_hits", *cache_hits);
            }
            Event::SearchFinished { wall_ns, .. } => {
                self.counter("search.finished").inc();
                self.counter("search.wall_ns").add(*wall_ns);
            }
            Event::AnalysisStarted { .. } => {
                self.counter("analysis.started").inc();
            }
            Event::AnalysisFinished {
                pass,
                findings,
                wall_ns,
            } => {
                self.counter("analysis.finished").inc();
                self.counter(&format!("analysis.{pass}.findings"))
                    .add(*findings);
                self.histogram("analysis.wall_ns").record(*wall_ns);
            }
            Event::TrialProvenance {
                seeded,
                propagated,
                hops,
                extinction_dynamic,
                ..
            } => {
                self.counter("provenance.trials").inc();
                if *seeded {
                    self.counter("provenance.seeded").inc();
                }
                if *propagated {
                    self.counter("provenance.propagated").inc();
                }
                if extinction_dynamic.is_some() {
                    self.counter("provenance.extinct").inc();
                }
                self.histogram("provenance.hops").record(*hops);
            }
            Event::SnapshotCaptured { bytes, .. } => {
                self.counter("snapshot.captured").inc();
                self.counter("snapshot.bytes").add(*bytes);
            }
            Event::SnapshotStats {
                restores,
                full_runs,
                converged_exits,
                prefix_instrs_saved,
                ..
            } => {
                self.counter("snapshot.restores").add(*restores);
                self.counter("snapshot.full_runs").add(*full_runs);
                self.counter("snapshot.converged_exits")
                    .add(*converged_exits);
                self.counter("snapshot.prefix_instrs_saved")
                    .add(*prefix_instrs_saved);
            }
            Event::SpanBegin { .. } => {
                self.counter("span.begins").inc();
            }
            Event::SpanEnd { .. } => {
                self.counter("span.ends").inc();
            }
            Event::Message { .. } => {}
        }
    }
}

impl MetricsRegistry {
    /// Sets a counter to an absolute value (gauge semantics for
    /// monotone running totals reported by events).
    fn gauge_set(&self, name: &str, value: u64) {
        let c = self.counter(name);
        c.0.store(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Outcome;

    #[test]
    fn counters_accumulate_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter_value("x"), 4000);
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        for v in [10u64, 100, 1000, 10_000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 111_110);
        let p50 = h.quantile(0.5);
        // Median sample is 1000; its log2 bucket is [512, 1024).
        assert!((512..2048).contains(&p50), "p50 {p50}");
    }

    #[test]
    fn observer_mapping_matches_outcomes() {
        let reg = MetricsRegistry::new();
        for (i, o) in [Outcome::Sdc, Outcome::Sdc, Outcome::Crash, Outcome::Benign]
            .into_iter()
            .enumerate()
        {
            reg.on_event(&Event::TrialFinished {
                trial: i as u32,
                outcome: o,
                site: 0,
                bit: 0,
                latency_ns: 50,
            });
        }
        assert_eq!(reg.counter_value("campaign.outcome.sdc"), 2);
        assert_eq!(reg.counter_value("campaign.outcome.crash"), 1);
        assert_eq!(reg.counter_value("campaign.outcome.hang"), 0);
        assert_eq!(reg.counter_value("campaign.outcome.benign"), 1);
        assert_eq!(reg.counter_value("campaign.trials.finished"), 4);
    }

    #[test]
    fn snapshot_is_valid_json() {
        let reg = MetricsRegistry::new();
        reg.counter("a.b").add(3);
        reg.histogram("h").record(7);
        let s = reg.snapshot_json();
        let v = serde_json::parse_value(&s).unwrap();
        assert_eq!(
            v.get("counters").unwrap().get("a.b").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(
            v.get("histograms")
                .unwrap()
                .get("h")
                .unwrap()
                .get("count")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }
}

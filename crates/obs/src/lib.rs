//! Observability for the PEPPA-X FI pipeline.
//!
//! The paper's measurement loop (golden run → statistical FI campaign →
//! GA search) is long-running and highly parallel; this crate is the
//! substrate every layer reports into. It provides:
//!
//! * [`Observer`] — a sink trait over typed [`Event`]s emitted by the
//!   campaign runner, the GA search driver, and the CLI front ends;
//! * [`MetricsRegistry`] — lock-free counters and log₂-bucket histograms
//!   with JSON snapshot export (`BENCH_*.json` baselines come from
//!   these snapshots, not hand-rolled timers);
//! * [`JsonlJournal`] — a run journal writing one JSON event per line,
//!   replayable by downstream tooling;
//! * [`ProgressReporter`] — a throttled human-readable progress line for
//!   interactive TTY sessions;
//! * [`MultiObserver`] / [`NullObserver`] — fan-out and no-op sinks.

pub mod chrome;
pub mod event;
pub mod heatmap;
pub mod journal;
pub mod metrics;
pub mod progress;
pub mod span;

pub use chrome::ChromeTrace;
pub use event::{Event, Observer, Outcome};
pub use heatmap::{HeatCell, PropagationHeatmap};
pub use journal::JsonlJournal;
pub use metrics::{Counter, Histogram, MetricsRegistry};
pub use progress::ProgressReporter;
pub use span::{monotonic_ns, Span};

use std::sync::Arc;

/// Observer that discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_event(&self, _event: &Event) {}
}

/// Fans one event stream out to several sinks, in registration order.
#[derive(Default)]
pub struct MultiObserver {
    sinks: Vec<Arc<dyn Observer>>,
}

impl MultiObserver {
    pub fn new() -> MultiObserver {
        MultiObserver { sinks: Vec::new() }
    }

    pub fn push(&mut self, sink: Arc<dyn Observer>) {
        self.sinks.push(sink);
    }

    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl Observer for MultiObserver {
    fn on_event(&self, event: &Event) {
        for s in &self.sinks {
            s.on_event(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

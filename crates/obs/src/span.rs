//! Nested phase spans with process-monotonic timestamps.
//!
//! A [`Span`] brackets a pipeline phase with [`Event::SpanBegin`] /
//! [`Event::SpanEnd`] pairs stamped from one process-wide monotonic
//! origin, so spans emitted by different layers (CLI, campaign, analysis)
//! land on a single timeline. Spans nest lexically: create an inner span
//! while an outer one is alive and the Chrome trace exporter renders the
//! usual flame-graph stacking from the begin/end bracketing.

use crate::event::{Event, Observer};
use std::sync::OnceLock;
use std::time::Instant;

/// Nanoseconds since the first call in this process — a monotonic clock
/// shared by every span and the Chrome trace exporter.
pub fn monotonic_ns() -> u64 {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// An RAII phase span: emits `SpanBegin` on creation and `SpanEnd` on
/// drop into the given observer.
pub struct Span<'a> {
    name: String,
    obs: &'a dyn Observer,
}

impl<'a> Span<'a> {
    pub fn enter(obs: &'a dyn Observer, name: impl Into<String>) -> Span<'a> {
        let name = name.into();
        obs.on_event(&Event::SpanBegin {
            name: name.clone(),
            ts_ns: monotonic_ns(),
        });
        Span { name, obs }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.obs.on_event(&Event::SpanEnd {
            name: std::mem::take(&mut self.name),
            ts_ns: monotonic_ns(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[derive(Default)]
    struct Capture(Mutex<Vec<Event>>);

    impl Observer for Capture {
        fn on_event(&self, event: &Event) {
            self.0.lock().unwrap().push(event.clone());
        }
    }

    #[test]
    fn spans_nest_and_timestamps_are_monotonic() {
        let cap = Capture::default();
        {
            let _outer = Span::enter(&cap, "campaign");
            let _inner = Span::enter(&cap, "golden");
        }
        let events = cap.0.into_inner().unwrap();
        let kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds, ["span_begin", "span_begin", "span_end", "span_end"]);
        // Inner closes before outer (drop order), and time never goes
        // backwards.
        let names: Vec<_> = events
            .iter()
            .map(|e| match e {
                Event::SpanBegin { name, .. } | Event::SpanEnd { name, .. } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["campaign", "golden", "golden", "campaign"]);
        let ts: Vec<u64> = events
            .iter()
            .map(|e| match e {
                Event::SpanBegin { ts_ns, .. } | Event::SpanEnd { ts_ns, .. } => *ts_ns,
                _ => unreachable!(),
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "{ts:?}");
    }
}

//! Throttled human progress reporting for interactive sessions.
//!
//! Writes single-line `\r`-rewritten status to stderr at most every
//! `min_interval` (default 200 ms), so a million-trial campaign costs a
//! handful of syscalls, not one per trial. Phase boundaries
//! (`campaign_finished`, `generation_finished`) print durable lines.

use crate::event::{Event, Observer};
use std::io::Write;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct ProgressState {
    last_print: Option<Instant>,
    /// Trials finished / planned for the current campaign.
    finished: u32,
    planned: u32,
    sdc: u32,
    crash: u32,
    hang: u32,
    /// Trials skipped by static pruning (already counted in `finished`).
    skipped: u32,
    /// Whether a transient `\r` line is currently on screen.
    line_open: bool,
}

/// An [`Observer`] rendering a live status line.
pub struct ProgressReporter {
    state: Mutex<ProgressState>,
    min_interval: Duration,
}

impl Default for ProgressReporter {
    fn default() -> Self {
        ProgressReporter::new(Duration::from_millis(200))
    }
}

impl ProgressReporter {
    pub fn new(min_interval: Duration) -> ProgressReporter {
        ProgressReporter {
            state: Mutex::new(ProgressState {
                last_print: None,
                finished: 0,
                planned: 0,
                sdc: 0,
                crash: 0,
                hang: 0,
                skipped: 0,
                line_open: false,
            }),
            min_interval,
        }
    }

    fn erase_line(st: &mut ProgressState) {
        if st.line_open {
            eprint!("\r\x1b[2K");
            st.line_open = false;
        }
    }
}

impl Observer for ProgressReporter {
    fn on_event(&self, event: &Event) {
        let mut st = self.state.lock().unwrap();
        match event {
            Event::CampaignStarted {
                benchmark,
                trials,
                threads,
                ..
            } => {
                Self::erase_line(&mut st);
                st.finished = 0;
                st.planned = *trials;
                st.sdc = 0;
                st.crash = 0;
                st.hang = 0;
                st.skipped = 0;
                st.last_print = None;
                eprintln!(
                    "[obs] campaign on {benchmark}: {trials} trials, {} threads",
                    if *threads == 0 {
                        "all".to_string()
                    } else {
                        threads.to_string()
                    }
                );
            }
            Event::GoldenRun {
                dynamic,
                value_dynamic,
                coverage,
                ..
            } => {
                Self::erase_line(&mut st);
                eprintln!(
                    "[obs] golden run: {dynamic} dynamic instrs, {value_dynamic} fault sites, {:.1}% coverage",
                    coverage * 100.0
                );
            }
            Event::StaticSkip { .. } => {
                st.skipped += 1;
            }
            Event::TrialFinished { outcome, .. } => {
                st.finished += 1;
                match outcome {
                    crate::event::Outcome::Sdc => st.sdc += 1,
                    crate::event::Outcome::Crash => st.crash += 1,
                    crate::event::Outcome::Hang => st.hang += 1,
                    crate::event::Outcome::Benign => {}
                }
                let due = st
                    .last_print
                    .map(|t| t.elapsed() >= self.min_interval)
                    .unwrap_or(true);
                if due {
                    eprint!(
                        "\r\x1b[2K[obs] trial {}/{}  sdc {}  crash {}  hang {}",
                        st.finished, st.planned, st.sdc, st.crash, st.hang
                    );
                    let _ = std::io::stderr().flush();
                    st.line_open = true;
                    st.last_print = Some(Instant::now());
                }
            }
            Event::CampaignFinished {
                trials,
                sdc,
                crash,
                hang,
                benign,
                wall_ns,
            } => {
                Self::erase_line(&mut st);
                let secs = *wall_ns as f64 / 1e9;
                let rate = if secs > 0.0 {
                    *trials as f64 / secs
                } else {
                    0.0
                };
                let skipped = if st.skipped > 0 {
                    format!(" ({} statically skipped)", st.skipped)
                } else {
                    String::new()
                };
                eprintln!(
                    "[obs] campaign done: {trials} trials in {secs:.2}s ({rate:.0}/s) — sdc {sdc} crash {crash} hang {hang} benign {benign}{skipped}"
                );
            }
            Event::SearchStarted {
                benchmark,
                generations,
                population,
                ..
            } => {
                Self::erase_line(&mut st);
                eprintln!(
                    "[obs] GA search on {benchmark}: {generations} generations, population {population}"
                );
            }
            Event::GenerationFinished {
                generation,
                best,
                mean,
                diversity,
                cache_hits,
                evaluations,
            } => {
                let due = st
                    .last_print
                    .map(|t| t.elapsed() >= self.min_interval)
                    .unwrap_or(true);
                if due {
                    eprint!(
                        "\r\x1b[2K[obs] gen {generation}  best {best:.4}  mean {mean:.4}  div {diversity:.3}  evals {evaluations}  cache {cache_hits}"
                    );
                    let _ = std::io::stderr().flush();
                    st.line_open = true;
                    st.last_print = Some(Instant::now());
                }
            }
            Event::SearchFinished {
                generations,
                evaluations,
                wall_ns,
            } => {
                Self::erase_line(&mut st);
                eprintln!(
                    "[obs] search done: {generations} generations, {evaluations} evaluations in {:.2}s",
                    *wall_ns as f64 / 1e9
                );
            }
            Event::AnalysisStarted { benchmark, pass } => {
                Self::erase_line(&mut st);
                eprintln!("[obs] {pass} on {benchmark}...");
            }
            Event::AnalysisFinished {
                pass,
                findings,
                wall_ns,
            } => {
                Self::erase_line(&mut st);
                eprintln!(
                    "[obs] {pass} done: {findings} findings in {:.3}s",
                    *wall_ns as f64 / 1e9
                );
            }
            Event::Message { text } => {
                Self::erase_line(&mut st);
                eprintln!("[obs] {text}");
            }
            Event::SnapshotStats {
                snapshots,
                bytes,
                restores,
                full_runs,
                converged_exits,
                prefix_instrs_saved,
            } => {
                Self::erase_line(&mut st);
                eprintln!(
                    "[obs] snapshots: {snapshots} captured ({:.1} MiB), {restores} restores, {full_runs} full runs, {converged_exits} converged exits, {prefix_instrs_saved} prefix instrs saved",
                    *bytes as f64 / (1024.0 * 1024.0)
                );
            }
            // Per-trial provenance records, per-snapshot captures, and
            // span brackets are for the journal/trace exporters, not the
            // interactive line.
            Event::TrialProvenance { .. }
            | Event::SnapshotCaptured { .. }
            | Event::SpanBegin { .. }
            | Event::SpanEnd { .. } => {}
        }
    }

    fn flush(&self) {
        let mut st = self.state.lock().unwrap();
        Self::erase_line(&mut st);
        let _ = std::io::stderr().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Outcome;

    #[test]
    fn throttling_counts_all_trials() {
        // Events streamed faster than the interval must still all be
        // counted; only the printing is throttled.
        let p = ProgressReporter::new(Duration::from_secs(3600));
        p.on_event(&Event::CampaignStarted {
            benchmark: "b".into(),
            trials: 3,
            seed: 0,
            threads: 1,
            engine: "interp".into(),
        });
        for t in 0..3 {
            p.on_event(&Event::TrialFinished {
                trial: t,
                outcome: Outcome::Crash,
                site: 0,
                bit: 0,
                latency_ns: 10,
            });
        }
        let st = p.state.lock().unwrap();
        assert_eq!(st.finished, 3);
        assert_eq!(st.crash, 3);
    }
}

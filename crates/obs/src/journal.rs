//! JSONL run journals: one event per line, in arrival order.
//!
//! The journal is the replayable record of a run — `trial_finished`
//! lines reconstruct the full outcome stream, `generation_finished`
//! lines the GA convergence curve. Lines are self-contained JSON
//! objects, so `grep`/`jq` pipelines work without any tooling.

use crate::event::{Event, Observer};
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// An [`Observer`] appending each event as one JSON line.
pub struct JsonlJournal {
    writer: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlJournal {
    /// Creates (truncating) the journal file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlJournal> {
        let f = std::fs::File::create(path)?;
        Ok(JsonlJournal::from_writer(Box::new(f)))
    }

    /// Journals into any writer (tests use `Vec<u8>` via a pipe).
    pub fn from_writer(w: Box<dyn Write + Send>) -> JsonlJournal {
        JsonlJournal {
            writer: Mutex::new(BufWriter::new(w)),
        }
    }

    /// Reads a journal back into events, skipping blank lines. Lines
    /// that fail to parse abort with the offending line number.
    pub fn read(path: impl AsRef<Path>) -> Result<Vec<Event>, String> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| format!("{}: {e}", path.as_ref().display()))?;
        parse_journal(&text)
    }
}

/// Parses JSONL journal text into events.
pub fn parse_journal(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(n, l)| {
            serde_json::from_str::<Event>(l).map_err(|e| format!("journal line {}: {e}", n + 1))
        })
        .collect()
}

impl JsonlJournal {
    /// Locks the writer, recovering from poison: a panicking campaign
    /// thread must not be able to wedge the journal — the whole point of
    /// the Drop flush is to leave a readable tail after a crash.
    fn lock_writer(&self) -> std::sync::MutexGuard<'_, BufWriter<Box<dyn Write + Send>>> {
        self.writer
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl Observer for JsonlJournal {
    fn on_event(&self, event: &Event) {
        let line = serde_json::to_string(event).unwrap();
        let mut w = self.lock_writer();
        // Journal writes are best-effort: a full disk should not abort
        // the campaign mid-measurement.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.lock_writer().flush();
    }
}

impl Drop for JsonlJournal {
    fn drop(&mut self) {
        // Runs during unwinding too: a crashing campaign still leaves
        // every buffered line on disk.
        let _ = self.lock_writer().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Outcome;

    #[test]
    fn roundtrips_through_a_file() {
        let path =
            std::env::temp_dir().join(format!("peppa-obs-journal-{}.jsonl", std::process::id()));
        {
            let j = JsonlJournal::create(&path).unwrap();
            j.on_event(&Event::CampaignStarted {
                benchmark: "hpccg".into(),
                trials: 2,
                seed: 7,
                threads: 1,
                engine: "interp".into(),
            });
            j.on_event(&Event::TrialFinished {
                trial: 0,
                outcome: Outcome::Benign,
                site: 5,
                bit: 1,
                latency_ns: 100,
            });
            j.on_event(&Event::TrialFinished {
                trial: 1,
                outcome: Outcome::Sdc,
                site: 9,
                bit: 63,
                latency_ns: 150,
            });
            j.flush();
        }
        let events = JsonlJournal::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind(), "campaign_started");
        let trials: Vec<_> = events
            .iter()
            .filter(|e| e.kind() == "trial_finished")
            .collect();
        assert_eq!(trials.len(), 2);
        match trials[1] {
            Event::TrialFinished {
                outcome, site, bit, ..
            } => {
                assert_eq!(*outcome, Outcome::Sdc);
                assert_eq!(*site, 9);
                assert_eq!(*bit, 63);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn killed_writer_leaves_readable_tail() {
        // A campaign thread panics mid-run without ever calling flush();
        // the unwind drops the journal, whose Drop must flush the
        // buffered tail so the file is readable afterwards.
        let path =
            std::env::temp_dir().join(format!("peppa-obs-killed-{}.jsonl", std::process::id()));
        let p = path.clone();
        let worker = std::thread::spawn(move || {
            let j = JsonlJournal::create(&p).unwrap();
            for i in 0..50u32 {
                j.on_event(&Event::TrialFinished {
                    trial: i,
                    outcome: Outcome::Benign,
                    site: i as u64,
                    bit: 0,
                    latency_ns: 10,
                });
            }
            panic!("simulated campaign crash");
        });
        assert!(worker.join().is_err(), "worker must have died");
        let events = JsonlJournal::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(events.len(), 50, "all buffered lines must survive");
        assert!(events.iter().all(|e| e.kind() == "trial_finished"));
    }

    #[test]
    fn poisoned_lock_does_not_wedge_journal() {
        // A thread that panics while holding the writer lock poisons the
        // mutex; subsequent writes, flushes, and the Drop flush must all
        // still work.
        let path =
            std::env::temp_dir().join(format!("peppa-obs-poison-{}.jsonl", std::process::id()));
        {
            let j = std::sync::Arc::new(JsonlJournal::create(&path).unwrap());
            j.on_event(&Event::Message {
                text: "before".into(),
            });
            let j2 = std::sync::Arc::clone(&j);
            let poisoner = std::thread::spawn(move || {
                let _guard = j2.writer.lock().unwrap();
                panic!("poison the journal lock");
            });
            assert!(poisoner.join().is_err());
            assert!(j.writer.is_poisoned());
            j.on_event(&Event::Message {
                text: "after".into(),
            });
            j.flush();
        }
        let events = JsonlJournal::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(events.len(), 2, "{events:?}");
    }

    #[test]
    fn bad_line_reports_number() {
        let err = parse_journal("{\"Message\":{\"text\":\"ok\"}}\nnot json\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}

//! Typed pipeline events and the observer sink trait.

use serde::{Deserialize, Serialize};

/// Trial outcome, mirrored from the injector's four §2.2 failure
//  categories. Kept as a local enum so the VM/injector layers can depend
/// on this crate without a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Outcome {
    Sdc,
    Crash,
    Hang,
    Benign,
}

impl Outcome {
    pub fn name(self) -> &'static str {
        match self {
            Outcome::Sdc => "sdc",
            Outcome::Crash => "crash",
            Outcome::Hang => "hang",
            Outcome::Benign => "benign",
        }
    }
}

/// One observation from the FI pipeline. Every long-running phase emits
/// a `*Started` / `*Finished` pair; per-unit events stream in between.
///
/// Field units: `latency_ns`/`wall_ns` are wall-clock nanoseconds;
/// `site` is the dynamic value-producing instruction index the fault
/// targeted; `coverage` is the fraction of static instructions executed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A statistical FI campaign began.
    CampaignStarted {
        benchmark: String,
        trials: u32,
        seed: u64,
        threads: usize,
        /// Execution engine trials ran on (`"interp"` or `"compiled"`).
        engine: String,
    },
    /// The campaign's golden (fault-free) run completed cleanly.
    GoldenRun {
        benchmark: String,
        /// Dynamic (non-terminator) instructions executed.
        dynamic: u64,
        /// Value-producing dynamic instructions — the fault-site
        /// population faults are sampled from.
        value_dynamic: u64,
        /// Static instruction coverage of the run, in `[0, 1]`.
        coverage: f64,
    },
    /// One FI trial completed.
    TrialFinished {
        /// Trial index in `[0, trials)`.
        trial: u32,
        outcome: Outcome,
        /// Sampled fault site (dynamic value index).
        site: u64,
        /// Flipped bit position.
        bit: u32,
        /// Wall-clock duration of the faulty run.
        latency_ns: u64,
    },
    /// A `--static-prune` campaign skipped one trial without executing
    /// it: the sampled fault cell is provably masked, so the trial is
    /// counted as Benign. A paired `TrialFinished` still follows.
    StaticSkip {
        /// Trial index in `[0, trials)`.
        trial: u32,
        /// Static instruction the sampled dynamic site maps to.
        sid: u32,
        /// Sampled fault site (dynamic value index).
        site: u64,
        /// Sampled bit position.
        bit: u32,
    },
    /// A campaign finished; counts partition `trials`.
    CampaignFinished {
        trials: u32,
        sdc: u32,
        crash: u32,
        hang: u32,
        benign: u32,
        wall_ns: u64,
    },
    /// A GA search began.
    SearchStarted {
        benchmark: String,
        generations: u64,
        population: usize,
        seed: u64,
    },
    /// One GA generation finished.
    GenerationFinished {
        generation: u64,
        /// Best Eq.-2 fitness in the population.
        best: f64,
        /// Mean fitness over finite-fitness members.
        mean: f64,
        /// Population diversity: mean per-argument standard deviation,
        /// normalized by each argument's search range.
        diversity: f64,
        /// Fitness-oracle memo hits accumulated so far.
        cache_hits: u64,
        /// Total fitness evaluations so far.
        evaluations: u64,
    },
    /// A GA search finished.
    SearchFinished {
        generations: u64,
        evaluations: u64,
        wall_ns: u64,
    },
    /// A static-analysis pass (verifier, lint, masking predictor) began.
    AnalysisStarted { benchmark: String, pass: String },
    /// A static-analysis pass finished. `findings` counts whatever the
    /// pass produces (lints, scored instructions); zero is a clean run.
    AnalysisFinished {
        pass: String,
        findings: u64,
        wall_ns: u64,
    },
    /// Fault-provenance record of one traced FI trial: where the taint
    /// seeded at the flipped bit went. Emitted by `run_campaign_traced`
    /// alongside the trial's `TrialFinished`.
    TrialProvenance {
        /// Trial index in `[0, trials)`.
        trial: u32,
        outcome: Outcome,
        /// Sampled fault site (dynamic value index).
        site: u64,
        /// Flipped bit position.
        bit: u32,
        /// Static instruction the fault corrupted.
        sid: u32,
        /// Whether the injection activated (taint was seeded).
        seeded: bool,
        /// Whether taint reached an observable sink.
        propagated: bool,
        /// Sink category of the first taint arrival (`"output"`,
        /// `"branch_cond"`, ...), when it propagated.
        sink: Option<String>,
        /// Value definitions that carried taint (propagation hop count).
        hops: u64,
        /// Dynamic index of the corrupted instruction (1-based).
        seed_dynamic: u64,
        /// Dynamic index where the last tainted location died, if the
        /// taint went extinct before the run ended.
        extinction_dynamic: Option<u64>,
        /// Sparse per-static-instruction taint touch counts, sorted by
        /// sid — the rows a propagation heatmap aggregates.
        sid_hits: Vec<(u32, u64)>,
    },
    /// A snapshotted campaign captured one golden-prefix snapshot at a
    /// stratified fork point.
    SnapshotCaptured {
        /// Fork-point index within the campaign's plan.
        index: u32,
        /// Value-dynamic coordinate of the capture point (the snapshot
        /// serves every fault site at or after it).
        value_dynamic: u64,
        /// Dynamic instructions of the prefix the snapshot skips.
        dynamic: u64,
        /// Approximate heap bytes held by the snapshot.
        bytes: u64,
    },
    /// End-of-campaign accounting for a `--snapshots K` run, emitted
    /// just before its `CampaignFinished`.
    SnapshotStats {
        /// Snapshots captured along the golden run.
        snapshots: u32,
        /// Total heap bytes across all captured snapshots.
        bytes: u64,
        /// Trials started from a snapshot instead of program entry.
        restores: u64,
        /// Trials that ran from program entry (no usable fork point).
        full_runs: u64,
        /// Trials ended early when their machine state converged with a
        /// golden checkpoint.
        converged_exits: u64,
        /// Golden-prefix dynamic instructions trials did not re-execute.
        prefix_instrs_saved: u64,
    },
    /// A named phase began (nested spans: begin/end pairs are properly
    /// bracketed per thread). `ts_ns` is a process-monotonic timestamp
    /// from [`crate::span::monotonic_ns`].
    SpanBegin { name: String, ts_ns: u64 },
    /// A named phase ended.
    SpanEnd { name: String, ts_ns: u64 },
    /// Free-form annotation (phase markers, warnings).
    Message { text: String },
}

impl Event {
    /// Short tag for humans and journal filtering.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CampaignStarted { .. } => "campaign_started",
            Event::GoldenRun { .. } => "golden_run",
            Event::TrialFinished { .. } => "trial_finished",
            Event::StaticSkip { .. } => "static_skip",
            Event::CampaignFinished { .. } => "campaign_finished",
            Event::SearchStarted { .. } => "search_started",
            Event::GenerationFinished { .. } => "generation_finished",
            Event::SearchFinished { .. } => "search_finished",
            Event::AnalysisStarted { .. } => "analysis_started",
            Event::AnalysisFinished { .. } => "analysis_finished",
            Event::TrialProvenance { .. } => "trial_provenance",
            Event::SnapshotCaptured { .. } => "snapshot_captured",
            Event::SnapshotStats { .. } => "snapshot_stats",
            Event::SpanBegin { .. } => "span_begin",
            Event::SpanEnd { .. } => "span_end",
            Event::Message { .. } => "message",
        }
    }
}

/// An event sink. Implementations must be cheap and non-blocking where
/// possible: the campaign hot loop calls this from its collector thread.
///
/// `Send + Sync` because one observer is shared across campaign worker
/// scopes and sequential pipeline phases.
pub trait Observer: Send + Sync {
    fn on_event(&self, event: &Event);

    /// Flushes buffered state (files, progress lines). Called at phase
    /// boundaries and before process exit.
    fn flush(&self) {}
}

impl<T: Observer + ?Sized> Observer for std::sync::Arc<T> {
    fn on_event(&self, event: &Event) {
        (**self).on_event(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

impl<T: Observer + ?Sized> Observer for &T {
    fn on_event(&self, event: &Event) {
        (**self).on_event(event);
    }

    fn flush(&self) {
        (**self).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_to_tagged_json() {
        let e = Event::TrialFinished {
            trial: 7,
            outcome: Outcome::Sdc,
            site: 123,
            bit: 40,
            latency_ns: 5000,
        };
        let s = serde_json::to_string(&e).unwrap();
        assert!(s.contains("\"TrialFinished\""), "{s}");
        assert!(s.contains("\"outcome\":\"Sdc\""), "{s}");
        let back: Event = serde_json::from_str(&s).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn kind_tags_are_stable() {
        let e = Event::Message { text: "x".into() };
        assert_eq!(e.kind(), "message");
    }
}

//! Chrome trace-event JSON export.
//!
//! [`ChromeTrace`] is an [`Observer`] that renders the pipeline event
//! stream into the Chrome trace-event format (the `{"traceEvents": []}`
//! JSON object loadable in Perfetto or `chrome://tracing`):
//!
//! * [`Event::SpanBegin`]/[`Event::SpanEnd`] become `B`/`E` duration
//!   events on the phase lane, stacking by their begin/end bracketing;
//! * [`Event::TrialFinished`] becomes an `X` complete event whose
//!   duration is the trial's faulty-run latency, packed greedily onto
//!   trial lanes so concurrent trials don't overlap within a lane;
//! * campaign/golden/search milestones become `i` instant events.
//!
//! Timestamps are microseconds on the [`crate::span::monotonic_ns`]
//! clock. Trial end times are stamped at event arrival on the collector
//! thread, so trial placement is approximate (within channel-drain
//! latency of the worker's actual execution window); span timestamps are
//! exact.

use crate::event::{Event, Observer};
use crate::span::monotonic_ns;
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Phase spans live on this tid; trial lanes start above it.
const PHASE_TID: u64 = 0;
const TRIAL_TID_BASE: u64 = 1;

struct TraceEvent {
    name: String,
    ph: char,
    ts_us: u64,
    dur_us: Option<u64>,
    tid: u64,
    args: Option<Value>,
}

impl TraceEvent {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("cat".to_string(), Value::Str("peppa".to_string())),
            ("ph".to_string(), Value::Str(self.ph.to_string())),
            ("ts".to_string(), Value::UInt(self.ts_us)),
            ("pid".to_string(), Value::UInt(1)),
            ("tid".to_string(), Value::UInt(self.tid)),
        ];
        if let Some(d) = self.dur_us {
            fields.push(("dur".to_string(), Value::UInt(d)));
        }
        if self.ph == 'i' {
            // Instant-event scope: thread.
            fields.push(("s".to_string(), Value::Str("t".to_string())));
        }
        if let Some(a) = &self.args {
            fields.push(("args".to_string(), a.clone()));
        }
        Value::Object(fields)
    }
}

struct Lanes {
    /// End time of the last event placed on each trial lane.
    busy_until: Vec<u64>,
}

impl Lanes {
    /// Greedy interval packing: first lane free at `start`, else a new
    /// lane (capped — beyond the cap, reuse the earliest-free lane).
    fn place(&mut self, start: u64, dur: u64) -> (u64, u64) {
        const MAX_LANES: usize = 32;
        for (i, b) in self.busy_until.iter_mut().enumerate() {
            if *b <= start {
                *b = start + dur;
                return (TRIAL_TID_BASE + i as u64, start);
            }
        }
        if self.busy_until.len() < MAX_LANES {
            self.busy_until.push(start + dur);
            return (TRIAL_TID_BASE + self.busy_until.len() as u64 - 1, start);
        }
        let (i, b) = self
            .busy_until
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, b)| **b)
            .expect("lanes nonempty");
        let shifted = *b;
        *b = shifted + dur;
        (TRIAL_TID_BASE + i as u64, shifted)
    }
}

/// An [`Observer`] accumulating a Chrome trace, written to `path` on
/// [`flush`](Observer::flush) (and on drop).
pub struct ChromeTrace {
    path: PathBuf,
    state: Mutex<(Vec<TraceEvent>, Lanes)>,
}

impl ChromeTrace {
    pub fn create(path: impl AsRef<Path>) -> ChromeTrace {
        ChromeTrace {
            path: path.as_ref().to_path_buf(),
            state: Mutex::new((
                Vec::new(),
                Lanes {
                    busy_until: Vec::new(),
                },
            )),
        }
    }

    /// Renders the accumulated trace as a Chrome trace-event JSON
    /// object.
    pub fn render(&self) -> String {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let events: Vec<Value> = st.0.iter().map(|e| e.to_value()).collect();
        let root = Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(events)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ]);
        serde_json::to_string(&root).unwrap()
    }

    fn push(&self, ev: TraceEvent) {
        self.state
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .0
            .push(ev);
    }

    fn instant(&self, name: impl Into<String>) {
        self.push(TraceEvent {
            name: name.into(),
            ph: 'i',
            ts_us: monotonic_ns() / 1000,
            dur_us: None,
            tid: PHASE_TID,
            args: None,
        });
    }
}

impl Observer for ChromeTrace {
    fn on_event(&self, event: &Event) {
        match event {
            Event::SpanBegin { name, ts_ns } => self.push(TraceEvent {
                name: name.clone(),
                ph: 'B',
                ts_us: ts_ns / 1000,
                dur_us: None,
                tid: PHASE_TID,
                args: None,
            }),
            Event::SpanEnd { name, ts_ns } => self.push(TraceEvent {
                name: name.clone(),
                ph: 'E',
                ts_us: ts_ns / 1000,
                dur_us: None,
                tid: PHASE_TID,
                args: None,
            }),
            Event::TrialFinished {
                trial,
                outcome,
                latency_ns,
                ..
            } => {
                let dur = (latency_ns / 1000).max(1);
                let end = monotonic_ns() / 1000;
                let start = end.saturating_sub(dur);
                let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
                let (tid, ts) = st.1.place(start, dur);
                st.0.push(TraceEvent {
                    name: format!("trial {trial}"),
                    ph: 'X',
                    ts_us: ts,
                    dur_us: Some(dur),
                    tid,
                    args: Some(Value::Object(vec![(
                        "outcome".to_string(),
                        Value::Str(outcome.name().to_string()),
                    )])),
                });
            }
            Event::TrialProvenance {
                trial,
                propagated,
                sink,
                hops,
                ..
            } => {
                self.push(TraceEvent {
                    name: format!("provenance {trial}"),
                    ph: 'i',
                    ts_us: monotonic_ns() / 1000,
                    dur_us: None,
                    tid: PHASE_TID,
                    args: Some(Value::Object(vec![
                        ("propagated".to_string(), Value::Bool(*propagated)),
                        (
                            "sink".to_string(),
                            sink.clone().map_or(Value::Null, Value::Str),
                        ),
                        ("hops".to_string(), Value::UInt(*hops)),
                    ])),
                });
            }
            Event::CampaignStarted { benchmark, .. } => {
                self.instant(format!("campaign_started {benchmark}"));
            }
            Event::GoldenRun { benchmark, .. } => {
                self.instant(format!("golden_run {benchmark}"));
            }
            Event::CampaignFinished { .. } => self.instant("campaign_finished"),
            Event::SearchStarted { benchmark, .. } => {
                self.instant(format!("search_started {benchmark}"));
            }
            Event::SearchFinished { .. } => self.instant("search_finished"),
            _ => {}
        }
    }

    fn flush(&self) {
        let _ = std::fs::write(&self.path, self.render());
    }
}

impl Drop for ChromeTrace {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Outcome;

    #[test]
    fn renders_loadable_trace_json() {
        let path = std::env::temp_dir().join(format!("peppa-chrome-{}.json", std::process::id()));
        let t = ChromeTrace::create(&path);
        t.on_event(&Event::SpanBegin {
            name: "campaign".into(),
            ts_ns: 1_000_000,
        });
        for i in 0..3u32 {
            t.on_event(&Event::TrialFinished {
                trial: i,
                outcome: Outcome::Benign,
                site: 0,
                bit: 0,
                latency_ns: 2_000_000,
            });
        }
        t.on_event(&Event::SpanEnd {
            name: "campaign".into(),
            ts_ns: 9_000_000,
        });
        t.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let v = serde_json::parse_value(&text).unwrap();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        // 1 B + 3 X + 1 E.
        assert_eq!(evs.len(), 5);
        // Every event has the required fields.
        for e in evs {
            assert!(e.get("ph").is_some());
            assert!(e.get("ts").is_some());
            assert!(e.get("pid").is_some());
            assert!(e.get("tid").is_some());
        }
        // Complete events carry durations.
        let xs: Vec<_> = evs
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .collect();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[0].get("dur").unwrap().as_u64(), Some(2000));
    }

    #[test]
    fn lanes_never_overlap() {
        let mut lanes = Lanes {
            busy_until: Vec::new(),
        };
        // Three concurrent intervals get three lanes; a later one reuses.
        let (t0, _) = lanes.place(0, 10);
        let (t1, _) = lanes.place(5, 10);
        let (t2, _) = lanes.place(8, 10);
        let (t3, _) = lanes.place(12, 3);
        assert_eq!(t0, TRIAL_TID_BASE);
        assert_eq!(t1, TRIAL_TID_BASE + 1);
        assert_eq!(t2, TRIAL_TID_BASE + 2);
        assert_eq!(t3, TRIAL_TID_BASE, "lane 0 is free again at t=12");
    }
}

//! Per-static-instruction propagation heatmap.
//!
//! [`PropagationHeatmap`] aggregates the sparse `sid_hits` rows of
//! [`Event::TrialProvenance`] records into per-sid totals: how many
//! dynamic executions touched taint, and in how many trials. The merge
//! is a commutative sum keyed by trial-local data, so the aggregate is
//! invariant to worker thread count and event arrival order — the same
//! property the metric counters have.

use crate::event::{Event, Observer};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Aggregated taint activity of one static instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeatCell {
    /// Dynamic taint-touching executions summed over all trials.
    pub hits: u64,
    /// Trials in which this sid touched taint at least once.
    pub trials: u64,
}

/// An [`Observer`] folding `TrialProvenance` events into a per-sid map.
#[derive(Default)]
pub struct PropagationHeatmap {
    cells: Mutex<BTreeMap<u32, HeatCell>>,
    trials_seen: Mutex<u64>,
}

impl PropagationHeatmap {
    pub fn new() -> PropagationHeatmap {
        PropagationHeatmap::default()
    }

    /// The merged heatmap, sorted by sid.
    pub fn snapshot(&self) -> Vec<(u32, HeatCell)> {
        self.cells
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .map(|(&s, &c)| (s, c))
            .collect()
    }

    /// Provenance trials folded in so far.
    pub fn trials(&self) -> u64 {
        *self.trials_seen.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Renders the `top` hottest sids as an aligned table.
    pub fn render(&self, top: usize) -> String {
        let mut rows = self.snapshot();
        rows.sort_by(|a, b| b.1.hits.cmp(&a.1.hits).then(a.0.cmp(&b.0)));
        rows.truncate(top);
        let mut out = String::new();
        out.push_str(&format!(
            "{:>6}  {:>12}  {:>8}\n",
            "sid", "taint hits", "trials"
        ));
        for (sid, c) in rows {
            out.push_str(&format!("{:>6}  {:>12}  {:>8}\n", sid, c.hits, c.trials));
        }
        out.push_str(&format!("  provenance trials: {}\n", self.trials()));
        out
    }
}

impl Observer for PropagationHeatmap {
    fn on_event(&self, event: &Event) {
        if let Event::TrialProvenance { sid_hits, .. } = event {
            let mut cells = self.cells.lock().unwrap_or_else(|p| p.into_inner());
            for &(sid, h) in sid_hits {
                let c = cells.entry(sid).or_default();
                c.hits += h;
                c.trials += 1;
            }
            *self.trials_seen.lock().unwrap_or_else(|p| p.into_inner()) += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Outcome;

    fn prov(trial: u32, sid_hits: Vec<(u32, u64)>) -> Event {
        Event::TrialProvenance {
            trial,
            outcome: Outcome::Benign,
            site: 0,
            bit: 0,
            sid: 0,
            seeded: true,
            propagated: false,
            sink: None,
            hops: sid_hits.iter().map(|(_, h)| h).sum(),
            seed_dynamic: 1,
            extinction_dynamic: None,
            sid_hits,
        }
    }

    #[test]
    fn merge_is_order_invariant() {
        let a = PropagationHeatmap::new();
        let b = PropagationHeatmap::new();
        let events = [
            prov(0, vec![(1, 5), (3, 2)]),
            prov(1, vec![(1, 1)]),
            prov(2, vec![(3, 4), (7, 1)]),
        ];
        for e in &events {
            a.on_event(e);
        }
        for e in events.iter().rev() {
            b.on_event(e);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.trials(), 3);
        let cells = a.snapshot();
        assert_eq!(cells[0], (1, HeatCell { hits: 6, trials: 2 }));
        assert_eq!(cells[1], (3, HeatCell { hits: 6, trials: 2 }));
        assert_eq!(cells[2], (7, HeatCell { hits: 1, trials: 1 }));
    }

    #[test]
    fn render_lists_hottest_first() {
        let h = PropagationHeatmap::new();
        h.on_event(&prov(0, vec![(2, 1), (9, 100)]));
        let table = h.render(1);
        assert!(table.contains('9'), "{table}");
        assert!(!table.lines().nth(1).unwrap().contains("  2  "), "{table}");
    }
}

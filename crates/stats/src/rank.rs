//! Ranking helpers used by Spearman correlation and the per-instruction
//! SDC-probability rankings of §3.2.3.

/// Assigns fractional (average) ranks to `xs`, the convention used by
/// Spearman's ρ in the presence of ties. Rank 1 is the *smallest* value.
///
/// NaN values are ranked as if they were the largest values (they sort
/// last); callers should filter NaNs when that is not acceptable.
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Less)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        // Group ties: values comparing equal share the average of the
        // positions they occupy.
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            ranks[idx[k]] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Returns indices sorted so that element 0 is the index of the *largest*
/// value — "rank list of instructions" ordering from §3.2.3.
pub fn rank_descending(xs: &[f64]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[b]
            .partial_cmp(&xs[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_ranks() {
        assert_eq!(average_ranks(&[10.0, 30.0, 20.0]), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn tied_ranks_averaged() {
        // 5,5 occupy positions 1 and 2 -> both rank 1.5.
        assert_eq!(average_ranks(&[5.0, 5.0, 9.0]), vec![1.5, 1.5, 3.0]);
    }

    #[test]
    fn all_tied() {
        assert_eq!(average_ranks(&[1.0; 4]), vec![2.5; 4]);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(average_ranks(&[]).is_empty());
        assert_eq!(average_ranks(&[3.3]), vec![1.0]);
    }

    #[test]
    fn descending_order() {
        assert_eq!(rank_descending(&[0.1, 0.9, 0.5]), vec![1, 2, 0]);
    }

    #[test]
    fn descending_ties_stable_by_index() {
        assert_eq!(rank_descending(&[0.5, 0.5, 1.0]), vec![2, 0, 1]);
    }
}

//! Scalar sample summaries (min / max / mean / stddev / percentiles) used
//! when reporting ranges like Figure 1's per-benchmark SDC-probability bars.

use serde::{Deserialize, Serialize};

/// Descriptive statistics of an `f64` sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub n: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub stddev: f64,
    pub median: f64,
}

impl Summary {
    /// Summarizes a sample; returns `None` for an empty sample.
    pub fn of(xs: &[f64]) -> Option<Summary> {
        if xs.is_empty() {
            return None;
        }
        let n = xs.len();
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let median = if n % 2 == 1 {
            sorted[n / 2]
        } else {
            (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
        };
        Some(Summary {
            n,
            min: sorted[0],
            max: sorted[n - 1],
            mean,
            stddev: var.sqrt(),
            median,
        })
    }

    /// Fraction of the sample strictly below `x` — the "percentile of a
    /// randomly sampled input" statistic used in the Figure 6 discussion
    /// (e.g. "above 96th percentile in Hpccg").
    pub fn percentile_of(xs: &[f64], x: f64) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter().filter(|&&v| v < x).count() as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn basic_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.n, 4);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
    }

    #[test]
    fn odd_median() {
        let s = Summary::of(&[5.0, 1.0, 3.0]).unwrap();
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let s = Summary::of(&[7.0; 10]).unwrap();
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    fn percentile() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!((Summary::percentile_of(&xs, 3.5) - 0.6).abs() < 1e-12);
        assert_eq!(Summary::percentile_of(&xs, 0.0), 0.0);
        assert_eq!(Summary::percentile_of(&xs, 100.0), 1.0);
    }
}

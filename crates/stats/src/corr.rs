//! Pearson and Spearman correlation coefficients.
//!
//! Table 2 of the paper reports Spearman's ρ between code coverage and
//! program SDC probability across inputs; Table 3 reports Spearman's ρ
//! between per-instruction SDC-probability rankings obtained under
//! different inputs.

use crate::rank::average_ranks;

/// Pearson's product-moment correlation of two equal-length samples.
///
/// Returns 0.0 when either sample has zero variance (a degenerate case
/// that would otherwise be 0/0); the paper's tables treat constant series
/// as uncorrelated, e.g. Pathfinder's coverage never changes (Table 2
/// entry 0.00).
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson needs equal-length samples");
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = xs[i] - mx;
        let dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    (sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0)
}

/// Spearman's ranking correlation: Pearson's r over average ranks.
/// Handles ties via fractional ranks.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "spearman needs equal-length samples");
    pearson(&average_ranks(xs), &average_ranks(ys))
}

/// Average pairwise Spearman correlation over a set of samples, the
/// aggregation used for Table 3 ("compute Spearman's ranking correlation
/// pairwise between all the rank lists, and take an average").
pub fn mean_pairwise_spearman(samples: &[Vec<f64>]) -> f64 {
    let m = samples.len();
    if m < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for i in 0..m {
        for j in (i + 1)..m {
            total += spearman(&samples[i], &samples[j]);
            count += 1;
        }
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [9.0, 5.0, 1.0];
        assert!((spearman(&xs, &ys) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_nonlinear_is_spearman_one() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| x * x * x).collect();
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &ys) < 1.0);
    }

    #[test]
    fn constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[2.0, 3.0, 4.0]), 0.0);
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[2.0, 3.0, 4.0]), 0.0);
    }

    #[test]
    fn independent_is_near_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let ys = [5.0, 1.0, 8.0, 2.0, 7.0, 3.0, 6.0, 4.0];
        assert!(spearman(&xs, &ys).abs() < 0.4);
    }

    #[test]
    fn pairwise_mean_of_identical_lists() {
        let s = vec![vec![1.0, 2.0, 3.0]; 4];
        assert!((mean_pairwise_spearman(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_mean_single_sample_is_one() {
        assert_eq!(mean_pairwise_spearman(&[vec![1.0, 2.0]]), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mismatched_lengths_panic() {
        pearson(&[1.0], &[1.0, 2.0]);
    }
}

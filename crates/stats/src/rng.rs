//! A small, fast, seedable PRNG (PCG-XSH-RR 64/32 extended to 64-bit output).
//!
//! We deliberately avoid depending on `rand`'s default generators for the
//! experiment-critical paths: the stream must remain stable across `rand`
//! version bumps so that the fault sites, sampled inputs, and GA decisions
//! recorded in EXPERIMENTS.md stay reproducible. The implementation follows
//! O'Neill's PCG paper (two independent 32-bit XSH-RR outputs are
//! concatenated per `next_u64` call).

/// Deterministic permuted-congruential generator.
///
/// Cloning a `Pcg64` forks the stream: both copies continue from the same
/// state, which is occasionally useful for "peeking" without disturbing a
/// campaign's main stream.
#[derive(Debug, Clone)]
pub struct Pcg64 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;

impl Pcg64 {
    /// Creates a generator from a seed. Two different seeds give
    /// independent-looking streams; the same seed always gives the same
    /// stream.
    pub fn new(seed: u64) -> Self {
        let mut rng = Pcg64 {
            state: 0,
            inc: (seed << 1) | 1,
        };
        rng.next_u32();
        rng.state = rng.state.wrapping_add(seed ^ 0x9e3779b97f4a7c15);
        rng.next_u32();
        rng
    }

    /// Derives a child generator; used to give each fault-injection trial
    /// its own stream so trials can run on any thread in any order.
    pub fn fork(&mut self, tag: u64) -> Self {
        let a = self.next_u64();
        Pcg64::new(a ^ tag.wrapping_mul(0xff51afd7ed558ccd))
    }

    fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64 bound must be non-zero");
        loop {
            let x = self.next_u64();
            let (hi, lo) = mul_u64(x, bound);
            if lo >= bound.wrapping_neg() % bound {
                return hi;
            }
            // Rejected: retry with fresh bits (rare).
            if bound.is_power_of_two() {
                return x & (bound - 1);
            }
        }
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn gen_index(&mut self, bound: usize) -> usize {
        self.gen_range_u64(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi, "empty range");
        lo + self.gen_f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Picks one element uniformly; panics on an empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.gen_index(xs.len())]
    }
}

#[inline]
fn mul_u64(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Pcg64::new(42);
        let mut b = Pcg64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Pcg64::new(1);
        let mut b = Pcg64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = Pcg64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(rng.gen_range_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg64::new(9);
        for _ in 0..1000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = Pcg64::new(11);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn index_distribution_roughly_uniform() {
        let mut rng = Pcg64::new(13);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[rng.gen_index(10)] += 1;
        }
        for &c in &counts {
            assert!((4000..6000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn fork_streams_independent() {
        let mut parent = Pcg64::new(5);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg64::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bool_probability() {
        let mut rng = Pcg64::new(19);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }
}

//! Statistics utilities shared across the PEPPA-X workspace.
//!
//! The paper's evaluation leans on a small set of statistical tools:
//! Spearman's ranking correlation (Tables 2 and 3), binomial confidence
//! intervals on fault-injection outcomes (§3.1.4 reports 0.26%–3.10% error
//! bars at 95% confidence), and reproducible random sampling for inputs,
//! fault sites, and genetic-algorithm operators.
//!
//! Everything here is deterministic given an explicit `u64` seed so that
//! every experiment in the repository can be replayed bit-for-bit.

pub mod ci;
pub mod corr;
pub mod rank;
pub mod rng;
pub mod summary;

pub use ci::{binomial_ci, BinomialCi};
pub use corr::{pearson, spearman};
pub use rank::{average_ranks, rank_descending};
pub use rng::Pcg64;
pub use summary::Summary;

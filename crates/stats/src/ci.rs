//! Binomial confidence intervals for fault-injection outcome rates.
//!
//! §3.1.4: "Our FI measurement yields an error bar from 0.26% to 3.10% for
//! the 95% confidence intervals." Each FI trial is a Bernoulli draw
//! (SDC / not-SDC), so the SDC probability estimate carries a binomial CI.

use serde::{Deserialize, Serialize};

/// A two-sided confidence interval on a proportion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinomialCi {
    /// Point estimate `successes / trials`.
    pub p_hat: f64,
    /// Lower bound of the interval (clamped to 0).
    pub lo: f64,
    /// Upper bound of the interval (clamped to 1).
    pub hi: f64,
    /// Half-width `(hi - lo) / 2` — the "error bar" the paper quotes.
    pub half_width: f64,
}

/// Wilson score interval for a binomial proportion at confidence level `z`
/// standard normal quantiles (z = 1.96 for 95%).
///
/// The Wilson interval behaves sensibly at the extremes (0 or all
/// successes), unlike the normal approximation, which matters because many
/// instructions have SDC probability exactly 0 in our campaigns.
pub fn binomial_ci(successes: u64, trials: u64, z: f64) -> BinomialCi {
    if trials == 0 {
        return BinomialCi {
            p_hat: 0.0,
            lo: 0.0,
            hi: 1.0,
            half_width: 0.5,
        };
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    let lo = (center - margin).max(0.0);
    let hi = (center + margin).min(1.0);
    BinomialCi {
        p_hat: p,
        lo,
        hi,
        half_width: (hi - lo) / 2.0,
    }
}

/// The conventional z value for a 95% two-sided interval.
pub const Z_95: f64 = 1.959963984540054;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_trials_is_vacuous() {
        let ci = binomial_ci(0, 0, Z_95);
        assert_eq!((ci.lo, ci.hi), (0.0, 1.0));
    }

    #[test]
    fn interval_contains_p_hat() {
        for (s, n) in [(0u64, 100u64), (5, 100), (50, 100), (100, 100), (1, 3)] {
            let ci = binomial_ci(s, n, Z_95);
            assert!(
                ci.lo <= ci.p_hat + 1e-12 && ci.p_hat <= ci.hi + 1e-12,
                "{ci:?}"
            );
        }
    }

    #[test]
    fn more_trials_narrower_interval() {
        let small = binomial_ci(10, 100, Z_95);
        let large = binomial_ci(100, 1000, Z_95);
        assert!(large.half_width < small.half_width);
    }

    #[test]
    fn paper_scale_error_bar() {
        // 1000 trials at ~30% SDC rate: half-width should land inside the
        // 0.26%..3.10% band the paper reports for its campaigns.
        let ci = binomial_ci(300, 1000, Z_95);
        assert!(
            ci.half_width > 0.0026 && ci.half_width < 0.0310,
            "{}",
            ci.half_width
        );
    }

    #[test]
    fn bounds_clamped() {
        let lo = binomial_ci(0, 50, Z_95);
        let hi = binomial_ci(50, 50, Z_95);
        assert_eq!(lo.lo, 0.0);
        assert_eq!(hi.hi, 1.0);
    }
}

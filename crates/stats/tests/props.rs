//! Property-based tests for the statistics utilities.

use peppa_stats::{binomial_ci, ci::Z_95, pearson, spearman, Pcg64, Summary};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn spearman_bounded_and_symmetric(
        xs in proptest::collection::vec(-1e6f64..1e6, 3..40),
        seed in any::<u64>(),
    ) {
        let mut rng = Pcg64::new(seed);
        let ys: Vec<f64> = xs.iter().map(|_| rng.gen_range_f64(-1e6, 1e6)).collect();
        let r = spearman(&xs, &ys);
        prop_assert!((-1.0..=1.0).contains(&r), "rho {r}");
        prop_assert!((r - spearman(&ys, &xs)).abs() < 1e-9);
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(
        xs in proptest::collection::vec(-100f64..100.0, 3..30),
        ys in proptest::collection::vec(-100f64..100.0, 3..30),
    ) {
        let n = xs.len().min(ys.len());
        let (xs, ys) = (&xs[..n], &ys[..n]);
        let r0 = spearman(xs, ys);
        // exp is strictly increasing: ranks unchanged.
        let ys2: Vec<f64> = ys.iter().map(|y| (y / 50.0).exp()).collect();
        let r1 = spearman(xs, &ys2);
        prop_assert!((r0 - r1).abs() < 1e-9, "{r0} vs {r1}");
    }

    #[test]
    fn spearman_of_self_is_one(xs in proptest::collection::vec(-1e6f64..1e6, 2..40)) {
        // Distinct values almost surely; ties still give 1 against self.
        prop_assert!((spearman(&xs, &xs) - 1.0).abs() < 1e-9 || xs.iter().all(|&x| x == xs[0]));
    }

    #[test]
    fn pearson_scale_invariant(
        xs in proptest::collection::vec(-1e3f64..1e3, 3..30),
        a in 0.1f64..100.0,
        b in -100f64..100.0,
    ) {
        let mut rng = Pcg64::new(42);
        let ys: Vec<f64> = xs.iter().map(|_| rng.gen_range_f64(-1e3, 1e3)).collect();
        let r0 = pearson(&xs, &ys);
        let ys2: Vec<f64> = ys.iter().map(|y| a * y + b).collect();
        prop_assert!((r0 - pearson(&xs, &ys2)).abs() < 1e-6);
    }

    #[test]
    fn ci_contains_estimate_and_shrinks(s in 0u64..100, extra in 1u64..10) {
        let n1 = 100u64;
        let n2 = n1 * extra * 10;
        let ci1 = binomial_ci(s, n1, Z_95);
        let ci2 = binomial_ci(s * extra * 10, n2, Z_95);
        prop_assert!(ci1.lo <= ci1.p_hat + 1e-12 && ci1.p_hat <= ci1.hi + 1e-12);
        prop_assert!(ci2.half_width <= ci1.half_width + 1e-12);
    }

    #[test]
    fn summary_consistent(xs in proptest::collection::vec(-1e9f64..1e9, 1..50)) {
        let s = Summary::of(&xs).unwrap();
        prop_assert!(s.min <= s.mean + 1e-6 && s.mean <= s.max + 1e-6);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.stddev >= 0.0);
    }

    #[test]
    fn rng_range_always_in_bounds(seed in any::<u64>(), lo in -1e9f64..0.0, hi in 1.0f64..1e9) {
        let mut rng = Pcg64::new(seed);
        for _ in 0..100 {
            let x = rng.gen_range_f64(lo, hi);
            prop_assert!(x >= lo && x < hi);
        }
    }
}

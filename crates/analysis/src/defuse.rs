//! Intra-procedural def-use analysis over PIR.

use peppa_ir::{InstrId, Module, Operand, Term, ValueId};
use std::collections::{BTreeSet, HashMap};

/// The def-use graph of a module: an undirected adjacency over static
/// instruction ids, where an edge means "one instruction's result flows
/// into the other's operands" (possibly through block parameters).
///
/// The analysis is intra-procedural, like the per-function dataflow a
/// compiler pass would see: call results are defs (the `call` instruction
/// itself), and callee parameters are roots.
#[derive(Debug, Clone)]
pub struct DefUse {
    /// `adj[sid]` lists the sids connected to `sid` (sorted, deduped).
    pub adj: Vec<Vec<u32>>,
    /// Directed edges `(producer, consumer)` for clients that need flow
    /// direction.
    pub edges: Vec<(InstrId, InstrId)>,
}

impl DefUse {
    /// Neighbours of one instruction.
    pub fn neighbours(&self, sid: InstrId) -> &[u32] {
        &self.adj[sid.0 as usize]
    }
}

/// Builds the def-use graph of `module`.
pub fn def_use(module: &Module) -> DefUse {
    let n = module.num_instrs;
    let mut adj: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
    let mut edges: Vec<(InstrId, InstrId)> = Vec::new();

    for func in &module.functions {
        // Which instruction produces each value?
        let mut producer: HashMap<ValueId, InstrId> = HashMap::new();
        for ins in func.instrs() {
            if let Some(r) = ins.result {
                producer.insert(r, ins.sid);
            }
        }

        // Incoming operands of each block parameter, gathered from every
        // branch edge.
        let mut param_inputs: HashMap<ValueId, Vec<Operand>> = HashMap::new();
        for b in &func.blocks {
            let mut record = |target: peppa_ir::BlockId, args: &[Operand]| {
                let params = &func.blocks[target.0 as usize].params;
                for (&p, &a) in params.iter().zip(args) {
                    param_inputs.entry(p).or_default().push(a);
                }
            };
            match &b.term {
                Term::Br { target, args } => record(*target, args),
                Term::CondBr {
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                    ..
                } => {
                    record(*then_target, then_args);
                    record(*else_target, else_args);
                }
                Term::Ret { .. } => {}
            }
        }

        // sources[v] = set of instructions whose results reach value v
        // through block-parameter wires. Fixpoint so loop-carried chains
        // resolve fully.
        let nv = func.value_types.len();
        let mut sources: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nv];
        for (&v, &sid) in &producer {
            sources[v.0 as usize].insert(sid.0);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (&p, inputs) in &param_inputs {
                // Union the sources of every incoming operand into p.
                let mut acc: BTreeSet<u32> = std::mem::take(&mut sources[p.0 as usize]);
                let before = acc.len();
                for a in inputs {
                    if let Some(v) = a.value() {
                        // Borrow-safe: clone the (small) source set.
                        let add: Vec<u32> = sources[v.0 as usize].iter().copied().collect();
                        acc.extend(add);
                    }
                }
                if acc.len() != before {
                    changed = true;
                }
                sources[p.0 as usize] = acc;
            }
        }

        // Instruction operands -> edges.
        for ins in func.instrs() {
            for op in ins.op.operands() {
                if let Some(v) = op.value() {
                    for &src in &sources[v.0 as usize] {
                        if src != ins.sid.0 {
                            edges.push((InstrId(src), ins.sid));
                            adj[src as usize].insert(ins.sid.0);
                            adj[ins.sid.0 as usize].insert(src);
                        }
                    }
                }
            }
        }
    }

    DefUse {
        adj: adj.into_iter().map(|s| s.into_iter().collect()).collect(),
        edges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "du").unwrap()
    }

    #[test]
    fn straight_line_chain() {
        // a -> b -> c chain: add feeds mul feeds output.
        let m = compile("fn main(x: int) { let a = x + 1; let b = a * 2; output b; }");
        let du = def_use(&m);
        // sid0 = add, sid1 = mul, sid2 = output.
        assert!(du.neighbours(InstrId(0)).contains(&1));
        assert!(du.neighbours(InstrId(1)).contains(&2));
    }

    #[test]
    fn dataflow_crosses_loop_phi() {
        // acc is loop-carried: the add in the body must connect to the
        // output after the loop, through the block parameters.
        let m = compile(
            r#"fn main(n: int) {
                let acc = 0;
                for (i = 0; i < n; i = i + 1) { acc = acc + i; }
                output acc;
            }"#,
        );
        let du = def_use(&m);
        // Find the `output` consumer: it's the last instruction.
        let out_sid = (m.num_instrs - 1) as u32;
        let (_, out_instr) = m.all_instrs()[out_sid as usize];
        assert_eq!(out_instr.op.mnemonic(), "output");
        // The body add (acc + i) must be among its dataflow neighbours.
        let add_sids: Vec<u32> = m
            .all_instrs()
            .iter()
            .filter(|(_, i)| i.op.mnemonic() == "add")
            .map(|(_, i)| i.sid.0)
            .collect();
        let neigh = du.neighbours(InstrId(out_sid));
        assert!(
            add_sids.iter().any(|s| neigh.contains(s)),
            "output not connected to loop-carried add: {neigh:?}"
        );
    }

    #[test]
    fn unrelated_chains_not_connected() {
        let m = compile(
            "fn main(x: int, y: int) { let a = x * 2; let b = y * 3; output a; output b; }",
        );
        let du = def_use(&m);
        // mul(x) is sid0, mul(y) is sid1: no edge between them.
        assert!(!du.neighbours(InstrId(0)).contains(&1));
    }

    #[test]
    fn no_self_edges() {
        let m = compile(
            "fn main(n: int) { let a = 1; for (i = 0; i < n; i = i + 1) { a = a * 2; } output a; }",
        );
        let du = def_use(&m);
        for (sid, ns) in du.adj.iter().enumerate() {
            assert!(!ns.contains(&(sid as u32)), "self edge at {sid}");
        }
    }

    #[test]
    fn edges_are_symmetric() {
        let m = compile(
            r#"fn main(x: float) {
                let a = x * 2.0;
                let b = sqrt(a);
                if (b > 1.0) { output b; } else { output a; }
            }"#,
        );
        let du = def_use(&m);
        for (s, ns) in du.adj.iter().enumerate() {
            for &t in ns {
                assert!(
                    du.adj[t as usize].contains(&(s as u32)),
                    "edge {s}->{t} not symmetric"
                );
            }
        }
    }
}

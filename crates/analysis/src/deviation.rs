//! Golden-trajectory deviation-amplitude analysis.
//!
//! The bit-precision layer in [`crate::reach`] proves cells masked when a
//! flipped bit *cannot reach* an observable at all. That argument is
//! program-only and tops out quickly on numeric kernels: almost every
//! value feeds an output, an address, or a branch through arithmetic that
//! propagates all bits. What those proofs miss is *quantization*: a
//! `floor(x * 1e4 + 0.5)` output, a `fmin` tournament, or a re-found
//! binary-search index absorbs any deviation smaller than the distance to
//! the nearest decision boundary.
//!
//! This module bounds that distance. One instrumented golden run (a
//! [`GoldenObserver`] implementing [`peppa_vm::ExecHook`]) records, per
//! static value, the magnitude envelope of every instance, the minimum
//! decision-preserving margin of every compare, the minimum
//! distance-to-integer of every `floor`/`fptosi`, and the maximum
//! read-fanout of every store. [`DeviationAnalysis`] then propagates a
//! worst-case deviation amplitude from each injectable value through a
//! per-op Lipschitz edge graph and computes `tol[sid]`: the largest
//! initial |Δ| guaranteed to vanish before it can change any observable
//! or any control decision. A cell `(sid, bit, burst)` whose flip
//! magnitude bound is below `tol[sid]` is provably benign.
//!
//! # Soundness argument
//!
//! The FI model injects at one dynamic instance; the run prefix before it
//! is bit-identical to golden, so golden-run facts (margins, magnitudes,
//! read fanouts) hold exactly at injection time. The analysis enforces,
//! along every path the deviation can take:
//!
//! * **control equality** — every compare the deviation reaches keeps a
//!   margin larger than the incoming amplitude (plus global rounding
//!   slack), every branch condition and every address is either
//!   deviation-free or behind such a margin, so the faulty run executes
//!   the exact golden instruction/branch sequence. This closes the loop:
//!   with control and addresses equal, golden per-instance facts describe
//!   the faulty run too (simultaneous induction over the trace).
//! * **magnitude headroom** — multiplier operands, overflow, and domain
//!   constraints (`sqrt`/`log`/divisor-away-from-zero) bound every
//!   Lipschitz constant used by an edge.
//! * **absorption** — `floor`/`fptosi` results are *exactly* unchanged
//!   when the operand deviation is below the recorded boundary margin;
//!   compares decide identically below their margin. Their out-edges
//!   therefore carry zero deviation, which is what ultimately discharges
//!   the `output`/`ret`/address "must be exact" obligations.
//! * **accumulation** — cyclic SCCs of the value graph are classified:
//!   contraction-safe cycles (all internal edge gains ≤ 1, additive nodes
//!   with at most one in-cycle operand) absorb at most
//!   Σ (gain · amplitude · bounded-instance-count) over entry edges;
//!   anything else (e.g. FFT butterflies) is assigned amplitude ∞, i.e.
//!   honestly unprunable.
//! * **rounding** — float re-rounding differences are re-propagated as a
//!   second multi-source pass (one `ulp(2·maxabs)` per executed float op
//!   reachable by the deviation) and charged against every margin.
//!
//! Bitwise/shift/div-rem ops, exponent-field flips, and `i1` results are
//! never deviation-masked (their effect is not amplitude-bounded); the
//! pure reach-based masking in [`crate::reach`] still applies to them
//! independently, and the two cell sets are unioned by callers.

use std::collections::{HashMap, HashSet};

use peppa_ir::{
    BinOp, CastKind, Const, FPred, FuncId, IPred, Instr, Module, Op, Operand, Term, Ty, UnOp,
    ValueId,
};
use peppa_vm::{encode_inputs, ExecHook, ExecLimits, RunOutput, Vm};

use crate::memdep::MemDepGraph;
use crate::reach::effective_flip_mask;

const INF: f64 = f64::INFINITY;

/// Per-value-node magnitude envelope collected from the golden run.
#[derive(Debug, Clone, Copy)]
pub struct NodeStat {
    /// Dynamic writes of this node (instances).
    pub writes: u64,
    /// Signed float range over instances (F64 nodes).
    pub f_min: f64,
    pub f_max: f64,
    /// Signed integer range over instances (I1/I32/I64/Ptr nodes).
    pub i_min: i64,
    pub i_max: i64,
    /// A NaN or infinity was observed — amplitude reasoning is off here.
    pub non_finite: bool,
    /// Max uses of a single def instance (register read fanout).
    pub max_uses: u64,
}

impl Default for NodeStat {
    fn default() -> NodeStat {
        NodeStat {
            writes: 0,
            f_min: INF,
            f_max: -INF,
            i_min: i64::MAX,
            i_max: i64::MIN,
            non_finite: false,
            max_uses: 0,
        }
    }
}

impl NodeStat {
    fn record(&mut self, ty: Ty, bits: u64) {
        self.writes += 1;
        if ty == Ty::F64 {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                self.f_min = self.f_min.min(v);
                self.f_max = self.f_max.max(v);
            } else {
                self.non_finite = true;
            }
        } else {
            let v = bits as i64;
            self.i_min = self.i_min.min(v);
            self.i_max = self.i_max.max(v);
        }
    }

    /// Largest |value| seen (0 when never written).
    pub fn max_abs(&self, ty: Ty) -> f64 {
        if self.writes == 0 {
            return 0.0;
        }
        if ty == Ty::F64 {
            if self.non_finite {
                return INF;
            }
            self.f_min.abs().max(self.f_max.abs())
        } else {
            (self.i_min.unsigned_abs().max(self.i_max.unsigned_abs())) as f64
        }
    }

    /// Smallest |value| seen; 0 when the signed range crosses zero.
    pub fn min_abs(&self, ty: Ty) -> f64 {
        if self.writes == 0 {
            return 0.0;
        }
        if ty == Ty::F64 {
            if self.non_finite || (self.f_min <= 0.0 && self.f_max >= 0.0) {
                return 0.0;
            }
            self.f_min.abs().min(self.f_max.abs())
        } else {
            if self.i_min <= 0 && self.i_max >= 0 {
                return 0.0;
            }
            (self.i_min.unsigned_abs().min(self.i_max.unsigned_abs())) as f64
        }
    }

    /// Smallest signed value seen, as f64 (domain checks for sqrt/log).
    fn signed_min(&self, ty: Ty) -> f64 {
        if self.writes == 0 {
            return 0.0;
        }
        if ty == Ty::F64 {
            if self.non_finite {
                return -INF;
            }
            self.f_min
        } else {
            self.i_min as f64
        }
    }
}

/// Facts about one golden execution, addressed by value node
/// (`(function, ValueId)` flattened) and by static instruction id.
#[derive(Debug, Clone)]
pub struct GoldenStats {
    /// `node_base[f] + vid` flattens `(FuncId, ValueId)` to a node index.
    pub node_base: Vec<u32>,
    pub nodes: Vec<NodeStat>,
    /// Per compare sid: min decision-preserving margin over instances
    /// (operand-domain units; `INF` = never executed).
    pub cmp_margin: Vec<f64>,
    /// Per floor/fptosi sid: min distance from the operand to the nearest
    /// integer boundary over instances.
    pub floor_margin: Vec<f64>,
    /// Per store sid: max reads of a single stored instance.
    pub max_reads_per_store: Vec<u64>,
    /// Golden dynamic read-from pairs `(store_sid, load_sid)`.
    pub read_pairs: HashSet<(u32, u32)>,
}

impl GoldenStats {
    pub fn node(&self, f: FuncId, v: ValueId) -> usize {
        self.node_base[f.0 as usize] as usize + v.0 as usize
    }

    /// Runs the module once on `inputs` with a [`GoldenObserver`]
    /// attached and returns the collected stats with the run output.
    /// `None` when the golden run itself does not complete.
    pub fn collect(
        module: &Module,
        inputs: &[f64],
        limits: ExecLimits,
    ) -> Option<(GoldenStats, RunOutput)> {
        let bits = encode_inputs(module.entry_func(), inputs);
        let mut obs = GoldenObserver::new(module, &bits);
        let out = Vm::new(module, limits).run_with_hook(&bits, None, &mut obs);
        if !out.status.is_ok() {
            return None;
        }
        Some((obs.finish(), out))
    }
}

struct ShadowFrame {
    func: usize,
    vals: Vec<u64>,
    uses: Vec<u64>,
}

/// An [`ExecHook`] that mirrors the interpreter's register file to record
/// the golden-run facts a [`DeviationAnalysis`] needs.
pub struct GoldenObserver<'m> {
    module: &'m Module,
    node_base: Vec<u32>,
    nodes: Vec<NodeStat>,
    cmp_margin: Vec<f64>,
    floor_margin: Vec<f64>,
    max_reads_per_store: Vec<u64>,
    read_pairs: HashSet<(u32, u32)>,
    frames: Vec<ShadowFrame>,
    /// word address -> (store sid, reads of the current stored instance)
    mem: HashMap<u64, (u32, u64)>,
}

fn const_bits(c: &Const) -> u64 {
    match c.ty {
        Ty::I32 => c.as_i64() as u64,
        Ty::I1 => c.bits & 1,
        _ => c.bits,
    }
}

impl<'m> GoldenObserver<'m> {
    pub fn new(module: &'m Module, entry_bits: &[u64]) -> GoldenObserver<'m> {
        let mut node_base = Vec::with_capacity(module.functions.len());
        let mut total = 0u32;
        for f in &module.functions {
            node_base.push(total);
            total += f.value_types.len() as u32;
        }
        let n = module.num_instrs;
        let mut obs = GoldenObserver {
            module,
            node_base,
            nodes: vec![NodeStat::default(); total as usize],
            cmp_margin: vec![INF; n],
            floor_margin: vec![INF; n],
            max_reads_per_store: vec![0; n],
            read_pairs: HashSet::new(),
            frames: Vec::new(),
            mem: HashMap::new(),
        };
        obs.push_shadow(module.entry.0 as usize, entry_bits);
        obs
    }

    fn push_shadow(&mut self, fi: usize, params: &[u64]) {
        let func = &self.module.functions[fi];
        let mut vals = vec![0u64; func.value_types.len()];
        let base = self.node_base[fi] as usize;
        for (i, &b) in params.iter().enumerate() {
            vals[i] = b;
            self.nodes[base + i].record(func.value_types[i], b);
        }
        self.frames.push(ShadowFrame {
            func: fi,
            vals,
            uses: vec![0; func.value_types.len()],
        });
    }

    fn fold_uses(nodes: &mut [NodeStat], base: usize, uses: &mut [u64], vid: usize) {
        let u = std::mem::take(&mut uses[vid]);
        let st = &mut nodes[base + vid];
        st.max_uses = st.max_uses.max(u);
    }

    fn val(&self, o: &Operand) -> u64 {
        match o {
            Operand::Const(c) => const_bits(c),
            Operand::Value(v) => self.frames.last().expect("shadow frame").vals[v.0 as usize],
        }
    }

    fn fval(&self, o: &Operand) -> f64 {
        f64::from_bits(self.val(o))
    }

    fn ival(&self, o: &Operand) -> i64 {
        self.val(o) as i64
    }

    fn use_operand(&mut self, o: &Operand) {
        if let Operand::Value(v) = o {
            let fr = self.frames.last_mut().expect("shadow frame");
            fr.uses[v.0 as usize] += 1;
        }
    }

    /// Consumes the observer; folds pending per-frame and per-address
    /// state into the collected maxima.
    pub fn finish(mut self) -> GoldenStats {
        while let Some(mut fr) = self.frames.pop() {
            let base = self.node_base[fr.func] as usize;
            for vid in 0..fr.uses.len() {
                Self::fold_uses(&mut self.nodes, base, &mut fr.uses, vid);
            }
        }
        GoldenStats {
            node_base: self.node_base,
            nodes: self.nodes,
            cmp_margin: self.cmp_margin,
            floor_margin: self.floor_margin,
            max_reads_per_store: self.max_reads_per_store,
            read_pairs: self.read_pairs,
        }
    }
}

/// Min |Δ(a-b)| (real-valued, strict) that could change `pred`'s outcome.
fn int_margin(pred: IPred, a: i64, b: i64) -> f64 {
    let d = a as i128 - b as i128;
    let du = (a as u64) as i128 - (b as u64) as i128;
    let m: i128 = match pred {
        IPred::Eq | IPred::Ne => {
            if d == 0 {
                1
            } else {
                d.abs()
            }
        }
        IPred::Slt => {
            if d < 0 {
                -d
            } else {
                d + 1
            }
        }
        IPred::Sle => {
            if d <= 0 {
                1 - d
            } else {
                d
            }
        }
        IPred::Sgt => {
            if d > 0 {
                d
            } else {
                1 - d
            }
        }
        IPred::Sge => {
            if d >= 0 {
                d + 1
            } else {
                -d
            }
        }
        IPred::Ult => {
            if du < 0 {
                -du
            } else {
                du + 1
            }
        }
    };
    m as f64
}

/// Min |Δ(a-b)| that could change `pred`'s outcome (0 on NaN operands —
/// non-finite compares are outside the amplitude model).
fn float_margin(pred: FPred, a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        return 0.0;
    }
    let d = a - b;
    if d.is_nan() {
        return 0.0;
    }
    match pred {
        FPred::Oeq | FPred::One => {
            if d == 0.0 {
                0.0
            } else {
                d.abs()
            }
        }
        // All four order predicates flip exactly when a-b crosses 0;
        // on the boundary-inclusive side the margin collapses to |d|.
        FPred::Olt | FPred::Ole | FPred::Ogt | FPred::Oge => d.abs(),
    }
}

/// Min distance from `x` to an integer boundary (floor/trunc results are
/// unchanged under any smaller perturbation).
fn boundary_margin(x: f64) -> f64 {
    if !x.is_finite() {
        return 0.0;
    }
    (x - x.floor()).min(x.ceil() - x)
}

impl ExecHook for GoldenObserver<'_> {
    const ENABLED: bool = true;

    fn begin_instr(&mut self, ins: &Instr) -> bool {
        let sid = ins.sid.0 as usize;
        match &ins.op {
            Op::Icmp { pred, a, b } => {
                let m = int_margin(*pred, self.ival(a), self.ival(b));
                self.cmp_margin[sid] = self.cmp_margin[sid].min(m);
            }
            Op::Fcmp { pred, a, b } => {
                let m = float_margin(*pred, self.fval(a), self.fval(b));
                self.cmp_margin[sid] = self.cmp_margin[sid].min(m);
            }
            Op::Un { op: UnOp::Floor, a } => {
                let m = boundary_margin(self.fval(a));
                self.floor_margin[sid] = self.floor_margin[sid].min(m);
            }
            Op::Cast {
                kind: CastKind::FpToSi,
                a,
                ..
            } => {
                let m = boundary_margin(self.fval(a));
                self.floor_margin[sid] = self.floor_margin[sid].min(m);
            }
            _ => {}
        }
        for o in ins.op.operands() {
            self.use_operand(&o);
        }
        false
    }

    fn def_value(&mut self, ins: &Instr, bits: u64) {
        let r = ins.result.expect("def_value on void instr");
        let fr = self.frames.last_mut().expect("shadow frame");
        let fi = fr.func;
        let vid = r.0 as usize;
        let base = self.node_base[fi] as usize;
        Self::fold_uses(&mut self.nodes, base, &mut fr.uses, vid);
        fr.vals[vid] = bits;
        let ty = self.module.functions[fi].value_types[vid];
        self.nodes[base + vid].record(ty, bits);
    }

    fn mem_store(&mut self, ins: &Instr, addr: u64, _bits: u64) {
        self.mem.insert(addr, (ins.sid.0, 0));
    }

    fn mem_load(&mut self, ins: &Instr, addr: u64, _bits: u64) {
        if let Some((writer, reads)) = self.mem.get_mut(&addr) {
            *reads += 1;
            let w = *writer as usize;
            let r = *reads;
            self.max_reads_per_store[w] = self.max_reads_per_store[w].max(r);
            self.read_pairs.insert((*writer, ins.sid.0));
        }
    }

    fn mem_clear(&mut self, base: u64, words: u64) {
        if words <= 4096 {
            for a in base..base + words {
                self.mem.remove(&a);
            }
        } else {
            self.mem.retain(|&a, _| a < base || a >= base + words);
        }
    }

    fn branch_transfer(&mut self, cond: Option<&Operand>, params: &[ValueId], args: &[Operand]) {
        if let Some(c) = cond {
            self.use_operand(c);
        }
        let mut vals = Vec::with_capacity(args.len());
        for a in args {
            self.use_operand(a);
            vals.push(self.val(a));
        }
        let fr = self.frames.last_mut().expect("shadow frame");
        let fi = fr.func;
        let base = self.node_base[fi] as usize;
        for (&p, &v) in params.iter().zip(&vals) {
            let vid = p.0 as usize;
            Self::fold_uses(&mut self.nodes, base, &mut fr.uses, vid);
            fr.vals[vid] = v;
            let ty = self.module.functions[fi].value_types[vid];
            self.nodes[base + vid].record(ty, v);
        }
    }

    fn call_enter(&mut self, ins: &Instr, callee: FuncId) {
        let args = match &ins.op {
            Op::Call { args, .. } => args,
            _ => unreachable!("call_enter on non-call"),
        };
        let vals: Vec<u64> = args.iter().map(|a| self.val(a)).collect();
        self.push_shadow(callee.0 as usize, &vals);
    }

    fn func_ret(&mut self, value: Option<&Operand>) {
        if let Some(v) = value {
            self.use_operand(v);
        }
        if self.frames.len() > 1 {
            let mut fr = self.frames.pop().expect("shadow frame");
            let base = self.node_base[fr.func] as usize;
            for vid in 0..fr.uses.len() {
                Self::fold_uses(&mut self.nodes, base, &mut fr.uses, vid);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deviation graph + per-source tolerance computation
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct Edge {
    from: u32,
    to: u32,
    /// Lipschitz gain: out-amplitude per unit in-amplitude.
    w: f64,
    /// Instance-count multiplier (register/memory read fanout).
    mult: f64,
}

#[derive(Debug, Clone, Copy)]
struct Constraint {
    node: u32,
    /// Strict bound: amplitude at `node` (plus rounding slack) must stay
    /// below this. 0 ⇔ the node must be deviation-free.
    bound: f64,
    /// Debug label for `DeviationAnalysis::explain`.
    tag: &'static str,
}

struct Graph {
    nverts: usize,
    in_edges: Vec<Vec<Edge>>,
    constraints: Vec<Constraint>,
    /// Instance count (writes) per node, as f64.
    writes: Vec<f64>,
    /// Topologically ordered SCCs (predecessors first).
    comps: Vec<Vec<u32>>,
    comp_of: Vec<u32>,
    comp_cyclic: Vec<bool>,
    comp_unsafe: Vec<bool>,
    comp_additive: Vec<bool>,
    /// Rounding-slack sources: (node, per-execution ulp bound).
    slack_sources: Vec<(u32, f64)>,
}

/// The computed per-sid deviation tolerances plus the cell predicate.
pub struct DeviationAnalysis {
    /// `tol[sid]`: the faulty value may deviate by strictly less than
    /// this without any observable or control-flow difference.
    pub tol: Vec<f64>,
    /// Magnitude envelope of each sid's golden values.
    pub sid_max_abs: Vec<f64>,
    sid_ty: Vec<Option<Ty>>,
    sid_width: Vec<u8>,
    sid_non_finite: Vec<bool>,
    sid_node: Vec<u32>,
    graph: Graph,
}

/// Conservative shave applied to every tolerance and inflation applied to
/// every flip magnitude, covering rounding in the analysis's own f64
/// bookkeeping.
const SAFETY: f64 = 1e-6;

fn is_rel_ipred(p: IPred) -> bool {
    matches!(
        p,
        IPred::Slt | IPred::Sle | IPred::Sgt | IPred::Sge | IPred::Ult
    )
}

fn is_rel_fpred(p: FPred) -> bool {
    matches!(p, FPred::Olt | FPred::Ole | FPred::Ogt | FPred::Oge)
}

/// ulp of magnitude `m` (distance between adjacent floats at that scale).
fn ulp_of(m: f64) -> f64 {
    if !m.is_finite() || m <= 0.0 {
        return f64::MIN_POSITIVE;
    }
    let e = ((m.to_bits() >> 52) & 0x7FF) as i32 - 1023;
    let e = e.max(-1022);
    ((e - 52) as f64).exp2()
}

impl DeviationAnalysis {
    /// Builds the deviation graph from `module` + golden `stats` and
    /// computes per-sid tolerances. `exec` is the golden per-sid
    /// execution count; `memdep` supplies the static store→load may-edges
    /// that golden `read_pairs` are checked against.
    pub fn analyze(
        module: &Module,
        stats: &GoldenStats,
        memdep: &MemDepGraph,
        exec: &[u64],
    ) -> DeviationAnalysis {
        let b = GraphBuilder::new(module, stats, memdep, exec);
        b.solve()
    }

    /// Convenience entry point: golden instrumented run + analysis.
    /// `None` when the golden run fails.
    pub fn from_run(
        module: &Module,
        inputs: &[f64],
        limits: ExecLimits,
    ) -> Option<(DeviationAnalysis, RunOutput)> {
        let (stats, out) = GoldenStats::collect(module, inputs, limits)?;
        let memdep = MemDepGraph::new(module);
        let dev = DeviationAnalysis::analyze(module, &stats, &memdep, &out.profile.exec_counts);
        Some((dev, out))
    }

    /// Upper bound on |value change| from flipping `flip_mask`'s low
    /// `width` bits of a `ty`-typed value bounded by `max_abs`.
    /// `INF` when the flip is not amplitude-bounded (exponent field,
    /// i1, non-finite envelope).
    fn flip_delta(ty: Ty, width: u8, max_abs: f64, non_finite: bool, flip_mask: u64) -> f64 {
        if width == 0 || ty == Ty::I1 || non_finite {
            return INF;
        }
        let live = if width >= 64 {
            flip_mask
        } else {
            flip_mask & ((1u64 << width) - 1)
        };
        let mut delta = 0.0f64;
        for b in 0..width as u32 {
            if live & (1u64 << b) == 0 {
                continue;
            }
            delta += match ty {
                Ty::F64 => {
                    if b <= 51 {
                        let e = if max_abs > 0.0 {
                            (((max_abs.to_bits() >> 52) & 0x7FF) as i32 - 1023).max(-1022)
                        } else {
                            -1022
                        };
                        ((e - 52 + b as i32) as f64).exp2()
                    } else if b == 63 {
                        2.0 * max_abs
                    } else if b == 52 && max_abs < 500f64.exp2() {
                        // One exponent step can at most double/halve; the
                        // magnitude guard keeps it far from Inf/NaN.
                        max_abs
                    } else {
                        INF
                    }
                }
                // Sign bit of a w-bit integer swings the canonical value
                // by exactly 2^(w-1) (mod 2^w); lower bits by 2^b.
                _ => ((b.min(width as u32 - 1)) as f64).exp2(),
            };
        }
        delta
    }

    /// Cells additionally masked by deviation tolerance: bit `b` set in
    /// `result[sid]` ⇔ a burst flip starting at bit `b` of `sid`'s value
    /// is provably benign at every dynamic instance.
    pub fn extra_cells(&self, burst: u8) -> Vec<u64> {
        let n = self.tol.len();
        let mut cells = vec![0u64; n];
        for (sid, cell) in cells.iter_mut().enumerate().take(n) {
            let tol = self.tol[sid];
            if tol <= 0.0 {
                continue;
            }
            let (ty, width) = match self.sid_ty[sid] {
                Some(t) => (t, self.sid_width[sid]),
                None => continue,
            };
            let mut mask = 0u64;
            for bit in 0..64u32 {
                let flip = effective_flip_mask(width, bit, burst);
                let delta = Self::flip_delta(
                    ty,
                    width,
                    self.sid_max_abs[sid],
                    self.sid_non_finite[sid],
                    flip,
                );
                if delta * (1.0 + SAFETY) < tol {
                    mask |= 1u64 << bit;
                }
            }
            *cell = mask;
        }
        cells
    }

    /// The full masked-cell table for one input: the union of the
    /// input-independent reachability cells (`fr.skip_cells`) and this
    /// input's deviation-tolerance cells. Sound as a union of cell
    /// *sets*: each cell is benign by one argument or the other (mixing
    /// the two per-cell would not be).
    pub fn union_cells(&self, fr: &crate::reach::FaultReach, burst: u8) -> Vec<u64> {
        let reach = fr.skip_cells(burst);
        let dev = self.extra_cells(burst);
        reach.iter().zip(&dev).map(|(&a, &b)| a | b).collect()
    }

    /// Debug aid: the tightest constraints limiting `sid`'s tolerance,
    /// as `(tag, node, amplitude, bound, implied tol)` sorted tightest
    /// first. Empty when the sid has no value or never executed.
    pub fn explain(&self, sid: usize) -> Vec<(&'static str, u32, f64, f64, f64)> {
        let node = match self.sid_node.get(sid) {
            Some(&n) if n != u32::MAX => n,
            _ => return Vec::new(),
        };
        let a = propagate(&self.graph, &[(node, 1.0)]);
        let mut rows: Vec<(&'static str, u32, f64, f64, f64)> = self
            .graph
            .constraints
            .iter()
            .filter(|c| a[c.node as usize] > 0.0)
            .map(|c| {
                let t = if c.bound <= 0.0 {
                    0.0
                } else {
                    c.bound / a[c.node as usize]
                };
                (c.tag, c.node, a[c.node as usize], c.bound, t)
            })
            .collect();
        rows.sort_by(|x, y| x.4.total_cmp(&y.4));
        rows.truncate(12);
        rows
    }
}

/// Campaign-facing entry point: the reach ∪ deviation masked-cell table
/// for one concrete input, falling back to the input-independent reach
/// table when the golden instrumented run fails.
pub fn combined_skip_cells(
    module: &Module,
    fr: &crate::reach::FaultReach,
    inputs: &[f64],
    limits: ExecLimits,
    burst: u8,
) -> Vec<u64> {
    match DeviationAnalysis::from_run(module, inputs, limits) {
        Some((dev, _)) => dev.union_cells(fr, burst),
        None => fr.skip_cells(burst),
    }
}

struct GraphBuilder<'a> {
    module: &'a Module,
    stats: &'a GoldenStats,
    exec: &'a [u64],
    /// node index of each sid's result value (u32::MAX for void).
    sid_node: Vec<u32>,
    /// defining cmp/floor sid of each node, if any (absorbers).
    absorber: Vec<bool>,
    /// cmp sids that need a margin constraint (any non-idiom use).
    cmp_nonidiom: Vec<bool>,
    /// cmp sids seen at all.
    cmp_sids: Vec<u32>,
    edges: Vec<Edge>,
    constraints: Vec<Constraint>,
}

impl<'a> GraphBuilder<'a> {
    fn new(
        module: &'a Module,
        stats: &'a GoldenStats,
        memdep: &'a MemDepGraph,
        exec: &'a [u64],
    ) -> GraphBuilder<'a> {
        let mut b = GraphBuilder {
            module,
            stats,
            exec,
            sid_node: vec![u32::MAX; module.num_instrs],
            absorber: vec![false; stats.nodes.len()],
            cmp_nonidiom: vec![false; module.num_instrs],
            cmp_sids: Vec::new(),
            edges: Vec::new(),
            constraints: Vec::new(),
        };
        b.prepass();
        b.build(memdep);
        b
    }

    fn node_of(&self, fi: usize, v: ValueId) -> u32 {
        self.stats.node_base[fi] + v.0
    }

    fn ty_of_node(&self, n: u32) -> Ty {
        // node_base is ascending; find the owning function.
        let fi = match self.stats.node_base.binary_search(&n) {
            Ok(mut i) => {
                // Empty functions share a base; take the last one.
                while i + 1 < self.stats.node_base.len() && self.stats.node_base[i + 1] == n {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        let f = &self.module.functions[fi];
        f.value_types[(n - self.stats.node_base[fi]) as usize]
    }

    fn live(&self, n: u32) -> bool {
        self.stats.nodes[n as usize].writes > 0
    }

    fn max_abs(&self, n: u32) -> f64 {
        self.stats.nodes[n as usize].max_abs(self.ty_of_node(n))
    }

    /// |operand| bound from golden (consts exact).
    fn mag(&self, fi: usize, o: &Operand) -> f64 {
        match o {
            Operand::Const(c) => match c.ty {
                Ty::F64 => c.as_f64().abs(),
                _ => c.as_i64().unsigned_abs() as f64,
            },
            Operand::Value(v) => self.max_abs(self.node_of(fi, *v)),
        }
    }

    /// Marks absorber nodes and classifies compare uses (idiom vs not).
    fn prepass(&mut self) {
        // Defining op per node, for idiom detection.
        let mut def_cmp: HashMap<u32, u32> = HashMap::new(); // node -> cmp sid
        for (fi, f) in self.module.functions.iter().enumerate() {
            for ins in f.instrs() {
                let sid = ins.sid.0 as usize;
                if let Some(r) = ins.result {
                    let n = self.node_of(fi, r);
                    self.sid_node[sid] = n;
                    match &ins.op {
                        Op::Icmp { .. } | Op::Fcmp { .. } => {
                            self.absorber[n as usize] = true;
                            def_cmp.insert(n, sid as u32);
                            self.cmp_sids.push(sid as u32);
                        }
                        Op::Un {
                            op: UnOp::Floor, ..
                        }
                        | Op::Cast {
                            kind: CastKind::FpToSi,
                            ..
                        } => {
                            self.absorber[n as usize] = true;
                        }
                        _ => {}
                    }
                }
            }
        }
        // Use scan: any reference to a cmp value that is not the cond of
        // a min/max-idiom select forces the margin constraint.
        for (fi, f) in self.module.functions.iter().enumerate() {
            let mark = |b: &mut GraphBuilder, o: &Operand| {
                if let Operand::Value(v) = o {
                    if let Some(&csid) = def_cmp.get(&(b.stats.node_base[fi] + v.0)) {
                        b.cmp_nonidiom[csid as usize] = true;
                    }
                }
            };
            for blk in &f.blocks {
                for ins in &blk.instrs {
                    if let Op::Select { cond, t, f: fo } = &ins.op {
                        if self.is_minmax_idiom(fi, cond, t, fo) {
                            // cond exempt; arms are plain operands of a
                            // non-cmp instr (no cmp arms possible here).
                            mark(self, t);
                            mark(self, fo);
                            continue;
                        }
                    }
                    for o in ins.op.operands() {
                        mark(self, &o);
                    }
                }
                for o in blk.term.operands() {
                    mark(self, &o);
                }
                if let Term::CondBr { cond, .. } = &blk.term {
                    mark(self, cond);
                }
            }
        }
    }

    /// `select(cmp(a,b), t, f)` where `{t,f} == {a,b}` and the predicate
    /// is a plain order relation: a min/max tournament. Even a flipped
    /// decision returns one of the two (deviated) operands, so the result
    /// amplitude is bounded by the operand amplitudes plus the operand
    /// gap the compare tolerated — non-expansive, no margin needed.
    fn is_minmax_idiom(&self, fi: usize, cond: &Operand, t: &Operand, f: &Operand) -> bool {
        let cv = match cond {
            Operand::Value(v) => *v,
            _ => return false,
        };
        let func = &self.module.functions[fi];
        for ins in func.instrs() {
            if ins.result != Some(cv) {
                continue;
            }
            return match &ins.op {
                Op::Fcmp { pred, a, b } if is_rel_fpred(*pred) => {
                    (a == t && b == f) || (a == f && b == t)
                }
                Op::Icmp { pred, a, b } if is_rel_ipred(*pred) => {
                    (a == t && b == f) || (a == f && b == t)
                }
                _ => false,
            };
        }
        false
    }

    fn edge(&mut self, fi: usize, from: &Operand, to: u32, w: f64) {
        let fv = match from {
            Operand::Value(v) => self.node_of(fi, *v),
            Operand::Const(_) => return,
        };
        if self.absorber[fv as usize] {
            return; // absorber out-amplitude is 0 (margin-constrained)
        }
        if !self.live(fv) || !self.live(to) {
            return;
        }
        let mult = self.stats.nodes[fv as usize].max_uses as f64;
        self.edges.push(Edge {
            from: fv,
            to,
            w,
            mult,
        });
    }

    /// The operand must stay deviation-free (address, bitwise input,
    /// observable). Absorber-defined operands are exempt: their margin
    /// constraint already guarantees an exact result.
    fn kill(&mut self, fi: usize, o: &Operand) {
        if let Operand::Value(v) = o {
            let n = self.node_of(fi, *v);
            if !self.absorber[n as usize] && self.live(n) {
                self.constraints.push(Constraint {
                    node: n,
                    bound: 0.0,
                    tag: "kill",
                });
            }
        }
    }

    /// Headroom constraint used by multiplier edges: deviation at the
    /// *other* operand must stay within its own golden magnitude.
    fn headroom(&mut self, fi: usize, o: &Operand) -> f64 {
        match o {
            Operand::Const(_) => 0.0,
            Operand::Value(v) => {
                let n = self.node_of(fi, *v);
                if self.absorber[n as usize] || !self.live(n) {
                    return 0.0;
                }
                let hb = self.max_abs(n).max(f64::MIN_POSITIVE);
                self.constraints.push(Constraint {
                    node: n,
                    bound: hb,
                    tag: "headroom",
                });
                hb
            }
        }
    }

    fn build(&mut self, memdep: &MemDepGraph) {
        let module = self.module;
        // Stores: value operand node per store sid, for memory edges.
        let mut store_val: HashMap<u32, (usize, Operand)> = HashMap::new();
        for (fi, f) in module.functions.iter().enumerate() {
            for ins in f.instrs() {
                if let Op::Store { value, .. } = &ins.op {
                    store_val.insert(ins.sid.0, (fi, *value));
                }
            }
        }
        // Return-value operands per function, for call-result edges.
        let mut rets: Vec<Vec<(usize, Operand)>> = vec![Vec::new(); module.functions.len()];
        for (fi, f) in module.functions.iter().enumerate() {
            for blk in &f.blocks {
                if let Term::Ret { value: Some(v) } = &blk.term {
                    rets[fi].push((fi, *v));
                }
            }
        }

        for (fi, f) in module.functions.iter().enumerate() {
            for blk in &f.blocks {
                for ins in &blk.instrs {
                    let sid = ins.sid.0 as usize;
                    if self.exec[sid] == 0 {
                        continue;
                    }
                    let r = ins.result.map(|v| self.node_of(fi, v));
                    match &ins.op {
                        Op::Bin { op, a, b } => {
                            let to = r.expect("bin result");
                            match op {
                                BinOp::FAdd | BinOp::FSub | BinOp::Add | BinOp::Sub => {
                                    self.edge(fi, a, to, 1.0);
                                    self.edge(fi, b, to, 1.0);
                                }
                                BinOp::FMul | BinOp::Mul => {
                                    // x'y' - xy = y'(x'-x) + x(y'-y):
                                    // |y'| <= |y| + headroom(y).
                                    let wb = self.mag(fi, b) + self.headroom(fi, b);
                                    let wa = self.mag(fi, a) + self.headroom(fi, a);
                                    self.edge(fi, a, to, wb);
                                    self.edge(fi, b, to, wa);
                                }
                                BinOp::FDiv => {
                                    let dmin = match b {
                                        Operand::Const(c) => c.as_f64().abs(),
                                        Operand::Value(v) => {
                                            let n = self.node_of(fi, *v);
                                            self.stats.nodes[n as usize].min_abs(Ty::F64)
                                        }
                                    };
                                    if dmin <= 0.0 {
                                        self.kill(fi, a);
                                        self.kill(fi, b);
                                    } else {
                                        if let Operand::Value(v) = b {
                                            let n = self.node_of(fi, *v);
                                            if !self.absorber[n as usize] && self.live(n) {
                                                self.constraints.push(Constraint {
                                                    node: n,
                                                    bound: dmin / 2.0,
                                                    tag: "div-domain",
                                                });
                                            }
                                        }
                                        let num = self.mag(fi, a);
                                        self.edge(fi, a, to, 2.0 / dmin);
                                        self.edge(fi, b, to, 2.0 * num / (dmin * dmin));
                                    }
                                }
                                BinOp::SDiv | BinOp::SRem => {
                                    self.kill(fi, a);
                                    self.kill(fi, b);
                                }
                                BinOp::And
                                | BinOp::Or
                                | BinOp::Xor
                                | BinOp::Shl
                                | BinOp::LShr
                                | BinOp::AShr => {
                                    self.kill(fi, a);
                                    self.kill(fi, b);
                                }
                            }
                        }
                        Op::Un { op, a } => {
                            let to = r.expect("un result");
                            match op {
                                UnOp::FNeg | UnOp::FAbs | UnOp::Sin | UnOp::Cos | UnOp::Not => {
                                    self.edge(fi, a, to, 1.0);
                                }
                                UnOp::Sqrt => {
                                    let dmin = match a {
                                        Operand::Const(c) => c.as_f64(),
                                        Operand::Value(v) => {
                                            let n = self.node_of(fi, *v);
                                            self.stats.nodes[n as usize].signed_min(Ty::F64)
                                        }
                                    };
                                    if dmin <= 0.0 {
                                        self.kill(fi, a);
                                    } else {
                                        if let Operand::Value(v) = a {
                                            let n = self.node_of(fi, *v);
                                            if !self.absorber[n as usize] && self.live(n) {
                                                self.constraints.push(Constraint {
                                                    node: n,
                                                    bound: dmin / 2.0,
                                                    tag: "sqrt-domain",
                                                });
                                            }
                                        }
                                        self.edge(fi, a, to, 0.5 / (dmin / 2.0).sqrt());
                                    }
                                }
                                UnOp::Exp => {
                                    let dmax = self.mag(fi, a).min(700.0);
                                    if let Operand::Value(v) = a {
                                        let n = self.node_of(fi, *v);
                                        if !self.absorber[n as usize] && self.live(n) {
                                            self.constraints.push(Constraint {
                                                node: n,
                                                bound: 1.0,
                                                tag: "exp-domain",
                                            });
                                        }
                                    }
                                    self.edge(fi, a, to, (dmax + 1.0).exp());
                                }
                                UnOp::Log => {
                                    let dmin = match a {
                                        Operand::Const(c) => c.as_f64(),
                                        Operand::Value(v) => {
                                            let n = self.node_of(fi, *v);
                                            self.stats.nodes[n as usize].signed_min(Ty::F64)
                                        }
                                    };
                                    if dmin <= 0.0 {
                                        self.kill(fi, a);
                                    } else {
                                        if let Operand::Value(v) = a {
                                            let n = self.node_of(fi, *v);
                                            if !self.absorber[n as usize] && self.live(n) {
                                                self.constraints.push(Constraint {
                                                    node: n,
                                                    bound: dmin / 2.0,
                                                    tag: "log-domain",
                                                });
                                            }
                                        }
                                        self.edge(fi, a, to, 2.0 / dmin);
                                    }
                                }
                                UnOp::Floor => {
                                    // Absorber: in-amplitude feeds the
                                    // margin constraint; out-edges are 0.
                                    let to = r.expect("floor result");
                                    self.edge(fi, a, to, 1.0);
                                    self.constraints.push(Constraint {
                                        node: to,
                                        bound: self.stats.floor_margin[sid],
                                        tag: "floor-margin",
                                    });
                                }
                            }
                        }
                        Op::Icmp { a, b, .. } | Op::Fcmp { a, b, .. } => {
                            let to = r.expect("cmp result");
                            self.edge(fi, a, to, 1.0);
                            self.edge(fi, b, to, 1.0);
                            if self.cmp_nonidiom[sid] {
                                self.constraints.push(Constraint {
                                    node: to,
                                    bound: self.stats.cmp_margin[sid],
                                    tag: "cmp-margin",
                                });
                            }
                        }
                        Op::Select { cond, t, f: fo } => {
                            let to = r.expect("select result");
                            self.edge(fi, t, to, 1.0);
                            self.edge(fi, fo, to, 1.0);
                            if !self.is_minmax_idiom(fi, cond, t, fo) {
                                // A flipped decision is only tolerable in
                                // the min/max idiom; otherwise the cond
                                // must stay exact (cmp margins qualify).
                                self.kill(fi, cond);
                            }
                        }
                        Op::Cast { kind, a, .. } => {
                            let to = r.expect("cast result");
                            match kind {
                                CastKind::ZExt | CastKind::SExt | CastKind::SiToFp => {
                                    self.edge(fi, a, to, 1.0);
                                }
                                CastKind::FpToSi => {
                                    self.edge(fi, a, to, 1.0);
                                    self.constraints.push(Constraint {
                                        node: to,
                                        bound: self.stats.floor_margin[sid],
                                        tag: "floor-margin",
                                    });
                                }
                                CastKind::Trunc
                                | CastKind::Bitcast
                                | CastKind::PtrToInt
                                | CastKind::IntToPtr => {
                                    self.kill(fi, a);
                                }
                            }
                        }
                        Op::Load { addr, .. } => {
                            let to = r.expect("load result");
                            self.kill(fi, addr);
                            let li = memdep
                                .loads
                                .iter()
                                .position(|m| m.sid == ins.sid)
                                .expect("load in memdep");
                            for &si in &memdep.load_stores[li] {
                                let ssid = memdep.stores[si as usize].sid;
                                // Control and addresses are pinned to the
                                // golden trace, so only golden-observed
                                // read-from pairs can carry deviation.
                                if !self.stats.read_pairs.contains(&(ssid.0, ins.sid.0)) {
                                    continue;
                                }
                                let (sfi, sval) = store_val[&ssid.0];
                                let reads = self.stats.max_reads_per_store[ssid.0 as usize];
                                if let Operand::Value(v) = sval {
                                    let fv = self.stats.node_base[sfi] + v.0;
                                    if self.absorber[fv as usize]
                                        || !self.live(fv)
                                        || !self.live(to)
                                    {
                                        continue;
                                    }
                                    let mult = self.stats.nodes[fv as usize].max_uses as f64
                                        * reads as f64;
                                    self.edges.push(Edge {
                                        from: fv,
                                        to,
                                        w: 1.0,
                                        mult,
                                    });
                                }
                            }
                        }
                        Op::Store { addr, .. } => {
                            self.kill(fi, addr);
                            // value flows via the load edges above
                        }
                        Op::Gep { base, index } => {
                            self.kill(fi, base);
                            self.kill(fi, index);
                        }
                        Op::Alloca { words } => {
                            self.kill(fi, words);
                        }
                        Op::Call { func: callee, args } => {
                            let cf = callee.0 as usize;
                            for (i, a) in args.iter().enumerate() {
                                let pn = self.stats.node_base[cf] + i as u32;
                                if self.live(pn) {
                                    self.edge(fi, a, pn, 1.0);
                                }
                            }
                            if let Some(to) = r {
                                let ret_ops: Vec<(usize, Operand)> = rets[cf].clone();
                                for (rfi, v) in ret_ops {
                                    self.edge(rfi, &v, to, 1.0);
                                }
                            }
                        }
                        Op::Output { value } => {
                            self.kill(fi, value);
                        }
                    }
                }
                // Terminator edges. Dead-node filtering inside edge()
                // drops never-taken transfers (their params were never
                // written) — and control equality keeps it that way.
                match &blk.term {
                    Term::Br { target, args } => {
                        let params = &f.blocks[target.0 as usize].params;
                        for (p, a) in params.iter().zip(args) {
                            self.edge(fi, a, self.node_of(fi, *p), 1.0);
                        }
                    }
                    Term::CondBr {
                        cond,
                        then_target,
                        then_args,
                        else_target,
                        else_args,
                    } => {
                        self.kill(fi, cond);
                        for (t, args) in [(then_target, then_args), (else_target, else_args)] {
                            let params = &f.blocks[t.0 as usize].params;
                            for (p, a) in params.iter().zip(args) {
                                self.edge(fi, a, self.node_of(fi, *p), 1.0);
                            }
                        }
                    }
                    Term::Ret { value } => {
                        if fi == module.entry.0 as usize {
                            // The entry return value is observable.
                            if let Some(v) = value {
                                self.kill(fi, v);
                            }
                        }
                    }
                }
            }
        }

        // Magnitude guards: keep every reachable float finite and every
        // integer far from wraparound, so the linearized edge model stays
        // valid end to end.
        for n in 0..self.stats.nodes.len() as u32 {
            if !self.live(n) || self.absorber[n as usize] {
                continue;
            }
            let ty = self.ty_of_node(n);
            let ma = self.max_abs(n);
            let bound = match ty {
                Ty::F64 => 8.9e307 - ma,
                Ty::I64 | Ty::Ptr => (62f64).exp2() - ma,
                Ty::I32 => (30f64).exp2() - ma,
                Ty::I1 => continue,
            };
            self.constraints.push(Constraint {
                node: n,
                bound: bound.max(0.0),
                tag: "guard",
            });
        }
    }

    fn solve(self) -> DeviationAnalysis {
        let module = self.module;
        let stats = self.stats;
        let nverts = stats.nodes.len();
        let mut in_edges: Vec<Vec<Edge>> = vec![Vec::new(); nverts];
        let mut out_adj: Vec<Vec<u32>> = vec![Vec::new(); nverts];
        for e in &self.edges {
            in_edges[e.to as usize].push(*e);
            out_adj[e.from as usize].push(e.to);
        }
        let (comps, comp_of) = tarjan_sccs(nverts, &out_adj);

        // Classify each SCC.
        let mut comp_cyclic = vec![false; comps.len()];
        let mut comp_unsafe = vec![false; comps.len()];
        let mut comp_additive = vec![false; comps.len()];
        // Node kinds needed for the classification. Only `Bin` results
        // genuinely *sum* several inflows into one instance; selects,
        // loads, block params, function params, and call results all take
        // exactly one of their in-edges per dynamic instance (max-kind),
        // so several in-cycle edges there do not compound per lap.
        let mut additive_node = vec![false; nverts];
        let mut sum_node = vec![false; nverts];
        for (fi, f) in module.functions.iter().enumerate() {
            for ins in f.instrs() {
                if let Some(r) = ins.result {
                    let n = (stats.node_base[fi] + r.0) as usize;
                    if let Op::Bin { op, .. } = &ins.op {
                        sum_node[n] = true;
                        if matches!(op, BinOp::Add | BinOp::Sub | BinOp::FAdd | BinOp::FSub) {
                            additive_node[n] = true;
                        }
                    }
                }
            }
        }
        for (ci, members) in comps.iter().enumerate() {
            let cyclic = members.len() > 1
                || in_edges[members[0] as usize]
                    .iter()
                    .any(|e| e.from == members[0]);
            comp_cyclic[ci] = cyclic;
            if !cyclic {
                continue;
            }
            for &m in members {
                let internal: Vec<&Edge> = in_edges[m as usize]
                    .iter()
                    .filter(|e| comp_of[e.from as usize] == ci as u32)
                    .collect();
                if internal.iter().any(|e| e.w > 1.0 + 1e-9) {
                    comp_unsafe[ci] = true;
                }
                if internal.len() >= 2 && sum_node[m as usize] {
                    // Two in-cycle inflows at a summing node compound per
                    // lap: geometric growth, not amplitude-bounded.
                    comp_unsafe[ci] = true;
                }
                if additive_node[m as usize] {
                    comp_additive[ci] = true;
                }
            }
        }

        // Rounding-slack sources: executed float-rounding ops.
        let mut slack_sources: Vec<(u32, f64)> = Vec::new();
        for (fi, f) in module.functions.iter().enumerate() {
            for ins in f.instrs() {
                let sid = ins.sid.0 as usize;
                if self.exec[sid] == 0 {
                    continue;
                }
                let rounds = match &ins.op {
                    Op::Bin { op, .. } => {
                        matches!(op, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
                    }
                    Op::Un { op, .. } => matches!(
                        op,
                        UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Exp | UnOp::Log
                    ),
                    Op::Cast { kind, .. } => matches!(kind, CastKind::SiToFp),
                    _ => false,
                };
                if !rounds {
                    continue;
                }
                if let Some(r) = ins.result {
                    let n = stats.node_base[fi] + r.0;
                    let ma = stats.nodes[n as usize].max_abs(Ty::F64);
                    slack_sources.push((n, ulp_of(2.0 * ma.max(f64::MIN_POSITIVE))));
                }
            }
        }

        let writes: Vec<f64> = stats.nodes.iter().map(|s| s.writes as f64).collect();
        let graph = Graph {
            nverts,
            in_edges,
            constraints: self.constraints,
            writes,
            comps,
            comp_of,
            comp_cyclic,
            comp_unsafe,
            comp_additive,
            slack_sources,
        };

        // Per-sid result tables.
        let n = module.num_instrs;
        let mut tol = vec![0.0f64; n];
        let mut sid_max_abs = vec![0.0f64; n];
        let mut sid_ty = vec![None; n];
        let mut sid_width = vec![0u8; n];
        let mut sid_non_finite = vec![false; n];
        for (fi, f) in module.functions.iter().enumerate() {
            for ins in f.instrs() {
                let sid = ins.sid.0 as usize;
                let r = match ins.result {
                    Some(r) => r,
                    None => continue,
                };
                let ty = f.value_types[r.0 as usize];
                sid_ty[sid] = Some(ty);
                sid_width[sid] = match ty {
                    Ty::I1 => 1,
                    Ty::I32 => 32,
                    _ => 64,
                };
                let node = stats.node_base[fi] + r.0;
                sid_max_abs[sid] = stats.nodes[node as usize].max_abs(ty);
                sid_non_finite[sid] = stats.nodes[node as usize].non_finite;
                if self.exec[sid] == 0 || ty == Ty::I1 {
                    continue;
                }
                // Amplitude injected at the fault site is never masked
                // for absorber results: a flipped compare bit is a
                // decision flip, and a flipped floor result is already
                // integral — margins don't apply to direct corruption.
                if self.absorber[node as usize] {
                    continue;
                }
                tol[sid] = solve_source(&graph, node);
            }
        }
        DeviationAnalysis {
            tol,
            sid_max_abs,
            sid_ty,
            sid_width,
            sid_non_finite,
            sid_node: self.sid_node,
            graph,
        }
    }
}

/// Forward-propagates amplitudes/instance-counts from `init` over the SCC
/// condensation. Returns per-node amplitude bounds.
fn propagate(graph: &Graph, init: &[(u32, f64)]) -> Vec<f64> {
    let mut a = vec![0.0f64; graph.nverts];
    let mut cnt = vec![0.0f64; graph.nverts];
    let mut init_a = vec![0.0f64; graph.nverts];
    let mut init_c = vec![0.0f64; graph.nverts];
    for &(v, amp) in init {
        init_a[v as usize] += amp;
        // Amplitude sources carry one deviated instance each per
        // execution of the source (slack) or exactly one (fault).
        init_c[v as usize] = graph.writes[v as usize].max(1.0);
    }
    for (ci, members) in graph.comps.iter().enumerate() {
        if !graph.comp_cyclic[ci] {
            let v = members[0] as usize;
            let mut amp = init_a[v];
            let mut c = init_c[v];
            for e in &graph.in_edges[v] {
                amp += e.w * a[e.from as usize];
                c += cnt[e.from as usize] * e.mult;
            }
            a[v] = amp;
            cnt[v] = c.min(graph.writes[v]);
            continue;
        }
        // Cyclic SCC: gather entry contributions.
        let mut amp_in = 0.0f64;
        let mut amp_counted = 0.0f64;
        for &m in members {
            let v = m as usize;
            amp_in += init_a[v];
            amp_counted += init_a[v] * init_c[v].min(graph.writes[v]);
            for e in &graph.in_edges[v] {
                if graph.comp_of[e.from as usize] == ci as u32 {
                    continue;
                }
                let contrib = e.w * a[e.from as usize];
                amp_in += contrib;
                let events = (cnt[e.from as usize] * e.mult).min(graph.writes[v]);
                amp_counted += contrib * events.max(1.0);
            }
        }
        let val = if amp_in <= 0.0 {
            0.0
        } else if graph.comp_unsafe[ci] {
            INF
        } else if graph.comp_additive[ci] {
            // An in-cycle accumulator integrates every deviated entry
            // event once; events are bounded by golden instance counts.
            amp_counted
        } else {
            amp_in
        };
        for &m in members {
            a[m as usize] = val;
            cnt[m as usize] = graph.writes[m as usize];
        }
    }
    a
}

/// Max initial deviation at `source` that satisfies every reachable
/// constraint, accounting for re-rounding slack along reached float ops.
fn solve_source(graph: &Graph, source: u32) -> f64 {
    let a = propagate(graph, &[(source, 1.0)]);
    // Slack from float ops the deviation actually reaches.
    let slack_init: Vec<(u32, f64)> = graph
        .slack_sources
        .iter()
        .filter(|(v, _)| a[*v as usize] > 0.0)
        .map(|&(v, u)| (v, u * graph.writes[v as usize].max(1.0)))
        .collect();
    let slack = if slack_init.is_empty() {
        vec![0.0; graph.nverts]
    } else {
        propagate(graph, &slack_init)
    };
    let mut tol = INF;
    for c in &graph.constraints {
        let av = a[c.node as usize];
        if av <= 0.0 {
            continue;
        }
        let room = c.bound - slack[c.node as usize];
        let t = if room <= 0.0 { 0.0 } else { room / av };
        tol = tol.min(t);
    }
    tol * (1.0 - SAFETY)
}

/// Iterative Tarjan SCC. Returns components in topological order
/// (predecessors first) and the component index of each node.
fn tarjan_sccs(n: usize, out_adj: &[Vec<u32>]) -> (Vec<Vec<u32>>, Vec<u32>) {
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comps: Vec<Vec<u32>> = Vec::new();
    let mut comp_of = vec![u32::MAX; n];
    let mut next = 0u32;
    // Explicit DFS: (node, child cursor).
    let mut call: Vec<(u32, usize)> = Vec::new();
    for s in 0..n as u32 {
        if index[s as usize] != u32::MAX {
            continue;
        }
        call.push((s, 0));
        index[s as usize] = next;
        low[s as usize] = next;
        next += 1;
        stack.push(s);
        on_stack[s as usize] = true;
        while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
            if *cursor < out_adj[v as usize].len() {
                let w = out_adj[v as usize][*cursor];
                *cursor += 1;
                if index[w as usize] == u32::MAX {
                    index[w as usize] = next;
                    low[w as usize] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    call.push((w, 0));
                } else if on_stack[w as usize] {
                    low[v as usize] = low[v as usize].min(index[w as usize]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack");
                        on_stack[w as usize] = false;
                        comp_of[w as usize] = comps.len() as u32;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    comps.push(comp);
                }
            }
        }
    }
    // Tarjan pops sinks first; reverse for predecessors-first order.
    comps.reverse();
    let flip = comps.len() as u32 - 1;
    for c in comp_of.iter_mut() {
        *c = flip - *c;
    }
    (comps, comp_of)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::{ExecLimits, Injection, InjectionTarget, Vm};

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "dev_test").expect("compile")
    }

    fn analyze(src: &str, inputs: &[f64]) -> (Module, DeviationAnalysis, RunOutput) {
        let module = compile(src);
        let (dev, out) =
            DeviationAnalysis::from_run(&module, inputs, ExecLimits::default()).expect("golden");
        (module, dev, out)
    }

    /// Injects every predicted-masked cell at every dynamic instance and
    /// checks the run output stays bit-identical to golden.
    fn assert_cells_benign(module: &Module, dev: &DeviationAnalysis, inputs: &[f64], burst: u8) {
        let cells = dev.extra_cells(burst);
        let bits = encode_inputs(module.entry_func(), inputs);
        let vm = Vm::new(module, ExecLimits::default());
        let golden = vm.run(&bits, None);
        let mut tried = 0;
        for (sid, &mask) in cells.iter().enumerate() {
            if mask == 0 {
                continue;
            }
            let execs = golden.profile.exec_counts[sid].min(4);
            for bit in 0..64u32 {
                if mask & (1 << bit) == 0 {
                    continue;
                }
                for inst in 0..execs {
                    let out = vm.run(
                        &bits,
                        Some(Injection {
                            target: InjectionTarget::StaticInstance {
                                sid: peppa_ir::InstrId(sid as u32),
                                instance: inst,
                            },
                            bit,
                            burst,
                        }),
                    );
                    assert!(
                        !out.is_sdc_vs(&golden) && out.status.is_ok(),
                        "cell (sid {sid}, bit {bit}, inst {inst}) predicted benign but diverged"
                    );
                    tried += 1;
                }
            }
        }
        assert!(tried > 0, "no cells predicted — test is vacuous");
    }

    #[test]
    fn quantized_output_masks_low_mantissa_bits() {
        // floor(x*0.001 + 3.7) quantizes: low mantissa flips of the
        // product vanish. The analysis must find a positive tolerance.
        let src = r#"
            fn main(x: float) {
                let y = x * 0.001 + 3.7;
                output floor(y);
            }
        "#;
        let (module, dev, _) = analyze(src, &[5.0]);
        let some_tol = dev.tol.iter().any(|&t| t > 1e-9 && t.is_finite());
        assert!(
            some_tol,
            "expected a positive finite tolerance: {:?}",
            dev.tol
        );
        assert_cells_benign(&module, &dev, &[5.0], 0);
    }

    #[test]
    fn fmin_tournament_is_nonexpansive() {
        // A min tournament feeding a quantized output: deviations below
        // the floor margin are absorbed even though the comparison
        // decision may flip.
        let src = r#"
            fn main(a: float, b: float) {
                let m = fmin(a * 1.0000001, b);
                output floor(m * 10.0);
            }
        "#;
        let (module, dev, _) = analyze(src, &[1.53, 2.71]);
        assert!(dev.tol.iter().any(|&t| t > 1e-9));
        assert_cells_benign(&module, &dev, &[1.53, 2.71], 0);
        assert_cells_benign(&module, &dev, &[1.53, 2.71], 2);
    }

    #[test]
    fn branch_compare_margin_bounds_tolerance() {
        // The loop bound compare has margin 1 in (i - n) units; i itself
        // must not deviate (margin 1 > deviation needs tol < 1), and the
        // accumulator chain tolerates only below the floor margin.
        let src = r#"
            fn main(n: int) {
                let s = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    s = s + 0.125;
                }
                output floor(s);
            }
        "#;
        let (module, dev, _) = analyze(src, &[7.0]);
        assert_cells_benign(&module, &dev, &[7.0], 0);
    }

    #[test]
    fn amplifying_cycle_is_unprunable() {
        // s doubles every lap: the SCC is expansion-unsafe, so nothing
        // feeding it may be deviation-masked.
        let src = r#"
            fn main(x: float) {
                let s = x;
                for (i = 0; i < 40; i = i + 1) {
                    s = s + s;
                }
                output floor(s);
            }
        "#;
        let module = compile(src);
        let (dev, out) =
            DeviationAnalysis::from_run(&module, &[1.25], ExecLimits::default()).expect("golden");
        // Find the doubling fadd: its tol must be 0 (reaches itself).
        for f in &module.functions {
            for ins in f.instrs() {
                if let Op::Bin {
                    op: BinOp::FAdd,
                    a,
                    b,
                } = &ins.op
                {
                    if a == b {
                        assert_eq!(
                            dev.tol[ins.sid.0 as usize], 0.0,
                            "doubling fadd must be live"
                        );
                    }
                }
            }
        }
        let _ = out;
    }

    #[test]
    fn int_exact_output_gets_no_deviation_cells() {
        // Integer chain straight into out(): any deviation changes the
        // observable, so no deviation cells exist (reach-based masking
        // may still apply independently).
        let src = r#"
            fn main(x: int) {
                output x * 3 + 1;
            }
        "#;
        let (_, dev, _) = analyze(src, &[9.0]);
        assert!(dev.extra_cells(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn interprocedural_deviation_flows_through_calls() {
        let src = r#"
            fn scale(v: float) -> float {
                return v * 0.5;
            }
            fn main(x: float) {
                output floor(scale(x) + 100.5);
            }
        "#;
        let (module, dev, _) = analyze(src, &[3.2]);
        assert!(
            dev.tol.iter().any(|&t| t > 1e-9),
            "call path should carry tolerance"
        );
        assert_cells_benign(&module, &dev, &[3.2], 0);
    }

    #[test]
    fn randomized_masked_cells_never_flip_observables() {
        // Property-style spot check over a richer kernel with memory,
        // calls, and a min-tournament, across several inputs and bursts.
        let src = r#"
            global float buf[64];
            fn lcg(x: int) -> int {
                return (x * 1103515245 + 12345) % 2147483648;
            }
            fn main(seed: int, n: int) {
                let r = seed;
                for (i = 0; i < n; i = i + 1) {
                    r = lcg(r);
                    buf[i] = i2f(abs(r) % 1000) * 0.01;
                }
                let best = 1000000000000000000.0;
                let sum = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    best = fmin(best, buf[i] * 1.000001);
                    sum = sum + buf[i];
                }
                output floor(best * 100.0 + 0.5);
                output floor(sum + 0.5);
            }
        "#;
        for inputs in [[7.0, 24.0], [99.0, 48.0], [3.0, 11.0]] {
            let (module, dev, _) = analyze(src, &inputs);
            for burst in [0u8, 1, 3] {
                assert_cells_benign(&module, &dev, &inputs, burst);
            }
        }
    }
}

//! Code-coverage measurement for inputs (§3.2.2, §4.2.1).

use peppa_ir::Module;
use peppa_vm::{ExecLimits, RunStatus, Vm};

/// Static-instruction coverage achieved by running `inputs`, or `None`
/// if the run does not exit cleanly.
pub fn input_coverage(module: &Module, inputs: &[f64], limits: ExecLimits) -> Option<f64> {
    let vm = Vm::new(module, limits);
    let out = vm.run_numeric(inputs, None);
    if out.status != RunStatus::Ok {
        return None;
    }
    Some(out.profile.coverage())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branchy_program_coverage_varies_with_input() {
        let m = peppa_lang::compile(
            r#"fn main(x: int) {
                if (x > 100) {
                    output x * 2;
                    output x * 3;
                    output x * 4;
                } else {
                    output x;
                }
            }"#,
            "cov",
        )
        .unwrap();
        let hi = input_coverage(&m, &[200.0], ExecLimits::default()).unwrap();
        let lo = input_coverage(&m, &[1.0], ExecLimits::default()).unwrap();
        assert!(hi > lo, "hi {hi} lo {lo}");
    }

    #[test]
    fn failing_run_gives_none() {
        let m = peppa_lang::compile("fn main(x: int) { output 1 / x; }", "cov").unwrap();
        assert!(input_coverage(&m, &[0.0], ExecLimits::default()).is_none());
        assert!(input_coverage(&m, &[2.0], ExecLimits::default()).is_some());
    }
}

//! Call graph over a PIR module.
//!
//! The interprocedural layer (summaries in [`crate::reach`]) needs three
//! things from the call structure: who calls whom (with the call sites),
//! a bottom-up processing order so callee summaries exist before their
//! callers consume them, and the strongly-connected components so
//! recursive cliques can be iterated to a joint fixpoint instead of
//! ordered.

use peppa_ir::{FuncId, InstrId, Module, Op};

/// One call edge: the calling function, the static call instruction, and
/// the callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallSite {
    pub caller: FuncId,
    pub sid: InstrId,
    pub callee: FuncId,
}

/// The module's static call graph.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// `callees[f]`: functions called (directly) by `f`, deduplicated.
    pub callees: Vec<Vec<FuncId>>,
    /// `callers[f]`: functions calling `f` (directly), deduplicated.
    pub callers: Vec<Vec<FuncId>>,
    /// Every call instruction in the module.
    pub call_sites: Vec<CallSite>,
    /// Strongly connected components in *bottom-up* order: every callee
    /// of a function in component `i` lives in some component `j <= i`
    /// (possibly `i` itself for recursion). Processing components in
    /// index order visits callees before callers.
    pub sccs: Vec<Vec<FuncId>>,
}

impl CallGraph {
    pub fn new(module: &Module) -> CallGraph {
        let n = module.functions.len();
        let mut callees: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<FuncId>> = vec![Vec::new(); n];
        let mut call_sites = Vec::new();
        for (fi, f) in module.functions.iter().enumerate() {
            let caller = FuncId(fi as u32);
            for ins in f.instrs() {
                if let Op::Call { func, .. } = &ins.op {
                    call_sites.push(CallSite {
                        caller,
                        sid: ins.sid,
                        callee: *func,
                    });
                    if !callees[fi].contains(func) {
                        callees[fi].push(*func);
                    }
                    if !callers[func.0 as usize].contains(&caller) {
                        callers[func.0 as usize].push(caller);
                    }
                }
            }
        }
        let sccs = bottom_up_sccs(&callees);
        CallGraph {
            callees,
            callers,
            call_sites,
            sccs,
        }
    }

    /// Call sites whose callee is `f`.
    pub fn sites_calling(&self, f: FuncId) -> impl Iterator<Item = &CallSite> {
        self.call_sites.iter().filter(move |s| s.callee == f)
    }

    /// Whether `f` participates in a call cycle (is recursive, directly
    /// or mutually).
    pub fn is_recursive(&self, f: FuncId) -> bool {
        self.sccs
            .iter()
            .find(|c| c.contains(&f))
            .map(|c| c.len() > 1 || self.callees[f.0 as usize].contains(&f))
            .unwrap_or(false)
    }
}

/// Tarjan's SCC algorithm (iterative), returning components in reverse
/// topological order of the condensation — i.e. callees-first, which is
/// exactly the bottom-up summary order.
fn bottom_up_sccs(callees: &[Vec<FuncId>]) -> Vec<Vec<FuncId>> {
    let n = callees.len();
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<FuncId>> = Vec::new();

    // Explicit DFS frame: (node, next child position).
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        let mut frames: Vec<(u32, usize)> = vec![(root as u32, 0)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            let vi = v as usize;
            if *ci == 0 {
                index[vi] = next_index;
                low[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            if let Some(&w) = callees[vi].get(*ci) {
                *ci += 1;
                let wi = w.0 as usize;
                if index[wi] == UNSEEN {
                    frames.push((w.0, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                // All children done: close the frame.
                if low[vi] == index[vi] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().unwrap();
                        on_stack[w as usize] = false;
                        comp.push(FuncId(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    sccs.push(comp);
                }
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    let pi = p as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
            }
        }
    }
    // Tarjan emits components callees-first already (a component is
    // closed only after everything reachable from it), which is the
    // bottom-up order we want.
    sccs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "cg").unwrap()
    }

    fn fid(m: &Module, name: &str) -> FuncId {
        m.func_by_name(name).unwrap()
    }

    #[test]
    fn straight_chain_orders_bottom_up() {
        let m = compile(
            r#"fn leaf(x: int) -> int { return x + 1; }
               fn mid(x: int) -> int { return leaf(x) * 2; }
               fn main(x: int) { output mid(x); }"#,
        );
        let cg = CallGraph::new(&m);
        let (leaf, mid, main) = (fid(&m, "leaf"), fid(&m, "mid"), fid(&m, "main"));
        assert_eq!(cg.callees[main.0 as usize], vec![mid]);
        assert_eq!(cg.callers[leaf.0 as usize], vec![mid]);
        let pos = |f: FuncId| cg.sccs.iter().position(|c| c.contains(&f)).unwrap();
        assert!(pos(leaf) < pos(mid) && pos(mid) < pos(main));
        assert!(!cg.is_recursive(main));
    }

    #[test]
    fn call_sites_record_sids() {
        let m = compile(
            r#"fn f(x: int) -> int { return x; }
               fn main(x: int) { output f(x) + f(x + 1); }"#,
        );
        let cg = CallGraph::new(&m);
        let f = fid(&m, "f");
        assert_eq!(cg.sites_calling(f).count(), 2);
        for s in cg.sites_calling(f) {
            assert_eq!(s.caller, fid(&m, "main"));
        }
    }

    #[test]
    fn recursion_forms_one_scc() {
        let m = compile(
            r#"fn fib(n: int) -> int {
                   if (n < 2) { return n; }
                   return fib(n - 1) + fib(n - 2);
               }
               fn main(n: int) { output fib(n); }"#,
        );
        let cg = CallGraph::new(&m);
        let fib = fid(&m, "fib");
        assert!(cg.is_recursive(fib));
        assert!(!cg.is_recursive(fid(&m, "main")));
        let pos = |f: FuncId| cg.sccs.iter().position(|c| c.contains(&f)).unwrap();
        assert!(pos(fib) < pos(fid(&m, "main")));
    }
}

//! Generic dataflow engines over the [`Cfg`](crate::cfg::Cfg).
//!
//! Two solvers live here:
//!
//! * [`solve_blocks`]: the classic worklist solver over per-block facts,
//!   parameterized by a [`BlockAnalysis`] (direction, boundary fact,
//!   transfer, join). Liveness is the in-tree backward client.
//! * [`analyze_values`]: a per-value abstract-interpretation engine for
//!   domains implementing [`AbstractDomain`] (known-bits, intervals).
//!   It walks blocks in RPO, evaluates instruction transfers, joins
//!   branch arguments into block parameters, and applies the domain's
//!   widening operator at loop headers so loop-carried values converge.

use crate::cfg::Cfg;
use peppa_ir::{Const, Function, Module, Op, Operand, Term, Ty};

/// Direction of a block analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Forward,
    Backward,
}

/// A classic iterative dataflow problem over block facts.
pub trait BlockAnalysis {
    /// The fact attached to each block (entry fact for forward problems,
    /// exit fact for backward ones).
    type Fact: Clone;

    fn direction(&self) -> Direction;

    /// Fact at the boundary: the entry block (forward) or every
    /// exit block (backward).
    fn boundary(&self) -> Self::Fact;

    /// Initial fact for non-boundary blocks (usually the lattice bottom).
    fn init(&self) -> Self::Fact;

    /// Applies the block's effect: maps the entry fact to the exit fact
    /// (forward), or the exit fact to the entry fact (backward).
    fn transfer(&self, block: u32, fact: &Self::Fact) -> Self::Fact;

    /// Joins `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;
}

/// Runs the worklist algorithm; returns the fact at each block's entry
/// (forward) or exit (backward) — i.e. the fact *before* the block's
/// transfer is applied, in analysis direction.
pub fn solve_blocks<A: BlockAnalysis>(cfg: &Cfg, a: &A) -> Vec<A::Fact> {
    let n = cfg.num_blocks();
    let mut facts: Vec<A::Fact> = (0..n).map(|_| a.init()).collect();
    if n == 0 {
        return facts;
    }
    let forward = a.direction() == Direction::Forward;
    if forward {
        facts[0] = a.boundary();
    } else {
        // Every block whose terminator has no successors is an exit.
        for (b, fact) in facts.iter_mut().enumerate() {
            if cfg.succs[b].is_empty() {
                *fact = a.boundary();
            }
        }
    }

    // Seed the worklist in the direction's preferred order so most
    // problems converge in one or two sweeps.
    let order: Vec<u32> = if forward {
        cfg.rpo.clone()
    } else {
        cfg.rpo.iter().rev().copied().collect()
    };
    let mut inq = vec![true; n];
    let mut queue: std::collections::VecDeque<u32> = order.into();

    while let Some(b) = queue.pop_front() {
        inq[b as usize] = false;
        let out = a.transfer(b, &facts[b as usize]);
        let nexts = if forward {
            &cfg.succs[b as usize]
        } else {
            &cfg.preds[b as usize]
        };
        for &s in nexts {
            if a.join(&mut facts[s as usize], &out) && !inq[s as usize] {
                inq[s as usize] = true;
                queue.push_back(s);
            }
        }
    }
    facts
}

/// An abstract value domain for the per-value engine. Every operation
/// works on the VM's canonical 64-bit representation (i32 values are
/// sign-extended, i1 is 0/1, f64 is IEEE bits) — transfers must be sound
/// w.r.t. the interpreter in `peppa-vm`.
pub trait AbstractDomain: Clone + PartialEq {
    /// Least-precise element for a type: all canonical values of `ty`.
    fn top(ty: Ty) -> Self;

    /// Abstraction of one constant (canonicalized).
    fn of_const(c: Const) -> Self;

    /// Least upper bound.
    fn join(&self, other: &Self) -> Self;

    /// Widening: `self` is the current fact at a loop header, `next` the
    /// freshly joined one. Must return something ≥ both and guarantee
    /// finite ascending chains.
    fn widen(&self, next: &Self) -> Self;

    /// Transfer of one value-producing instruction. `args` follow
    /// `op.operands()` order, `arg_tys` are their declared types, and
    /// `ty` is the result type. Must over-approximate every possible
    /// concrete result (loads and calls are typically `top(ty)` in an
    /// intraprocedural setting).
    fn transfer(op: &Op, ty: Ty, args: &[Self], arg_tys: &[Ty]) -> Self;
}

/// Per-function analysis result: one abstract value per [`ValueId`].
#[derive(Debug, Clone)]
pub struct ValueFacts<D> {
    pub values: Vec<D>,
}

impl<D: AbstractDomain> ValueFacts<D> {
    /// Abstraction of an operand.
    pub fn of_operand(&self, op: &Operand) -> D {
        match op {
            Operand::Value(v) => self.values[v.0 as usize].clone(),
            Operand::Const(c) => D::of_const(*c),
        }
    }
}

/// How many joins a loop-header parameter absorbs before widening kicks
/// in. A couple of precise iterations let small constant-bounded loops
/// settle exactly; after that the domain must jump to convergence.
const WIDEN_AFTER: u32 = 3;

/// Runs the per-value engine on one function. Function parameters start
/// at `top` (their type's full canonical set) — callers that know more
/// can seed `params` instead.
pub fn analyze_values<D: AbstractDomain>(f: &Function, cfg: &Cfg) -> ValueFacts<D> {
    let params: Vec<D> = f.params.iter().map(|&t| D::top(t)).collect();
    analyze_values_seeded(f, cfg, &params)
}

/// [`analyze_values`] with explicit abstractions for the function
/// parameters.
pub fn analyze_values_seeded<D: AbstractDomain>(
    f: &Function,
    cfg: &Cfg,
    params: &[D],
) -> ValueFacts<D> {
    analyze_values_ctx(f, cfg, params, &|_, ty| D::top(ty))
}

/// [`analyze_values_seeded`] with an interprocedural context: call
/// results take `call_ret(callee, result_ty)` instead of `top`, so a
/// caller analysis can consume callee return summaries. The supplied
/// fact must over-approximate every value the callee can return in this
/// module (the top-down engine in [`crate::summary`] guarantees that by
/// joining over all call sites and widening recursive cliques).
pub fn analyze_values_ctx<D: AbstractDomain>(
    f: &Function,
    cfg: &Cfg,
    params: &[D],
    call_ret: &dyn Fn(peppa_ir::FuncId, Ty) -> D,
) -> ValueFacts<D> {
    assert_eq!(params.len(), f.params.len());
    let nv = f.value_types.len();
    let mut vals: Vec<D> = (0..nv).map(|v| D::top(f.value_types[v])).collect();
    // Block params start optimistically at the first incoming value and
    // join subsequent ones; until first reached, they sit at (sound) top.
    let mut param_seen = vec![false; nv];
    vals[..params.len()].clone_from_slice(params);
    // Join counts per block-param value, to trigger widening.
    let mut joins = vec![0u32; nv];

    // Full RPO sweeps until a whole pass changes nothing. Widening at
    // loop headers bounds the number of passes; the hard cap is a belt-
    // and-braces guard against a domain with a buggy widen.
    const MAX_PASSES: u32 = 200;
    for _pass in 0..MAX_PASSES {
        let mut changed = false;
        for &b in &cfg.rpo {
            let block = &f.blocks[b as usize];
            for ins in &block.instrs {
                if let Some(r) = ins.result {
                    let operands = ins.op.operands();
                    let args: Vec<D> = operands
                        .iter()
                        .map(|o| match o {
                            Operand::Value(v) => vals[v.0 as usize].clone(),
                            Operand::Const(c) => D::of_const(*c),
                        })
                        .collect();
                    let arg_tys: Vec<Ty> = operands.iter().map(|o| f.operand_ty(o)).collect();
                    let next = match &ins.op {
                        Op::Call { func, .. } => call_ret(*func, f.ty_of(r)),
                        _ => D::transfer(&ins.op, f.ty_of(r), &args, &arg_tys),
                    };
                    if next != vals[r.0 as usize] {
                        vals[r.0 as usize] = next;
                        changed = true;
                    }
                }
            }

            let mut flow = |target: peppa_ir::BlockId, args: &[Operand]| {
                let tb = target.0 as usize;
                let params = &f.blocks[tb].params;
                for (&p, a) in params.iter().zip(args) {
                    let incoming = match a {
                        Operand::Value(v) => vals[v.0 as usize].clone(),
                        Operand::Const(c) => D::of_const(*c),
                    };
                    let pi = p.0 as usize;
                    let next = if param_seen[pi] {
                        vals[pi].join(&incoming)
                    } else {
                        param_seen[pi] = true;
                        incoming
                    };
                    let next = if cfg.loop_header[tb] && joins[pi] >= WIDEN_AFTER {
                        vals[pi].widen(&next)
                    } else {
                        next
                    };
                    if next != vals[pi] {
                        joins[pi] += 1;
                        vals[pi] = next;
                        changed = true;
                    }
                }
            };

            match &block.term {
                Term::Br { target, args } => flow(*target, args),
                Term::CondBr {
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                    ..
                } => {
                    flow(*then_target, then_args);
                    flow(*else_target, else_args);
                }
                Term::Ret { .. } => {}
            }
        }
        if !changed {
            break;
        }
    }

    ValueFacts { values: vals }
}

/// Per-function results for a whole module, indexed by `FuncId.0`.
#[derive(Debug, Clone)]
pub struct ModuleValueFacts<D> {
    pub per_func: Vec<ValueFacts<D>>,
}

/// Runs [`analyze_values`] on every function of `module`.
pub fn analyze_module<D: AbstractDomain>(module: &Module) -> ModuleValueFacts<D> {
    let per_func = module
        .functions
        .iter()
        .map(|f| {
            let cfg = Cfg::new(f);
            analyze_values::<D>(f, &cfg)
        })
        .collect();
    ModuleValueFacts { per_func }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;

    /// Trivial forward "reachable constant count" analysis used to
    /// exercise the block solver: counts the max number of blocks on any
    /// path from the entry (saturating), i.e. longest-path depth.
    struct Depth {
        cap: u32,
    }

    impl BlockAnalysis for Depth {
        type Fact = u32;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn boundary(&self) -> u32 {
            0
        }
        fn init(&self) -> u32 {
            0
        }
        fn transfer(&self, _b: u32, f: &u32) -> u32 {
            (*f + 1).min(self.cap)
        }
        fn join(&self, into: &mut u32, from: &u32) -> bool {
            if *from > *into {
                *into = *from;
                true
            } else {
                false
            }
        }
    }

    #[test]
    fn block_solver_reaches_fixpoint_on_loops() {
        let m = peppa_lang::compile(
            "fn main(n: int) { let s = 0; for (i = 0; i < n; i = i + 1) { s = s + i; } output s; }",
            "df",
        )
        .unwrap();
        let f = m.entry_func();
        let cfg = Cfg::new(f);
        let facts = solve_blocks(&cfg, &Depth { cap: 100 });
        // With a loop, depths saturate at the cap for blocks in the cycle.
        assert!(facts.contains(&100));
        // The entry keeps its boundary fact.
        assert_eq!(facts[0], 0);
    }
}

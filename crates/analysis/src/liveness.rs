//! Liveness and dead-value detection.
//!
//! Two related facilities:
//!
//! * [`live_in`]: classic backward per-block liveness over [`ValueId`]
//!   bitsets, the in-tree client of the generic worklist solver in
//!   [`crate::dataflow`].
//! * [`observable_live`] / [`dead_values`]: transitive "does this value
//!   influence observable behaviour" marking — a value is observable-live
//!   iff it (transitively) feeds a store, an output, a call argument, a
//!   return value, or a branch condition. A flipped bit in a value that
//!   is *not* observable-live can never cause an SDC, which is exactly
//!   the masking fact the static predictor and the `dead-value` lint
//!   consume.

use crate::cfg::Cfg;
use crate::dataflow::{solve_blocks, BlockAnalysis, Direction};
use peppa_ir::{Function, InstrId, Module, Op, Operand, Term, ValueId};

/// A bitset over the function's values.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueSet {
    words: Vec<u64>,
}

impl ValueSet {
    pub fn new(n: usize) -> ValueSet {
        ValueSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    pub fn insert(&mut self, v: ValueId) -> bool {
        let (w, b) = (v.0 as usize / 64, v.0 as usize % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    pub fn remove(&mut self, v: ValueId) {
        let (w, b) = (v.0 as usize / 64, v.0 as usize % 64);
        self.words[w] &= !(1 << b);
    }

    pub fn contains(&self, v: ValueId) -> bool {
        let (w, b) = (v.0 as usize / 64, v.0 as usize % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Unions `other` into `self`; returns whether anything changed.
    pub fn union_with(&mut self, other: &ValueSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            if next != *a {
                *a = next;
                changed = true;
            }
        }
        changed
    }

    /// Raw bitset words (64 values per word, value id `v` at word
    /// `v/64`, bit `v%64`) — the export format
    /// [`peppa_vm::ConvergeMasks`] consumes.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    pub fn iter(&self) -> impl Iterator<Item = ValueId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &bits)| {
            (0..64)
                .filter(move |b| bits & (1 << b) != 0)
                .map(move |b| ValueId((w * 64 + b) as u32))
        })
    }
}

struct Liveness<'f> {
    f: &'f Function,
}

impl BlockAnalysis for Liveness<'_> {
    type Fact = ValueSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> ValueSet {
        ValueSet::new(self.f.value_types.len())
    }

    fn init(&self) -> ValueSet {
        ValueSet::new(self.f.value_types.len())
    }

    fn transfer(&self, block: u32, exit: &ValueSet) -> ValueSet {
        let b = &self.f.blocks[block as usize];
        let mut live = exit.clone();
        // Terminator operands are uses (branch arguments conservatively
        // count even when the receiving parameter is dead — the
        // observable-liveness pass below is the precise one).
        for op in b.term.operands() {
            if let Some(v) = op.value() {
                live.insert(v);
            }
        }
        for ins in b.instrs.iter().rev() {
            if let Some(r) = ins.result {
                live.remove(r);
            }
            for op in ins.op.operands() {
                if let Some(v) = op.value() {
                    live.insert(v);
                }
            }
        }
        for &p in &b.params {
            live.remove(p);
        }
        live
    }

    fn join(&self, into: &mut ValueSet, from: &ValueSet) -> bool {
        into.union_with(from)
    }
}

/// Values live at each block's entry (before its parameters bind).
pub fn live_in(f: &Function, cfg: &Cfg) -> Vec<ValueSet> {
    let lv = Liveness { f };
    // The solver returns the fact "before the transfer in analysis
    // direction" — for a backward problem that is each block's *exit*
    // set; apply the transfer once more for entry sets.
    let exits = solve_blocks(cfg, &lv);
    (0..f.num_blocks())
        .map(|b| lv.transfer(b as u32, &exits[b]))
        .collect()
}

/// Values live at every instruction boundary of every block:
/// `result[block][i]` is the set live just before executing instruction
/// `i` (`result[block][n_instrs]` = just before the terminator) —
/// values that may still be read before being overwritten on some path
/// from that point. Block parameters are *included* at boundary 0 when
/// read later (they are already bound there), unlike [`live_in`], which
/// reports the set before parameters bind.
pub fn live_at_boundaries(f: &Function, cfg: &Cfg) -> Vec<Vec<ValueSet>> {
    let lv = Liveness { f };
    let exits = solve_blocks(cfg, &lv);
    (0..f.num_blocks())
        .map(|b| {
            let blk = &f.blocks[b];
            let n = blk.instrs.len();
            let mut out = vec![ValueSet::new(f.value_types.len()); n + 1];
            let mut live = exits[b].clone();
            for op in blk.term.operands() {
                if let Some(v) = op.value() {
                    live.insert(v);
                }
            }
            out[n] = live.clone();
            for i in (0..n).rev() {
                let ins = &blk.instrs[i];
                if let Some(r) = ins.result {
                    live.remove(r);
                }
                for op in ins.op.operands() {
                    if let Some(v) = op.value() {
                        live.insert(v);
                    }
                }
                out[i] = live.clone();
            }
            out
        })
        .collect()
}

/// Builds the live-register masks the VM's snapshot convergence check
/// consumes ([`peppa_vm::ConvergeMasks`]): for each function, block,
/// and instruction boundary, the bitset of values that may still be
/// read. A value absent from a mask is dead at that point — never read
/// before redefinition on *any* path — so the convergence check may
/// ignore a corrupted value parked there. Soundness note: suspended
/// call frames sit *at* their call instruction, whose result the
/// backward pass already kills, so the pending return value is
/// correctly treated as dead in the caller (it is rewritten from the
/// callee's — separately compared — state on return).
pub fn converge_masks(module: &Module) -> peppa_vm::ConvergeMasks {
    let funcs = module
        .functions
        .iter()
        .map(|f| {
            let cfg = Cfg::new(f);
            live_at_boundaries(f, &cfg)
                .into_iter()
                .map(|bounds| bounds.into_iter().map(|s| s.words().to_vec()).collect())
                .collect()
        })
        .collect();
    peppa_vm::ConvergeMasks::from_raw(funcs)
}

/// Per-function set of values that (transitively) reach an effectful
/// sink: store operand, output, call argument, return value, or branch
/// condition. Block parameters are transparent wires, as in
/// [`crate::defuse`].
pub fn observable_live(f: &Function) -> ValueSet {
    let nv = f.value_types.len();
    let mut live = ValueSet::new(nv);
    let mut work: Vec<ValueId> = Vec::new();
    let seed = |op: &Operand, live: &mut ValueSet, work: &mut Vec<ValueId>| {
        if let Some(v) = op.value() {
            if live.insert(v) {
                work.push(v);
            }
        }
    };

    // Producers: which instruction defines each value; param feeders:
    // which operands flow into each block parameter.
    let mut producer: Vec<Option<&Op>> = vec![None; nv];
    let mut feeders: Vec<Vec<Operand>> = vec![Vec::new(); nv];
    for b in &f.blocks {
        for ins in &b.instrs {
            if let Some(r) = ins.result {
                producer[r.0 as usize] = Some(&ins.op);
            }
        }
        let mut record = |target: peppa_ir::BlockId, args: &[Operand]| {
            for (&p, &a) in f.blocks[target.0 as usize].params.iter().zip(args) {
                feeders[p.0 as usize].push(a);
            }
        };
        match &b.term {
            Term::Br { target, args } => record(*target, args),
            Term::CondBr {
                cond,
                then_target,
                then_args,
                else_target,
                else_args,
            } => {
                seed(cond, &mut live, &mut work);
                record(*then_target, then_args);
                record(*else_target, else_args);
            }
            Term::Ret { value } => {
                if let Some(v) = value {
                    seed(v, &mut live, &mut work);
                }
            }
        }
        for ins in &b.instrs {
            match &ins.op {
                Op::Store { addr, value } => {
                    seed(addr, &mut live, &mut work);
                    seed(value, &mut live, &mut work);
                }
                Op::Output { value } => seed(value, &mut live, &mut work),
                Op::Call { args, .. } => {
                    for a in args {
                        seed(a, &mut live, &mut work);
                    }
                }
                // Load addresses only matter if the loaded value does;
                // handled transitively below.
                _ => {}
            }
        }
    }

    while let Some(v) = work.pop() {
        let vi = v.0 as usize;
        if let Some(op) = producer[vi] {
            for o in op.operands() {
                if let Some(u) = o.value() {
                    if live.insert(u) {
                        work.push(u);
                    }
                }
            }
        }
        for &o in &feeders[vi] {
            if let Some(u) = o.value() {
                if live.insert(u) {
                    work.push(u);
                }
            }
        }
    }
    live
}

/// Static instructions whose result value never influences observable
/// behaviour — bit flips in them are guaranteed-masked. Sorted by sid.
pub fn dead_values(module: &Module) -> Vec<InstrId> {
    let mut dead = Vec::new();
    for f in &module.functions {
        let live = observable_live(f);
        for ins in f.instrs() {
            if let Some(r) = ins.result {
                if !live.contains(r) {
                    dead.push(ins.sid);
                }
            }
        }
    }
    dead.sort();
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_ir::Module;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "live").unwrap()
    }

    #[test]
    fn used_values_are_live() {
        let m = compile("fn main(x: int) { let a = x + 1; output a; }");
        let f = m.entry_func();
        let live = observable_live(f);
        let add = f.instrs().find(|i| i.op.mnemonic() == "add").unwrap();
        assert!(live.contains(add.result.unwrap()));
        assert!(dead_values(&m).is_empty());
    }

    #[test]
    fn loop_counter_is_live_through_condition() {
        let m = compile(
            "fn main(n: int) { let s = 0; for (i = 0; i < n; i = i + 1) { s = s + 2; } output s; }",
        );
        // Every value is live: i feeds the branch condition, s the output.
        assert!(dead_values(&m).is_empty());
    }

    #[test]
    fn block_liveness_crosses_blocks() {
        let m = compile(
            r#"fn main(x: int) {
                let a = x * 3;
                if (x > 0) { output a; } else { output 0; }
            }"#,
        );
        let f = m.entry_func();
        let cfg = Cfg::new(f);
        let li = live_in(f, &cfg);
        let mul = f.instrs().find(|i| i.op.mnemonic() == "mul").unwrap();
        let r = mul.result.unwrap();
        // a is live into the then-branch block.
        let then_b = (1..f.num_blocks()).find(|&b| li[b].contains(r));
        assert!(then_b.is_some(), "mul result live in no successor block");
    }

    #[test]
    fn value_set_roundtrip() {
        let mut s = ValueSet::new(130);
        assert!(s.insert(ValueId(129)));
        assert!(!s.insert(ValueId(129)));
        assert!(s.contains(ValueId(129)));
        s.remove(ValueId(129));
        assert!(!s.contains(ValueId(129)));
        assert_eq!(s.iter().count(), 0);
    }
}

//! Context-sensitive interprocedural bit-precision summaries.
//!
//! [`BitSummary`] replaces the coarse three-channel `param → {sink, ret,
//! mem}` function summaries with a **per-bit transfer relation**: for
//! every return-value bit we record exactly which bits of each parameter
//! can influence it, alongside per-param-bit sink and memory channels and
//! a ⊤ *environment* channel for return bits fed by memory rather than
//! parameters. Summaries are computed bottom-up over the call-graph SCCs
//! (each SCC iterated to a joint fixpoint — the lattice of bit masks is
//! finite, so the iteration is its own widening) and composed at call
//! sites per result bit instead of all-or-nothing:
//!
//! * the old composition marked *every* ret-reaching param bit live as
//!   soon as *any* bit of the call result mattered;
//! * [`compose_ret`] unions only the transfer rows of the result bits
//!   that actually matter, so `output f(x) & 1` keeps param bits that
//!   feed only the high bits of `f`'s return provably masked.
//!
//! **k=1 call-site specialization.** For small non-recursive callees
//! called with at least one *literal constant* argument, the summary is
//! recomputed per call site with those parameters pinned to their
//! constants ([`crate::reach`]'s `ConstEnv`). The pinning is sound in
//! every single-fault run: neither a literal operand nor the callee's
//! parameter copy is an injectable value definition, so the parameter
//! holds its literal value whatever single fault is injected elsewhere.
//! Because constant refinement only ever *shrinks* a transfer
//! contribution, a specialized summary is never less precise than the
//! context-insensitive join (property-tested below).
//!
//! **Interprocedural value facts.** [`analyze_module_interproc`] runs the
//! per-value abstract-interpretation engine with call boundaries wired
//! up: a bottom-up pass computes return-value facts (recursive cliques
//! iterated with the domain's widening), then a top-down pass seeds
//! callee parameters with the join of the incoming argument facts over
//! all call sites (widened after a few rounds so recursion converges),
//! and a final pass produces per-value facts under both refinements.
//! `memdep` consumes the tighter address intervals; `lint` consumes the
//! return facts for constant-return findings.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::dataflow::{analyze_values_ctx, AbstractDomain, ModuleValueFacts, ValueFacts};
use crate::reach::{solve_function, ConstEnv, FULL, NO_CENV};
use peppa_ir::{Function, Module, Op, Operand, Term, ValueId};
use std::collections::HashMap;

/// Per-function, per-bit interprocedural transfer summary.
#[derive(Debug, Clone, PartialEq)]
pub struct BitSummary {
    /// `ret_transfer[i][b]`: bits of parameter `i` that can influence
    /// bit `b` of the return value. Rows beyond the return type's width
    /// stay zero; callers index rows with the *canonical* matter mask of
    /// the call result, whose high groups always include the in-width
    /// representative bit.
    pub ret_transfer: Vec<Box<[u64; 64]>>,
    /// Bits of each parameter that can reach an in-callee sink — branch
    /// condition, address, divisor, allocation size, output —
    /// transitively through nested calls.
    pub sink_bits: Vec<u64>,
    /// Bits of each parameter that can reach any stored-to-memory value.
    pub mem_bits: Vec<u64>,
    /// ⊤ environment channel: return bits that memory loads (or callees'
    /// environment channels) can influence — return deviation *not*
    /// explained by parameter deviation. Constant-return claims require
    /// this to be empty on the claimed bits.
    pub env_ret: u64,
}

impl BitSummary {
    fn empty(nparams: usize) -> BitSummary {
        BitSummary {
            ret_transfer: (0..nparams).map(|_| Box::new([0u64; 64])).collect(),
            sink_bits: vec![0; nparams],
            mem_bits: vec![0; nparams],
            env_ret: 0,
        }
    }

    /// Or-merges `other` into `self`; reports whether anything grew.
    fn merge(&mut self, other: &BitSummary) -> bool {
        let mut changed = false;
        for i in 0..self.sink_bits.len() {
            for b in 0..64 {
                let cur = self.ret_transfer[i][b];
                if cur | other.ret_transfer[i][b] != cur {
                    self.ret_transfer[i][b] |= other.ret_transfer[i][b];
                    changed = true;
                }
            }
            for (slot, m) in [
                (&mut self.sink_bits[i], other.sink_bits[i]),
                (&mut self.mem_bits[i], other.mem_bits[i]),
            ] {
                if *slot | m != *slot {
                    *slot |= m;
                    changed = true;
                }
            }
        }
        if self.env_ret | other.env_ret != self.env_ret {
            self.env_ret |= other.env_ret;
            changed = true;
        }
        changed
    }

    /// Param-`i` bits that can influence anything at all (any channel).
    pub fn param_reach(&self, i: usize) -> u64 {
        let mut m = self.sink_bits[i] | self.mem_bits[i];
        for b in 0..64 {
            m |= self.ret_transfer[i][b];
        }
        m
    }

    /// Param-`i` bits that can influence some bit of the return value.
    pub fn param_ret_bits(&self, i: usize) -> u64 {
        let mut m = 0;
        for b in 0..64 {
            m |= self.ret_transfer[i][b];
        }
        m
    }
}

/// Per-bit call composition: bits of param `i` that can influence the
/// result bits in `r`, i.e. the union of the transfer rows `r` selects.
pub fn compose_ret(s: &BitSummary, i: usize, r: u64) -> u64 {
    let mut m = 0;
    let mut rr = r;
    while rr != 0 {
        let b = rr.trailing_zeros() as usize;
        rr &= rr - 1;
        m |= s.ret_transfer[i][b];
    }
    m
}

/// One function's candidate summary given the current table (for callee
/// composition) and a const-environment (empty for the base summary,
/// param pins for k=1 specialization).
fn summarize_one(f: &Function, sums: &[BitSummary], cenv: ConstEnv) -> BitSummary {
    let np = f.params.len();
    let mut out = BitSummary::empty(np);

    let sink = solve_function(
        f,
        0,
        true,
        |_| 0,
        |_, g, i, r| {
            let s = &sums[g.0 as usize];
            s.sink_bits[i] | compose_ret(s, i, r)
        },
        cenv,
    );
    out.sink_bits.copy_from_slice(&sink[..np]);

    let mem = solve_function(
        f,
        0,
        false,
        |_| FULL,
        |_, g, i, r| {
            let s = &sums[g.0 as usize];
            s.mem_bits[i] | compose_ret(s, i, r)
        },
        cenv,
    );
    out.mem_bits.copy_from_slice(&mem[..np]);

    let ret_w = f.ret.map(|t| t.bits()).unwrap_or(0);
    for b in 0..ret_w {
        let m = solve_function(
            f,
            1u64 << b,
            false,
            |_| 0,
            |_, g, i, r| compose_ret(&sums[g.0 as usize], i, r),
            cenv,
        );
        for (i, &mi) in m.iter().enumerate().take(np) {
            out.ret_transfer[i][b as usize] = mi;
        }
        // Environment channel: a load result with matter feeds this ret
        // bit from memory; a call result whose matter overlaps the
        // callee's environment channel inherits it transitively.
        let mut env = false;
        for ins in f.instrs() {
            if let Some(rv) = ins.result {
                match &ins.op {
                    Op::Load { .. } if m[rv.0 as usize] != 0 => env = true,
                    Op::Call { func, .. }
                        if sums[func.0 as usize].env_ret & m[rv.0 as usize] != 0 =>
                    {
                        env = true
                    }
                    _ => {}
                }
            }
        }
        if env {
            out.env_ret |= 1 << b;
        }
    }
    out
}

/// Computes the per-bit [`BitSummary`] for every function, bottom-up
/// over the call-graph SCCs. Each SCC is iterated to a joint fixpoint:
/// the summary lattice is a finite product of 64-bit masks that only
/// ever grows, so convergence needs no separate widening operator.
pub fn summarize_bits(module: &Module, cg: &CallGraph) -> Vec<BitSummary> {
    let mut sums: Vec<BitSummary> = module
        .functions
        .iter()
        .map(|f| BitSummary::empty(f.params.len()))
        .collect();
    for comp in &cg.sccs {
        loop {
            let mut changed = false;
            for &fid in comp {
                let fi = fid.0 as usize;
                let cand = summarize_one(&module.functions[fi], &sums, NO_CENV);
                changed |= sums[fi].merge(&cand);
            }
            if !changed {
                break;
            }
        }
    }
    sums
}

/// Callee-size ceiling for k=1 specialization: beyond this the summary
/// join is close enough and re-solving per call site stops paying.
const SPEC_MAX_INSTRS: usize = 64;

/// Total specialization budget per module (deterministic: call sites are
/// visited in static order).
const SPEC_MAX_SITES: usize = 256;

/// k=1 call-site specialization: per-site summaries for small
/// non-recursive callees with at least one literal-constant argument,
/// keyed by call-site sid. Only strictly-more-precise summaries are
/// kept; [`ModuleSummaries::at_site`] falls back to the base table.
pub fn specialize(
    module: &Module,
    cg: &CallGraph,
    base: &[BitSummary],
) -> HashMap<u32, BitSummary> {
    let mut spec = HashMap::new();
    for cs in &cg.call_sites {
        if spec.len() >= SPEC_MAX_SITES {
            break;
        }
        if cg.is_recursive(cs.callee) {
            continue;
        }
        let gf = module.func(cs.callee);
        if gf.instrs().count() > SPEC_MAX_INSTRS {
            continue;
        }
        let caller = module.func(cs.caller);
        let Some(ins) = caller.instrs().find(|i| i.sid == cs.sid) else {
            continue;
        };
        let Op::Call { args, .. } = &ins.op else {
            continue;
        };
        let pins: Vec<Option<u64>> = args
            .iter()
            .map(|a| match a {
                Operand::Const(c) => Some(c.bits),
                Operand::Value(_) => None,
            })
            .collect();
        if pins.iter().all(|p| p.is_none()) {
            continue;
        }
        let cenv = |v: ValueId| pins.get(v.0 as usize).copied().flatten();
        let s = summarize_one(gf, base, &cenv);
        if s != base[cs.callee.0 as usize] {
            spec.insert(cs.sid.0, s);
        }
    }
    spec
}

/// Base + specialized summaries for a module.
#[derive(Debug, Clone)]
pub struct ModuleSummaries {
    pub base: Vec<BitSummary>,
    /// k=1 specialized summaries keyed by call-site sid.
    pub spec: HashMap<u32, BitSummary>,
}

impl ModuleSummaries {
    pub fn compute(module: &Module, cg: &CallGraph) -> ModuleSummaries {
        let base = summarize_bits(module, cg);
        let spec = specialize(module, cg, &base);
        ModuleSummaries { base, spec }
    }

    /// The summary governing one call site: its specialization when one
    /// exists, the callee's base summary otherwise.
    pub fn at_site(&self, sid: peppa_ir::InstrId, callee: peppa_ir::FuncId) -> &BitSummary {
        self.spec
            .get(&sid.0)
            .unwrap_or(&self.base[callee.0 as usize])
    }
}

/// Interprocedural per-value facts: the result of
/// [`analyze_module_interproc`].
#[derive(Debug, Clone)]
pub struct InterprocFacts<D> {
    /// Per-value facts under interprocedural parameter and return
    /// refinement. Sound for every concrete fault-free execution from
    /// the module entry.
    pub facts: ModuleValueFacts<D>,
    /// Return-value fact per function: the join of the facts at every
    /// `ret` operand. `None` for void functions.
    pub ret: Vec<Option<D>>,
    /// The parameter seeds the final pass used (join over call-site
    /// arguments; ⊤ for the entry and never-called functions).
    pub params: Vec<Vec<D>>,
}

/// How many top-down rounds join precisely before widening kicks in.
const INTERPROC_WIDEN_AFTER: u32 = 3;

/// Belt-and-braces cap on top-down rounds; the widening operator is what
/// actually guarantees convergence.
const INTERPROC_MAX_ROUNDS: u32 = 64;

/// Runs the per-value engine with call boundaries connected:
///
/// 1. **Bottom-up returns** — per SCC (callees first), compute each
///    function's return fact with ⊤ parameters, iterating recursive
///    cliques until the monotone return join stabilizes.
/// 2. **Top-down parameters** — seed each callee's parameters with the
///    join of the argument facts over all its call sites, rounds widened
///    (via [`AbstractDomain::widen`]) after [`INTERPROC_WIDEN_AFTER`] so
///    recursive parameter chains converge.
/// 3. **Final facts** — one pass per function under both refinements.
pub fn analyze_module_interproc<D: AbstractDomain>(
    module: &Module,
    cg: &CallGraph,
) -> InterprocFacts<D> {
    let n = module.functions.len();
    let cfgs: Vec<Cfg> = module.functions.iter().map(Cfg::new).collect();
    let tops = |f: &Function| -> Vec<D> { f.params.iter().map(|&t| D::top(t)).collect() };

    // Phase 1: bottom-up return facts with ⊤ parameters.
    let mut ret: Vec<Option<D>> = vec![None; n];
    for comp in &cg.sccs {
        // Recursive cliques: in-clique call results start at ⊤ (ret
        // None) and the per-function return join only grows, so a
        // bounded re-iteration reaches the clique fixpoint.
        for _ in 0..=comp.len() {
            let mut changed = false;
            for &fid in comp {
                let fi = fid.0 as usize;
                let f = &module.functions[fi];
                let vf = analyze_values_ctx(f, &cfgs[fi], &tops(f), &|g, ty| {
                    ret[g.0 as usize].clone().unwrap_or_else(|| D::top(ty))
                });
                let rf = ret_join(f, &vf);
                let next = match (&ret[fi], rf) {
                    (Some(cur), Some(new)) => Some(cur.join(&new)),
                    (None, new) => new,
                    (cur, None) => cur.clone(),
                };
                if next != ret[fi] {
                    ret[fi] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    // Phase 2: top-down parameter seeds against the fixed return facts.
    // `None` = not yet reached by any call; the entry starts at ⊤.
    let mut params: Vec<Option<Vec<D>>> = vec![None; n];
    params[module.entry.0 as usize] = Some(tops(module.entry_func()));
    for round in 0..INTERPROC_MAX_ROUNDS {
        let mut changed = false;
        for comp in cg.sccs.iter().rev() {
            for &fid in comp {
                let fi = fid.0 as usize;
                let Some(seed) = params[fi].clone() else {
                    continue;
                };
                let f = &module.functions[fi];
                let vf = analyze_values_ctx(f, &cfgs[fi], &seed, &|g, ty| {
                    ret[g.0 as usize].clone().unwrap_or_else(|| D::top(ty))
                });
                for ins in f.instrs() {
                    if let Op::Call { func, args } = &ins.op {
                        let gi = func.0 as usize;
                        let incoming: Vec<D> = args.iter().map(|a| vf.of_operand(a)).collect();
                        match &mut params[gi] {
                            None => {
                                params[gi] = Some(incoming);
                                changed = true;
                            }
                            Some(cur) => {
                                for (c, inc) in cur.iter_mut().zip(&incoming) {
                                    let joined = c.join(inc);
                                    let next = if round >= INTERPROC_WIDEN_AFTER {
                                        c.widen(&joined)
                                    } else {
                                        joined
                                    };
                                    if next != *c {
                                        *c = next;
                                        changed = true;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Phase 3: final facts (and refined return facts) per function.
    // Never-called functions keep ⊤ seeds so their facts still exist.
    let final_params: Vec<Vec<D>> = module
        .functions
        .iter()
        .enumerate()
        .map(|(fi, f)| params[fi].clone().unwrap_or_else(|| tops(f)))
        .collect();
    let per_func: Vec<ValueFacts<D>> = module
        .functions
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            analyze_values_ctx(f, &cfgs[fi], &final_params[fi], &|g, ty| {
                ret[g.0 as usize].clone().unwrap_or_else(|| D::top(ty))
            })
        })
        .collect();
    let final_ret: Vec<Option<D>> = module
        .functions
        .iter()
        .enumerate()
        .map(|(fi, f)| ret_join(f, &per_func[fi]).or_else(|| ret[fi].clone()))
        .collect();

    InterprocFacts {
        facts: ModuleValueFacts { per_func },
        ret: final_ret,
        params: final_params,
    }
}

/// Join of the facts at every `ret <operand>` in `f`; `None` when no
/// block returns a value.
fn ret_join<D: AbstractDomain>(f: &Function, vf: &ValueFacts<D>) -> Option<D> {
    let mut out: Option<D> = None;
    for b in &f.blocks {
        if let Term::Ret { value: Some(o) } = &b.term {
            let fact = vf.of_operand(o);
            out = Some(match out {
                Some(cur) => cur.join(&fact),
                None => fact,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knownbits::KnownBits;
    use crate::range::AbsRange;
    use peppa_ir::FuncId;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "summary").unwrap()
    }

    fn fid(m: &Module, name: &str) -> FuncId {
        m.func_by_name(name).unwrap()
    }

    #[test]
    fn per_bit_transfer_separates_return_bits() {
        // `low` routes param bits 0..8 to ret bits 0..8; bit 40 of the
        // param can only influence ret bits ≥ 40 (via the add's carries
        // it's even exact: the AND kills it).
        let m = compile(
            r#"fn low(x: int) -> int { return x & 255; }
               fn main(x: int) { output low(x); }"#,
        );
        let cg = CallGraph::new(&m);
        let sums = summarize_bits(&m, &cg);
        let s = &sums[fid(&m, "low").0 as usize];
        // Ret bit 3 is fed by param bit 3 only.
        assert_eq!(s.ret_transfer[0][3], 1 << 3);
        // Ret bits above 7 are fed by nothing.
        assert_eq!(s.ret_transfer[0][40], 0);
        // Channel views.
        assert_eq!(s.param_ret_bits(0), 255);
        assert_eq!(s.sink_bits[0], 0);
        assert_eq!(s.mem_bits[0], 0);
        assert_eq!(s.env_ret, 0, "no loads feed the return");
    }

    #[test]
    fn env_channel_marks_memory_fed_returns() {
        let m = compile(
            r#"global int g[1];
               fn peek(i: int) -> int { return g[0]; }
               fn main(x: int) { g[0] = x; output peek(0); }"#,
        );
        let cg = CallGraph::new(&m);
        let sums = summarize_bits(&m, &cg);
        let s = &sums[fid(&m, "peek").0 as usize];
        assert_ne!(s.env_ret, 0, "load-fed return must set the env channel");
        // The unused index param reaches nothing but the load address
        // computation (a sink).
        assert_eq!(s.param_ret_bits(0), 0);
    }

    #[test]
    fn specialization_is_never_less_precise_and_masks_more() {
        // `modp(x, m) = x % m`: context-insensitively the divisor is
        // unknown so every dividend bit may matter; pinned to 2^16 the
        // dividend's middle bits provably cannot reach the remainder.
        let m = compile(
            r#"fn modp(x: int, m: int) -> int { return x % m; }
               fn main(x: int) { output modp(x, 65536); }"#,
        );
        let cg = CallGraph::new(&m);
        let sums = ModuleSummaries::compute(&m, &cg);
        let g = fid(&m, "modp");
        let site = cg.sites_calling(g).next().unwrap();
        let base = &sums.base[g.0 as usize];
        let spec = sums.at_site(site.sid, g);
        assert_ne!(
            spec as *const _, base as *const _,
            "const-arg site must specialize"
        );
        // ⊆ base on every channel and row.
        for i in 0..2 {
            assert_eq!(spec.sink_bits[i] & !base.sink_bits[i], 0);
            assert_eq!(spec.mem_bits[i] & !base.mem_bits[i], 0);
            for b in 0..64 {
                assert_eq!(spec.ret_transfer[i][b] & !base.ret_transfer[i][b], 0);
            }
        }
        // Strictly more precise on the dividend: bits 16..63 except the
        // sign cannot reach the remainder once m is pinned to 2^16.
        let base_reach = base.param_ret_bits(0);
        let spec_reach = spec.param_ret_bits(0);
        assert!(
            spec_reach < base_reach,
            "{spec_reach:#x} !< {base_reach:#x}"
        );
        assert_eq!(spec_reach & (1 << 30), 0, "middle bit masked when pinned");
    }

    #[test]
    fn recursive_and_mutually_recursive_summaries_converge() {
        let m = compile(
            r#"fn even(n: int) -> int {
                   if (n == 0) { return 1; }
                   return odd(n - 1);
               }
               fn odd(n: int) -> int {
                   if (n == 0) { return 0; }
                   return even(n - 1);
               }
               fn fib(n: int) -> int {
                   if (n < 2) { return n; }
                   return fib(n - 1) + fib(n - 2);
               }
               fn main(n: int) { output even(n) + fib(n); }"#,
        );
        let cg = CallGraph::new(&m);
        let sums = summarize_bits(&m, &cg);
        // Every param bit of the recursive cliques reaches the branch
        // condition (a sink): the fixpoint must reach FULL, not hang.
        for name in ["even", "odd", "fib"] {
            let s = &sums[fid(&m, name).0 as usize];
            assert_eq!(s.sink_bits[0], FULL, "{name}");
        }
        // No specialization for recursive callees even with const args.
        let spec = specialize(&m, &cg, &sums);
        for cs in &cg.call_sites {
            if cg.is_recursive(cs.callee) {
                assert!(!spec.contains_key(&cs.sid.0));
            }
        }
    }

    #[test]
    fn interproc_ranges_widen_recursive_params_to_convergence() {
        // `count` grows its accumulator each level: without widening the
        // top-down seed would climb forever; with it the rounds stop and
        // the result still over-approximates every concrete value.
        let m = compile(
            r#"fn count(n: int, acc: int) -> int {
                   if (n <= 0) { return acc; }
                   return count(n - 1, acc + 3);
               }
               fn main(n: int) { output count(7, 0); }"#,
        );
        let cg = CallGraph::new(&m);
        let ip = analyze_module_interproc::<AbsRange>(&m, &cg);
        let f = fid(&m, "count").0 as usize;
        // Concrete acc values are 0,3,...,21: the seed must contain them.
        match &ip.params[f][1] {
            AbsRange::Int(r) => {
                assert!(r.lo <= 0 && r.hi >= 21, "[{}, {}]", r.lo, r.hi);
            }
            other => panic!("int param got {other:?}"),
        }
        // And the return fact must contain 21 (= count(7, 0)).
        match ip.ret[f].as_ref().expect("count returns") {
            AbsRange::Int(r) => assert!(r.lo <= 21 && 21 <= r.hi),
            other => panic!("int ret got {other:?}"),
        }
    }

    #[test]
    fn interproc_known_bits_flow_through_calls_both_ways() {
        let m = compile(
            r#"fn mask(x: int) -> int { return x & 255; }
               fn main(x: int) { output mask(x) & 65535; }"#,
        );
        let cg = CallGraph::new(&m);
        let ip = analyze_module_interproc::<KnownBits>(&m, &cg);
        // Bottom-up: mask's return has bits 8..63 known zero.
        let f = fid(&m, "mask").0 as usize;
        let rk = ip.ret[f].as_ref().expect("mask returns");
        assert_eq!(rk.zeros & !255, !255 & FULL);
    }

    #[test]
    fn uncalled_functions_keep_top_seeds() {
        let m = compile(
            r#"fn orphan(x: int) -> int { return x + 1; }
               fn main(x: int) { output x; }"#,
        );
        let cg = CallGraph::new(&m);
        let ip = analyze_module_interproc::<AbsRange>(&m, &cg);
        let f = fid(&m, "orphan").0 as usize;
        match &ip.params[f][0] {
            AbsRange::Int(r) => assert!(r.lo == i64::MIN || r.lo < -1_000_000_000),
            other => panic!("{other:?}"),
        }
    }
}

//! Static SDC-masking prediction.
//!
//! For every value-producing static instruction, estimate the fraction
//! of single-bit flips in its result that reach an observable sink
//! (output words, the entry function's return value, stored memory)
//! instead of being masked on the way. The estimate is a backward
//! per-bit *sensitivity* fixpoint over the def-use graph:
//!
//! * sinks seed sensitivity (output = 1.0, stores and non-entry returns
//!   slightly less, branch conditions a control-flow factor);
//! * each use propagates its result sensitivity to its operands through
//!   an opcode-specific per-bit attenuation — AND/OR with known masks
//!   (from [`crate::knownbits`]) kill or halve bits, truncating casts
//!   kill high bits, comparisons observe mostly magnitude (high bits),
//!   float quantization (`floor`, `fptosi`) suppresses low mantissa
//!   bits, dead values propagate nothing;
//! * contributions combine by `max`, so the fixpoint converges (every
//!   attenuation factor is ≤ 1 and the sink values bound the lattice).
//!
//! The per-instruction *vulnerability score* is the mean sensitivity
//! over the result's typed bit width — comparable against FI-measured
//! per-instruction SDC probability (the `repro static-rank` experiment
//! computes their Spearman correlation).
//!
//! The opcode-class attenuation consumes the same [`OpClass`] mapping
//! the §4.2.2 pruning heuristic uses (`Op::class`), so the "boundary"
//! classes the paper singles out are damped consistently in both places.

// Sensitivity vectors are indexed by bit position throughout; `for i in
// 0..64` with explicit indexing reads better than zipped iterators when
// the bit number itself drives the weight.
#![allow(clippy::needless_range_loop)]

use crate::cfg::Cfg;
use crate::dataflow::{analyze_values, ValueFacts};
use crate::knownbits::KnownBits;
use crate::liveness::observable_live;
use peppa_ir::{
    BinOp, CastKind, FuncId, Function, IPred, Module, Op, OpClass, Operand, Term, Ty, UnOp, ValueId,
};

/// Per-bit sensitivity of one value.
type Sens = [f64; 64];

const ZERO: Sens = [0.0; 64];

/// Result of the static predictor.
#[derive(Debug, Clone)]
pub struct SdcPrediction {
    /// `score[sid]`: predicted vulnerability in `[0, 1]` for value-
    /// producing instructions, `None` for void ones.
    pub score: Vec<Option<f64>>,
}

/// Per-opcode-class damping, shared conceptually with the pruning
/// boundary classes: classes the paper found to "differentiate SDC
/// probability from their data-dependent neighbours" attenuate the
/// backward flow.
fn class_attenuation(c: OpClass) -> f64 {
    match c {
        OpClass::Arithmetic => 1.0,
        OpClass::Compare => 0.7,
        OpClass::Logic => 0.85,
        OpClass::BitManip => 0.8,
        OpClass::Pointer => 0.95,
        OpClass::Memory => 0.9,
        OpClass::Call => 0.8,
        OpClass::Output => 1.0,
    }
}

fn mean(s: &Sens) -> f64 {
    s.iter().sum::<f64>() / 64.0
}

fn smax(s: &Sens) -> f64 {
    s.iter().copied().fold(0.0, f64::max)
}

fn flat(x: f64) -> Sens {
    [x; 64]
}

/// Weight of f64 bit `i` for "does a flip change the compared /
/// quantized value observably": low mantissa bits rarely matter,
/// exponent and sign almost always do.
fn f64_bit_weight(i: usize) -> f64 {
    if i >= 63 {
        1.0
    } else if i >= 52 {
        0.9
    } else {
        0.05 + 0.55 * (i as f64 / 52.0)
    }
}

/// Weight of integer bit `i` for crossing an ordered-compare threshold.
fn int_cmp_weight(i: usize) -> f64 {
    0.05 + 0.95 * (i as f64 / 63.0)
}

/// Weight of address bit `i`: low bits corrupt to a *valid* nearby word
/// (data corruption → possible SDC); high bits fly out of the memory
/// segment (trap → crash, not SDC).
fn addr_weight(i: usize) -> f64 {
    0.05 + 0.45 * (1.0 - i as f64 / 63.0)
}

/// One function's sensitivity solver state.
struct FuncSens<'m> {
    f: &'m Function,
    kb: &'m ValueFacts<KnownBits>,
    /// Sink factor for `ret` (1.0 for the entry function — its return
    /// value is part of the SDC comparison — 0.8 elsewhere).
    ret_factor: f64,
    /// Per-callee argument factor (0 when the callee has no effectful
    /// sink at all).
    call_effect: Vec<f64>,
    /// Per-callee, per-parameter reach masks from the interprocedural
    /// bit summaries: which argument bits can influence *anything* in
    /// the callee (sink, return, or stored memory). Bits outside the
    /// mask contribute zero sensitivity; a fully-dead argument drops to
    /// zero instead of the old flat callee factor.
    arg_reach: &'m [Vec<u64>],
}

impl FuncSens<'_> {
    /// Runs the max-combine fixpoint; returns per-value sensitivities.
    fn solve(&self) -> Vec<Sens> {
        let nv = self.f.value_types.len();
        let mut sens: Vec<Sens> = vec![ZERO; nv];
        let live = observable_live(self.f);

        const MAX_PASSES: u32 = 100;
        for _ in 0..MAX_PASSES {
            let mut next: Vec<Sens> = vec![ZERO; nv];
            let bump = |v: ValueId, c: &Sens, next: &mut Vec<Sens>| {
                let e = &mut next[v.0 as usize];
                for i in 0..64 {
                    if c[i] > e[i] {
                        e[i] = c[i];
                    }
                }
            };

            for b in &self.f.blocks {
                for ins in &b.instrs {
                    let rs = ins.result.map(|r| sens[r.0 as usize]).unwrap_or(ZERO);
                    let att = class_attenuation(ins.op.class());
                    for (idx, opnd) in ins.op.operands().iter().enumerate() {
                        if let Some(v) = opnd.value() {
                            let mut c = self.contribution(ins, idx, &rs);
                            for x in c.iter_mut() {
                                *x *= att;
                            }
                            bump(v, &c, &mut next);
                        }
                    }
                }
                match &b.term {
                    Term::Br { target, args } => {
                        self.flow_args(*target, args, &sens, &mut |v, c| bump(v, c, &mut next));
                    }
                    Term::CondBr {
                        cond,
                        then_target,
                        then_args,
                        else_target,
                        else_args,
                    } => {
                        if let Some(v) = cond.value() {
                            let mut c = ZERO;
                            c[0] = 0.6;
                            bump(v, &c, &mut next);
                        }
                        self.flow_args(*then_target, then_args, &sens, &mut |v, c| {
                            bump(v, c, &mut next)
                        });
                        self.flow_args(*else_target, else_args, &sens, &mut |v, c| {
                            bump(v, c, &mut next)
                        });
                    }
                    Term::Ret { value } => {
                        if let Some(v) = value.as_ref().and_then(|o| o.value()) {
                            bump(v, &flat(self.ret_factor), &mut next);
                        }
                    }
                }
            }

            // Dead values stay at zero whatever the graph says.
            for v in 0..nv {
                if !live.contains(ValueId(v as u32)) {
                    next[v] = ZERO;
                }
            }

            let mut delta: f64 = 0.0;
            for v in 0..nv {
                for i in 0..64 {
                    delta = delta.max((next[v][i] - sens[v][i]).abs());
                }
            }
            sens = next;
            if delta < 1e-6 {
                break;
            }
        }
        sens
    }

    /// Branch arguments inherit the receiving parameter's sensitivity.
    fn flow_args(
        &self,
        target: peppa_ir::BlockId,
        args: &[Operand],
        sens: &[Sens],
        bump: &mut dyn FnMut(ValueId, &Sens),
    ) {
        for (&p, a) in self.f.blocks[target.0 as usize].params.iter().zip(args) {
            if let Some(v) = a.value() {
                bump(v, &sens[p.0 as usize]);
            }
        }
    }

    /// Known-bits of one operand.
    fn kb_of(&self, o: &Operand) -> KnownBits {
        self.kb.of_operand(o)
    }

    /// Sensitivity contribution of use `ins` to its `idx`-th operand,
    /// given the use's result sensitivity `rs`.
    fn contribution(&self, ins: &peppa_ir::Instr, idx: usize, rs: &Sens) -> Sens {
        let ops = ins.op.operands();
        match &ins.op {
            Op::Bin { op, a, b } => {
                let other = if idx == 0 { b } else { a };
                match op {
                    BinOp::Add | BinOp::Sub => *rs,
                    BinOp::Mul => {
                        // A known-zero co-factor masks everything.
                        if self.kb_of(other).as_const() == Some(0) {
                            return ZERO;
                        }
                        // A flip at bit i perturbs bits >= i of the
                        // product.
                        let mut c = ZERO;
                        let mut run = 0.0f64;
                        for i in (0..64).rev() {
                            run = run.max(rs[i]);
                            c[i] = run;
                        }
                        c
                    }
                    BinOp::SDiv | BinOp::SRem => {
                        if idx == 0 {
                            *rs
                        } else {
                            flat(smax(rs) * 0.8)
                        }
                    }
                    BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => {
                        // Rounding discards low mantissa bits when
                        // magnitudes differ (quantization masking).
                        let mut c = ZERO;
                        for i in 0..64 {
                            c[i] = rs[i] * (0.4 + 0.6 * f64_bit_weight(i));
                        }
                        c
                    }
                    BinOp::And => {
                        let okb = self.kb_of(other);
                        let mut c = ZERO;
                        for i in 0..64 {
                            let m = 1u64 << i;
                            let pass = if okb.zeros & m != 0 {
                                0.0 // masked: AND with known 0
                            } else if okb.ones & m != 0 {
                                1.0
                            } else {
                                0.5
                            };
                            c[i] = rs[i] * pass;
                        }
                        c
                    }
                    BinOp::Or => {
                        let okb = self.kb_of(other);
                        let mut c = ZERO;
                        for i in 0..64 {
                            let m = 1u64 << i;
                            let pass = if okb.ones & m != 0 {
                                0.0 // masked: OR with known 1
                            } else if okb.zeros & m != 0 {
                                1.0
                            } else {
                                0.5
                            };
                            c[i] = rs[i] * pass;
                        }
                        c
                    }
                    BinOp::Xor => *rs,
                    BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                        let ty = Ty::I64; // shift width from operand type below
                        let _ = ty;
                        let w = self.f.operand_ty(&ops[0]).bits();
                        let amt = self.kb_of(if idx == 0 { other } else { &ops[1] });
                        // For the shifted operand with a known amount the
                        // bit mapping is exact; otherwise smear.
                        let known_amt = {
                            let m = (w as u64 - 1).max(1);
                            if amt.known() & m == m {
                                Some((amt.ones & m) as u32)
                            } else {
                                None
                            }
                        };
                        if idx == 1 {
                            // The shift amount: small changes reshuffle
                            // everything.
                            return flat(smax(rs) * 0.6);
                        }
                        match known_amt {
                            Some(s) => {
                                let mut c = ZERO;
                                for i in 0..64usize {
                                    let dst = match op {
                                        BinOp::Shl => i.checked_add(s as usize),
                                        _ => i.checked_sub(s as usize),
                                    };
                                    if let Some(d) = dst {
                                        if d < 64 {
                                            c[i] = rs[d];
                                        }
                                    }
                                }
                                c
                            }
                            None => flat(mean(rs) * 0.5),
                        }
                    }
                }
            }
            Op::Un { op, .. } => match op {
                UnOp::Not => *rs,
                UnOp::FNeg => *rs,
                UnOp::FAbs => {
                    let mut c = *rs;
                    c[63] = 0.0; // sign flips are absorbed by |x|
                    c
                }
                UnOp::Floor => {
                    // Quantization: fractional mantissa bits die.
                    let mut c = ZERO;
                    for i in 0..64 {
                        let w = if i >= 52 {
                            1.0
                        } else {
                            0.05 + 0.5 * (i as f64 / 52.0)
                        };
                        c[i] = rs[i] * w;
                    }
                    c
                }
                UnOp::Sqrt | UnOp::Sin | UnOp::Cos | UnOp::Exp | UnOp::Log => {
                    let m = smax(rs);
                    let mut c = ZERO;
                    for i in 0..64 {
                        c[i] = m * f64_bit_weight(i) * 0.8;
                    }
                    c
                }
            },
            Op::Icmp { pred, .. } => {
                let s0 = rs[0];
                let mut c = ZERO;
                match pred {
                    IPred::Eq | IPred::Ne => {
                        // Any flipped bit almost surely breaks equality.
                        for i in 0..64 {
                            c[i] = s0 * 0.9;
                        }
                    }
                    _ => {
                        for i in 0..64 {
                            c[i] = s0 * int_cmp_weight(i);
                        }
                    }
                }
                c
            }
            Op::Fcmp { .. } => {
                let s0 = rs[0];
                let mut c = ZERO;
                for i in 0..64 {
                    c[i] = s0 * f64_bit_weight(i);
                }
                c
            }
            Op::Select { .. } => {
                if idx == 0 {
                    let mut c = ZERO;
                    c[0] = mean(rs).max(smax(rs) * 0.5);
                    c
                } else {
                    // Each arm is taken part of the time.
                    let mut c = *rs;
                    for x in c.iter_mut() {
                        *x *= 0.5;
                    }
                    c
                }
            }
            Op::Cast { kind, .. } => {
                let from = self.f.operand_ty(&ops[0]);
                match kind {
                    CastKind::Trunc => {
                        // High source bits are cut off: guaranteed mask.
                        let w = match ins.result.map(|r| self.f.ty_of(r)) {
                            Some(t) => t.bits() as usize,
                            None => 64,
                        };
                        let mut c = ZERO;
                        c[..w].copy_from_slice(&rs[..w]);
                        c
                    }
                    CastKind::ZExt | CastKind::SExt => {
                        let w = from.bits() as usize;
                        let mut c = ZERO;
                        c[..w].copy_from_slice(&rs[..w]);
                        if *kind == CastKind::SExt && w < 64 {
                            // The source sign bit fans out to every high
                            // result bit.
                            let hi = rs[w - 1..].iter().copied().fold(0.0, f64::max);
                            c[w - 1] = hi;
                        }
                        c
                    }
                    CastKind::Bitcast | CastKind::PtrToInt | CastKind::IntToPtr => *rs,
                    CastKind::FpToSi => {
                        // Round-toward-zero quantization: low mantissa
                        // bits of the float rarely survive.
                        let m = smax(rs);
                        let mut c = ZERO;
                        for i in 0..64 {
                            let w = if i >= 52 {
                                0.9
                            } else {
                                0.02 + 0.5 * (i as f64 / 52.0)
                            };
                            c[i] = m * w;
                        }
                        c
                    }
                    CastKind::SiToFp => {
                        let m = smax(rs);
                        let mut c = ZERO;
                        for i in 0..64 {
                            c[i] = m * (0.2 + 0.8 * (i as f64 / 63.0));
                        }
                        c
                    }
                }
            }
            Op::Load { .. } => {
                // idx 0 is the address: a flipped low bit reads a wrong
                // but valid word; a flipped high bit traps.
                let m = mean(rs).max(0.2 * smax(rs));
                let mut c = ZERO;
                for i in 0..64 {
                    c[i] = m * addr_weight(i);
                }
                c
            }
            Op::Store { .. } => {
                if idx == 1 {
                    flat(0.8) // the stored value may reach an output
                } else {
                    let mut c = ZERO;
                    for i in 0..64 {
                        c[i] = 0.8 * addr_weight(i);
                    }
                    c
                }
            }
            Op::Gep { .. } => *rs,
            Op::Alloca { .. } => flat(smax(rs) * 0.3),
            Op::Call { func, .. } => {
                let base = 0.6 * mean(rs).max(0.4 * smax(rs));
                let eff = self.call_effect[func.0 as usize];
                let reach = self.arg_reach[func.0 as usize]
                    .get(idx)
                    .copied()
                    .unwrap_or(crate::reach::FULL);
                let v = base.max(eff);
                let mut c = ZERO;
                for (i, slot) in c.iter_mut().enumerate() {
                    if reach >> i & 1 != 0 {
                        *slot = v;
                    }
                }
                c
            }
            Op::Output { .. } => flat(1.0),
        }
    }
}

/// Whether each function (transitively) contains an effectful sink
/// (`output` or `store`), used to weight call arguments.
fn effectful_functions(module: &Module) -> Vec<bool> {
    let n = module.functions.len();
    let mut direct = vec![false; n];
    let mut calls: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (fi, f) in module.functions.iter().enumerate() {
        for ins in f.instrs() {
            match &ins.op {
                Op::Output { .. } | Op::Store { .. } => direct[fi] = true,
                Op::Call { func, .. } => calls[fi].push(func.0 as usize),
                _ => {}
            }
        }
    }
    let mut eff = direct.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for fi in 0..n {
            if !eff[fi] && calls[fi].iter().any(|&c| eff[c]) {
                eff[fi] = true;
                changed = true;
            }
        }
    }
    eff
}

/// Runs the predictor over a whole module.
pub fn predict_sdc(module: &Module) -> SdcPrediction {
    let eff = effectful_functions(module);
    let call_effect: Vec<f64> = eff.iter().map(|&e| if e { 0.7 } else { 0.0 }).collect();
    let cg = crate::callgraph::CallGraph::new(module);
    let arg_reach: Vec<Vec<u64>> = crate::summary::summarize_bits(module, &cg)
        .iter()
        .map(|s| (0..s.sink_bits.len()).map(|i| s.param_reach(i)).collect())
        .collect();

    let mut score: Vec<Option<f64>> = vec![None; module.num_instrs];
    for (fi, f) in module.functions.iter().enumerate() {
        let cfg = Cfg::new(f);
        let kb = analyze_values::<KnownBits>(f, &cfg);
        let fs = FuncSens {
            f,
            kb: &kb,
            ret_factor: if FuncId(fi as u32) == module.entry {
                1.0
            } else {
                0.8
            },
            call_effect: call_effect.clone(),
            arg_reach: &arg_reach,
        };
        let sens = fs.solve();
        for ins in f.instrs() {
            if let Some(r) = ins.result {
                let w = f.ty_of(r).bits() as usize;
                let s = &sens[r.0 as usize];
                let sc = s[..w].iter().sum::<f64>() / w as f64;
                score[ins.sid.0 as usize] = Some(sc.clamp(0.0, 1.0));
            }
        }
    }
    SdcPrediction { score }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "pred").unwrap()
    }

    fn score_of(m: &Module, mnemonic: &str) -> f64 {
        let p = predict_sdc(m);
        let ins = m
            .entry_func()
            .instrs()
            .find(|i| i.op.mnemonic() == mnemonic)
            .unwrap();
        p.score[ins.sid.0 as usize].unwrap()
    }

    #[test]
    fn output_feeding_value_is_vulnerable() {
        let m = compile("fn main(x: int) { output x + 1; }");
        assert!(score_of(&m, "add") > 0.5, "direct output feed");
    }

    #[test]
    fn dead_call_argument_attenuates_its_feeding_chain() {
        let m = compile(
            r#"fn pick(a: int, b: int) -> int { return a; }
               fn main(x: int) { output pick(x + 1, x * 3); }"#,
        );
        // The mul only feeds pick's unused second parameter: the bit
        // summary proves zero reach, so its score collapses, while the
        // add flows through to the output.
        let add = score_of(&m, "add");
        let mul = score_of(&m, "mul");
        assert!(add > 0.4, "live arg chain keeps its score: {add}");
        assert!(mul < 0.05, "dead arg chain must attenuate: {mul}");
    }

    #[test]
    fn masked_by_and_scores_lower() {
        let direct = compile("fn main(x: int) { let a = x + 1; output a; }");
        let masked = compile("fn main(x: int) { let a = x + 1; output a & 255; }");
        let d = score_of(&direct, "add");
        let k = score_of(&masked, "add");
        assert!(
            k < d,
            "AND with a narrow mask must reduce the add's score: {k} !< {d}"
        );
    }

    #[test]
    fn compare_only_consumer_scores_lower_than_output() {
        let m = compile(
            r#"fn main(x: int) {
                let a = x * 3;
                let b = x * 5;
                if (a > 10) { output 1; } else { output 0; }
                output b;
            }"#,
        );
        let p = predict_sdc(&m);
        let muls: Vec<f64> = m
            .entry_func()
            .instrs()
            .filter(|i| i.op.mnemonic() == "mul")
            .map(|i| p.score[i.sid.0 as usize].unwrap())
            .collect();
        // First mul feeds only a compare; second feeds output directly.
        assert!(muls[0] < muls[1], "{muls:?}");
    }

    #[test]
    fn dead_value_scores_zero() {
        // `peppa-lang` keeps assignments even when unused downstream? If
        // the frontend elides it, build IR directly instead. Here `a`
        // only feeds a value that is never observed.
        let m = compile("fn main(x: int) { let a = x + 7; let b = a * 2; output x; }");
        let p = predict_sdc(&m);
        for ins in m.entry_func().instrs() {
            let mn = ins.op.mnemonic();
            if mn == "add" || mn == "mul" {
                assert_eq!(
                    p.score[ins.sid.0 as usize],
                    Some(0.0),
                    "dead {mn} must score 0"
                );
            }
        }
    }

    #[test]
    fn scores_are_probabilities() {
        let m = compile(
            r#"global float buf[32];
               fn main(n: int, s: float) {
                   let acc = 0.0;
                   for (i = 0; i < n; i = i + 1) {
                       let x = i2f(i) * s;
                       buf[i & 31] = x;
                       acc = acc + sqrt(x * x + 1.0);
                   }
                   output acc;
               }"#,
        );
        let p = predict_sdc(&m);
        for (sid, s) in p.score.iter().enumerate() {
            if let Some(v) = s {
                assert!((0.0..=1.0).contains(v), "sid {sid}: {v}");
            }
        }
    }
}

//! Control-flow graph view over one PIR function.
//!
//! Provides the block-graph facts every dataflow client needs: successor
//! and predecessor lists, a reverse-postorder (RPO) traversal, immediate
//! dominators (Cooper–Harvey–Kennedy over RPO), and loop-header
//! detection via retreating edges.

use peppa_ir::{BlockId, Function};

/// CFG facts for one function. Block indices are `BlockId.0 as usize`;
/// block 0 is the entry. The verifier guarantees every block is
/// reachable from the entry, which the dominator construction relies on.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor blocks, from each block's terminator.
    pub succs: Vec<Vec<u32>>,
    /// Predecessor blocks (inverse of `succs`).
    pub preds: Vec<Vec<u32>>,
    /// Blocks in reverse postorder; `rpo[0]` is the entry.
    pub rpo: Vec<u32>,
    /// `rpo_pos[b]`: position of block `b` within `rpo`.
    pub rpo_pos: Vec<u32>,
    /// `idom[b]`: immediate dominator of block `b`; the entry is its own
    /// idom.
    pub idom: Vec<u32>,
    /// `loop_header[b]`: whether some edge `u -> b` retreats in RPO
    /// (i.e. `b` starts a natural loop). Widening points for the
    /// interval analysis.
    pub loop_header: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of `f`. All blocks must be reachable (the builder
    /// prunes unreachable blocks; the verifier rejects them).
    pub fn new(f: &Function) -> Cfg {
        let n = f.num_blocks();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (b, sv) in succs.iter_mut().enumerate() {
            for s in f.successors(BlockId(b as u32)) {
                sv.push(s.0);
                preds[s.0 as usize].push(b as u32);
            }
        }

        // Iterative DFS postorder from the entry.
        let mut post: Vec<u32> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack holds (block, next-successor-index).
        let mut stack: Vec<(u32, usize)> = Vec::new();
        if n > 0 {
            visited[0] = true;
            stack.push((0, 0));
        }
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b as usize].len() {
                let s = succs[b as usize][*i];
                *i += 1;
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<u32> = post.iter().rev().copied().collect();
        let mut rpo_pos = vec![u32::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b as usize] = i as u32;
        }

        let idom = compute_idom(n, &preds, &rpo, &rpo_pos);

        let mut loop_header = vec![false; n];
        for b in 0..n {
            for &s in &succs[b] {
                if rpo_pos[s as usize] <= rpo_pos[b] {
                    loop_header[s as usize] = true;
                }
            }
        }

        Cfg {
            succs,
            preds,
            rpo,
            rpo_pos,
            idom,
            loop_header,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Whether block `a` dominates block `b` (reflexive). Walks the
    /// dominator tree from `b` up to the entry.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b.0;
        loop {
            if cur == a.0 {
                return true;
            }
            if cur == 0 {
                return a.0 == 0;
            }
            cur = self.idom[cur as usize];
        }
    }
}

/// Cooper–Harvey–Kennedy "engineered" dominator algorithm: iterate
/// `idom[b] = intersect(processed preds of b)` over RPO to fixpoint.
fn compute_idom(n: usize, preds: &[Vec<u32>], rpo: &[u32], rpo_pos: &[u32]) -> Vec<u32> {
    let mut idom = vec![u32::MAX; n];
    if n == 0 {
        return idom;
    }
    idom[0] = 0;

    let intersect = |idom: &[u32], mut a: u32, mut b: u32| -> u32 {
        while a != b {
            while rpo_pos[a as usize] > rpo_pos[b as usize] {
                a = idom[a as usize];
            }
            while rpo_pos[b as usize] > rpo_pos[a as usize] {
                b = idom[b as usize];
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new = u32::MAX;
            for &p in &preds[b as usize] {
                if idom[p as usize] == u32::MAX {
                    continue; // not processed yet this round
                }
                new = if new == u32::MAX {
                    p
                } else {
                    intersect(&idom, new, p)
                };
            }
            if new != u32::MAX && idom[b as usize] != new {
                idom[b as usize] = new;
                changed = true;
            }
        }
    }
    idom
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_ir::{Module, Operand};

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "cfg").unwrap()
    }

    #[test]
    fn straight_line_has_one_block() {
        let m = compile("fn main(x: int) { output x + 1; }");
        let cfg = Cfg::new(m.entry_func());
        assert_eq!(cfg.num_blocks(), 1);
        assert_eq!(cfg.rpo, vec![0]);
        assert!(!cfg.loop_header[0]);
    }

    #[test]
    fn diamond_dominators() {
        let m = compile(
            r#"fn main(x: int) {
                let r = 0;
                if (x > 0) { r = 1; } else { r = 2; }
                output r;
            }"#,
        );
        let f = m.entry_func();
        let cfg = Cfg::new(f);
        assert_eq!(cfg.num_blocks(), 4);
        // Entry dominates everything; neither arm dominates the join.
        for b in 0..4u32 {
            assert!(cfg.dominates(BlockId(0), BlockId(b)));
        }
        // The join block (the one with two preds) is dominated only by
        // itself and the entry.
        let join = (0..4).find(|&b| cfg.preds[b].len() == 2).unwrap() as u32;
        for b in 1..4u32 {
            if b != join {
                assert!(!cfg.dominates(BlockId(b), BlockId(join)), "bb{b}");
            }
        }
        assert_eq!(cfg.idom[join as usize], 0);
    }

    #[test]
    fn loop_header_detected() {
        let m = compile(
            r#"fn main(n: int) {
                let s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + i; }
                output s;
            }"#,
        );
        let cfg = Cfg::new(m.entry_func());
        let headers: Vec<usize> = (0..cfg.num_blocks())
            .filter(|&b| cfg.loop_header[b])
            .collect();
        assert_eq!(headers.len(), 1, "exactly one loop header: {headers:?}");
        // The header dominates the loop body (its retreating-edge source).
        let h = headers[0] as u32;
        let back_src = (0..cfg.num_blocks() as u32)
            .find(|&b| {
                cfg.succs[b as usize].contains(&h)
                    && cfg.rpo_pos[h as usize] <= cfg.rpo_pos[b as usize]
            })
            .unwrap();
        assert!(cfg.dominates(BlockId(h), BlockId(back_src)));
    }

    #[test]
    fn multi_exit_loop_dominators() {
        // entry -> header; header -> (exit1 | body); body -> (exit2 | header).
        // Two distinct `ret` exits; one loop with a side exit from the
        // body. Hand-built — MiniC always lowers to a single-exit form.
        let mut mb = peppa_ir::ModuleBuilder::new("multi_exit");
        let f = mb.declare("main", &[peppa_ir::Ty::I64], Some(peppa_ir::Ty::I64));
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let (header, hargs) = fb.new_block(&[peppa_ir::Ty::I64]);
            let (body, _) = fb.new_block(&[]);
            let (exit1, _) = fb.new_block(&[]);
            let (exit2, _) = fb.new_block(&[]);
            fb.br(header, &[x]);
            fb.switch_to(header);
            let i = hargs[0];
            let done = fb.icmp(peppa_ir::IPred::Sle, i, Operand::i64(0));
            fb.cond_br(done, exit1, &[], body, &[]);
            fb.switch_to(body);
            let dec = fb.sub(i, Operand::i64(1));
            let odd = fb.bin(peppa_ir::BinOp::And, dec, Operand::i64(1));
            let stop = fb.icmp(peppa_ir::IPred::Eq, odd, Operand::i64(1));
            fb.cond_br(stop, exit2, &[], header, &[dec]);
            fb.switch_to(exit1);
            fb.ret(Some(Operand::i64(1)));
            fb.switch_to(exit2);
            fb.ret(Some(Operand::i64(2)));
            fb.finish();
        }
        mb.set_entry(f);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        let cfg = Cfg::new(m.entry_func());
        assert_eq!(cfg.num_blocks(), 5);
        let (entry, header, body, exit1, exit2) = (0u32, 1u32, 2u32, 3u32, 4u32);
        // The header dominates everything below the entry, including
        // both exits; the body dominates only exit2.
        for b in [header, body, exit1, exit2] {
            assert!(cfg.dominates(BlockId(entry), BlockId(b)));
            assert!(
                cfg.dominates(BlockId(header), BlockId(b)),
                "header !dom bb{b}"
            );
        }
        assert!(cfg.dominates(BlockId(body), BlockId(exit2)));
        assert!(!cfg.dominates(BlockId(body), BlockId(exit1)));
        assert!(!cfg.dominates(BlockId(exit1), BlockId(exit2)));
        assert!(!cfg.dominates(BlockId(exit2), BlockId(exit1)));
        assert_eq!(cfg.idom[header as usize], entry);
        assert_eq!(cfg.idom[exit1 as usize], header);
        assert_eq!(cfg.idom[exit2 as usize], body);
        // Only the loop header carries the retreating edge.
        let headers: Vec<usize> = (0..5).filter(|&b| cfg.loop_header[b]).collect();
        assert_eq!(headers, vec![header as usize]);
    }

    #[test]
    fn irreducible_cfg_dominators_and_widening_points() {
        // entry -> (a | b); a -> b; b -> (a | exit). The cycle {a, b} has
        // two entry edges, so it is not a natural loop — no single node
        // dominates the cycle.
        let mut mb = peppa_ir::ModuleBuilder::new("irreducible");
        let f = mb.declare("main", &[peppa_ir::Ty::I64], Some(peppa_ir::Ty::I64));
        {
            let mut fb = mb.define(f);
            let x = fb.param(0);
            let (a, aargs) = fb.new_block(&[peppa_ir::Ty::I64]);
            let (b, bargs) = fb.new_block(&[peppa_ir::Ty::I64]);
            let (exit, _) = fb.new_block(&[]);
            let pos = fb.icmp(peppa_ir::IPred::Sgt, x, Operand::i64(0));
            fb.cond_br(pos, a, &[x], b, &[x]);
            fb.switch_to(a);
            let av = fb.sub(aargs[0], Operand::i64(1));
            fb.br(b, &[av]);
            fb.switch_to(b);
            let bv = bargs[0];
            let more = fb.icmp(peppa_ir::IPred::Sgt, bv, Operand::i64(0));
            fb.cond_br(more, a, &[bv], exit, &[]);
            fb.switch_to(exit);
            fb.ret(Some(Operand::i64(0)));
            fb.finish();
        }
        mb.set_entry(f);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        let cfg = Cfg::new(m.entry_func());
        assert_eq!(cfg.num_blocks(), 4);
        let (entry, a, b, exit) = (0u32, 1u32, 2u32, 3u32);
        // Neither cycle member dominates the other: each is reachable
        // from the entry without passing through its peer.
        assert!(!cfg.dominates(BlockId(a), BlockId(b)));
        assert!(!cfg.dominates(BlockId(b), BlockId(a)));
        assert_eq!(cfg.idom[a as usize], entry);
        assert_eq!(cfg.idom[b as usize], entry);
        // `b` is the only block whose dominance covers the exit besides
        // the entry (every path out goes through b).
        assert!(cfg.dominates(BlockId(b), BlockId(exit)));
        assert!(!cfg.dominates(BlockId(a), BlockId(exit)));
        // Retreating-edge detection must still place a widening point on
        // the cycle — interval analysis termination depends on every
        // cycle containing one — even though the loop is not natural.
        assert!(
            cfg.loop_header[a as usize] || cfg.loop_header[b as usize],
            "irreducible cycle has no widening point"
        );
        // And RPO must cover all blocks exactly once.
        let mut seen = cfg.rpo.clone();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    fn rpo_visits_preds_first_outside_loops() {
        let m = compile(
            r#"fn main(x: int) {
                let r = 0;
                if (x > 0) { r = 1; } else { r = 2; }
                if (r > 0) { r = r * 2; }
                output r;
            }"#,
        );
        let cfg = Cfg::new(m.entry_func());
        // No loops here, so every edge goes forward in RPO.
        for b in 0..cfg.num_blocks() {
            for &s in &cfg.succs[b] {
                assert!(
                    cfg.rpo_pos[s as usize] > cfg.rpo_pos[b],
                    "edge {b}->{s} not forward"
                );
            }
        }
    }
}

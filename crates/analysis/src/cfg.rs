//! Control-flow graph view over one PIR function.
//!
//! Provides the block-graph facts every dataflow client needs: successor
//! and predecessor lists, a reverse-postorder (RPO) traversal, immediate
//! dominators (Cooper–Harvey–Kennedy over RPO), and loop-header
//! detection via retreating edges.

use peppa_ir::{BlockId, Function};

/// CFG facts for one function. Block indices are `BlockId.0 as usize`;
/// block 0 is the entry. The verifier guarantees every block is
/// reachable from the entry, which the dominator construction relies on.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Successor blocks, from each block's terminator.
    pub succs: Vec<Vec<u32>>,
    /// Predecessor blocks (inverse of `succs`).
    pub preds: Vec<Vec<u32>>,
    /// Blocks in reverse postorder; `rpo[0]` is the entry.
    pub rpo: Vec<u32>,
    /// `rpo_pos[b]`: position of block `b` within `rpo`.
    pub rpo_pos: Vec<u32>,
    /// `idom[b]`: immediate dominator of block `b`; the entry is its own
    /// idom.
    pub idom: Vec<u32>,
    /// `loop_header[b]`: whether some edge `u -> b` retreats in RPO
    /// (i.e. `b` starts a natural loop). Widening points for the
    /// interval analysis.
    pub loop_header: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of `f`. All blocks must be reachable (the builder
    /// prunes unreachable blocks; the verifier rejects them).
    pub fn new(f: &Function) -> Cfg {
        let n = f.num_blocks();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (b, sv) in succs.iter_mut().enumerate() {
            for s in f.successors(BlockId(b as u32)) {
                sv.push(s.0);
                preds[s.0 as usize].push(b as u32);
            }
        }

        // Iterative DFS postorder from the entry.
        let mut post: Vec<u32> = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        // Stack holds (block, next-successor-index).
        let mut stack: Vec<(u32, usize)> = Vec::new();
        if n > 0 {
            visited[0] = true;
            stack.push((0, 0));
        }
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < succs[b as usize].len() {
                let s = succs[b as usize][*i];
                *i += 1;
                if !visited[s as usize] {
                    visited[s as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<u32> = post.iter().rev().copied().collect();
        let mut rpo_pos = vec![u32::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_pos[b as usize] = i as u32;
        }

        let idom = compute_idom(n, &preds, &rpo, &rpo_pos);

        let mut loop_header = vec![false; n];
        for b in 0..n {
            for &s in &succs[b] {
                if rpo_pos[s as usize] <= rpo_pos[b] {
                    loop_header[s as usize] = true;
                }
            }
        }

        Cfg {
            succs,
            preds,
            rpo,
            rpo_pos,
            idom,
            loop_header,
        }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.succs.len()
    }

    /// Whether block `a` dominates block `b` (reflexive). Walks the
    /// dominator tree from `b` up to the entry.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b.0;
        loop {
            if cur == a.0 {
                return true;
            }
            if cur == 0 {
                return a.0 == 0;
            }
            cur = self.idom[cur as usize];
        }
    }
}

/// Cooper–Harvey–Kennedy "engineered" dominator algorithm: iterate
/// `idom[b] = intersect(processed preds of b)` over RPO to fixpoint.
fn compute_idom(n: usize, preds: &[Vec<u32>], rpo: &[u32], rpo_pos: &[u32]) -> Vec<u32> {
    let mut idom = vec![u32::MAX; n];
    if n == 0 {
        return idom;
    }
    idom[0] = 0;

    let intersect = |idom: &[u32], mut a: u32, mut b: u32| -> u32 {
        while a != b {
            while rpo_pos[a as usize] > rpo_pos[b as usize] {
                a = idom[a as usize];
            }
            while rpo_pos[b as usize] > rpo_pos[a as usize] {
                b = idom[b as usize];
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new = u32::MAX;
            for &p in &preds[b as usize] {
                if idom[p as usize] == u32::MAX {
                    continue; // not processed yet this round
                }
                new = if new == u32::MAX {
                    p
                } else {
                    intersect(&idom, new, p)
                };
            }
            if new != u32::MAX && idom[b as usize] != new {
                idom[b as usize] = new;
                changed = true;
            }
        }
    }
    idom
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_ir::Module;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "cfg").unwrap()
    }

    #[test]
    fn straight_line_has_one_block() {
        let m = compile("fn main(x: int) { output x + 1; }");
        let cfg = Cfg::new(m.entry_func());
        assert_eq!(cfg.num_blocks(), 1);
        assert_eq!(cfg.rpo, vec![0]);
        assert!(!cfg.loop_header[0]);
    }

    #[test]
    fn diamond_dominators() {
        let m = compile(
            r#"fn main(x: int) {
                let r = 0;
                if (x > 0) { r = 1; } else { r = 2; }
                output r;
            }"#,
        );
        let f = m.entry_func();
        let cfg = Cfg::new(f);
        assert_eq!(cfg.num_blocks(), 4);
        // Entry dominates everything; neither arm dominates the join.
        for b in 0..4u32 {
            assert!(cfg.dominates(BlockId(0), BlockId(b)));
        }
        // The join block (the one with two preds) is dominated only by
        // itself and the entry.
        let join = (0..4).find(|&b| cfg.preds[b].len() == 2).unwrap() as u32;
        for b in 1..4u32 {
            if b != join {
                assert!(!cfg.dominates(BlockId(b), BlockId(join)), "bb{b}");
            }
        }
        assert_eq!(cfg.idom[join as usize], 0);
    }

    #[test]
    fn loop_header_detected() {
        let m = compile(
            r#"fn main(n: int) {
                let s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + i; }
                output s;
            }"#,
        );
        let cfg = Cfg::new(m.entry_func());
        let headers: Vec<usize> = (0..cfg.num_blocks())
            .filter(|&b| cfg.loop_header[b])
            .collect();
        assert_eq!(headers.len(), 1, "exactly one loop header: {headers:?}");
        // The header dominates the loop body (its retreating-edge source).
        let h = headers[0] as u32;
        let back_src = (0..cfg.num_blocks() as u32)
            .find(|&b| {
                cfg.succs[b as usize].contains(&h)
                    && cfg.rpo_pos[h as usize] <= cfg.rpo_pos[b as usize]
            })
            .unwrap();
        assert!(cfg.dominates(BlockId(h), BlockId(back_src)));
    }

    #[test]
    fn rpo_visits_preds_first_outside_loops() {
        let m = compile(
            r#"fn main(x: int) {
                let r = 0;
                if (x > 0) { r = 1; } else { r = 2; }
                if (r > 0) { r = r * 2; }
                output r;
            }"#,
        );
        let cfg = Cfg::new(m.entry_func());
        // No loops here, so every edge goes forward in RPO.
        for b in 0..cfg.num_blocks() {
            for &s in &cfg.succs[b] {
                assert!(
                    cfg.rpo_pos[s as usize] > cfg.rpo_pos[b],
                    "edge {b}->{s} not forward"
                );
            }
        }
    }
}

//! Memory-dependence analysis: which stores can reach which loads.
//!
//! Addresses are abstracted with the interval domain ([`AbsRange`]) from
//! the module-wide value analysis (function parameters at top, so the
//! intervals are sound for every calling context). A store may reach a
//! load iff their address intervals overlap; an unbounded interval
//! (widened loop pointers, alloca-derived addresses) degrades to
//! may-alias-everything rather than to a missed edge, so the edge set is
//! a sound over-approximation of every dynamic last-writer relation —
//! the property the proptest in `tests/soundness.rs` checks against the
//! VM's store/load hooks.
//!
//! Clients: the fault-propagation analysis ([`crate::reach`]) routes
//! matter masks from load results back to the stores that feed them, and
//! `peppa lint` derives the dead-store and uninitialized-load findings.

use crate::dataflow::{analyze_module, ModuleValueFacts};
use crate::range::AbsRange;
use peppa_ir::{FuncId, InstrId, Module, Op, Ty};
use std::collections::HashMap;

/// One static memory access (a `load` or `store`) with its abstract
/// address interval in word space.
#[derive(Debug, Clone, Copy)]
pub struct MemAccess {
    pub sid: InstrId,
    pub func: FuncId,
    /// Inclusive word-address bounds. `[i64::MIN, i64::MAX]` means the
    /// address is statically unbounded (may alias everything).
    pub lo: i64,
    pub hi: i64,
    /// Loaded / stored value type (`load`'s result type, the word for
    /// stores).
    pub ty: Ty,
}

impl MemAccess {
    /// Whether the interval is a proper subrange of the address space
    /// (i.e. the analysis actually bounded it).
    pub fn is_bounded(&self) -> bool {
        self.lo > i64::MIN && self.hi < i64::MAX
    }

    fn overlaps(&self, other: &MemAccess) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Store→load reaching edges over a whole module.
#[derive(Debug, Clone)]
pub struct MemDepGraph {
    pub stores: Vec<MemAccess>,
    pub loads: Vec<MemAccess>,
    /// `store_loads[i]`: indices into `loads` that `stores[i]` may reach.
    pub store_loads: Vec<Vec<u32>>,
    /// `load_stores[i]`: indices into `stores` that may feed `loads[i]`.
    pub load_stores: Vec<Vec<u32>>,
    store_of_sid: HashMap<u32, u32>,
    load_of_sid: HashMap<u32, u32>,
}

impl MemDepGraph {
    pub fn new(module: &Module) -> MemDepGraph {
        let facts = analyze_module::<AbsRange>(module);
        MemDepGraph::with_facts(module, &facts)
    }

    /// Builds the graph from precomputed interval facts (shared with
    /// other analyses to avoid re-running the fixpoint).
    pub fn with_facts(module: &Module, facts: &ModuleValueFacts<AbsRange>) -> MemDepGraph {
        let mut stores = Vec::new();
        let mut loads = Vec::new();
        for (fi, f) in module.functions.iter().enumerate() {
            let vf = &facts.per_func[fi];
            for ins in f.instrs() {
                let (addr, ty, is_store) = match &ins.op {
                    Op::Load { addr, ty } => (addr, *ty, false),
                    Op::Store { addr, value } => (addr, f.operand_ty(value), true),
                    _ => continue,
                };
                let (lo, hi) = match vf.of_operand(addr).int() {
                    Some(r) => (r.lo, r.hi),
                    // A float-typed address cannot pass the verifier;
                    // treat it as unbounded if it ever appears.
                    None => (i64::MIN, i64::MAX),
                };
                let acc = MemAccess {
                    sid: ins.sid,
                    func: FuncId(fi as u32),
                    lo,
                    hi,
                    ty,
                };
                if is_store {
                    stores.push(acc);
                } else {
                    loads.push(acc);
                }
            }
        }

        let mut store_loads = vec![Vec::new(); stores.len()];
        let mut load_stores = vec![Vec::new(); loads.len()];
        for (si, s) in stores.iter().enumerate() {
            for (li, l) in loads.iter().enumerate() {
                if s.overlaps(l) {
                    store_loads[si].push(li as u32);
                    load_stores[li].push(si as u32);
                }
            }
        }
        let store_of_sid = stores
            .iter()
            .enumerate()
            .map(|(i, a)| (a.sid.0, i as u32))
            .collect();
        let load_of_sid = loads
            .iter()
            .enumerate()
            .map(|(i, a)| (a.sid.0, i as u32))
            .collect();
        MemDepGraph {
            stores,
            loads,
            store_loads,
            load_stores,
            store_of_sid,
            load_of_sid,
        }
    }

    /// Whether the graph has a `store_sid → load_sid` edge. False when
    /// either sid is not a store/load.
    pub fn covers(&self, store_sid: InstrId, load_sid: InstrId) -> bool {
        match (
            self.store_of_sid.get(&store_sid.0),
            self.load_of_sid.get(&load_sid.0),
        ) {
            (Some(&si), Some(&li)) => self.store_loads[si as usize].contains(&li),
            _ => false,
        }
    }

    /// All edges as `(store sid, load sid)` pairs, sorted.
    pub fn edges(&self) -> Vec<(InstrId, InstrId)> {
        let mut out = Vec::new();
        for (si, ls) in self.store_loads.iter().enumerate() {
            for &li in ls {
                out.push((self.stores[si].sid, self.loads[li as usize].sid));
            }
        }
        out.sort();
        out
    }

    /// Stores whose value provably never reaches any load: no aliasing
    /// load exists anywhere in the module. (The store's *address* can
    /// still trap — only the stored value is dead.)
    pub fn dead_stores(&self) -> Vec<InstrId> {
        let mut out: Vec<InstrId> = self
            .store_loads
            .iter()
            .enumerate()
            .filter(|(_, ls)| ls.is_empty())
            .map(|(si, _)| self.stores[si].sid)
            .collect();
        out.sort();
        out
    }

    /// Loads that provably read memory no store ever writes *and* whose
    /// address range lies entirely inside zero-initialized global
    /// storage — i.e. loads that can only ever observe the implicit zero
    /// fill. Reported as likely-uninitialized reads by `peppa lint`.
    pub fn uninit_loads(&self, module: &Module) -> Vec<InstrId> {
        let layout = module.global_layout();
        let mut out = Vec::new();
        for (li, l) in self.loads.iter().enumerate() {
            if !self.load_stores[li].is_empty() || !l.is_bounded() {
                continue;
            }
            let inside_zero_global = module.globals.iter().enumerate().any(|(gi, g)| {
                let base = layout[gi] as i64;
                g.init.is_empty() && l.lo >= base && l.hi < base + g.words as i64
            });
            if inside_zero_global {
                out.push(l.sid);
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "md").unwrap()
    }

    fn graph(src: &str) -> (Module, MemDepGraph) {
        let m = compile(src);
        let g = MemDepGraph::new(&m);
        (m, g)
    }

    #[test]
    fn disjoint_globals_do_not_alias() {
        let (_, g) = graph(
            r#"global int a[4];
               global int b[4];
               fn main(x: int) {
                   a[0] = x;
                   output b[0];
               }"#,
        );
        assert_eq!(g.stores.len(), 1);
        assert_eq!(g.loads.len(), 1);
        assert!(g.store_loads[0].is_empty(), "a[0] never feeds b[0]");
        assert_eq!(g.dead_stores().len(), 1);
    }

    #[test]
    fn same_cell_aliases() {
        let (_, g) = graph(
            r#"global int a[4];
               fn main(x: int) {
                   a[1] = x;
                   output a[1];
               }"#,
        );
        assert_eq!(g.store_loads[0].len(), 1);
        assert!(g.covers(g.stores[0].sid, g.loads[0].sid));
        assert!(g.dead_stores().is_empty());
    }

    #[test]
    fn unbounded_index_may_alias_everything() {
        let (_, g) = graph(
            r#"global int a[8];
               global int b[8];
               fn main(n: int) {
                   let i = 0;
                   let s = 0;
                   for (i = 0; i < n; i = i + 1) { a[i & 7] = i; }
                   for (i = 0; i < n; i = i + 1) { s = s + b[i & 7]; }
                   output s;
               }"#,
        );
        // The masked indices keep both accesses bounded within their own
        // global, so the edge set must still separate a-stores from
        // b-loads... unless widening lost the bound, in which case the
        // fallback must be an edge (may-alias), never a missing one.
        for (si, s) in g.stores.iter().enumerate() {
            if !s.is_bounded() {
                assert_eq!(g.store_loads[si].len(), g.loads.len());
            }
        }
    }

    #[test]
    fn uninit_load_detected() {
        let (m, g) = graph(
            r#"global int never_written[4];
               fn main(x: int) {
                   output never_written[2];
               }"#,
        );
        assert_eq!(g.uninit_loads(&m).len(), 1);
    }

    #[test]
    fn initialized_global_load_is_fine() {
        // Globals with an initializer are legitimate read-only tables
        // (MiniC cannot express them; build the IR directly).
        let mut mb = peppa_ir::ModuleBuilder::new("md");
        let table = mb.global_init("table", 4, vec![1, 2, 3, 4]);
        let f = mb.declare("main", &[peppa_ir::Ty::I64], None);
        {
            let mut fb = mb.define(f);
            let v = fb.load(table, peppa_ir::Ty::I64);
            fb.output(v);
            fb.ret(None);
            fb.finish();
        }
        mb.set_entry(f);
        let m = mb.finish();
        let g = MemDepGraph::new(&m);
        assert_eq!(g.loads.len(), 1);
        assert!(g.load_stores[0].is_empty());
        assert!(g.uninit_loads(&m).is_empty());
    }
}

//! FI-space pruning (§4.2.2).
//!
//! Instructions connected by static data dependencies share similar SDC
//! probabilities, *except* for a handful of opcode classes — compares,
//! logic operators, bit-manipulation casts, and pointer operations — that
//! "consistently differentiate the SDC probability with previous
//! data-dependent instructions". The pruning therefore:
//!
//! 1. builds the def-use graph;
//! 2. removes the boundary-class instructions;
//! 3. takes connected components of what remains as subgroups;
//! 4. gives every boundary instruction its own singleton subgroup.
//!
//! Fault injection then measures one *representative* per subgroup and
//! propagates its SDC score to the rest (Figure 4's example prunes a
//! load/add/icmp chain from 3 FI targets to 2).

use crate::dataflow::analyze_module;
use crate::defuse::def_use;
use crate::knownbits::KnownBits;
use peppa_ir::{InstrId, Module};
use serde::{Deserialize, Serialize};

/// Result of pruning the FI space of a module.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PruningResult {
    /// Subgroups of injectable instructions; each is non-empty and sorted
    /// by sid. The first member is the representative.
    pub groups: Vec<Vec<InstrId>>,
    /// `group_of[sid]`: the subgroup containing `sid`, or `None` for
    /// non-injectable instructions (no result value).
    pub group_of: Vec<Option<u32>>,
    /// Number of injectable static instructions.
    pub injectable: usize,
}

impl PruningResult {
    /// One representative per subgroup (its lowest-sid member).
    pub fn representatives(&self) -> Vec<InstrId> {
        self.groups.iter().map(|g| g[0]).collect()
    }

    /// Fraction of the FI space avoided: `pruned / all`, Table 4's
    /// metric (e.g. 58.44% for CoMD, average 49.32%).
    pub fn pruning_ratio(&self) -> f64 {
        if self.injectable == 0 {
            return 0.0;
        }
        1.0 - self.groups.len() as f64 / self.injectable as f64
    }
}

/// Prunes the FI space of `module` by dataflow grouping.
pub fn prune_fi_space(module: &Module) -> PruningResult {
    let du = def_use(module);
    let n = module.num_instrs;

    // Injectable = has a result value. Boundary = subgroup-splitting class.
    let mut injectable = vec![false; n];
    let mut boundary = vec![false; n];
    for (_, ins) in module.all_instrs() {
        let i = ins.sid.0 as usize;
        injectable[i] = ins.result.is_some();
        boundary[i] = ins.op.is_group_boundary();
    }

    let mut group_of: Vec<Option<u32>> = vec![None; n];
    let mut groups: Vec<Vec<InstrId>> = Vec::new();

    // Boundary instructions: singleton subgroups.
    for sid in 0..n {
        if injectable[sid] && boundary[sid] {
            group_of[sid] = Some(groups.len() as u32);
            groups.push(vec![InstrId(sid as u32)]);
        }
    }

    // Non-boundary instructions: connected components of the def-use
    // graph restricted to non-boundary injectables.
    let mut stack = Vec::new();
    for seed in 0..n {
        if !injectable[seed] || boundary[seed] || group_of[seed].is_some() {
            continue;
        }
        let gid = groups.len() as u32;
        let mut members = Vec::new();
        stack.push(seed);
        group_of[seed] = Some(gid);
        while let Some(s) = stack.pop() {
            members.push(InstrId(s as u32));
            for &t in &du.adj[s] {
                let t = t as usize;
                if injectable[t] && !boundary[t] && group_of[t].is_none() {
                    group_of[t] = Some(gid);
                    stack.push(t);
                }
            }
        }
        members.sort();
        groups.push(members);
    }

    let injectable_count = injectable.iter().filter(|&&b| b).count();
    PruningResult {
        groups,
        group_of,
        injectable: injectable_count,
    }
}

/// Refined pruning: baseline §4.2.2 subgroups, further split wherever
/// the known-bits analysis proves members have *different* bit-level
/// structure. Two instructions whose results provably disagree on which
/// bits are fixed (e.g. `x + 1` vs `(x + 1) * 2`, whose low bit is known
/// zero) mask injected flips differently, so sharing one FI
/// representative between them under-measures one of the two. The
/// refined grouping trades back a little pruning ratio for
/// representativeness; `repro table4` reports both ratios side by side.
pub fn prune_fi_space_refined(module: &Module) -> PruningResult {
    let base = prune_fi_space(module);
    let kb = analyze_module::<KnownBits>(module);

    // Known-bits signature per sid: the (zeros, ones) masks of the
    // instruction's result value.
    let mut sig: Vec<(u64, u64)> = vec![(0, 0); module.num_instrs];
    for (fi, f) in module.functions.iter().enumerate() {
        for ins in f.instrs() {
            if let Some(r) = ins.result {
                let k = &kb.per_func[fi].values[r.0 as usize];
                sig[ins.sid.0 as usize] = (k.zeros, k.ones);
            }
        }
    }

    // Partition every baseline group by signature, preserving sid order
    // (members are sorted, so each part stays sorted and part[0] is its
    // lowest sid).
    let mut groups: Vec<Vec<InstrId>> = Vec::new();
    for g in &base.groups {
        let mut parts: Vec<((u64, u64), Vec<InstrId>)> = Vec::new();
        for &s in g {
            let key = sig[s.0 as usize];
            match parts.iter_mut().find(|(k, _)| *k == key) {
                Some((_, v)) => v.push(s),
                None => parts.push((key, vec![s])),
            }
        }
        groups.extend(parts.into_iter().map(|(_, v)| v));
    }

    let mut group_of: Vec<Option<u32>> = vec![None; module.num_instrs];
    for (gi, g) in groups.iter().enumerate() {
        for &s in g {
            group_of[s.0 as usize] = Some(gi as u32);
        }
    }
    PruningResult {
        groups,
        group_of,
        injectable: base.injectable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "prune").unwrap()
    }

    #[test]
    fn figure4_style_chain() {
        // load -> add -> icmp: load+add share a subgroup, icmp is its own.
        // (3 FI targets pruned to 2, as in the paper's Figure 4.)
        let m = compile(
            r#"global int k[4];
               fn main() {
                   let a = k[0];      // gep (boundary) + load
                   let b = a + 1;     // add
                   if (b == 5) { output 1; } else { output 0; }
               }"#,
        );
        let p = prune_fi_space(&m);
        // Find sids by mnemonic.
        let by_mn = |mn: &str| -> Vec<usize> {
            m.all_instrs()
                .iter()
                .filter(|(_, i)| i.op.mnemonic() == mn)
                .map(|(_, i)| i.sid.0 as usize)
                .collect()
        };
        let load = by_mn("load")[0];
        let add = by_mn("add")[0];
        let icmp = by_mn("icmp")[0];
        assert_eq!(
            p.group_of[load], p.group_of[add],
            "load and add must share a subgroup"
        );
        assert_ne!(p.group_of[icmp], p.group_of[add], "icmp must split off");
        // icmp is a singleton.
        let icmp_group = &p.groups[p.group_of[icmp].unwrap() as usize];
        assert_eq!(icmp_group.len(), 1);
    }

    #[test]
    fn every_injectable_in_exactly_one_group() {
        let m = compile(
            r#"fn main(n: int, s: float) {
                let acc = 0.0;
                for (i = 0; i < n; i = i + 1) {
                    let x = i2f(i) * s;
                    if (x > 2.0) { acc = acc + sqrt(x); } else { acc = acc + x; }
                }
                output acc;
            }"#,
        );
        let p = prune_fi_space(&m);
        let mut seen = vec![0u32; m.num_instrs];
        for g in &p.groups {
            assert!(!g.is_empty());
            for s in g {
                seen[s.0 as usize] += 1;
            }
        }
        for (_, ins) in m.all_instrs() {
            let i = ins.sid.0 as usize;
            if ins.result.is_some() {
                assert_eq!(seen[i], 1, "sid {i} in {} groups", seen[i]);
                assert!(p.group_of[i].is_some());
            } else {
                assert_eq!(seen[i], 0);
                assert!(p.group_of[i].is_none());
            }
        }
    }

    #[test]
    fn pruning_ratio_positive_on_real_kernels() {
        let m = compile(
            r#"global float a[64];
               fn main(n: int) {
                   for (i = 0; i < n; i = i + 1) {
                       let t = i2f(i) + 1.0;
                       a[i] = t * t + 0.5 * t;
                   }
                   let s = 0.0;
                   for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
                   output s;
               }"#,
        );
        let p = prune_fi_space(&m);
        assert!(p.pruning_ratio() > 0.0, "ratio {}", p.pruning_ratio());
        assert!(p.pruning_ratio() < 1.0);
        assert_eq!(p.representatives().len(), p.groups.len());
    }

    #[test]
    fn representatives_are_group_minima() {
        let m = compile("fn main(x: int) { let a = x + 1; let b = a * 2; output a + b; }");
        let p = prune_fi_space(&m);
        for (g, rep) in p.groups.iter().zip(p.representatives()) {
            assert_eq!(g[0], rep);
            assert!(g.iter().all(|s| *s >= rep));
        }
    }

    #[test]
    fn empty_fi_space() {
        let m = compile("fn main() { output 1; }");
        let p = prune_fi_space(&m);
        assert_eq!(p.injectable, 0);
        assert_eq!(p.pruning_ratio(), 0.0);
    }

    #[test]
    fn refined_groups_refine_baseline() {
        let m = compile(
            r#"global float a[64];
               fn main(n: int) {
                   for (i = 0; i < n; i = i + 1) {
                       let t = i2f(i) + 1.0;
                       a[i] = t * t + 0.5 * t;
                   }
                   let s = 0.0;
                   for (i = 0; i < n; i = i + 1) { s = s + a[i]; }
                   output s;
               }"#,
        );
        let base = prune_fi_space(&m);
        let fine = prune_fi_space_refined(&m);
        assert_eq!(fine.injectable, base.injectable);
        assert!(fine.groups.len() >= base.groups.len());
        assert!(fine.pruning_ratio() <= base.pruning_ratio());
        // Every refined group sits inside exactly one baseline group.
        for g in &fine.groups {
            let b0 = base.group_of[g[0].0 as usize];
            assert!(b0.is_some());
            for s in g {
                assert_eq!(base.group_of[s.0 as usize], b0);
            }
        }
        // And together they cover the same instructions.
        for sid in 0..m.num_instrs {
            assert_eq!(
                base.group_of[sid].is_some(),
                fine.group_of[sid].is_some(),
                "sid {sid}"
            );
        }
    }

    #[test]
    fn known_bits_split_separates_differently_masked_members() {
        // `a = x + 1` (no known bits) and `b = a * 2` (low bit known 0)
        // share a baseline dataflow subgroup but mask flips differently;
        // the refined grouping must split them.
        let m = compile("fn main(x: int) { let a = x + 1; let b = a * 2; output a + b; }");
        let by_mn = |mn: &str| -> usize {
            m.all_instrs()
                .iter()
                .find(|(_, i)| i.op.mnemonic() == mn)
                .map(|(_, i)| i.sid.0 as usize)
                .unwrap()
        };
        let add = by_mn("add");
        let mul = by_mn("mul");
        let base = prune_fi_space(&m);
        assert_eq!(
            base.group_of[add], base.group_of[mul],
            "baseline groups them"
        );
        let fine = prune_fi_space_refined(&m);
        assert_ne!(
            fine.group_of[add], fine.group_of[mul],
            "refined splits them"
        );
    }
}

//! Static program analysis for PEPPA-X.
//!
//! Two analyses from the paper live here:
//!
//! * **Def-use dataflow** ([`defuse`]): which static instructions feed
//!   which. Block parameters (the φ-replacement) are treated as
//!   transparent wires, so a dataflow chain survives crossing a block
//!   boundary, just as it would through an LLVM φ.
//! * **FI-space pruning** ([`pruning`], §4.2.2): instructions along one
//!   static data dependency share similar SDC probabilities, *except*
//!   compares, logic operators, bit-manipulation casts, and pointer
//!   operations, which "consistently differentiate" and start their own
//!   subgroup. Fault injection then only needs one representative per
//!   subgroup.
//!
//! Code-coverage helpers ([`coverage`]) support the small-FI-input fuzzing
//! step (§4.2.1) and the coverage-vs-SDC correlation study (Table 2).
//!
//! On top of these sits a reusable dataflow framework:
//!
//! * [`cfg`]: per-function CFG view — successors/predecessors, reverse
//!   postorder, dominator tree, loop headers.
//! * [`dataflow`]: generic worklist solver over block facts
//!   ([`BlockAnalysis`]) and a per-value abstract-interpretation engine
//!   ([`AbstractDomain`], [`analyze_values`]) with widening at loop
//!   headers.
//! * [`knownbits`] / [`range`]: the two bundled value domains — which
//!   bits are provably 0/1, and signed / float intervals.
//! * [`liveness`]: backward liveness plus observable-liveness (dead-value
//!   detection for guaranteed-masked instructions).
//! * [`predict`]: the static SDC-masking predictor built from all of the
//!   above (scored against FI ground truth by `repro static-rank`).
//! * [`lint`]: verifier-gated static lints with machine-readable
//!   findings (`peppa lint`).
//!
//! The interprocedural, memory-aware layer composes those pieces:
//!
//! * [`callgraph`]: call sites, bottom-up SCC order.
//! * [`memdep`]: store→load reaching edges from `AbsRange` address
//!   intervals with may-alias fallback.
//! * [`reach`]: per-bit fault-propagation reachability — classifies
//!   every injection site as `ProvablyMasked` or `MayPropagate`, the
//!   basis of `--static-prune` FI campaigns.

pub mod callgraph;
pub mod cfg;
pub mod coverage;
pub mod dataflow;
pub mod defuse;
pub mod deviation;
pub mod knownbits;
pub mod lint;
pub mod liveness;
pub mod memdep;
pub mod predict;
pub mod pruning;
pub mod range;
pub mod reach;
pub mod rewrite;
pub mod summary;

pub use callgraph::{CallGraph, CallSite};
pub use cfg::Cfg;
pub use coverage::input_coverage;
pub use dataflow::{
    analyze_module, analyze_values, analyze_values_seeded, solve_blocks, AbstractDomain,
    BlockAnalysis, Direction, ModuleValueFacts, ValueFacts,
};
pub use defuse::DefUse;
pub use deviation::{DeviationAnalysis, GoldenObserver, GoldenStats};
pub use knownbits::KnownBits;
pub use lint::{lint_module, Lint, LintReport, Severity};
pub use liveness::{
    converge_masks, dead_values, live_at_boundaries, live_in, observable_live, ValueSet,
};
pub use memdep::{MemAccess, MemDepGraph};
pub use predict::{predict_sdc, SdcPrediction};
pub use pruning::{prune_fi_space, prune_fi_space_refined, PruningResult};
pub use range::{AbsRange, FRange, IRange};
pub use reach::{effective_flip_mask, summarize, FaultReach, FuncSummary, Reach, ReachOpts};
pub use rewrite::{optimize, OptLevel, OptResult, Pass, PassStats, PipelineStats};
pub use summary::{
    analyze_module_interproc, summarize_bits, BitSummary, InterprocFacts, ModuleSummaries,
};

//! Static program analysis for PEPPA-X.
//!
//! Two analyses from the paper live here:
//!
//! * **Def-use dataflow** ([`defuse`]): which static instructions feed
//!   which. Block parameters (the φ-replacement) are treated as
//!   transparent wires, so a dataflow chain survives crossing a block
//!   boundary, just as it would through an LLVM φ.
//! * **FI-space pruning** ([`pruning`], §4.2.2): instructions along one
//!   static data dependency share similar SDC probabilities, *except*
//!   compares, logic operators, bit-manipulation casts, and pointer
//!   operations, which "consistently differentiate" and start their own
//!   subgroup. Fault injection then only needs one representative per
//!   subgroup.
//!
//! Code-coverage helpers ([`coverage`]) support the small-FI-input fuzzing
//! step (§4.2.1) and the coverage-vs-SDC correlation study (Table 2).

pub mod coverage;
pub mod defuse;
pub mod pruning;

pub use coverage::input_coverage;
pub use defuse::DefUse;
pub use pruning::{prune_fi_space, PruningResult};

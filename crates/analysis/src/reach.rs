//! Fault-propagation reachability: which *bits* of which values can
//! influence an observable outcome.
//!
//! This is the layer that turns the static analyses into campaign-time
//! savings. For every value-producing instruction we compute a **matter
//! mask**: the set of canonical bit positions whose corruption could
//! possibly change the program's observable behaviour — its output
//! stream, the entry function's return value, any trap (memory bounds,
//! division by zero, stack overflow), or any control-flow decision
//! (which also covers hangs, since an unchanged path has an unchanged
//! dynamic instruction count). A single-bit-flip fault whose effective
//! flip mask is disjoint from the matter mask is **provably masked**:
//! the faulty run is bit-identical to the golden run on everything the
//! outcome classifier looks at, so the trial must come back Benign and
//! need not be executed at all.
//!
//! The analysis composes four edge kinds:
//!
//! * **def-use** — per-bit backward transfer functions over the operand
//!   edges (the interesting precision lives here: `x % 2^k` kills the
//!   dividend's middle bits, shifts translate masks, `& const` kills the
//!   const's zero bits, shift *amounts* only matter in their low
//!   log2(width) bits, …);
//! * **memory** — store→load edges from [`crate::memdep::MemDepGraph`];
//!   a store value's matter is the union of its reachable loads' matter
//!   (a store no load can see is dead, and its value matter is empty);
//! * **call** — bottom-up per-function [`FuncSummary`]s describing which
//!   argument bits can reach a sink, the return value, or stored memory,
//!   iterated to a fixpoint over the call-graph SCCs for recursion;
//! * **control** — branch conditions, addresses, divisors, allocation
//!   sizes, and outputs are unconditional full-width sinks.
//!
//! ## Soundness argument (sketch; DESIGN.md has the full version)
//!
//! Every transfer contribution `c = T(op, operand, R)` obeys the
//! contract: *if each operand deviates from its golden value only in
//! bits outside its contribution, the result deviates only in bits
//! outside `R`* — for arbitrary, multi-bit deviations, not just the
//! injected single flip. (E.g. for `add`, deviations confined to bits
//! above `smear_down(R)`'s top keep the sum congruent modulo a power of
//! two covering `R`.) Constant-operand facts are the only value facts
//! used to *refine* a transfer (`% const-power-of-two`, `& const`,
//! shift-by-const): constants cannot be corrupted by a register fault,
//! so these facts hold in faulty runs too, whereas facts about
//! *computed* operands might not and are never used. By induction over
//! the dynamic execution (the fault cone), every value stays within its
//! matter-mask complement, every branch/address/divisor stays exactly
//! golden (their matter is full), so path, traps, memory cells, outputs
//! and the final return are unchanged: the trial is Benign.

use crate::callgraph::CallGraph;
use crate::dataflow::ModuleValueFacts;
use crate::knownbits::KnownBits;
use crate::memdep::MemDepGraph;
use crate::predict::predict_sdc;
use crate::range::AbsRange;
use crate::summary::{analyze_module_interproc, compose_ret, summarize_bits, ModuleSummaries};
use peppa_ir::{
    BinOp, CastKind, FuncId, Function, InstrId, Module, Op, Operand, Term, Ty, UnOp, ValueId,
};
use std::collections::HashMap;

/// All 64 canonical bit positions.
pub const FULL: u64 = u64::MAX;

/// Classification of one static instruction's injection site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reach {
    /// No bit of this value can influence any observable: every fault
    /// injected here is provably Benign.
    ProvablyMasked,
    /// Some bit may propagate; the payload is the heuristic SDC score
    /// from [`predict_sdc`] (ranking only — not part of the soundness
    /// story).
    MayPropagate(f64),
}

/// Per-function interprocedural summary: for each parameter, which of
/// its bits can influence (a) an in-callee sink — branch condition,
/// address, divisor, allocation size, output — transitively through
/// nested calls, (b) the callee's return value, (c) any stored-to-memory
/// value. Callers compose these at call sites instead of reanalyzing the
/// callee body.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncSummary {
    pub param_sink_bits: Vec<u64>,
    pub param_ret_bits: Vec<u64>,
    pub param_mem_bits: Vec<u64>,
}

/// Which precision layers [`FaultReach::analyze_opts`] enables. The
/// default (everything on) is the production configuration; `coarse()`
/// reproduces the legacy three-channel pipeline for before/after
/// comparisons (`repro precision`).
#[derive(Debug, Clone, Copy)]
pub struct ReachOpts {
    /// Compose call returns per result bit through the transfer rows
    /// instead of all-or-nothing.
    pub per_bit_calls: bool,
    /// Use k=1 const-arg specialized summaries at eligible call sites.
    pub specialize: bool,
    /// Refine the call mem channel to stores some live load reads,
    /// instead of any store in the callee.
    pub live_mem: bool,
    /// Tighten memdep address intervals with interprocedural value
    /// facts instead of per-function ⊤-seeded ones.
    pub interproc_facts: bool,
}

impl Default for ReachOpts {
    fn default() -> Self {
        ReachOpts {
            per_bit_calls: true,
            specialize: true,
            live_mem: true,
            interproc_facts: true,
        }
    }
}

impl ReachOpts {
    /// The pre-BitSummary pipeline: every precision layer off.
    pub fn coarse() -> Self {
        ReachOpts {
            per_bit_calls: false,
            specialize: false,
            live_mem: false,
            interproc_facts: false,
        }
    }
}

/// Module-wide fault-propagation result, indexed by static instruction
/// id.
#[derive(Debug, Clone)]
pub struct FaultReach {
    /// `class[sid]`: `None` for void instructions (not injectable).
    pub class: Vec<Option<Reach>>,
    /// `matter_bits[sid]`: canonical bits of the defined value that may
    /// influence an observable. Zero ⇔ `ProvablyMasked`.
    pub matter_bits: Vec<u64>,
    /// `widths[sid]`: bit width of the defined value (0 for void).
    pub widths: Vec<u8>,
}

impl FaultReach {
    /// Runs the whole stack: call graph, interprocedural range facts,
    /// memory dependence, per-bit summaries (with k=1 specialization),
    /// and the global inter-function fixpoint.
    pub fn analyze(module: &Module) -> FaultReach {
        FaultReach::analyze_opts(module, ReachOpts::default())
    }

    /// [`FaultReach::analyze`] with the precision layers individually
    /// switchable — the `repro precision` before/after comparator. All
    /// layers on is the production configuration; all off reproduces
    /// the coarse three-channel pipeline (intraprocedural memdep facts,
    /// all-or-nothing call-return composition, static mem channel, no
    /// call-site specialization).
    pub fn analyze_opts(module: &Module, opts: ReachOpts) -> FaultReach {
        let cg = CallGraph::new(module);
        // Interprocedural intervals tighten store/load address ranges,
        // so memdep draws fewer may-alias store→load edges. Sound for
        // pruning: addresses are FULL sinks, so a fault reaching an
        // address is never skipped, and inside a skipped fault's cone
        // every address stays exactly golden — within its static range.
        let memdep = if opts.interproc_facts {
            let ranges = analyze_module_interproc::<AbsRange>(module, &cg);
            MemDepGraph::with_facts(module, &ranges.facts)
        } else {
            MemDepGraph::new(module)
        };
        let mut sums = ModuleSummaries::compute(module, &cg);
        if !opts.specialize {
            sums.spec.clear();
        }
        FaultReach::analyze_with_opts(module, &cg, &memdep, &sums, opts)
    }

    /// Same as [`FaultReach::analyze`] with the prerequisite analyses
    /// supplied by the caller (shared with lint / experiments).
    pub fn analyze_with(
        module: &Module,
        cg: &CallGraph,
        memdep: &MemDepGraph,
        sums: &ModuleSummaries,
    ) -> FaultReach {
        FaultReach::analyze_with_opts(module, cg, memdep, sums, ReachOpts::default())
    }

    fn analyze_with_opts(
        module: &Module,
        cg: &CallGraph,
        memdep: &MemDepGraph,
        sums: &ModuleSummaries,
        opts: ReachOpts,
    ) -> FaultReach {
        let n = module.functions.len();
        // Call-return composition for one site: per-bit transfer rows,
        // or the coarse all-or-nothing union of them.
        let ret_compose = |s: &crate::summary::BitSummary, i: usize, r: u64| -> u64 {
            if opts.per_bit_calls {
                compose_ret(s, i, r)
            } else if r != 0 {
                s.param_ret_bits(i)
            } else {
                0
            }
        };

        // Cross-function state, all growing monotonically.
        let mut ret_mask = vec![0u64; n];
        ret_mask[module.entry.0 as usize] = FULL;
        let mut store_matter: HashMap<u32, u64> = HashMap::new();

        // Where each load's result lives, keyed by load sid.
        let mut load_result: HashMap<u32, (usize, ValueId)> = HashMap::new();
        // Call sites with results: (caller index, callee, result value).
        let mut call_results: Vec<(usize, FuncId, ValueId)> = Vec::new();
        for (fi, f) in module.functions.iter().enumerate() {
            for ins in f.instrs() {
                match (&ins.op, ins.result) {
                    (Op::Load { .. }, Some(rv)) => {
                        load_result.insert(ins.sid.0, (fi, rv));
                    }
                    (Op::Call { func, .. }, Some(rv)) => call_results.push((fi, *func, rv)),
                    _ => {}
                }
            }
        }

        // Live-memory channel, refined per round: bits of each param
        // whose deviation can reach a store some live load actually
        // reads (per `store_matter`) — strictly tighter than the static
        // `mem_bits` channel, which counts *any* store. An argument that
        // only feeds dead callee stores stays masked. Intersecting with
        // the (possibly k=1-specialized) `mem_bits` keeps the
        // const-pinned path refinement too.
        let mut live_mem: Vec<Vec<u64>> = module
            .functions
            .iter()
            .map(|f| vec![0u64; f.params.len()])
            .collect();

        let mut matter: Vec<Vec<u64>> = vec![Vec::new(); n];
        // Each round adds at least one bit to ret_mask/store_matter or
        // stops; 64 bits per store + per function bounds the rounds.
        let max_rounds = 64 * (memdep.stores.len() + n) + 2;
        for _ in 0..max_rounds {
            // Inner fixpoint for the live-memory channel (monotone in
            // `store_matter` and itself; bottom-up so callee masks are
            // fresh when callers compose them).
            loop {
                if !opts.live_mem {
                    break;
                }
                let mut lm_changed = false;
                for comp in &cg.sccs {
                    for &fid in comp {
                        let fi = fid.0 as usize;
                        let f = &module.functions[fi];
                        let lm = solve_function(
                            f,
                            0,
                            false,
                            |sid| store_matter.get(&sid.0).copied().unwrap_or(0),
                            |sid, g, i, r| {
                                let s = sums.at_site(sid, g);
                                (live_mem[g.0 as usize][i] & s.mem_bits[i]) | ret_compose(s, i, r)
                            },
                            NO_CENV,
                        );
                        for i in 0..f.params.len() {
                            let cur = live_mem[fi][i];
                            if cur | lm[i] != cur {
                                live_mem[fi][i] = cur | lm[i];
                                lm_changed = true;
                            }
                        }
                    }
                }
                if !lm_changed {
                    break;
                }
            }
            for (fi, f) in module.functions.iter().enumerate() {
                matter[fi] = solve_function(
                    f,
                    ret_mask[fi],
                    true,
                    |sid| store_matter.get(&sid.0).copied().unwrap_or(0),
                    |sid, g, i, r| {
                        let s = sums.at_site(sid, g);
                        let mem = if opts.live_mem {
                            live_mem[g.0 as usize][i] & s.mem_bits[i]
                        } else {
                            s.mem_bits[i]
                        };
                        s.sink_bits[i] | mem | ret_compose(s, i, r)
                    },
                    NO_CENV,
                );
            }
            let mut changed = false;
            // Call results feed callee return masks.
            for &(fi, callee, rv) in &call_results {
                let f = &module.functions[fi];
                let rm = canon_matter(f.ty_of(rv), matter[fi][rv.0 as usize]);
                let cur = ret_mask[callee.0 as usize];
                if cur | rm != cur {
                    ret_mask[callee.0 as usize] = cur | rm;
                    changed = true;
                }
            }
            // Load results feed the stores that may reach them.
            for (li, l) in memdep.loads.iter().enumerate() {
                let &(fi, rv) = match load_result.get(&l.sid.0) {
                    Some(x) => x,
                    None => continue,
                };
                let wm = load_word_matter(l.ty, matter[fi][rv.0 as usize]);
                if wm == 0 {
                    continue;
                }
                for &si in &memdep.load_stores[li] {
                    let sid = memdep.stores[si as usize].sid.0;
                    let cur = store_matter.get(&sid).copied().unwrap_or(0);
                    if cur | wm != cur {
                        store_matter.insert(sid, cur | wm);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let pred = predict_sdc(module);
        let mut matter_bits = vec![0u64; module.num_instrs];
        let mut widths = vec![0u8; module.num_instrs];
        let mut class: Vec<Option<Reach>> = vec![None; module.num_instrs];
        for (fi, f) in module.functions.iter().enumerate() {
            for ins in f.instrs() {
                if let Some(rv) = ins.result {
                    let sid = ins.sid.0 as usize;
                    let m = matter[fi][rv.0 as usize];
                    matter_bits[sid] = m;
                    widths[sid] = f.ty_of(rv).bits() as u8;
                    class[sid] = Some(if m == 0 {
                        Reach::ProvablyMasked
                    } else {
                        Reach::MayPropagate(pred.score[sid].unwrap_or(0.0))
                    });
                }
            }
        }
        FaultReach {
            class,
            matter_bits,
            widths,
        }
    }

    /// Whether a fault at `sid` flipping `bit` (plus `burst` adjacent
    /// bits) is provably masked: its effective canonical flip mask is
    /// disjoint from the value's matter mask. False for void/unknown
    /// sids (never skip what we can't prove).
    pub fn is_masked_fault(&self, sid: InstrId, bit: u32, burst: u8) -> bool {
        let s = sid.0 as usize;
        if s >= self.widths.len() || self.widths[s] == 0 {
            return false;
        }
        effective_flip_mask(self.widths[s], bit, burst) & self.matter_bits[s] == 0
    }

    /// Sids whose every possible fault is masked (matter mask empty).
    pub fn fully_masked_sids(&self) -> Vec<InstrId> {
        (0..self.widths.len())
            .filter(|&s| self.widths[s] != 0 && self.matter_bits[s] == 0)
            .map(|s| InstrId(s as u32))
            .collect()
    }

    /// `(masked, total)` cells of the `sid × 64 sampled bit positions`
    /// fault space (value-producing sids only) for the given burst.
    pub fn masked_cells(&self, burst: u8) -> (u64, u64) {
        let mut masked = 0u64;
        let mut total = 0u64;
        for s in 0..self.widths.len() {
            if self.widths[s] == 0 {
                continue;
            }
            total += 64;
            for bit in 0..64 {
                if self.is_masked_fault(InstrId(s as u32), bit, burst) {
                    masked += 1;
                }
            }
        }
        (masked, total)
    }

    /// Per-sid masked-cell bitmasks in the campaign injector's table
    /// format: entry `sid` has bit `b` set iff a fault sampled at bit
    /// position `b` on that sid is provably masked for `burst`. Feed
    /// this straight into `StaticPrune { cells, burst }`.
    pub fn skip_cells(&self, burst: u8) -> Vec<u64> {
        (0..self.widths.len())
            .map(|s| {
                let mut cells = 0u64;
                for bit in 0..64 {
                    if self.is_masked_fault(InstrId(s as u32), bit, burst) {
                        cells |= 1 << bit;
                    }
                }
                cells
            })
            .collect()
    }
}

/// The canonical change mask a campaign fault produces: `flip_bits`
/// reduces the sampled bit position modulo the value width and `canon`
/// folds an i32 sign-bit flip into the whole mirrored high group.
pub fn effective_flip_mask(width: u8, bit: u32, burst: u8) -> u64 {
    let w = width.max(1) as u32;
    let mut mask = 0u64;
    for k in 0..=burst as u32 {
        mask |= 1u64 << ((bit + k) % w);
    }
    if width == 32 && mask & (1 << 31) != 0 {
        mask = (mask & 0x7FFF_FFFF) | 0xFFFF_FFFF_8000_0000;
    }
    mask
}

/// Folds a matter mask into the canonical-form bits of type `ty`: i1
/// values only carry bit 0, canonical i32 values mirror bit 31 across
/// the whole high group (a deviation in any of bits 31..63 is exactly a
/// deviation in all of them).
pub fn canon_matter(ty: Ty, m: u64) -> u64 {
    const HIGH: u64 = 0xFFFF_FFFF_8000_0000;
    match ty {
        Ty::I1 => m & 1,
        Ty::I32 => {
            if m & HIGH != 0 {
                (m & 0x7FFF_FFFF) | HIGH
            } else {
                m
            }
        }
        _ => m,
    }
}

/// Matter of the raw stored word, given the matter of a load result that
/// reads it at type `ty` (inverts the load's `canon` projection).
fn load_word_matter(ty: Ty, r: u64) -> u64 {
    const HIGH: u64 = 0xFFFF_FFFF_8000_0000;
    match ty {
        Ty::I1 => r & 1,
        Ty::I32 => (r & 0x7FFF_FFFF) | if r & HIGH != 0 { 1 << 31 } else { 0 },
        _ => r,
    }
}

/// Bit `i` set iff `m` has any bit at position ≥ `i` (carries move
/// influence strictly upward).
fn smear_down(m: u64) -> u64 {
    let mut m = m;
    m |= m >> 1;
    m |= m >> 2;
    m |= m >> 4;
    m |= m >> 8;
    m |= m >> 16;
    m |= m >> 32;
    m
}

/// Bit `i` set iff `m` has any bit at position ≤ `i`.
fn smear_up(m: u64) -> u64 {
    let mut m = m;
    m |= m << 1;
    m |= m << 2;
    m |= m << 4;
    m |= m << 8;
    m |= m << 16;
    m |= m << 32;
    m
}

fn width_mask(w: u32) -> u64 {
    if w >= 64 {
        FULL
    } else {
        (1u64 << w) - 1
    }
}

fn full_if(r: u64) -> u64 {
    if r != 0 {
        FULL
    } else {
        0
    }
}

/// Canonical bits of a *constant* operand, if it is one. Only constants
/// may refine a transfer: they cannot be corrupted by a register fault,
/// so their value holds in faulty runs too (see module docs).
fn const_bits(o: &Operand, cenv: ConstEnv) -> Option<u64> {
    match o {
        Operand::Const(c) => Some(c.bits),
        Operand::Value(v) => cenv(*v),
    }
}

/// A "provably constant in every run" environment for values. The only
/// sound non-empty instance is k=1 call-site specialization: a function
/// parameter bound to a *literal constant* argument at the specialized
/// site. Neither the literal operand nor the parameter copy is an
/// injectable value definition, so the binding survives every
/// single-fault run of that call site (see [`crate::summary`]).
pub(crate) type ConstEnv<'a> = &'a dyn Fn(ValueId) -> Option<u64>;

/// The empty const-environment (context-insensitive analysis).
pub(crate) const NO_CENV: ConstEnv<'static> = &|_| None;

/// Per-bit backward transfer: matter contribution of operand `idx`
/// given result matter `r`. `w` is the operand/result width in bits.
fn bin_contribution(op: BinOp, idx: usize, r: u64, w: u32, other: &Operand, cenv: ConstEnv) -> u64 {
    match op {
        BinOp::Add | BinOp::Sub => smear_down(r),
        BinOp::Mul => match const_bits(other, cenv) {
            Some(0) => 0,
            Some(c) => smear_down(r) >> c.trailing_zeros().min(63),
            None => smear_down(r),
        },
        // Division data paths; the divisor *trap* sink is seeded
        // separately by the solver.
        BinOp::SDiv => full_if(r),
        BinOp::SRem => {
            if idx == 1 || r == 0 {
                full_if(r)
            } else {
                // Truncated remainder by ±2^k is a function of the
                // dividend's low k bits and its sign bit only.
                match const_bits(other, cenv).map(|c| (c as i64).unsigned_abs()) {
                    Some(m) if m.is_power_of_two() => {
                        let k = m.trailing_zeros();
                        if k == 0 {
                            0 // x % ±1 == 0 regardless of x
                        } else {
                            width_mask(k) | (1u64 << (w - 1))
                        }
                    }
                    _ => FULL,
                }
            }
        }
        BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => full_if(r),
        BinOp::And => match const_bits(other, cenv) {
            Some(c) => r & c,
            None => r,
        },
        BinOp::Or => match const_bits(other, cenv) {
            Some(c) => r & !c,
            None => r,
        },
        BinOp::Xor => r,
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            let amt_mask = (w - 1).max(1) as u64;
            if idx == 1 {
                // The VM masks the amount to `w-1`: only those low bits
                // can matter.
                if r != 0 {
                    amt_mask
                } else {
                    0
                }
            } else {
                match const_bits(other, cenv).map(|c| (c & amt_mask) as u32) {
                    Some(s) => match op {
                        BinOp::Shl => r >> s,
                        BinOp::LShr => (r << s) & width_mask(w),
                        BinOp::AShr => {
                            let m = (r << s) & width_mask(w);
                            // The top s result bits replicate the sign.
                            let sign_feeders = width_mask(w) & !width_mask(w - 1 - s);
                            if r & sign_feeders != 0 {
                                m | (1u64 << (w - 1))
                            } else {
                                m
                            }
                        }
                        _ => unreachable!(),
                    },
                    None => match op {
                        BinOp::Shl => smear_down(r),
                        BinOp::LShr => smear_up(r) & width_mask(w),
                        BinOp::AShr => {
                            let m = smear_up(r) & width_mask(w);
                            if r & width_mask(w) != 0 {
                                m | (1u64 << (w - 1))
                            } else {
                                m
                            }
                        }
                        _ => unreachable!(),
                    },
                }
            }
        }
    }
}

/// Matter contribution of `ops[idx]` for a value-producing op with
/// result matter `r`.
fn operand_contribution(
    f: &Function,
    ins_op: &Op,
    idx: usize,
    r: u64,
    ops: &[Operand],
    cenv: ConstEnv,
) -> u64 {
    match ins_op {
        Op::Bin { op, .. } => {
            let other = &ops[1 - idx];
            let w = f.operand_ty(&ops[idx]).bits();
            bin_contribution(*op, idx, r, w, other, cenv)
        }
        Op::Un { op, .. } => match op {
            UnOp::Not => r,
            UnOp::FNeg => r, // per-bit bijection on the payload+sign
            UnOp::FAbs => r & !(1u64 << 63),
            _ => full_if(r),
        },
        Op::Icmp { .. } | Op::Fcmp { .. } => full_if(r & 1),
        Op::Select { .. } => {
            if idx == 0 {
                if r != 0 {
                    1
                } else {
                    0
                }
            } else {
                r
            }
        }
        Op::Cast { kind, to, .. } => {
            let from = f.operand_ty(&ops[0]);
            match kind {
                CastKind::Trunc => r & width_mask(to.bits()),
                CastKind::ZExt => r & width_mask(from.bits()),
                CastKind::SExt => {
                    let wf = from.bits();
                    if wf >= to.bits() {
                        r
                    } else {
                        let low = width_mask(wf);
                        (r & low) | if r & !low != 0 { 1u64 << (wf - 1) } else { 0 }
                    }
                }
                CastKind::FpToSi | CastKind::SiToFp => full_if(r),
                CastKind::Bitcast | CastKind::PtrToInt | CastKind::IntToPtr => r,
            }
        }
        Op::Gep { .. } => smear_down(r),
        // Sinks / summary-driven ops are handled by the solver itself.
        _ => 0,
    }
}

/// One backward per-bit fixpoint over a single function body.
///
/// * `ret_mask` — matter of the function's return value in this context;
/// * `sink_seeds` — whether trap/control/output sinks seed `FULL` (true
///   for the SINK channel and the global pass, false for the RET/MEM
///   summary channels, whose flows the SINK channel covers separately);
/// * `store_value_mask` — matter of each store's *value* operand;
/// * `call_arg_mask(callee, arg, result_matter)` — matter of a call
///   argument, composed from callee summaries.
///
/// Returns per-value matter masks; parameters are values `0..nparams`.
pub(crate) fn solve_function(
    f: &Function,
    ret_mask: u64,
    sink_seeds: bool,
    store_value_mask: impl Fn(InstrId) -> u64,
    call_arg_mask: impl Fn(InstrId, FuncId, usize, u64) -> u64,
    cenv: ConstEnv,
) -> Vec<u64> {
    let nv = f.value_types.len();
    let mut matter = vec![0u64; nv];

    fn bump(f: &Function, matter: &mut [u64], o: &Operand, m: u64) -> bool {
        if m == 0 {
            return false;
        }
        if let Some(v) = o.value() {
            let c = canon_matter(f.ty_of(v), m);
            let cur = matter[v.0 as usize];
            if cur | c != cur {
                matter[v.0 as usize] = cur | c;
                return true;
            }
        }
        false
    }

    // Monotone bit growth: 64 bits per value bounds the passes.
    let max_passes = 64 * nv + 2;
    for _ in 0..max_passes {
        let mut changed = false;
        for b in &f.blocks {
            for ins in b.instrs.iter().rev() {
                let r = ins.result.map(|v| matter[v.0 as usize]).unwrap_or(0);
                // Unconditional sinks and cross-boundary flows.
                match &ins.op {
                    Op::Store { addr, value } => {
                        if sink_seeds {
                            changed |= bump(f, &mut matter, addr, FULL);
                        }
                        let vm = store_value_mask(ins.sid);
                        changed |= bump(f, &mut matter, value, vm);
                    }
                    Op::Load { addr, .. } if sink_seeds => {
                        changed |= bump(f, &mut matter, addr, FULL);
                    }
                    Op::Output { value } if sink_seeds => {
                        changed |= bump(f, &mut matter, value, FULL);
                    }
                    Op::Alloca { words } if sink_seeds => {
                        changed |= bump(f, &mut matter, words, FULL);
                    }
                    // Division by zero traps: the divisor is an
                    // observable sink regardless of the result.
                    Op::Bin {
                        op: BinOp::SDiv | BinOp::SRem,
                        b: divisor,
                        ..
                    } if sink_seeds => {
                        changed |= bump(f, &mut matter, divisor, FULL);
                    }
                    Op::Call { func, args } => {
                        for (i, a) in args.iter().enumerate() {
                            let m = call_arg_mask(ins.sid, *func, i, r);
                            changed |= bump(f, &mut matter, a, m);
                        }
                    }
                    _ => {}
                }
                // Per-bit data flow into the result.
                match &ins.op {
                    Op::Bin { .. }
                    | Op::Un { .. }
                    | Op::Icmp { .. }
                    | Op::Fcmp { .. }
                    | Op::Select { .. }
                    | Op::Cast { .. }
                    | Op::Gep { .. } => {
                        let ops = ins.op.operands();
                        for idx in 0..ops.len() {
                            let c = operand_contribution(f, &ins.op, idx, r, &ops, cenv);
                            changed |= bump(f, &mut matter, &ops[idx], c);
                        }
                    }
                    _ => {}
                }
            }
            match &b.term {
                Term::Br { target, args } => {
                    for (p, a) in f.block(*target).params.iter().zip(args) {
                        let pm = matter[p.0 as usize];
                        changed |= bump(f, &mut matter, a, pm);
                    }
                }
                Term::CondBr {
                    cond,
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                } => {
                    if sink_seeds {
                        changed |= bump(f, &mut matter, cond, FULL);
                    }
                    for (t, args) in [(then_target, then_args), (else_target, else_args)] {
                        for (p, a) in f.block(*t).params.iter().zip(args) {
                            let pm = matter[p.0 as usize];
                            changed |= bump(f, &mut matter, a, pm);
                        }
                    }
                }
                Term::Ret { value } => {
                    if let Some(v) = value {
                        changed |= bump(f, &mut matter, v, ret_mask);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    matter
}

/// Three-channel [`FuncSummary`] view of the per-bit
/// [`crate::summary::BitSummary`]s: each parameter's ret channel is the
/// union of its per-ret-bit transfer rows. Kept as the stable coarse API
/// (lint, predictor attenuation); the campaign path composes the per-bit
/// summaries directly.
pub fn summarize(
    module: &Module,
    cg: &CallGraph,
    _kb: &ModuleValueFacts<KnownBits>,
) -> Vec<FuncSummary> {
    summarize_bits(module, cg)
        .iter()
        .map(|b| FuncSummary {
            param_sink_bits: b.sink_bits.clone(),
            param_ret_bits: (0..b.sink_bits.len())
                .map(|i| b.param_ret_bits(i))
                .collect(),
            param_mem_bits: b.mem_bits.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_ir::Ty;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "reach").unwrap()
    }

    /// Sid of the first instruction in `func` matching the predicate.
    fn find_sid(m: &Module, func: &str, pred: impl Fn(&Op) -> bool) -> InstrId {
        let f = m.func(m.func_by_name(func).unwrap());
        f.instrs()
            .find(|i| pred(&i.op))
            .map(|i| i.sid)
            .expect("instruction not found")
    }

    fn is_bin(op: &Op, b: BinOp) -> bool {
        matches!(op, Op::Bin { op, .. } if *op == b)
    }

    #[test]
    fn smears_move_influence_the_right_way() {
        assert_eq!(smear_down(0b1000), 0b1111);
        assert_eq!(smear_up(0b1000), !0b111);
        assert_eq!(smear_down(0), 0);
        assert_eq!(effective_flip_mask(64, 70, 0), 1 << 6);
        assert_eq!(effective_flip_mask(1, 63, 0), 1);
        assert_eq!(
            effective_flip_mask(32, 31, 0),
            0xFFFF_FFFF_8000_0000,
            "i32 sign flip drags the canonical high group"
        );
        assert_eq!(canon_matter(Ty::I32, 1 << 40), 0xFFFF_FFFF_8000_0000);
    }

    #[test]
    fn srem_by_power_of_two_masks_middle_bits_interprocedurally() {
        // The LCG shared by most bundled benchmarks: the add's bits
        // 31..62 provably cannot reach the output (only the low 31 bits
        // and the sign survive `% 2^31`), even across the call boundary.
        let m = compile(
            r#"fn lcg(x: int) -> int { return (x * 1103515245 + 12345) % 2147483648; }
               fn main(x: int) { output lcg(x); }"#,
        );
        let fr = FaultReach::analyze(&m);
        let add = find_sid(&m, "lcg", |op| is_bin(op, BinOp::Add));
        let expected = width_mask(31) | (1u64 << 63);
        assert_eq!(fr.matter_bits[add.0 as usize], expected);
        assert!(fr.is_masked_fault(add, 40, 0));
        assert!(fr.is_masked_fault(add, 31, 0));
        assert!(!fr.is_masked_fault(add, 5, 0));
        assert!(!fr.is_masked_fault(add, 63, 0));
        // A burst straddling the boundary must not be skipped.
        assert!(!fr.is_masked_fault(add, 29, 2));
        assert!(fr.is_masked_fault(add, 31, 2));
        // The remainder itself feeds output: fully live.
        let srem = find_sid(&m, "lcg", |op| is_bin(op, BinOp::SRem));
        assert!(matches!(
            fr.class[srem.0 as usize],
            Some(Reach::MayPropagate(_))
        ));
        let (masked, total) = fr.masked_cells(0);
        assert!(masked > 0 && masked < total);
    }

    #[test]
    fn value_feeding_only_a_dead_store_is_fully_masked() {
        let m = compile(
            r#"global int scratch[2];
               fn main(x: int) {
                   scratch[0] = x * 3;
                   output 7;
               }"#,
        );
        let fr = FaultReach::analyze(&m);
        let mul = find_sid(&m, "main", |op| is_bin(op, BinOp::Mul));
        assert_eq!(fr.class[mul.0 as usize], Some(Reach::ProvablyMasked));
        assert!(fr.fully_masked_sids().contains(&mul));
    }

    #[test]
    fn store_to_live_load_keeps_value_live() {
        let m = compile(
            r#"global int cell[1];
               fn main(x: int) {
                   cell[0] = x * 3;
                   output cell[0];
               }"#,
        );
        let fr = FaultReach::analyze(&m);
        let mul = find_sid(&m, "main", |op| is_bin(op, BinOp::Mul));
        assert!(matches!(
            fr.class[mul.0 as usize],
            Some(Reach::MayPropagate(_))
        ));
    }

    #[test]
    fn divisor_is_a_trap_sink_even_when_quotient_is_dead() {
        let m = compile(
            r#"global int scratch[1];
               fn main(x: int) {
                   let d = x | 1;
                   scratch[0] = 100 / d;
                   output 7;
               }"#,
        );
        let fr = FaultReach::analyze(&m);
        // The quotient only feeds a dead store — but the divisor can
        // still trap, so `d = x | 1` must stay fully live.
        let or = find_sid(&m, "main", |op| is_bin(op, BinOp::Or));
        assert_eq!(fr.matter_bits[or.0 as usize], FULL);
        let div = find_sid(&m, "main", |op| is_bin(op, BinOp::SDiv));
        assert_eq!(fr.class[div.0 as usize], Some(Reach::ProvablyMasked));
    }

    #[test]
    fn shift_amount_high_bits_are_masked() {
        let m = compile(
            r#"fn main(x: int, s: int) {
                   let a = s + 0;
                   output x << a;
               }"#,
        );
        let fr = FaultReach::analyze(&m);
        let add = find_sid(&m, "main", |op| is_bin(op, BinOp::Add));
        // Only the low 6 bits of a 64-bit shift amount participate.
        assert_eq!(fr.matter_bits[add.0 as usize], 63);
        assert!(fr.is_masked_fault(add, 6, 0));
        assert!(!fr.is_masked_fault(add, 5, 0));
    }

    #[test]
    fn and_with_constant_masks_cleared_bits() {
        let m = compile(
            r#"fn main(x: int) {
                   let a = x + 1;
                   output a & 255;
               }"#,
        );
        let fr = FaultReach::analyze(&m);
        let add = find_sid(&m, "main", |op| is_bin(op, BinOp::Add));
        assert_eq!(fr.matter_bits[add.0 as usize], 255);
    }

    #[test]
    fn branch_condition_inputs_stay_live() {
        let m = compile(
            r#"fn main(x: int) {
                   let a = x * 2;
                   if (a > 10) { output 1; } else { output 0; }
               }"#,
        );
        let fr = FaultReach::analyze(&m);
        let mul = find_sid(&m, "main", |op| is_bin(op, BinOp::Mul));
        assert!(matches!(
            fr.class[mul.0 as usize],
            Some(Reach::MayPropagate(_))
        ));
    }

    #[test]
    fn summaries_expose_the_three_channels() {
        let m = compile(
            r#"global int g[1];
               fn store_it(v: int) { g[0] = v; }
               fn ret_it(v: int) -> int { return v; }
               fn branch_it(v: int) -> int {
                   if (v > 0) { return 1; }
                   return 0;
               }
               fn main(x: int) {
                   store_it(x);
                   output ret_it(x);
                   output branch_it(x);
               }"#,
        );
        let cg = CallGraph::new(&m);
        let kb = crate::dataflow::analyze_module::<KnownBits>(&m);
        let sums = summarize(&m, &cg, &kb);
        let sid = |n: &str| m.func_by_name(n).unwrap().0 as usize;
        let st = &sums[sid("store_it")];
        assert_eq!(st.param_mem_bits[0], FULL);
        assert_eq!(st.param_ret_bits[0], 0);
        let rt = &sums[sid("ret_it")];
        assert_eq!(rt.param_ret_bits[0], FULL);
        assert_eq!(rt.param_mem_bits[0], 0);
        let br = &sums[sid("branch_it")];
        assert_eq!(br.param_sink_bits[0], FULL, "branch condition is a sink");
    }

    #[test]
    fn recursive_summary_reaches_fixpoint() {
        let m = compile(
            r#"fn fib(n: int) -> int {
                   if (n < 2) { return n; }
                   return fib(n - 1) + fib(n - 2);
               }
               fn main(n: int) { output fib(n); }"#,
        );
        let fr = FaultReach::analyze(&m);
        // Every arithmetic value inside fib reaches the recursion's
        // branch condition: nothing is masked.
        let sub = find_sid(&m, "fib", |op| is_bin(op, BinOp::Sub));
        assert!(matches!(
            fr.class[sub.0 as usize],
            Some(Reach::MayPropagate(_))
        ));
    }
}

//! Loop-invariant code motion.
//!
//! Natural loops are found from back edges (`u -> h` with `h`
//! dominating `u`); loops sharing a header are merged. For each loop, a
//! fresh *preheader* block is inserted: every entry edge is retargeted
//! to it and it forwards the header's block arguments through fresh
//! parameters, so the preheader dominates the header and everything the
//! loop dominates. Hoisting a pure, provably non-trapping instruction
//! whose operands are all loop-invariant into the preheader then
//! preserves every golden-run observable: the moved instruction
//! computes the same bits (same operands, same VM semantics) and can
//! neither trap nor touch memory or output.
//!
//! Two deliberate restrictions:
//!
//! * Loads are never hoisted — a store or call inside the loop may
//!   clobber the address between iterations.
//! * Only instructions whose block dominates every latch (i.e. that
//!   execute on *every* iteration) are hoisted, so the dynamic
//!   instruction count can only grow in the zero-trip case — one
//!   preheader execution against zero body executions — and strictly
//!   shrinks whenever the loop runs more than once.
//!
//! The pass transforms one loop at a time and recomputes the CFG after
//! each, which handles nesting naturally: an instruction hoisted out of
//! an inner loop lands in the inner preheader, which is part of the
//! outer loop's body, and a later round lifts it again.

use super::Pass;
use crate::cfg::Cfg;
use peppa_ir::{BinOp, Block, BlockId, Instr, Module, Op, Operand, Term, ValueId};
use peppa_vm::canon;
use std::collections::HashSet;

pub struct Licm;

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&self, m: &mut Module) -> u64 {
        let mut applied = 0;
        for f in &mut m.functions {
            // One loop per round; stop when no loop has hoistable work.
            loop {
                let n = hoist_one_loop(f);
                if n == 0 {
                    break;
                }
                applied += n;
            }
        }
        applied
    }
}

/// Finds the first loop (by header index) with hoistable instructions,
/// hoists them into a fresh preheader, and returns how many moved.
fn hoist_one_loop(f: &mut peppa_ir::Function) -> u64 {
    let cfg = Cfg::new(f);
    let nb = cfg.num_blocks();

    // Back edges grouped by header; skip the entry block (it cannot be
    // given a preheader — there is no edge into it to retarget).
    for h in 1..nb {
        let latches: Vec<u32> = (0..nb as u32)
            .filter(|&u| {
                cfg.succs[u as usize].contains(&(h as u32))
                    && cfg.dominates(BlockId(h as u32), BlockId(u))
            })
            .collect();
        if latches.is_empty() {
            continue;
        }
        // Natural loop body: blocks that reach a latch without passing
        // through the header.
        let mut body: HashSet<u32> = HashSet::from([h as u32]);
        let mut stack: Vec<u32> = latches.clone();
        while let Some(b) = stack.pop() {
            if body.insert(b) {
                for &p in &cfg.preds[b as usize] {
                    stack.push(p);
                }
            }
        }

        // Values defined inside the body (params + results).
        let mut defined_in: HashSet<ValueId> = HashSet::new();
        for &bi in &body {
            let blk = &f.blocks[bi as usize];
            defined_in.extend(blk.params.iter().copied());
            defined_in.extend(blk.instrs.iter().filter_map(|i| i.result));
        }

        // Candidates, in RPO-and-program order so dependencies between
        // hoisted instructions stay def-before-use in the preheader.
        let mut hoist: Vec<(u32, peppa_ir::InstrId)> = Vec::new();
        let mut hoisted_vals: HashSet<ValueId> = HashSet::new();
        for &bi in cfg.rpo.iter().filter(|b| body.contains(b)) {
            if !latches
                .iter()
                .all(|&u| cfg.dominates(BlockId(bi), BlockId(u)))
            {
                continue;
            }
            for ins in &f.blocks[bi as usize].instrs {
                if ins.result.is_none() || !hoistable_op(&ins.op) {
                    continue;
                }
                let invariant = ins.op.operands().iter().all(|o| match o {
                    Operand::Const(_) => true,
                    Operand::Value(v) => !defined_in.contains(v) || hoisted_vals.contains(v),
                });
                if invariant {
                    hoist.push((bi, ins.sid));
                    hoisted_vals.insert(ins.result.unwrap());
                }
            }
        }
        if hoist.is_empty() {
            continue;
        }

        // Build the preheader: fresh params mirroring the header's,
        // forwarding them unchanged.
        let header = BlockId(h as u32);
        let nparams = f.blocks[h].params.len();
        let mut pre_params = Vec::with_capacity(nparams);
        for i in 0..nparams {
            let p = f.blocks[h].params[i];
            let v = ValueId(f.value_types.len() as u32);
            f.value_types.push(f.ty_of(p));
            pre_params.push(v);
        }
        let pre = BlockId(f.blocks.len() as u32);
        f.blocks.push(Block {
            params: pre_params.clone(),
            instrs: Vec::new(),
            term: Term::Br {
                target: header,
                args: pre_params.iter().map(|&v| Operand::Value(v)).collect(),
            },
        });

        // Retarget every entry (non-back) edge to the preheader.
        let latch_set: HashSet<u32> = latches.iter().copied().collect();
        for (bi, b) in f.blocks.iter_mut().enumerate() {
            if bi == pre.0 as usize || latch_set.contains(&(bi as u32)) {
                continue;
            }
            let retarget = |t: &mut BlockId| {
                if *t == header {
                    *t = pre;
                }
            };
            match &mut b.term {
                Term::Br { target, .. } => retarget(target),
                Term::CondBr {
                    then_target,
                    else_target,
                    ..
                } => {
                    retarget(then_target);
                    retarget(else_target);
                }
                Term::Ret { .. } => {}
            }
        }

        // Move the instructions, preserving order.
        let moved = hoist.len() as u64;
        let sids: HashSet<_> = hoist.iter().map(|&(_, sid)| sid).collect();
        let mut lifted: Vec<Instr> = Vec::with_capacity(hoist.len());
        for &(bi, _) in &hoist {
            let blk = &mut f.blocks[bi as usize];
            let mut rest = Vec::with_capacity(blk.instrs.len());
            for ins in blk.instrs.drain(..) {
                if sids.contains(&ins.sid) && !lifted.iter().any(|l| l.sid == ins.sid) {
                    lifted.push(ins);
                } else {
                    rest.push(ins);
                }
            }
            blk.instrs = rest;
        }
        // `hoist` was built in dependency order, but drain order above
        // follows block order; re-sort the lifted list to the recorded
        // hoist order.
        let order: std::collections::HashMap<_, _> = hoist
            .iter()
            .enumerate()
            .map(|(i, &(_, sid))| (sid, i))
            .collect();
        lifted.sort_by_key(|i| order[&i.sid]);
        f.blocks[pre.0 as usize].instrs = lifted;
        return moved;
    }
    0
}

/// Pure and provably non-trapping: safe to execute speculatively in the
/// preheader.
fn hoistable_op(op: &Op) -> bool {
    match op {
        Op::Bin {
            op: BinOp::SDiv | BinOp::SRem,
            b,
            ..
        } => matches!(b, Operand::Const(c) if canon(c.ty, c.bits) != 0),
        Op::Bin { .. }
        | Op::Un { .. }
        | Op::Icmp { .. }
        | Op::Fcmp { .. }
        | Op::Select { .. }
        | Op::Cast { .. }
        | Op::Gep { .. } => true,
        Op::Load { .. }
        | Op::Store { .. }
        | Op::Alloca { .. }
        | Op::Call { .. }
        | Op::Output { .. } => false,
    }
}

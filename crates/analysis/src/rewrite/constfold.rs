//! Constant folding driven by exact VM semantics and the
//! interprocedural KnownBits/AbsRange facts.
//!
//! Two sources of constants:
//!
//! 1. **Literal evaluation**: an instruction whose operands are all
//!    constants is evaluated with the engines' own semantic kernels
//!    (`exec_bin_checked`, `exec_un`, `exec_cast`, `exec_icmp`,
//!    `exec_fcmp`) so the folded word is bit-identical to what either
//!    engine would compute — `i32` sign-extension, masked shifts,
//!    saturating `fptosi` and all. A division whose divisor is the
//!    constant zero is *not* folded (`exec_bin_checked` returns `None`):
//!    the trap must still fire at runtime.
//! 2. **Analysis facts**: a value the interprocedural KnownBits or
//!    AbsRange domains prove to be a single bit pattern is a constant
//!    even when its operands are not — e.g. `x & 0`, a masked value, a
//!    call whose return summary collapses. Both domains are sound
//!    over-approximations of the golden run, so an exact fact *is* the
//!    runtime value.
//!
//! The pass only rewrites *uses*: every operand referring to a
//! known-constant value becomes the constant. The defining instruction
//! stays where it is — if it is pure it becomes dead and DCE deletes
//! it; if it could trap it keeps executing, preserving golden-run
//! status bit-for-bit.

use super::Pass;
use crate::knownbits::KnownBits;
use crate::range::AbsRange;
use crate::summary::analyze_module_interproc;
use crate::CallGraph;
use peppa_ir::{Const, Module, Op, Operand, Ty, ValueId};
use peppa_vm::{canon, exec_bin_checked, exec_cast, exec_fcmp, exec_icmp, exec_un};
use std::collections::HashMap;

pub struct ConstFold;

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&self, m: &mut Module) -> u64 {
        let cg = CallGraph::new(m);
        let kb = analyze_module_interproc::<KnownBits>(m, &cg);
        let rg = analyze_module_interproc::<AbsRange>(m, &cg);

        let mut applied = 0;
        for (fi, f) in m.functions.iter_mut().enumerate() {
            // Known constants from the interprocedural domains.
            let mut const_of: HashMap<ValueId, Const> = HashMap::new();
            for v in 0..f.value_types.len() {
                let vid = ValueId(v as u32);
                let ty = f.value_types[v];
                let bits = fact_const(
                    ty,
                    kb.facts.per_func[fi].values.get(v),
                    rg.facts.per_func[fi].values.get(v),
                );
                if let Some(bits) = bits {
                    const_of.insert(vid, Const { ty, bits });
                }
            }

            // Literal evaluation, forward over blocks in layout order
            // (defs dominate uses, and layout order visits dominators
            // first for the builder's structured CFGs; a missed
            // back-edge case just folds on the next sweep).
            for b in &f.blocks {
                for ins in &b.instrs {
                    let Some(r) = ins.result else { continue };
                    if const_of.contains_key(&r) {
                        continue;
                    }
                    let lit = |o: &Operand| -> Option<u64> {
                        match o {
                            Operand::Const(c) => Some(canon(c.ty, c.bits)),
                            Operand::Value(v) => const_of.get(v).map(|c| canon(c.ty, c.bits)),
                        }
                    };
                    let ty = f.value_types[r.0 as usize];
                    let bits = (|| -> Option<u64> {
                        match &ins.op {
                            Op::Bin { op, a, b } => exec_bin_checked(*op, ty, lit(a)?, lit(b)?),
                            Op::Un { op, a } => Some(exec_un(*op, ty, lit(a)?)),
                            Op::Icmp { pred, a, b } => Some(exec_icmp(*pred, lit(a)?, lit(b)?)),
                            Op::Fcmp { pred, a, b } => Some(exec_fcmp(*pred, lit(a)?, lit(b)?)),
                            Op::Cast { kind, a, .. } => {
                                Some(exec_cast(*kind, f.operand_ty(a), ty, lit(a)?))
                            }
                            Op::Select { cond, t, f: fo } => {
                                if lit(cond)? & 1 != 0 {
                                    Some(lit(t)?)
                                } else {
                                    Some(lit(fo)?)
                                }
                            }
                            Op::Gep { base, index } => {
                                Some(canon(ty, lit(base)?.wrapping_add(lit(index)?)))
                            }
                            // Loads, calls, allocas: never foldable from
                            // literals (memory/stack state, side effects).
                            _ => None,
                        }
                    })();
                    if let Some(bits) = bits {
                        const_of.insert(r, Const { ty, bits });
                    }
                }
            }

            if const_of.is_empty() {
                continue;
            }
            let map: HashMap<ValueId, Operand> = const_of
                .into_iter()
                .map(|(v, c)| (v, Operand::Const(c)))
                .collect();
            applied += super::replace_uses(f, &map);
        }
        applied
    }
}

/// An exact bit pattern for a value, if either domain proves one.
fn fact_const(ty: Ty, kb: Option<&KnownBits>, rg: Option<&AbsRange>) -> Option<u64> {
    if let Some(bits) = kb.and_then(|k| k.as_const()) {
        // KnownBits facts are already canonical for the value's type.
        return Some(canon(ty, bits));
    }
    match (ty, rg) {
        (Ty::F64, Some(AbsRange::Float(r))) => {
            // Exact float interval: a single non-NaN value. (NaN is
            // excluded — `nan: true` admits many payloads, and an exact
            // [v, v] interval with v == v is never NaN.)
            if !r.nan && r.lo == r.hi && r.lo.is_finite() {
                // Negative zero and positive zero compare equal but have
                // different bits; only fold when the sign is pinned.
                if r.lo == 0.0 {
                    return None;
                }
                return Some(r.lo.to_bits());
            }
            None
        }
        (_, Some(AbsRange::Int(r))) => r.as_const().map(|v| canon(ty, v as u64)),
        _ => None,
    }
}

//! The optimizing rewrite engine for PIR (ROADMAP item 4).
//!
//! A pattern-rewrite pass framework in the style of prjunnamed's netlist
//! rewriter: each [`Pass`] takes a whole module, applies local rewrites
//! built on the existing dataflow substrate (CFG/dominators, known-bits,
//! intervals, observable-liveness, the memory-dependence graph, the
//! interprocedural summaries), and reports how many rewrites it applied.
//! [`optimize`] drives a fixpoint pipeline: the pass list for the
//! requested [`OptLevel`] runs repeatedly until one full sweep changes
//! nothing (or the iteration cap trips), then instruction ids are
//! renumbered densely and the result is re-verified.
//!
//! ## The soundness contract
//!
//! Every pass must preserve the *golden-run observables* of the module
//! on both execution engines, bit for bit: the output stream, the
//! return value, and the status (including which trap fires first).
//! The fault *space* is allowed to change — that is the point of the
//! optimization-vs-vulnerability study — but fault-free behaviour is
//! not. Concretely:
//!
//! * Constant folding evaluates with the engines' own semantic kernels
//!   (`peppa_vm::exec_bin_checked` & co.), so a folded constant is the
//!   exact canonical word the VM would have computed — including `i32`
//!   sign-extension, masked shift counts, and saturating `fptosi`.
//! * No floating-point reassociation, ever. Float rewrites are limited
//!   to use-replacement by values proved bit-identical.
//! * Potentially-trapping instructions (`sdiv`/`srem` by a non-constant
//!   divisor, loads, stores, calls) are never deleted and never folded
//!   past their trap check; `allocas` are never deleted (removing one
//!   would shift every later stack address).
//! * Dead-code elimination removes only instructions that are pure and
//!   provably non-trapping; dead stores additionally need their address
//!   proved inside the static global segment.
//! * CSE replaces an instruction only with a *dominating* identical
//!   instruction, so the surviving instance executes (and traps)
//!   exactly when the deleted one would have.

pub mod algebraic;
pub mod cfg_cleanup;
pub mod constfold;
pub mod cse;
pub mod dce;
pub mod licm;
pub mod normalize;

use peppa_ir::{Module, Operand, ValueId};
use serde::Serialize;
use std::collections::HashMap;

pub use cse::redundant_computations;

/// Optimization level: `O0` is the identity, `O1` runs the scalar
/// simplification passes, `O2` adds CSE and CFG cleanup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub enum OptLevel {
    O0,
    O1,
    O2,
}

impl OptLevel {
    pub fn as_str(self) -> &'static str {
        match self {
            OptLevel::O0 => "O0",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
        }
    }
}

impl std::str::FromStr for OptLevel {
    type Err = String;
    fn from_str(s: &str) -> Result<OptLevel, String> {
        match s.trim_start_matches("-").trim_start_matches(['O', 'o']) {
            "0" => Ok(OptLevel::O0),
            "1" => Ok(OptLevel::O1),
            "2" => Ok(OptLevel::O2),
            _ => Err(format!("unknown opt level `{s}` (expected 0, 1, or 2)")),
        }
    }
}

impl std::fmt::Display for OptLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One rewrite pass over a whole module.
///
/// The input satisfies every verifier invariant *except* sid density
/// (earlier passes may have deleted instructions, leaving gaps below the
/// original `num_instrs`), and the pass must return a module in the same
/// state: all blocks reachable, SSA intact, types consistent, sids
/// unique and `< num_instrs`.
pub trait Pass {
    fn name(&self) -> &'static str;
    /// Applies the pass in place; returns the number of rewrites applied
    /// (0 means the module is unchanged).
    fn run(&self, m: &mut Module) -> u64;
}

/// Per-pass change tracking, accumulated across fixpoint iterations.
#[derive(Debug, Clone, Serialize)]
pub struct PassStats {
    pub name: &'static str,
    /// Total rewrites the pass applied over all pipeline iterations.
    pub applied: u64,
    /// Total wall time spent in the pass.
    pub wall_ns: u64,
}

/// Pipeline-level statistics for one [`optimize`] run.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineStats {
    pub level: OptLevel,
    /// Fixpoint sweeps executed (the last one applied zero rewrites
    /// unless the iteration cap tripped).
    pub iterations: u32,
    pub passes: Vec<PassStats>,
    /// Static instruction count before / after.
    pub instrs_before: usize,
    pub instrs_after: usize,
}

/// Result of [`optimize`]: the rewritten module plus bookkeeping.
#[derive(Debug, Clone)]
pub struct OptResult {
    pub module: Module,
    pub stats: PipelineStats,
    /// `provenance[new_sid]` = the sid the instruction had in the input
    /// module. Rewrites edit instructions in place and deletions leave
    /// gaps, so every surviving instruction has a unique original sid —
    /// the correspondence the optstudy experiment ranks across levels.
    pub provenance: Vec<u32>,
}

/// The pass list for a level, in sweep order.
pub fn pipeline(level: OptLevel) -> Vec<Box<dyn Pass>> {
    match level {
        OptLevel::O0 => Vec::new(),
        OptLevel::O1 => vec![
            Box::new(constfold::ConstFold) as Box<dyn Pass>,
            Box::new(algebraic::Algebraic),
            Box::new(dce::Dce),
        ],
        OptLevel::O2 => vec![
            Box::new(constfold::ConstFold) as Box<dyn Pass>,
            Box::new(algebraic::Algebraic),
            Box::new(cse::Cse),
            Box::new(licm::Licm),
            Box::new(dce::Dce),
            Box::new(cfg_cleanup::CfgCleanup),
        ],
    }
}

/// Fixpoint sweeps before the driver gives up. Each sweep only runs if
/// the previous one changed something, and every rewrite strictly
/// shrinks the instruction count or the set of foldable patterns, so
/// real modules converge in 2-4 sweeps; the cap is a backstop.
const MAX_SWEEPS: u32 = 10;

/// Optimizes `module` at `level`: runs the pipeline to a fixpoint,
/// renumbers sids densely, and re-verifies. Panics if a pass breaks a
/// verifier invariant — that is a bug in the pass, never in the input.
pub fn optimize(module: &Module, level: OptLevel) -> OptResult {
    let mut m = module.clone();
    let instrs_before = m.num_instrs;
    let passes = pipeline(level);
    let mut stats: Vec<PassStats> = passes
        .iter()
        .map(|p| PassStats {
            name: p.name(),
            applied: 0,
            wall_ns: 0,
        })
        .collect();

    let mut iterations = 0;
    if !passes.is_empty() {
        loop {
            iterations += 1;
            let mut sweep_applied = 0;
            for (p, s) in passes.iter().zip(&mut stats) {
                let t0 = std::time::Instant::now();
                let n = p.run(&mut m);
                s.wall_ns += t0.elapsed().as_nanos() as u64;
                s.applied += n;
                sweep_applied += n;
            }
            if sweep_applied == 0 || iterations >= MAX_SWEEPS {
                break;
            }
        }
    }

    let provenance = normalize::renumber_sids(&mut m);
    normalize::compact_values(&mut m);
    if let Err(e) = peppa_ir::verify(&m) {
        panic!(
            "optimizer produced ill-formed IR at {level} for `{}`: {} (function {}, block {:?})",
            m.name, e.message, e.function, e.block
        );
    }
    let instrs_after = m.num_instrs;
    OptResult {
        module: m,
        stats: PipelineStats {
            level,
            iterations,
            passes: stats,
            instrs_before,
            instrs_after,
        },
        provenance,
    }
}

/// Renders per-pass statistics as an aligned table (the `peppa opt
/// --print-pipeline` / per-pass stats output).
pub fn render_stats(s: &PipelineStats) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "pipeline {} ({} sweep{}): {} -> {} static instrs ({:.1}% removed)\n",
        s.level,
        s.iterations,
        if s.iterations == 1 { "" } else { "s" },
        s.instrs_before,
        s.instrs_after,
        if s.instrs_before > 0 {
            (s.instrs_before - s.instrs_after) as f64 / s.instrs_before as f64 * 100.0
        } else {
            0.0
        }
    ));
    out.push_str(&format!(
        "{:<12} {:>10} {:>12}\n",
        "pass", "rewrites", "wall us"
    ));
    for p in &s.passes {
        out.push_str(&format!(
            "{:<12} {:>10} {:>12.1}\n",
            p.name,
            p.applied,
            p.wall_ns as f64 / 1e3
        ));
    }
    out
}

// ---- shared rewrite utilities ---------------------------------------------

/// Calls `f` on every operand slot of `op`.
pub(crate) fn for_each_operand_mut(op: &mut peppa_ir::Op, mut f: impl FnMut(&mut Operand)) {
    use peppa_ir::Op;
    match op {
        Op::Bin { a, b, .. } | Op::Icmp { a, b, .. } | Op::Fcmp { a, b, .. } => {
            f(a);
            f(b);
        }
        Op::Un { a, .. } | Op::Cast { a, .. } => f(a),
        Op::Select { cond, t, f: fo } => {
            f(cond);
            f(t);
            f(fo);
        }
        Op::Load { addr, .. } => f(addr),
        Op::Store { addr, value } => {
            f(addr);
            f(value);
        }
        Op::Gep { base, index } => {
            f(base);
            f(index);
        }
        Op::Alloca { words } => f(words),
        Op::Call { args, .. } => args.iter_mut().for_each(f),
        Op::Output { value } => f(value),
    }
}

/// Calls `f` on every operand slot of `term`.
pub(crate) fn for_each_term_operand_mut(
    term: &mut peppa_ir::Term,
    mut f: impl FnMut(&mut Operand),
) {
    use peppa_ir::Term;
    match term {
        Term::Br { args, .. } => args.iter_mut().for_each(f),
        Term::CondBr {
            cond,
            then_args,
            else_args,
            ..
        } => {
            f(cond);
            then_args.iter_mut().for_each(&mut f);
            else_args.iter_mut().for_each(f);
        }
        Term::Ret { value } => {
            if let Some(v) = value {
                f(v)
            }
        }
    }
}

/// Rewrites every use of the mapped values in `f` to the replacement
/// operand, chasing chains (`a -> b`, `b -> c` applies `a -> c`).
/// Returns the number of operand slots rewritten.
pub(crate) fn replace_uses(f: &mut peppa_ir::Function, map: &HashMap<ValueId, Operand>) -> u64 {
    if map.is_empty() {
        return 0;
    }
    let resolve = |v: ValueId| -> Option<Operand> {
        let mut cur = *map.get(&v)?;
        // Chains are acyclic (every replacement points at an older
        // value or a constant); the hop cap is a defensive backstop.
        for _ in 0..map.len() {
            match cur {
                Operand::Value(next) => match map.get(&next) {
                    Some(&o) => cur = o,
                    None => break,
                },
                Operand::Const(_) => break,
            }
        }
        Some(cur)
    };
    let mut n = 0;
    let mut apply = |o: &mut Operand| {
        if let Operand::Value(v) = *o {
            if let Some(r) = resolve(v) {
                *o = r;
                n += 1;
            }
        }
    };
    for b in &mut f.blocks {
        for ins in &mut b.instrs {
            for_each_operand_mut(&mut ins.op, &mut apply);
        }
        for_each_term_operand_mut(&mut b.term, &mut apply);
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_level_parses_all_spellings() {
        for (s, l) in [
            ("0", OptLevel::O0),
            ("O1", OptLevel::O1),
            ("-O2", OptLevel::O2),
            ("o2", OptLevel::O2),
            ("2", OptLevel::O2),
        ] {
            assert_eq!(s.parse::<OptLevel>().unwrap(), l, "{s}");
        }
        assert!("3".parse::<OptLevel>().is_err());
        assert!("fast".parse::<OptLevel>().is_err());
    }

    #[test]
    fn o0_is_identity() {
        let m = peppa_lang::compile("fn main(x: int) { output x * 2 + 3; }", "id").unwrap();
        let r = optimize(&m, OptLevel::O0);
        assert_eq!(r.module, m);
        assert_eq!(r.stats.iterations, 0);
        assert_eq!(r.provenance, (0..m.num_instrs as u32).collect::<Vec<_>>());
    }
}

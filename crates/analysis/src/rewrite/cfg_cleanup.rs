//! CFG cleanup: constant-condition branch folding, single-predecessor
//! block merging, unreachable-block pruning.
//!
//! Constfold has already replaced provably-constant branch conditions
//! with literals (including the interprocedurally-proved ones the
//! `always-taken-branch` lint reports), so folding here just inspects
//! the condition operand. A two-way branch whose edges are fully
//! identical (same target, same args) folds regardless of the
//! condition: both golden arms are the same edge.
//!
//! Merging `b -> t` requires `t` to have exactly one incoming *edge*
//! (multiplicity counts — a self-loop on `t` is two edges and blocks
//! the merge, which matters for soundness: `t`'s parameters are
//! substituted by the branch arguments, valid only when that edge is
//! the sole way in). The merged-away block goes unreachable and is
//! pruned immediately, keeping every mid-pipeline module free of
//! unreachable blocks (the analyses assume it).
//!
//! Terminators are not dynamic instructions in the profile, so merging
//! does not change the dynamic-instruction count — its value is
//! unblocking other passes (longer straight-line regions for CSE) and
//! shrinking the static CFG.

use super::normalize::prune_unreachable_blocks;
use super::Pass;
use peppa_ir::{Module, Operand, Term};
use peppa_vm::canon;
use std::collections::HashMap;

pub struct CfgCleanup;

impl Pass for CfgCleanup {
    fn name(&self) -> &'static str {
        "cfg-cleanup"
    }

    fn run(&self, m: &mut Module) -> u64 {
        let mut applied = 0;
        for f in &mut m.functions {
            // 1. Fold branches with a literal condition or identical
            // edges.
            for b in &mut f.blocks {
                if let Term::CondBr {
                    cond,
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                } = &b.term
                {
                    let taken = match cond {
                        Operand::Const(c) => Some(canon(c.ty, c.bits) & 1 != 0),
                        Operand::Value(_) => {
                            if then_target == else_target && then_args == else_args {
                                Some(true)
                            } else {
                                None
                            }
                        }
                    };
                    if let Some(taken) = taken {
                        b.term = if taken {
                            Term::Br {
                                target: *then_target,
                                args: then_args.clone(),
                            }
                        } else {
                            Term::Br {
                                target: *else_target,
                                args: else_args.clone(),
                            }
                        };
                        applied += 1;
                    }
                }
            }
            applied += prune_unreachable_blocks(f);

            // 2. Eliminate trivial block parameters (the φ-equivalent
            // of φ(x, x, self) == x). MiniC lowering threads every
            // local through loop headers, so unchanged variables look
            // loop-defined until this runs — it is what unlocks LICM
            // and cross-iteration CSE on the benchmarks.
            applied += eliminate_trivial_params(f);

            // 3. Merge single-edge chains until none remain.
            loop {
                let n = f.blocks.len();
                let mut pred_edges = vec![0u32; n];
                for b in &f.blocks {
                    for s in b.term.successors() {
                        pred_edges[s.0 as usize] += 1;
                    }
                }
                let merge = (0..n).find_map(|bi| match &f.blocks[bi].term {
                    Term::Br { target, .. }
                        if target.0 != 0
                            && target.0 as usize != bi
                            && pred_edges[target.0 as usize] == 1 =>
                    {
                        Some((bi, target.0 as usize))
                    }
                    _ => None,
                });
                let Some((bi, ti)) = merge else { break };
                let Term::Br { args, .. } =
                    std::mem::replace(&mut f.blocks[bi].term, Term::Ret { value: None })
                else {
                    unreachable!()
                };
                let subst: HashMap<_, _> = f.blocks[ti]
                    .params
                    .iter()
                    .zip(&args)
                    .map(|(&p, &a)| (p, a))
                    .collect();
                let mut instrs = std::mem::take(&mut f.blocks[ti].instrs);
                let term = f.blocks[ti].term.clone();
                f.blocks[ti].params.clear();
                f.blocks[bi].instrs.append(&mut instrs);
                f.blocks[bi].term = term;
                super::replace_uses(f, &subst);
                // `ti` is now an empty shell with no predecessors.
                prune_unreachable_blocks(f);
                applied += 1;
            }

            applied += eliminate_trivial_params(f);

            debug_assert!(f.blocks[0].params.is_empty());
            debug_assert!(f.blocks.iter().all(|b| b
                .term
                .successors()
                .iter()
                .all(|s| (s.0 as usize) < f.blocks.len())));
        }
        applied
    }
}

/// Removes block parameters that are provably copies: a param `p`
/// receiving, on every incoming edge, either `p` itself (back edges) or
/// one fixed operand `x`, always equals `x`. The replacement's def
/// dominates the block — every entry path carries `x` — so replacing
/// uses of `p` and dropping the param/argument column is sound.
fn eliminate_trivial_params(f: &mut peppa_ir::Function) -> u64 {
    let mut applied = 0;
    loop {
        let n = f.blocks.len();
        // Per-target list of incoming argument vectors.
        let mut incoming: Vec<Vec<Vec<Operand>>> = vec![Vec::new(); n];
        for b in &f.blocks {
            match &b.term {
                Term::Br { target, args } => {
                    incoming[target.0 as usize].push(args.clone());
                }
                Term::CondBr {
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                    ..
                } => {
                    incoming[then_target.0 as usize].push(then_args.clone());
                    incoming[else_target.0 as usize].push(else_args.clone());
                }
                Term::Ret { .. } => {}
            }
        }
        let mut found = None;
        'outer: for (bi, inc) in incoming.iter().enumerate().take(n) {
            for (j, &p) in f.blocks[bi].params.iter().enumerate() {
                let mut x: Option<Operand> = None;
                let mut trivial = true;
                for args in inc {
                    let a = args[j];
                    if a == Operand::Value(p) {
                        continue;
                    }
                    match x {
                        None => x = Some(a),
                        Some(e) => {
                            if e != a {
                                trivial = false;
                                break;
                            }
                        }
                    }
                }
                if trivial {
                    if let Some(x) = x {
                        found = Some((bi, j, x));
                        break 'outer;
                    }
                }
            }
        }
        let Some((bi, j, x)) = found else { break };
        let target = peppa_ir::BlockId(bi as u32);
        let p = f.blocks[bi].params.remove(j);
        for b in &mut f.blocks {
            let drop_arg = |t: peppa_ir::BlockId, args: &mut Vec<Operand>| {
                if t == target {
                    args.remove(j);
                }
            };
            match &mut b.term {
                Term::Br { target, args } => drop_arg(*target, args),
                Term::CondBr {
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                    ..
                } => {
                    drop_arg(*then_target, then_args);
                    drop_arg(*else_target, else_args);
                }
                Term::Ret { .. } => {}
            }
        }
        super::replace_uses(f, &HashMap::from([(p, x)]));
        applied += 1;
    }
    applied
}

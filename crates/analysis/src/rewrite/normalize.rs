//! Post-pipeline normalization: dense sid renumbering with provenance,
//! plus the unreachable-block pruner CFG cleanup uses mid-pipeline.
//!
//! Passes never renumber sids while the pipeline runs — deletions just
//! leave gaps, so every sid-indexed analysis array stays valid and each
//! surviving instruction keeps its identity. The one renumbering happens
//! here, after the fixpoint, restoring the verifier's density invariant
//! and producing the new-sid → original-sid map the optstudy experiment
//! needs to pair per-instruction SDC ranks across opt levels.

use peppa_ir::{Function, InstrId, Module, Term, ValueId};
use std::collections::HashMap;

/// Renumbers all sids densely in ascending original order and fixes
/// `num_instrs`. Returns `provenance` with `provenance[new] = old`.
pub fn renumber_sids(m: &mut Module) -> Vec<u32> {
    let mut old: Vec<u32> = m
        .functions
        .iter()
        .flat_map(|f| f.blocks.iter())
        .flat_map(|b| b.instrs.iter().map(|i| i.sid.0))
        .collect();
    old.sort_unstable();
    let map: HashMap<u32, u32> = old
        .iter()
        .enumerate()
        .map(|(new, &o)| (o, new as u32))
        .collect();
    for f in &mut m.functions {
        for b in &mut f.blocks {
            for i in &mut b.instrs {
                i.sid = InstrId(map[&i.sid.0]);
            }
        }
    }
    m.num_instrs = old.len();
    old
}

/// Compacts value ids densely per function (params keep `0..n`, then
/// definition order), dropping the orphan `value_types` slots deletions
/// leave behind. Keeps printed modules re-parseable to structural
/// equality: the parser reconstructs `value_types` from definition
/// sites and would have to guess types for never-defined ids.
pub fn compact_values(m: &mut Module) {
    for f in &mut m.functions {
        let nv = f.value_types.len();
        let mut remap: Vec<u32> = vec![u32::MAX; nv];
        let mut next = 0u32;
        let mut assign = |v: ValueId, remap: &mut Vec<u32>| {
            debug_assert_eq!(remap[v.0 as usize], u32::MAX, "value defined twice");
            remap[v.0 as usize] = next;
            next += 1;
        };
        for p in 0..f.params.len() {
            assign(ValueId(p as u32), &mut remap);
        }
        for b in &f.blocks {
            for &p in &b.params {
                assign(p, &mut remap);
            }
            for ins in &b.instrs {
                if let Some(r) = ins.result {
                    assign(r, &mut remap);
                }
            }
        }
        if next as usize == nv {
            continue; // already dense
        }
        let mut types = vec![f.value_types[0]; next as usize];
        for (old, &new) in remap.iter().enumerate() {
            if new != u32::MAX {
                types[new as usize] = f.value_types[old];
            }
        }
        f.value_types = types;
        let rv = |v: &mut ValueId| v.0 = remap[v.0 as usize];
        for b in &mut f.blocks {
            for p in &mut b.params {
                rv(p);
            }
            for ins in &mut b.instrs {
                if let Some(r) = &mut ins.result {
                    rv(r);
                }
                super::for_each_operand_mut(&mut ins.op, |o| {
                    if let peppa_ir::Operand::Value(v) = o {
                        rv(v);
                    }
                });
            }
            super::for_each_term_operand_mut(&mut b.term, |o| {
                if let peppa_ir::Operand::Value(v) = o {
                    rv(v);
                }
            });
        }
    }
}

/// Drops unreachable blocks and remaps branch targets to the compacted
/// block indices. Returns the number of blocks removed. (Reimplements the
/// builder's private pruner: `BlockId`s are positional, so removal must
/// rewrite every terminator.)
pub fn prune_unreachable_blocks(f: &mut Function) -> u64 {
    let reach = f.reachable_blocks();
    if reach.iter().all(|&r| r) {
        return 0;
    }
    let mut remap = vec![u32::MAX; f.blocks.len()];
    let mut next = 0u32;
    for (i, &r) in reach.iter().enumerate() {
        if r {
            remap[i] = next;
            next += 1;
        }
    }
    let removed = f.blocks.len() as u64 - next as u64;
    let mut keep = reach.iter().copied();
    f.blocks.retain(|_| keep.next().unwrap());
    for b in &mut f.blocks {
        match &mut b.term {
            Term::Br { target, .. } => target.0 = remap[target.0 as usize],
            Term::CondBr {
                then_target,
                else_target,
                ..
            } => {
                then_target.0 = remap[then_target.0 as usize];
                else_target.0 = remap[else_target.0 as usize];
            }
            Term::Ret { .. } => {}
        }
    }
    removed
}

//! Dominator-scoped common-subexpression elimination via value
//! numbering.
//!
//! A pre-order walk of the dominator tree keeps a scoped table from
//! *expression key* (opcode + operands, with commutative integer
//! operands sorted) to the first value that computed it. An instruction
//! whose key is already in scope is redundant: the earlier instance
//! *dominates* it, so on every execution path the earlier value was
//! already computed — replacing the late instruction cannot change
//! golden-run behaviour, including traps: a redundant `sdiv x, y` only
//! executes after the dominating `sdiv x, y` already executed without
//! trapping on the same operands.
//!
//! Eligible: `Bin`, `Un`, `Icmp`, `Fcmp`, `Select`, `Cast`, `Gep` — the
//! pure value computations. Loads are not (memory may change between
//! the two sites), allocas are not (each execution is a distinct
//! object), calls are not (side effects).
//!
//! Floats are CSE'd too — two textually identical instructions on
//! identical operand *bits* produce identical bits — but float operands
//! are never reordered by the commutativity canonicalization (NaN
//! payload propagation is order-sensitive).
//!
//! [`redundant_computations`] runs the same walk read-only; `peppa
//! lint`'s `redundant-computation` finding is exactly the set of
//! instructions this pass would delete.

use super::Pass;
use crate::cfg::Cfg;
use peppa_ir::{
    BinOp, BlockId, CastKind, FPred, Function, IPred, InstrId, Module, Op, Operand, Ty, UnOp,
    ValueId,
};
use peppa_vm::canon;
use std::collections::{HashMap, HashSet};

pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&self, m: &mut Module) -> u64 {
        let mut applied = 0;
        for f in &mut m.functions {
            let hits = value_number(f);
            if hits.is_empty() {
                continue;
            }
            applied += hits.len() as u64;
            let dead: HashSet<InstrId> = hits.iter().map(|h| h.sid).collect();
            let map: HashMap<ValueId, Operand> = hits
                .iter()
                .map(|h| (h.result, Operand::Value(h.keep)))
                .collect();
            for b in &mut f.blocks {
                b.instrs.retain(|i| !dead.contains(&i.sid));
            }
            super::replace_uses(f, &map);
        }
        applied
    }
}

/// One redundant instruction found by value numbering.
pub struct CseHit {
    /// The redundant (deletable) instruction.
    pub sid: InstrId,
    /// Its result value.
    pub result: ValueId,
    /// The dominating value that computes the same expression.
    pub keep: ValueId,
    /// Opcode mnemonic, for lint messages.
    pub kind: &'static str,
}

/// CSE candidates of a function in deterministic (sid) order — the
/// instructions [`Cse`] would delete. Shared by the
/// `redundant-computation` lint.
pub fn redundant_computations(f: &Function) -> Vec<(InstrId, &'static str)> {
    let mut v: Vec<(InstrId, &'static str)> = value_number(f)
        .into_iter()
        .map(|h| (h.sid, h.kind))
        .collect();
    v.sort_by_key(|&(sid, _)| sid);
    v
}

/// Hashable canonical operand: a (possibly substituted) value id, or a
/// constant's type and canonical bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum KOp {
    V(u32),
    C(Ty, u64),
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Bin(BinOp, KOp, KOp),
    Un(UnOp, KOp),
    Icmp(IPred, KOp, KOp),
    Fcmp(FPred, KOp, KOp),
    Select(KOp, KOp, KOp),
    Cast(CastKind, Ty, KOp),
    Gep(KOp, KOp),
}

fn value_number(f: &Function) -> Vec<CseHit> {
    let cfg = Cfg::new(f);
    let n = cfg.num_blocks();
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
    for b in 1..n {
        children[cfg.idom[b] as usize].push(b as u32);
    }

    // Value substitutions discovered so far (redundant -> surviving),
    // applied while keying so chains of redundancy collapse in one walk.
    let mut subst: HashMap<ValueId, ValueId> = HashMap::new();
    let kop = |o: &Operand, subst: &HashMap<ValueId, ValueId>| -> KOp {
        match o {
            Operand::Value(v) => KOp::V(subst.get(v).copied().unwrap_or(*v).0),
            Operand::Const(c) => KOp::C(c.ty, canon(c.ty, c.bits)),
        }
    };

    let mut table: HashMap<Key, ValueId> = HashMap::new();
    let mut hits = Vec::new();

    // Pre-order dominator-tree walk with an undo log per scope.
    enum Step {
        Enter(u32),
        Exit(usize),
    }
    let mut stack = vec![Step::Enter(0)];
    let mut undo: Vec<Key> = Vec::new();
    while let Some(step) = stack.pop() {
        match step {
            Step::Exit(mark) => {
                for k in undo.drain(mark..) {
                    table.remove(&k);
                }
            }
            Step::Enter(b) => {
                let mark = undo.len();
                stack.push(Step::Exit(mark));
                // Push children in reverse so they pop in index order —
                // the walk order (hence hit order) is deterministic.
                for &c in children[b as usize].iter().rev() {
                    stack.push(Step::Enter(c));
                }
                for ins in &f.block(BlockId(b)).instrs {
                    let Some(r) = ins.result else { continue };
                    let Some(key) = key_of(&ins.op, &subst, &kop) else {
                        continue;
                    };
                    match table.get(&key) {
                        Some(&keep) => {
                            subst.insert(r, keep);
                            hits.push(CseHit {
                                sid: ins.sid,
                                result: r,
                                keep,
                                kind: ins.op.mnemonic(),
                            });
                        }
                        None => {
                            table.insert(key.clone(), r);
                            undo.push(key);
                        }
                    }
                }
            }
        }
    }
    hits
}

fn key_of(
    op: &Op,
    subst: &HashMap<ValueId, ValueId>,
    kop: &impl Fn(&Operand, &HashMap<ValueId, ValueId>) -> KOp,
) -> Option<Key> {
    Some(match op {
        Op::Bin { op, a, b } => {
            let (mut ka, mut kb) = (kop(a, subst), kop(b, subst));
            if int_commutative(*op) && kb < ka {
                std::mem::swap(&mut ka, &mut kb);
            }
            Key::Bin(*op, ka, kb)
        }
        Op::Un { op, a } => Key::Un(*op, kop(a, subst)),
        Op::Icmp { pred, a, b } => {
            let (mut ka, mut kb) = (kop(a, subst), kop(b, subst));
            if matches!(pred, IPred::Eq | IPred::Ne) && kb < ka {
                std::mem::swap(&mut ka, &mut kb);
            }
            Key::Icmp(*pred, ka, kb)
        }
        Op::Fcmp { pred, a, b } => Key::Fcmp(*pred, kop(a, subst), kop(b, subst)),
        Op::Select { cond, t, f } => Key::Select(kop(cond, subst), kop(t, subst), kop(f, subst)),
        Op::Cast { kind, a, to } => Key::Cast(*kind, *to, kop(a, subst)),
        Op::Gep { base, index } => Key::Gep(kop(base, subst), kop(index, subst)),
        Op::Load { .. }
        | Op::Store { .. }
        | Op::Alloca { .. }
        | Op::Call { .. }
        | Op::Output { .. } => return None,
    })
}

/// Commutative *integer* binary ops. Float add/mul are mathematically
/// commutative but NaN payload propagation is operand-order dependent,
/// so they are excluded from operand canonicalization.
fn int_commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

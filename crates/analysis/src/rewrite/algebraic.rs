//! Algebraic simplification and strength reduction.
//!
//! Integer-only, by design: every rewrite here is bit-exact under the
//! VM's canonical representation, which no float identity is (`x + 0.0`
//! flips the sign of `-0.0`, `x * 1.0` can requiet a signalling NaN
//! payload, reassociation changes rounding). Float values are left for
//! constfold, which only replaces them when the bits are proved.
//!
//! Strength reductions:
//! * `x * 2^k` → `x << k` — exact: `wrapping_mul` by a power of two and
//!   `shl` agree modulo 2^64, and `canon` truncates identically for i32.
//! * `x sdiv 2^k` → `x >> k` (arithmetic) and `x srem 2^k` →
//!   `x & (2^k - 1)`, **only** when AbsRange proves `x >= 0` — for
//!   negative dividends sdiv rounds toward zero while the shift rounds
//!   toward -inf. The divisor is a nonzero constant, so deleting the
//!   trap check is sound.
//!
//! Identities (`x` stays, instruction becomes a copy that DCE removes):
//! `x+0`, `x-0`, `x*1`, `x sdiv 1`, `x&-1`, `x|0`, `x^0`, shifts by 0,
//! `x&x`, `x|x`, select with equal arms, `not (not x)`.
//! Absorbing/annihilating forms fold to a constant: `x*0`, `x&0`,
//! `x|-1`, `x^x`, `x-x`, `x srem 1`. (`x srem 1` and `x sdiv 1` have a
//! constant nonzero divisor — no trap to preserve.)

use super::Pass;
use crate::cfg::Cfg;
use crate::dataflow::analyze_values;
use crate::range::AbsRange;
use peppa_ir::{BinOp, Const, Module, Op, Operand, Ty, UnOp, ValueId};
use peppa_vm::canon;
use std::collections::HashMap;

pub struct Algebraic;

impl Pass for Algebraic {
    fn name(&self) -> &'static str {
        "algebraic"
    }

    fn run(&self, m: &mut Module) -> u64 {
        let mut applied = 0;
        for f in &mut m.functions {
            let cfg = Cfg::new(f);
            let rg = analyze_values::<AbsRange>(f, &cfg);
            // Map from value -> defining Op, for the not(not x) chase.
            let mut def_of: HashMap<ValueId, Op> = HashMap::new();
            for b in &f.blocks {
                for ins in &b.instrs {
                    if let Some(r) = ins.result {
                        def_of.insert(r, ins.op.clone());
                    }
                }
            }

            // value -> replacement operand (identity rewrites); applied
            // at the end via replace_uses.
            let mut repl: HashMap<ValueId, Operand> = HashMap::new();
            for b in &mut f.blocks {
                for ins in &mut b.instrs {
                    let Some(r) = ins.result else { continue };
                    let ty = f.value_types[r.0 as usize];
                    if ty == Ty::F64 {
                        continue;
                    }
                    match simplify(&ins.op, ty, &rg, &def_of) {
                        Simplify::Replace(op) => {
                            repl.insert(r, op);
                            applied += 1;
                        }
                        Simplify::Rewrite(new_op) => {
                            ins.op = new_op;
                            applied += 1;
                        }
                        Simplify::None => {}
                    }
                }
            }
            super::replace_uses(f, &repl);
        }
        applied
    }
}

enum Simplify {
    /// All uses of the result become this operand; the def goes dead.
    Replace(Operand),
    /// The instruction is rewritten in place (same result, same sid).
    Rewrite(Op),
    None,
}

/// The canonical all-ones word for an integer type.
fn all_ones(ty: Ty) -> u64 {
    canon(ty, u64::MAX)
}

/// A constant operand's canonical bits.
fn konst(o: &Operand) -> Option<u64> {
    match o {
        Operand::Const(c) => Some(canon(c.ty, c.bits)),
        Operand::Value(_) => None,
    }
}

/// A positive power of two and its exponent, from canonical bits.
fn pow2(bits: u64, ty: Ty) -> Option<u32> {
    let v = bits as i64;
    if v > 0 && (v & (v - 1)) == 0 {
        let k = v.trailing_zeros();
        let width = match ty {
            Ty::I32 => 32,
            _ => 64,
        };
        if k < width {
            return Some(k);
        }
    }
    None
}

/// True when AbsRange proves the operand is non-negative.
fn proven_nonneg(o: &Operand, rg: &crate::dataflow::ValueFacts<AbsRange>) -> bool {
    match rg.of_operand(o) {
        AbsRange::Int(r) => r.lo >= 0,
        AbsRange::Float(_) => false,
    }
}

fn simplify(
    op: &Op,
    ty: Ty,
    rg: &crate::dataflow::ValueFacts<AbsRange>,
    def_of: &HashMap<ValueId, Op>,
) -> Simplify {
    use Simplify::{None as No, Replace, Rewrite};
    let zero = Operand::Const(Const { ty, bits: 0 });
    match op {
        Op::Bin { op: bop, a, b } => {
            if bop.is_float() {
                return No;
            }
            let ka = konst(a);
            let kb = konst(b);
            let same = a.value().is_some() && a.value() == b.value();
            match bop {
                BinOp::Add => {
                    if kb == Some(0) {
                        return Replace(*a);
                    }
                    if ka == Some(0) {
                        return Replace(*b);
                    }
                }
                BinOp::Sub => {
                    if kb == Some(0) {
                        return Replace(*a);
                    }
                    if same {
                        return Replace(zero);
                    }
                }
                BinOp::Mul => {
                    if kb == Some(canon(ty, 1)) {
                        return Replace(*a);
                    }
                    if ka == Some(canon(ty, 1)) {
                        return Replace(*b);
                    }
                    if ka == Some(0) || kb == Some(0) {
                        return Replace(zero);
                    }
                    if let Some(k) = kb.and_then(|c| pow2(c, ty)) {
                        if k > 0 {
                            return Rewrite(Op::Bin {
                                op: BinOp::Shl,
                                a: *a,
                                b: Operand::Const(Const {
                                    ty,
                                    bits: canon(ty, k as u64),
                                }),
                            });
                        }
                    }
                    if let Some(k) = ka.and_then(|c| pow2(c, ty)) {
                        if k > 0 {
                            return Rewrite(Op::Bin {
                                op: BinOp::Shl,
                                a: *b,
                                b: Operand::Const(Const {
                                    ty,
                                    bits: canon(ty, k as u64),
                                }),
                            });
                        }
                    }
                }
                BinOp::SDiv => {
                    if kb == Some(canon(ty, 1)) {
                        return Replace(*a);
                    }
                    if let Some(k) = kb.and_then(|c| pow2(c, ty)) {
                        if proven_nonneg(a, rg) {
                            return Rewrite(Op::Bin {
                                op: BinOp::AShr,
                                a: *a,
                                b: Operand::Const(Const {
                                    ty,
                                    bits: canon(ty, k as u64),
                                }),
                            });
                        }
                    }
                }
                BinOp::SRem => {
                    if kb == Some(canon(ty, 1)) {
                        return Replace(zero);
                    }
                    if let Some(k) = kb.and_then(|c| pow2(c, ty)) {
                        if proven_nonneg(a, rg) {
                            return Rewrite(Op::Bin {
                                op: BinOp::And,
                                a: *a,
                                b: Operand::Const(Const {
                                    ty,
                                    bits: canon(ty, (1u64 << k) - 1),
                                }),
                            });
                        }
                    }
                }
                BinOp::And => {
                    if ka == Some(0) || kb == Some(0) {
                        return Replace(zero);
                    }
                    if kb == Some(all_ones(ty)) || same {
                        return Replace(*a);
                    }
                    if ka == Some(all_ones(ty)) {
                        return Replace(*b);
                    }
                }
                BinOp::Or => {
                    if kb == Some(0) || same {
                        return Replace(*a);
                    }
                    if ka == Some(0) {
                        return Replace(*b);
                    }
                    if ka == Some(all_ones(ty)) || kb == Some(all_ones(ty)) {
                        return Replace(Operand::Const(Const {
                            ty,
                            bits: all_ones(ty),
                        }));
                    }
                }
                BinOp::Xor => {
                    if kb == Some(0) {
                        return Replace(*a);
                    }
                    if ka == Some(0) {
                        return Replace(*b);
                    }
                    if same {
                        return Replace(zero);
                    }
                }
                // Shift counts are masked to the width at runtime;
                // only literal zero is an identity we claim.
                BinOp::Shl | BinOp::LShr | BinOp::AShr if kb == Some(0) => {
                    return Replace(*a);
                }
                _ => {}
            }
            No
        }
        Op::Select { cond, t, f } => {
            if let Some(c) = konst(cond) {
                return Replace(if c & 1 != 0 { *t } else { *f });
            }
            if t == f {
                return Replace(*t);
            }
            No
        }
        Op::Un { op: UnOp::Not, a } => {
            if let Some(v) = a.value() {
                if let Some(Op::Un {
                    op: UnOp::Not,
                    a: inner,
                }) = def_of.get(&v)
                {
                    // inner's operand dominates inner, which dominates
                    // this use — transitively safe to forward.
                    return Replace(*inner);
                }
            }
            No
        }
        _ => No,
    }
}

//! Dead-code elimination from observable-liveness, plus provably-safe
//! dead-store removal from the memory-dependence graph.
//!
//! A value outside [`observable_live`] never influences the output
//! stream, the return value, a store, a call, or a branch — deleting
//! its defining instruction cannot change golden-run *values*. What it
//! can change is golden-run *status*: deleting a trapping instruction
//! deletes its trap. So deletion is restricted to instructions that
//! provably cannot trap:
//!
//! * pure value ops: `Bin` (with `sdiv`/`srem` only when the divisor is
//!   a nonzero constant), `Un`, `Icmp`, `Fcmp`, `Select`, `Cast`, `Gep`;
//! * `Load`s whose address interval is proved inside the static global
//!   segment (in-bounds ⇒ no trap);
//! * never `Alloca` — each alloca shifts every later stack address in
//!   the function, and addresses are observable through `ptrtoint` and
//!   pointer stores;
//! * never `Call` (side effects), `Store`/`Output` (sinks).
//!
//! Observable-liveness sees through kept instructions (a load's address
//! is "dead" when the loaded value is), so a retention fixpoint walks
//! back from every *kept* use: an operand of a surviving instruction,
//! terminator, or live block-parameter wire must survive too. Block
//! parameters that remain dead after the fixpoint are excised together
//! with the matching branch argument in every predecessor — that is
//! where dead loop-carried chains (`i = i + 1` feeding only itself) go.
//!
//! Dead stores ([`MemDepGraph::dead_stores`]: no load may ever read the
//! stored word) are deleted when the store address is proved inside the
//! global segment, so removing the store cannot remove a trap.

use super::Pass;
use crate::liveness::observable_live;
use crate::memdep::MemDepGraph;
use peppa_ir::{BinOp, InstrId, Module, Op, Operand, Term, ValueId};
use std::collections::{HashMap, HashSet};

pub struct Dce;

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, m: &mut Module) -> u64 {
        // Module-level memory facts: address intervals per access and
        // the set of never-read stores.
        let mdg = MemDepGraph::new(m);
        let gwords = m.globals_words() as i64;
        let mut bounds: HashMap<InstrId, (i64, i64)> = HashMap::new();
        for a in mdg.stores.iter().chain(mdg.loads.iter()) {
            bounds.insert(a.sid, (a.lo, a.hi));
        }
        let in_globals = |sid: InstrId| -> bool {
            bounds
                .get(&sid)
                .is_some_and(|&(lo, hi)| lo >= 1 && hi < 1 + gwords)
        };
        let dead_stores: HashSet<InstrId> = mdg
            .dead_stores()
            .into_iter()
            .filter(|&sid| in_globals(sid))
            .collect();

        let mut applied = 0;
        for f in &mut m.functions {
            let live = observable_live(f);

            // Phase 1: candidate deletions — non-observable results
            // whose defining instruction provably cannot trap.
            let mut del_instrs: HashSet<InstrId> = HashSet::new();
            let mut def_site: HashMap<ValueId, InstrId> = HashMap::new();
            // Dead block params: (block index, param index).
            let mut del_params: HashSet<ValueId> = HashSet::new();
            for b in &f.blocks {
                for &p in &b.params {
                    if !live.contains(p) {
                        del_params.insert(p);
                    }
                }
                for ins in &b.instrs {
                    let Some(r) = ins.result else { continue };
                    def_site.insert(r, ins.sid);
                    if !live.contains(r) && cannot_trap(&ins.op, &in_globals, ins.sid) {
                        del_instrs.insert(ins.sid);
                    }
                }
            }

            // Phase 2: retention fixpoint. Any operand of a kept
            // instruction, a terminator condition/return, or a branch
            // argument feeding a kept parameter must survive.
            loop {
                let mut changed = false;
                let retain = |o: &Operand,
                              del_instrs: &mut HashSet<InstrId>,
                              del_params: &mut HashSet<ValueId>|
                 -> bool {
                    let Some(v) = o.value() else { return false };
                    let mut ch = false;
                    if del_params.remove(&v) {
                        ch = true;
                    }
                    if let Some(sid) = def_site.get(&v) {
                        if del_instrs.remove(sid) {
                            ch = true;
                        }
                    }
                    ch
                };
                for b in &f.blocks {
                    for ins in &b.instrs {
                        if ins
                            .result
                            .is_some_and(|r| del_instrs.contains(&def_site[&r]))
                            || dead_stores.contains(&ins.sid)
                        {
                            continue;
                        }
                        for o in ins.op.operands() {
                            changed |= retain(&o, &mut del_instrs, &mut del_params);
                        }
                    }
                    let retain_args = |target: peppa_ir::BlockId,
                                       args: &[Operand],
                                       del_instrs: &mut HashSet<InstrId>,
                                       del_params: &mut HashSet<ValueId>,
                                       changed: &mut bool| {
                        for (&p, a) in f.blocks[target.0 as usize].params.iter().zip(args) {
                            if !del_params.contains(&p) {
                                *changed |= retain(a, del_instrs, del_params);
                            }
                        }
                    };
                    match &b.term {
                        Term::Br { target, args } => retain_args(
                            *target,
                            args,
                            &mut del_instrs,
                            &mut del_params,
                            &mut changed,
                        ),
                        Term::CondBr {
                            cond,
                            then_target,
                            then_args,
                            else_target,
                            else_args,
                        } => {
                            changed |= retain(cond, &mut del_instrs, &mut del_params);
                            retain_args(
                                *then_target,
                                then_args,
                                &mut del_instrs,
                                &mut del_params,
                                &mut changed,
                            );
                            retain_args(
                                *else_target,
                                else_args,
                                &mut del_instrs,
                                &mut del_params,
                                &mut changed,
                            );
                        }
                        Term::Ret { value } => {
                            if let Some(v) = value {
                                changed |= retain(v, &mut del_instrs, &mut del_params);
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }

            // Phase 3: apply. Delete instructions, then excise dead
            // params together with the matching branch argument in
            // every predecessor.
            let n_stores = f
                .blocks
                .iter()
                .flat_map(|b| b.instrs.iter())
                .filter(|i| dead_stores.contains(&i.sid))
                .count() as u64;
            applied += del_instrs.len() as u64 + n_stores + del_params.len() as u64;
            for b in &mut f.blocks {
                b.instrs
                    .retain(|i| !del_instrs.contains(&i.sid) && !dead_stores.contains(&i.sid));
            }
            if !del_params.is_empty() {
                // keep[bi][j] = does block bi keep its j-th param?
                let keep: Vec<Vec<bool>> = f
                    .blocks
                    .iter()
                    .map(|b| b.params.iter().map(|p| !del_params.contains(p)).collect())
                    .collect();
                for b in &mut f.blocks {
                    let filter_args = |target: peppa_ir::BlockId, args: &mut Vec<Operand>| {
                        let k = &keep[target.0 as usize];
                        let mut j = 0;
                        args.retain(|_| {
                            let keep_it = k[j];
                            j += 1;
                            keep_it
                        });
                    };
                    match &mut b.term {
                        Term::Br { target, args } => filter_args(*target, args),
                        Term::CondBr {
                            then_target,
                            then_args,
                            else_target,
                            else_args,
                            ..
                        } => {
                            filter_args(*then_target, then_args);
                            filter_args(*else_target, else_args);
                        }
                        Term::Ret { .. } => {}
                    }
                }
                for (bi, b) in f.blocks.iter_mut().enumerate() {
                    let k = keep[bi].clone();
                    let mut j = 0;
                    b.params.retain(|_| {
                        let keep_it = k[j];
                        j += 1;
                        keep_it
                    });
                }
            }
        }
        applied
    }
}

/// True when executing this op can never trap, so deleting it can never
/// delete a trap. `in_globals` proves a memory access in-bounds.
fn cannot_trap(op: &Op, in_globals: &impl Fn(InstrId) -> bool, sid: InstrId) -> bool {
    match op {
        Op::Bin {
            op: BinOp::SDiv | BinOp::SRem,
            b,
            ..
        } => matches!(b, Operand::Const(c) if peppa_vm::canon(c.ty, c.bits) != 0),
        Op::Bin { .. }
        | Op::Un { .. }
        | Op::Icmp { .. }
        | Op::Fcmp { .. }
        | Op::Select { .. }
        | Op::Cast { .. }
        | Op::Gep { .. } => true,
        Op::Load { .. } => in_globals(sid),
        // Allocas shift later stack addresses; calls have effects;
        // stores/outputs are sinks handled separately.
        Op::Alloca { .. } | Op::Call { .. } | Op::Store { .. } | Op::Output { .. } => false,
    }
}

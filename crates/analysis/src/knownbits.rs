//! Known-bits analysis: per-value tracking of bit positions that are
//! provably 0 or provably 1 in the VM's canonical 64-bit representation.
//!
//! The transfer functions mirror `peppa-vm`'s interpreter exactly: i32
//! values are canonically sign-extended, i1 is 0/1, shift counts are
//! masked to the type width. Soundness contract (checked by the proptest
//! suite): for every concrete run, each value's bits satisfy its
//! abstraction at the def site.

use crate::dataflow::AbstractDomain;
use peppa_ir::{BinOp, CastKind, Const, Op, Ty, UnOp};

const SIGN: u64 = 1 << 63;

/// Bit-level abstraction of one 64-bit canonical value: `zeros` is the
/// mask of bits known to be 0, `ones` of bits known to be 1. Disjoint by
/// construction; a bit in neither mask is unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KnownBits {
    pub zeros: u64,
    pub ones: u64,
}

impl KnownBits {
    /// Nothing known.
    pub const UNKNOWN: KnownBits = KnownBits { zeros: 0, ones: 0 };

    /// Exact constant.
    pub fn exact(bits: u64) -> KnownBits {
        KnownBits {
            zeros: !bits,
            ones: bits,
        }
    }

    /// Mask of known bit positions.
    pub fn known(self) -> u64 {
        self.zeros | self.ones
    }

    /// Whether every bit is known (the value is a constant).
    pub fn is_const(self) -> bool {
        self.known() == u64::MAX
    }

    /// The constant value, if fully known.
    pub fn as_const(self) -> Option<u64> {
        if self.is_const() {
            Some(self.ones)
        } else {
            None
        }
    }

    /// Whether the concrete bit pattern is compatible with this
    /// abstraction (the soundness predicate).
    pub fn contains(self, bits: u64) -> bool {
        (bits & self.zeros) == 0 && (!bits & self.ones) == 0
    }

    /// Number of trailing bits (from bit 0) that are all known.
    fn trailing_known(self) -> u32 {
        (!self.known()).trailing_zeros()
    }

    /// Re-imposes the canonical-representation invariant for `ty`:
    /// i1 has bits 1..64 zero; i32 has bits 32..64 equal to bit 31.
    fn canon(self, ty: Ty) -> KnownBits {
        match ty {
            Ty::I1 => KnownBits {
                zeros: (self.zeros & 1) | !1,
                ones: self.ones & 1,
            },
            Ty::I32 => {
                let low_z = self.zeros & 0xFFFF_FFFF;
                let low_o = self.ones & 0xFFFF_FFFF;
                let high = !0xFFFF_FFFFu64;
                if low_z & (1 << 31) != 0 {
                    KnownBits {
                        zeros: low_z | high,
                        ones: low_o,
                    }
                } else if low_o & (1 << 31) != 0 {
                    KnownBits {
                        zeros: low_z,
                        ones: low_o | high,
                    }
                } else {
                    KnownBits {
                        zeros: low_z,
                        ones: low_o,
                    }
                }
            }
            _ => self,
        }
    }
}

/// Known-bits addition: the low run of bits where both operands are
/// fully known determines the sum's low bits exactly (carries within the
/// run are determined; the carry out of it is not).
fn add_kb(a: KnownBits, b: KnownBits) -> KnownBits {
    let k = a.trailing_known().min(b.trailing_known());
    low_bits_exact(a.ones.wrapping_add(b.ones), k)
}

fn sub_kb(a: KnownBits, b: KnownBits) -> KnownBits {
    let k = a.trailing_known().min(b.trailing_known());
    low_bits_exact(a.ones.wrapping_sub(b.ones), k)
}

fn mul_kb(a: KnownBits, b: KnownBits) -> KnownBits {
    let k = a.trailing_known().min(b.trailing_known());
    let mut r = low_bits_exact(a.ones.wrapping_mul(b.ones), k);
    // Trailing zeros of the factors add in the product: a value whose
    // low `t` bits are all known zero is a multiple of 2^t.
    let tz = (a.zeros.trailing_ones() + b.zeros.trailing_ones()).min(64);
    if tz > 0 {
        let mask = if tz >= 64 { u64::MAX } else { (1u64 << tz) - 1 };
        r.zeros |= mask & !r.ones;
    }
    r
}

/// Abstraction knowing exactly the low `k` bits of `v`.
fn low_bits_exact(v: u64, k: u32) -> KnownBits {
    if k == 0 {
        return KnownBits::UNKNOWN;
    }
    let mask = if k >= 64 { u64::MAX } else { (1u64 << k) - 1 };
    KnownBits {
        zeros: !v & mask,
        ones: v & mask,
    }
}

/// Shift amount as the VM masks it: `b & (w - 1).max(1)`. Known only if
/// the participating low bits of `b` are known.
fn shift_amount(ty: Ty, b: KnownBits) -> Option<u32> {
    let m = (ty.bits() as u64 - 1).max(1);
    if b.known() & m == m {
        Some((b.ones & m) as u32)
    } else {
        None
    }
}

impl AbstractDomain for KnownBits {
    fn top(ty: Ty) -> KnownBits {
        KnownBits::UNKNOWN.canon(ty)
    }

    fn of_const(c: Const) -> KnownBits {
        // Constants are canonicalized by the VM's `eval`.
        let bits = match c.ty {
            Ty::I1 => c.bits & 1,
            Ty::I32 => (c.bits as u32 as i32 as i64) as u64,
            _ => c.bits,
        };
        KnownBits::exact(bits)
    }

    fn join(&self, other: &KnownBits) -> KnownBits {
        KnownBits {
            zeros: self.zeros & other.zeros,
            ones: self.ones & other.ones,
        }
    }

    fn widen(&self, next: &KnownBits) -> KnownBits {
        // The known-bits lattice has height 64: joins only ever clear
        // mask bits, so plain join already converges.
        self.join(next)
    }

    fn transfer(op: &Op, ty: Ty, args: &[KnownBits], arg_tys: &[Ty]) -> KnownBits {
        let r = match op {
            Op::Bin { op, .. } => {
                let (a, b) = (args[0], args[1]);
                match op {
                    BinOp::Add => add_kb(a, b),
                    BinOp::Sub => sub_kb(a, b),
                    BinOp::Mul => mul_kb(a, b),
                    BinOp::SDiv | BinOp::SRem => KnownBits::UNKNOWN,
                    BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => KnownBits::UNKNOWN,
                    BinOp::And => KnownBits {
                        zeros: a.zeros | b.zeros,
                        ones: a.ones & b.ones,
                    },
                    BinOp::Or => KnownBits {
                        zeros: a.zeros & b.zeros,
                        ones: a.ones | b.ones,
                    },
                    BinOp::Xor => KnownBits {
                        zeros: (a.zeros & b.zeros) | (a.ones & b.ones),
                        ones: (a.zeros & b.ones) | (a.ones & b.zeros),
                    },
                    BinOp::Shl => match shift_amount(ty, b) {
                        Some(s) => KnownBits {
                            zeros: (a.zeros << s) | ((1u64 << s) - 1),
                            ones: a.ones << s,
                        },
                        None => KnownBits::UNKNOWN,
                    },
                    BinOp::LShr => match shift_amount(ty, b) {
                        Some(s) => {
                            let w = ty.bits();
                            // The VM masks the operand to the type width
                            // before the logical shift.
                            let m = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
                            let az = (a.zeros & m) | !m; // bits above w are 0 post-mask
                            let high = if s == 0 { 0 } else { !(u64::MAX >> s) };
                            KnownBits {
                                zeros: (az >> s) | high,
                                ones: (a.ones & m) >> s,
                            }
                        }
                        None => KnownBits::UNKNOWN,
                    },
                    BinOp::AShr => match shift_amount(ty, b) {
                        Some(s) => KnownBits {
                            // Arithmetic-shifting each mask replicates the
                            // (known-ness of the) sign bit.
                            zeros: ((a.zeros as i64) >> s) as u64,
                            ones: ((a.ones as i64) >> s) as u64,
                        },
                        None => KnownBits::UNKNOWN,
                    },
                }
            }
            Op::Un { op, .. } => {
                let a = args[0];
                match op {
                    UnOp::Not => KnownBits {
                        zeros: a.ones,
                        ones: a.zeros,
                    },
                    UnOp::FNeg => KnownBits {
                        // Exactly flips the sign bit.
                        zeros: (a.zeros & !SIGN) | (a.ones & SIGN),
                        ones: (a.ones & !SIGN) | (a.zeros & SIGN),
                    },
                    UnOp::FAbs => KnownBits {
                        // Clears the sign bit (IEEE abs is bit-level).
                        zeros: a.zeros | SIGN,
                        ones: a.ones & !SIGN,
                    },
                    _ => KnownBits::UNKNOWN,
                }
            }
            Op::Icmp { .. } | Op::Fcmp { .. } => {
                // Result is i1; bit 0 is generally unknown. (The interval
                // analysis decides statically-determined comparisons.)
                KnownBits::UNKNOWN
            }
            Op::Select { .. } => {
                let (c, t, f) = (args[0], args[1], args[2]);
                if c.known() & 1 != 0 {
                    if c.ones & 1 != 0 {
                        t
                    } else {
                        f
                    }
                } else {
                    t.join(&f)
                }
            }
            Op::Cast { kind, .. } => {
                let a = args[0];
                let from = arg_tys[0];
                match kind {
                    CastKind::Trunc
                    | CastKind::Bitcast
                    | CastKind::PtrToInt
                    | CastKind::IntToPtr => a,
                    CastKind::ZExt => {
                        // The VM zero-extends the *unsigned* narrow value
                        // (`from.truncate_bits`).
                        let m = if from.bits() == 64 {
                            u64::MAX
                        } else {
                            (1u64 << from.bits()) - 1
                        };
                        KnownBits {
                            zeros: (a.zeros & m) | !m,
                            ones: a.ones & m,
                        }
                    }
                    CastKind::SExt => {
                        if from == Ty::I1 {
                            // Result is 0 or all-ones depending on bit 0.
                            if a.ones & 1 != 0 {
                                KnownBits::exact(u64::MAX)
                            } else if a.zeros & 1 != 0 {
                                KnownBits::exact(0)
                            } else {
                                KnownBits::UNKNOWN
                            }
                        } else {
                            a // i32 is already canonically sign-extended
                        }
                    }
                    CastKind::FpToSi | CastKind::SiToFp => KnownBits::UNKNOWN,
                }
            }
            Op::Load { .. } | Op::Alloca { .. } | Op::Call { .. } => KnownBits::UNKNOWN,
            Op::Gep { .. } => add_kb(args[0], args[1]),
            Op::Store { .. } | Op::Output { .. } => KnownBits::UNKNOWN,
        };
        r.canon(ty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dataflow::analyze_values;
    use peppa_ir::Module;

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "kb").unwrap()
    }

    #[test]
    fn exact_const_roundtrip() {
        let kb = KnownBits::exact(0xDEAD);
        assert!(kb.is_const());
        assert_eq!(kb.as_const(), Some(0xDEAD));
        assert!(kb.contains(0xDEAD));
        assert!(!kb.contains(0xDEAF));
    }

    #[test]
    fn join_keeps_agreement() {
        let a = KnownBits::exact(0b1100);
        let b = KnownBits::exact(0b1010);
        let j = a.join(&b);
        // Bits 3 (both 1) and 0 (both 0) stay known; bits 1,2 do not.
        assert!(j.ones & 0b1000 != 0);
        assert!(j.zeros & 0b0001 != 0);
        assert_eq!(j.known() & 0b0110, 0);
        assert!(j.contains(0b1100) && j.contains(0b1010));
    }

    #[test]
    fn and_with_mask_pins_zeros() {
        // x & 0xFF: bits 8..64 known zero whatever x is.
        let m = compile("fn main(x: int) { output x & 255; }");
        let f = m.entry_func();
        let facts = analyze_values::<KnownBits>(f, &Cfg::new(f));
        let and_res = f.instrs().find(|i| i.op.mnemonic() == "and").unwrap();
        let kb = facts.values[and_res.result.unwrap().0 as usize];
        assert_eq!(kb.zeros & !0xFF, !0xFFu64);
        assert_eq!(kb.known() & 0xFF, 0, "low byte of x is unknown");
    }

    #[test]
    fn shl_by_constant_pins_low_zeros() {
        let m = compile("fn main(x: int) { output x << 4; }");
        let f = m.entry_func();
        let facts = analyze_values::<KnownBits>(f, &Cfg::new(f));
        let shl = f.instrs().find(|i| i.op.mnemonic() == "shl").unwrap();
        let kb = facts.values[shl.result.unwrap().0 as usize];
        assert_eq!(kb.zeros & 0xF, 0xF, "low 4 bits are zero after << 4");
    }

    #[test]
    fn constant_chain_folds() {
        let m = compile("fn main() { let a = 3 + 4; let b = a * 2; output b; }");
        let f = m.entry_func();
        let facts = analyze_values::<KnownBits>(f, &Cfg::new(f));
        // The mul result is exactly 14 (frontend may or may not fold;
        // either way the analysis must know it).
        let last = f.instrs().find(|i| i.op.mnemonic() == "output").unwrap();
        let v = last.op.operands()[0];
        let kb = match v {
            peppa_ir::Operand::Value(v) => facts.values[v.0 as usize],
            peppa_ir::Operand::Const(c) => KnownBits::of_const(c),
        };
        assert_eq!(kb.as_const(), Some(14));
    }

    #[test]
    fn loop_carried_value_stays_sound() {
        let m = compile(
            r#"fn main(n: int) {
                let s = 0;
                for (i = 0; i < n; i = i + 1) { s = s + 2; }
                output s;
            }"#,
        );
        let f = m.entry_func();
        let facts = analyze_values::<KnownBits>(f, &Cfg::new(f));
        // s is always even: bit 0 known zero even through the loop join.
        let out = f.instrs().find(|i| i.op.mnemonic() == "output").unwrap();
        if let peppa_ir::Operand::Value(v) = out.op.operands()[0] {
            let kb = facts.values[v.0 as usize];
            assert!(kb.zeros & 1 != 0, "sum of evens must keep bit0 = 0: {kb:?}");
        }
    }

    #[test]
    fn i1_values_have_high_bits_zero() {
        let m = compile("fn main(x: int) { if (x > 3) { output 1; } else { output 0; } }");
        let f = m.entry_func();
        let facts = analyze_values::<KnownBits>(f, &Cfg::new(f));
        let icmp = f.instrs().find(|i| i.op.mnemonic() == "icmp").unwrap();
        let kb = facts.values[icmp.result.unwrap().0 as usize];
        assert_eq!(kb.zeros | 1, u64::MAX, "i1: bits 1..64 known zero");
    }
}

//! Static lints over PIR modules, built on the dataflow framework.
//!
//! [`lint_module`] always runs the IR verifier first: a module that fails
//! verification yields a single `ill-formed-ir` *error* finding and no
//! further analysis — the lints (and the analyses they use) assume
//! well-formed IR.
//!
//! On verified modules the linter reports *warnings*:
//!
//! * `dead-value` — an instruction result that never (transitively)
//!   influences observable behaviour (store, output, call argument,
//!   return, branch condition). Bit flips there are guaranteed-masked,
//!   and as ordinary code the instruction is removable.
//! * `always-taken-branch` — a `condbr` whose condition the interval /
//!   known-bits analyses prove constant.
//! * `trapping-memory-access` — a load or store whose address is provably
//!   `<= 0` (word 0 is the VM's null sentinel and negative indices wrap
//!   out of the address space): executing it always traps.
//! * `unreachable-block` — a block with no path from the entry. The
//!   verifier rejects these too, so on verified IR this never fires; it
//!   is kept for callers linting IR built outside [`ModuleBuilder`].
//! * `undominated-use` — a cross-block use whose definition block does
//!   not dominate the use block. Also subsumed by the verifier's
//!   definite-definition check; kept as a cheap independent oracle.
//! * `dead-store` — a store whose value provably reaches no load
//!   anywhere in the module (no aliasing load in the
//!   [`MemDepGraph`]). The stored value is wasted work and a
//!   guaranteed-masked fault site.
//! * `uninit-load` — a load that provably reads a zero-initialized
//!   global range no store ever writes: it can only observe the
//!   implicit zero fill, which is almost always a missing
//!   initialization.
//! * `dead-argument` — a parameter of a called function whose
//!   interprocedural bit summary proves zero reach on every channel
//!   (sink, return, stored memory): the argument expression at every
//!   call site is wasted work and a guaranteed-masked fault region.
//! * `constant-return` — a called function whose interprocedural value
//!   facts (parameter seeds joined over all call sites, returns
//!   propagated bottom-up) prove it returns one single value for every
//!   call in this module.
//! * `redundant-computation` — a pure instruction that recomputes a
//!   value an identical dominating instruction already produced (the
//!   optimizer's dominator-scoped CSE would fold it). Wasted work, and
//!   a fault in either copy is masked whenever the other feeds the
//!   observable path.
//!
//! Findings are sorted deterministically by `(sid, code, function,
//! block)` so `peppa lint --json` output is stable across runs and
//! analysis-order changes.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::dataflow::{analyze_values, ValueFacts};
use crate::knownbits::KnownBits;
use crate::liveness::observable_live;
use crate::memdep::MemDepGraph;
use crate::range::AbsRange;
use crate::summary::{analyze_module_interproc, summarize_bits};
use peppa_ir::{verify, BlockId, Function, Module, Op, Operand, Term, ValueId};
use serde::Serialize;

/// How severe a finding is. `Error` findings mean the module should not
/// be run at all; warnings are suspicious-but-executable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Severity {
    Error,
    Warning,
}

/// One lint finding, locatable and machine-readable.
#[derive(Debug, Clone, Serialize)]
pub struct Lint {
    /// Stable kebab-case code, e.g. `dead-value`.
    pub code: String,
    pub severity: Severity,
    /// Function the finding is in (`<module>` for module-level ones).
    pub function: String,
    /// Block index within the function, when applicable.
    pub block: Option<u32>,
    /// Static instruction id, when the finding points at an instruction.
    pub sid: Option<u32>,
    pub message: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}[{}]: {}", self.code, self.function)?;
        if let Some(b) = self.block {
            write!(f, ": bb{b}")?;
        }
        if let Some(s) = self.sid {
            write!(f, ": sid {s}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// All findings for one module.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LintReport {
    pub lints: Vec<Lint>,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.lints.is_empty()
    }

    pub fn errors(&self) -> usize {
        self.lints
            .iter()
            .filter(|l| l.severity == Severity::Error)
            .count()
    }

    pub fn warnings(&self) -> usize {
        self.lints
            .iter()
            .filter(|l| l.severity == Severity::Warning)
            .count()
    }
}

/// Lints `module`. Verification runs first; on failure the report holds
/// exactly the verifier error and nothing else.
pub fn lint_module(module: &Module) -> LintReport {
    let mut report = LintReport::default();
    if let Err(e) = verify(module) {
        report.lints.push(Lint {
            code: "ill-formed-ir".into(),
            severity: Severity::Error,
            function: e.function.clone(),
            block: e.block,
            sid: None,
            message: e.message,
        });
        return report;
    }
    for f in &module.functions {
        lint_function(f, &mut report);
    }
    lint_memory(module, &mut report);
    lint_interproc(module, &mut report);
    report.lints.sort_by(|a, b| {
        (a.sid, &a.code, &a.function, a.block).cmp(&(b.sid, &b.code, &b.function, b.block))
    });
    report
}

/// Module-level memory lints backed by the store→load dependence graph.
fn lint_memory(module: &Module, report: &mut LintReport) {
    let g = MemDepGraph::new(module);

    // A provably-trapping access never executes its memory effect, so it
    // is already reported once as `trapping-memory-access`; don't pile a
    // dead-store / uninit-load finding on the same sid.
    let trapping: std::collections::HashSet<u32> = report
        .lints
        .iter()
        .filter(|l| l.code == "trapping-memory-access")
        .filter_map(|l| l.sid)
        .collect();

    // Locate a sid: function name + block index.
    let mut site = std::collections::HashMap::new();
    for f in &module.functions {
        for (bi, b) in f.blocks.iter().enumerate() {
            for ins in &b.instrs {
                site.insert(ins.sid.0, (f.name.clone(), bi as u32));
            }
        }
    }
    let mut warn = |code: &str, sid: u32, message: String| {
        let (function, block) = site.get(&sid).cloned().unwrap_or_default();
        report.lints.push(Lint {
            code: code.into(),
            severity: Severity::Warning,
            function,
            block: Some(block),
            sid: Some(sid),
            message,
        });
    };

    for sid in g.dead_stores() {
        if !trapping.contains(&sid.0) {
            warn(
                "dead-store",
                sid.0,
                "stored value can never reach any load".into(),
            );
        }
    }
    for sid in g.uninit_loads(module) {
        if !trapping.contains(&sid.0) {
            warn(
                "uninit-load",
                sid.0,
                "reads a zero-initialized global range no store ever writes".into(),
            );
        }
    }
}

/// Interprocedural lints from the per-bit function summaries and the
/// call-connected value facts. Only *called* non-entry functions are
/// linted: the entry's arguments come from outside the module, and an
/// uncalled function has no call sites to be wasteful at (it is already
/// wholly unreachable — a different problem than a dead argument).
fn lint_interproc(module: &Module, report: &mut LintReport) {
    let cg = CallGraph::new(module);
    let mut called = vec![false; module.functions.len()];
    for cs in &cg.call_sites {
        called[cs.callee.0 as usize] = true;
    }

    let sums = summarize_bits(module, &cg);
    let ranges = analyze_module_interproc::<AbsRange>(module, &cg);
    let kbs = analyze_module_interproc::<KnownBits>(module, &cg);

    for (fi, f) in module.functions.iter().enumerate() {
        if peppa_ir::FuncId(fi as u32) == module.entry || !called[fi] {
            continue;
        }
        for i in 0..f.params.len() {
            if sums[fi].param_reach(i) == 0 {
                report.lints.push(Lint {
                    code: "dead-argument".into(),
                    severity: Severity::Warning,
                    function: f.name.clone(),
                    block: None,
                    sid: None,
                    message: format!(
                        "parameter {i} (v{i}) never influences observable behaviour: \
                         the argument at every call site is wasted work"
                    ),
                });
            }
        }
        if f.ret.is_none() {
            continue;
        }
        let by_range = ranges.ret[fi].as_ref().and_then(|r| match r {
            AbsRange::Int(r) => r.as_const().map(|v| v.to_string()),
            AbsRange::Float(r) => {
                (!r.nan && r.lo == r.hi && r.lo.is_finite()).then(|| r.lo.to_string())
            }
        });
        // Known-bits constants are canonical u64 words: meaningful to
        // print for the integer types only.
        let by_kb = (f.ret != Some(peppa_ir::Ty::F64))
            .then(|| kbs.ret[fi].as_ref().and_then(|k| k.as_const()))
            .flatten()
            .map(|v| (v as i64).to_string());
        if let Some(c) = by_range.or(by_kb) {
            report.lints.push(Lint {
                code: "constant-return".into(),
                severity: Severity::Warning,
                function: f.name.clone(),
                block: None,
                sid: None,
                message: format!("returns {c} for every call in this module"),
            });
        }
    }
}

fn lint_function(f: &Function, report: &mut LintReport) {
    let warn = |report: &mut LintReport, code: &str, block, sid, message: String| {
        report.lints.push(Lint {
            code: code.into(),
            severity: Severity::Warning,
            function: f.name.clone(),
            block,
            sid,
            message,
        });
    };

    // Unreachable blocks: flagged, then excluded from the dataflow-based
    // lints (the Cfg/dominator machinery assumes full reachability).
    let reach = f.reachable_blocks();
    for (bi, r) in reach.iter().enumerate() {
        if !r {
            warn(
                report,
                "unreachable-block",
                Some(bi as u32),
                None,
                "no path from the entry reaches this block".into(),
            );
        }
    }
    if reach.iter().any(|&r| !r) {
        return;
    }

    let cfg = Cfg::new(f);
    let kb: ValueFacts<KnownBits> = analyze_values(f, &cfg);
    let ranges: ValueFacts<AbsRange> = analyze_values(f, &cfg);
    let live = observable_live(f);

    // Where each sid lives, for locating CSE candidates.
    let mut sid_block = std::collections::HashMap::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        for ins in &b.instrs {
            sid_block.insert(ins.sid, bi as u32);
        }
    }
    // `redundant_computations` returns (sid, kind) sorted by sid; the
    // report-level sort keeps the overall order deterministic.
    for (sid, kind) in crate::rewrite::redundant_computations(f) {
        warn(
            report,
            "redundant-computation",
            sid_block.get(&sid).copied(),
            Some(sid.0),
            format!(
                "{kind} recomputes a value a dominating identical instruction already produced"
            ),
        );
    }

    // Definition site of every value: block index, or the entry for
    // function parameters.
    let nv = f.value_types.len();
    let mut def_block: Vec<u32> = vec![0; nv];
    for (bi, b) in f.blocks.iter().enumerate() {
        for &p in &b.params {
            def_block[p.0 as usize] = bi as u32;
        }
        for ins in &b.instrs {
            if let Some(r) = ins.result {
                def_block[r.0 as usize] = bi as u32;
            }
        }
    }

    let cond_const = |c: &Operand| -> Option<u64> {
        let by_range = match ranges.of_operand(c) {
            AbsRange::Int(r) => r.as_const().map(|v| v as u64),
            AbsRange::Float(_) => None,
        };
        by_range.or_else(|| kb.of_operand(c).as_const())
    };

    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        let check_use = |report: &mut LintReport, v: ValueId, sid: Option<u32>| {
            let db = BlockId(def_block[v.0 as usize]);
            if db != bid && !cfg.dominates(db, bid) {
                warn(
                    report,
                    "undominated-use",
                    Some(bid.0),
                    sid,
                    format!(
                        "use of v{} whose definition (bb{}) does not dominate bb{}",
                        v.0, db.0, bid.0
                    ),
                );
            }
        };

        for ins in &b.instrs {
            for o in ins.op.operands() {
                if let Some(v) = o.value() {
                    check_use(report, v, Some(ins.sid.0));
                }
            }

            if let Some(r) = ins.result {
                if !live.contains(r) {
                    warn(
                        report,
                        "dead-value",
                        Some(bid.0),
                        Some(ins.sid.0),
                        format!(
                            "result of `{}` never influences observable behaviour",
                            ins.op.mnemonic()
                        ),
                    );
                }
            }

            let addr = match &ins.op {
                Op::Load { addr, .. } => Some(addr),
                Op::Store { addr, .. } => Some(addr),
                _ => None,
            };
            if let Some(addr) = addr {
                if let AbsRange::Int(r) = ranges.of_operand(addr) {
                    if r.hi <= 0 {
                        warn(
                            report,
                            "trapping-memory-access",
                            Some(bid.0),
                            Some(ins.sid.0),
                            format!("address is provably in [{}, {}]: always traps", r.lo, r.hi),
                        );
                    }
                }
            }
        }

        for o in b.term.operands() {
            if let Some(v) = o.value() {
                check_use(report, v, None);
            }
        }
        if let Term::CondBr { cond, .. } = &b.term {
            if let Some(c) = cond_const(cond) {
                let arm = if c & 1 == 1 { "then" } else { "else" };
                warn(
                    report,
                    "always-taken-branch",
                    Some(bid.0),
                    None,
                    format!(
                        "condition is provably {}: the {arm} arm is always taken",
                        c & 1
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_ir::{IPred, ModuleBuilder, Operand, Ty};

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "lint").unwrap()
    }

    #[test]
    fn clean_program_has_no_lints() {
        let m = compile(
            "fn main(n: int) { let s = 0; for (i = 0; i < n; i = i + 1) { s = s + i; } output s; }",
        );
        let r = lint_module(&m);
        assert!(r.is_clean(), "{:?}", r.lints);
    }

    #[test]
    fn dead_value_is_reported() {
        let m = compile("fn main(x: int) { let a = x * 7; output x; }");
        let r = lint_module(&m);
        assert_eq!(r.warnings(), 1, "{:?}", r.lints);
        assert_eq!(r.lints[0].code, "dead-value");
        assert!(r.lints[0].sid.is_some());
    }

    #[test]
    fn always_taken_branch_is_reported() {
        let m = compile(
            r#"fn main(x: int) {
                let a = x & 15;
                if (a < 100) { output 1; } else { output 2; }
            }"#,
        );
        let r = lint_module(&m);
        assert!(
            r.lints.iter().any(|l| l.code == "always-taken-branch"),
            "{:?}",
            r.lints
        );
    }

    #[test]
    fn ill_formed_ir_short_circuits() {
        let mut m = compile("fn main(x: int) { output x + 1; }");
        // Corrupt the module: duplicate a sid.
        m.num_instrs += 1;
        let r = lint_module(&m);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.lints[0].code, "ill-formed-ir");
        assert_eq!(r.lints.len(), 1);
    }

    #[test]
    fn trapping_store_is_reported() {
        // Hand-build: store through intoptr(0) — provably null.
        let mut mb = ModuleBuilder::new("trap");
        let main = mb.declare("main", &[], None);
        let mut fb = mb.define(main);
        let p = fb.cast(peppa_ir::CastKind::IntToPtr, Operand::i64(0), Ty::Ptr);
        fb.store(p, Operand::i64(1));
        fb.output(Operand::i64(0));
        fb.ret(None);
        fb.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let r = lint_module(&m);
        assert!(
            r.lints.iter().any(|l| l.code == "trapping-memory-access"),
            "{:?}",
            r.lints
        );
    }

    #[test]
    fn dead_store_is_reported_once() {
        let m = compile(
            r#"global int a[4];
               global int b[4];
               fn main(x: int) {
                   a[0] = x;
                   output b[1];
               }"#,
        );
        let r = lint_module(&m);
        let dead: Vec<_> = r.lints.iter().filter(|l| l.code == "dead-store").collect();
        assert_eq!(dead.len(), 1, "{:?}", r.lints);
        assert_eq!(dead[0].function, "main");
        // The companion uninit-load on b[1] fires too.
        assert!(
            r.lints.iter().any(|l| l.code == "uninit-load"),
            "{:?}",
            r.lints
        );
    }

    #[test]
    fn trapping_store_not_double_reported_as_dead() {
        let mut mb = ModuleBuilder::new("trap");
        let main = mb.declare("main", &[], None);
        let mut fb = mb.define(main);
        let p = fb.cast(peppa_ir::CastKind::IntToPtr, Operand::i64(0), Ty::Ptr);
        fb.store(p, Operand::i64(1));
        fb.output(Operand::i64(0));
        fb.ret(None);
        fb.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let r = lint_module(&m);
        assert!(r.lints.iter().any(|l| l.code == "trapping-memory-access"));
        assert!(
            !r.lints.iter().any(|l| l.code == "dead-store"),
            "trapping store double-reported: {:?}",
            r.lints
        );
    }

    #[test]
    fn findings_sorted_by_sid_then_code() {
        let m = compile(
            r#"global int a[4];
               fn main(x: int) {
                   let d = x * 3;
                   a[0] = x;
                   output x;
               }"#,
        );
        let r = lint_module(&m);
        assert!(r.warnings() >= 2, "{:?}", r.lints);
        let keys: Vec<_> = r
            .lints
            .iter()
            .map(|l| (l.sid, l.code.clone(), l.function.clone(), l.block))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn dead_argument_is_reported() {
        let m = compile(
            r#"fn pick(a: int, b: int) -> int { return a; }
               fn main(x: int) { output pick(x, x * 9); }"#,
        );
        let r = lint_module(&m);
        let dead: Vec<_> = r
            .lints
            .iter()
            .filter(|l| l.code == "dead-argument")
            .collect();
        assert_eq!(dead.len(), 1, "{:?}", r.lints);
        assert_eq!(dead[0].function, "pick");
        assert!(dead[0].message.contains("parameter 1"), "{:?}", dead[0]);
    }

    #[test]
    fn constant_return_is_reported_across_call_sites() {
        // `ident` is not intrinsically constant — but every call in the
        // module passes 5, and the interprocedural seeds prove it.
        let m = compile(
            r#"fn ident(v: int) -> int { return v; }
               fn main(x: int) { output ident(5) + ident(5) + x; }"#,
        );
        let r = lint_module(&m);
        let c: Vec<_> = r
            .lints
            .iter()
            .filter(|l| l.code == "constant-return")
            .collect();
        assert_eq!(c.len(), 1, "{:?}", r.lints);
        assert_eq!(c[0].function, "ident");
        assert!(c[0].message.contains('5'), "{:?}", c[0]);
    }

    #[test]
    fn varying_callee_has_no_interproc_findings() {
        let m = compile(
            r#"fn double(v: int) -> int { return v * 2; }
               fn main(x: int) { output double(x) + double(3); }"#,
        );
        let r = lint_module(&m);
        assert!(
            !r.lints
                .iter()
                .any(|l| l.code == "dead-argument" || l.code == "constant-return"),
            "{:?}",
            r.lints
        );
    }

    #[test]
    fn redundant_computation_is_reported_and_o2_removes_it() {
        let m = compile(
            r#"fn main(x: int, y: int) {
                let a = x * y + 1;
                let b = x * y + 2;
                output a + b;
            }"#,
        );
        let r = lint_module(&m);
        let hits: Vec<_> = r
            .lints
            .iter()
            .filter(|l| l.code == "redundant-computation")
            .collect();
        assert_eq!(hits.len(), 1, "{:?}", r.lints);
        assert!(hits[0].message.contains("mul"), "{:?}", hits[0]);
        let opt = crate::rewrite::optimize(&m, crate::rewrite::OptLevel::O2).module;
        assert!(lint_module(&opt).is_clean());
    }

    #[test]
    fn bundled_benchmarks_are_lint_clean_at_o2() {
        // The benchmarks deliberately carry O0 redundancy (it is part of
        // the fault space under study); the cleanliness bar is the
        // optimized form: at O2 every lint, including
        // `redundant-computation`, must be silent.
        for b in peppa_apps::all_benchmarks() {
            let opt = crate::rewrite::optimize(&b.module, crate::rewrite::OptLevel::O2).module;
            let r = lint_module(&opt);
            assert!(r.is_clean(), "{}@O2: {:?}", b.name, r.lints);
        }
    }

    #[test]
    fn report_serializes_to_json() {
        let m = compile("fn main(x: int) { let a = x * 7; output x; }");
        let r = lint_module(&m);
        let s = serde_json::to_string_pretty(&r).unwrap();
        assert!(s.contains("dead-value"), "{s}");
    }

    #[test]
    fn undominated_use_detector_agrees_with_verifier_on_good_ir() {
        let m = compile(
            r#"fn main(x: int) {
                let r = 0;
                if (x > 0) { r = x * 2; } else { r = 3; }
                output r;
            }"#,
        );
        let r = lint_module(&m);
        assert!(
            !r.lints.iter().any(|l| l.code == "undominated-use"),
            "{:?}",
            r.lints
        );
        // icmp feeding the branch must not be flagged either.
        let _ = IPred::Sgt;
    }
}

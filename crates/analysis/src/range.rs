//! Value-range (interval) analysis over the VM's canonical
//! representation: signed `i64` intervals for the integer types, IEEE
//! `f64` intervals plus a may-be-NaN flag for floats.
//!
//! Transfers mirror `peppa-vm` exactly — wrapping integer arithmetic
//! falls back to the type's full range when an `i128` bound check shows
//! overflow is possible; float arithmetic is evaluated on interval
//! corners (round-to-nearest is monotone, so rounded corners bound
//! rounded interiors), with NaN-producing cases (`inf - inf`,
//! `0 * inf`, `0/0`, division by an interval containing zero) handled
//! explicitly and transcendentals widened by a few ulps to absorb libm
//! error. Widening at loop headers jumps straight to the type extremes.

use crate::dataflow::AbstractDomain;
use peppa_ir::{BinOp, CastKind, Const, FPred, IPred, Op, Ty, UnOp};

/// A signed integer interval `[lo, hi]`, inclusive.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IRange {
    pub lo: i64,
    pub hi: i64,
}

impl IRange {
    pub fn exact(v: i64) -> IRange {
        IRange { lo: v, hi: v }
    }

    pub fn full(ty: Ty) -> IRange {
        match ty {
            Ty::I1 => IRange { lo: 0, hi: 1 },
            Ty::I32 => IRange {
                lo: i32::MIN as i64,
                hi: i32::MAX as i64,
            },
            _ => IRange {
                lo: i64::MIN,
                hi: i64::MAX,
            },
        }
    }

    pub fn contains(&self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    pub fn as_const(&self) -> Option<i64> {
        if self.lo == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }
}

/// A float interval over non-NaN values (`lo <= hi`, endpoints may be
/// infinite) plus a may-be-NaN flag. `lo > hi` encodes "no non-NaN
/// value" (NaN-only, or unreachable).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FRange {
    pub lo: f64,
    pub hi: f64,
    pub nan: bool,
}

impl FRange {
    pub const FULL: FRange = FRange {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        nan: true,
    };

    /// NaN-only (empty numeric part).
    pub const NAN_ONLY: FRange = FRange {
        lo: f64::INFINITY,
        hi: f64::NEG_INFINITY,
        nan: true,
    };

    pub fn exact(v: f64) -> FRange {
        if v.is_nan() {
            FRange::NAN_ONLY
        } else {
            FRange {
                lo: v,
                hi: v,
                nan: false,
            }
        }
    }

    pub fn is_empty(&self) -> bool {
        // Empty when lo > hi or either bound is NaN.
        !matches!(
            self.lo.partial_cmp(&self.hi),
            Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
        )
    }

    pub fn contains(&self, v: f64) -> bool {
        if v.is_nan() {
            self.nan
        } else {
            self.lo <= v && v <= self.hi
        }
    }
}

/// The combined domain: integers (including i1/ptr) carry an [`IRange`],
/// floats an [`FRange`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AbsRange {
    Int(IRange),
    Float(FRange),
}

impl AbsRange {
    pub fn int(&self) -> Option<IRange> {
        match self {
            AbsRange::Int(r) => Some(*r),
            AbsRange::Float(_) => None,
        }
    }

    pub fn float(&self) -> Option<FRange> {
        match self {
            AbsRange::Float(r) => Some(*r),
            AbsRange::Int(_) => None,
        }
    }

    /// Soundness predicate: does the canonical bit pattern `bits` of a
    /// value with type `ty` lie inside this abstraction?
    pub fn contains_bits(&self, ty: Ty, bits: u64) -> bool {
        match (self, ty) {
            (AbsRange::Float(r), Ty::F64) => r.contains(f64::from_bits(bits)),
            (AbsRange::Int(r), _) => r.contains(bits as i64),
            _ => false,
        }
    }
}

fn top_of(ty: Ty) -> AbsRange {
    if ty == Ty::F64 {
        AbsRange::Float(FRange::FULL)
    } else {
        AbsRange::Int(IRange::full(ty))
    }
}

/// Clamps an `i128` corner interval back to the canonical range of
/// `ty`, falling back to the type's full range if wrapping is possible.
fn fit(ty: Ty, lo: i128, hi: i128) -> IRange {
    let b = IRange::full(ty);
    if lo >= b.lo as i128 && hi <= b.hi as i128 {
        IRange {
            lo: lo as i64,
            hi: hi as i64,
        }
    } else {
        b
    }
}

/// Number of significant bits of a non-negative value.
fn bit_len(v: i64) -> u32 {
    64 - (v as u64).leading_zeros()
}

fn int_bin(op: BinOp, ty: Ty, a: IRange, b: IRange) -> IRange {
    let (al, ah, bl, bh) = (a.lo as i128, a.hi as i128, b.lo as i128, b.hi as i128);
    match op {
        BinOp::Add => fit(ty, al + bl, ah + bh),
        BinOp::Sub => fit(ty, al - bh, ah - bl),
        BinOp::Mul => {
            let c = [al * bl, al * bh, ah * bl, ah * bh];
            fit(ty, *c.iter().min().unwrap(), *c.iter().max().unwrap())
        }
        BinOp::SDiv => {
            // Division by zero traps (no result value), so corner-evaluate
            // over the divisor interval with zero carved out.
            let mut ys: Vec<i128> = Vec::new();
            for y in [bl, bh] {
                if y != 0 {
                    ys.push(y);
                }
            }
            if b.lo <= -1 && b.hi >= -1 {
                ys.push(-1);
            }
            if b.lo <= 1 && b.hi >= 1 {
                ys.push(1);
            }
            if ys.is_empty() {
                // Always traps; any sound abstraction works.
                return IRange::exact(0);
            }
            let mut lo = i128::MAX;
            let mut hi = i128::MIN;
            for x in [al, ah] {
                for &y in &ys {
                    let q = x / y;
                    lo = lo.min(q);
                    hi = hi.max(q);
                }
            }
            fit(ty, lo, hi)
        }
        BinOp::SRem => {
            // |a % b| < |b| and |a % b| <= |a|, sign follows the dividend.
            let m = (bl.abs()).max(bh.abs());
            if m == 0 {
                return IRange::exact(0); // always traps
            }
            let mag = (m - 1).min((al.abs()).max(ah.abs()));
            let lo = if a.lo >= 0 { 0 } else { -mag };
            let hi = if a.hi <= 0 { 0 } else { mag };
            fit(ty, lo, hi)
        }
        BinOp::And => {
            if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                return IRange::exact(x & y);
            }
            // A non-negative operand bounds the result in [0, operand].
            match (a.lo >= 0, b.lo >= 0) {
                (true, true) => IRange {
                    lo: 0,
                    hi: a.hi.min(b.hi),
                },
                (true, false) => IRange { lo: 0, hi: a.hi },
                (false, true) => IRange { lo: 0, hi: b.hi },
                (false, false) => IRange::full(ty),
            }
        }
        BinOp::Or | BinOp::Xor => {
            if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                return IRange::exact(if op == BinOp::Or { x | y } else { x ^ y });
            }
            if a.lo >= 0 && b.lo >= 0 {
                // Both below 2^m => result below 2^m.
                let m = bit_len(a.hi).max(bit_len(b.hi));
                let hi = if m >= 63 { i64::MAX } else { (1i64 << m) - 1 };
                IRange { lo: 0, hi }
            } else {
                IRange::full(ty)
            }
        }
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
                // Evaluate exactly as the VM does (masked shift counts).
                let s = (y as u64) & (ty.bits() as u64 - 1).max(1);
                let r = match op {
                    BinOp::Shl => (x as u64) << s,
                    BinOp::LShr => ty.truncate_bits(x as u64) >> s,
                    BinOp::AShr => (x >> s) as u64,
                    _ => unreachable!(),
                };
                let canon = match ty {
                    Ty::I1 => r & 1,
                    Ty::I32 => (r as u32 as i32 as i64) as u64,
                    _ => r,
                };
                return IRange::exact(canon as i64);
            }
            if op != BinOp::Shl && a.lo >= 0 {
                // Right shifts of a non-negative value shrink it toward 0.
                IRange { lo: 0, hi: a.hi }
            } else {
                IRange::full(ty)
            }
        }
        BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => IRange::full(ty),
    }
}

/// Widens a libm-computed bound downward/upward by `ulps` steps to
/// absorb rounding error of non-correctly-rounded functions.
fn nudge_down(x: f64, ulps: u32) -> f64 {
    let mut v = x;
    for _ in 0..ulps {
        v = v.next_down();
    }
    v
}

fn nudge_up(x: f64, ulps: u32) -> f64 {
    let mut v = x;
    for _ in 0..ulps {
        v = v.next_up();
    }
    v
}

const LIBM_SLOP: u32 = 8;

fn float_bin(op: BinOp, a: FRange, b: FRange) -> FRange {
    let mut nan = a.nan || b.nan;
    if a.is_empty() || b.is_empty() {
        // An arithmetic op with a NaN operand yields NaN.
        return FRange::NAN_ONLY;
    }
    if op == BinOp::FDiv && b.lo <= 0.0 && b.hi >= 0.0 {
        // Divisor interval straddles (or touches) zero: the result jumps
        // between ±inf around it, and 0/0 gives NaN.
        return FRange::FULL;
    }
    let f = |x: f64, y: f64| -> f64 {
        match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            _ => unreachable!(),
        }
    };
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for x in [a.lo, a.hi] {
        for y in [b.lo, b.hi] {
            let r = f(x, y);
            if r.is_nan() {
                nan = true;
            } else {
                lo = lo.min(r);
                hi = hi.max(r);
            }
        }
    }
    // Interior NaN cases the corners can miss: 0 * inf.
    if op == BinOp::FMul {
        let a0 = a.lo <= 0.0 && a.hi >= 0.0;
        let b0 = b.lo <= 0.0 && b.hi >= 0.0;
        let ainf = a.lo.is_infinite() || a.hi.is_infinite();
        let binf = b.lo.is_infinite() || b.hi.is_infinite();
        if (a0 && binf) || (b0 && ainf) {
            nan = true;
        }
    }
    if lo > hi && !nan {
        // All corners were NaN but flag not set — be safe.
        nan = true;
    }
    FRange { lo, hi, nan }
}

fn float_un(op: UnOp, a: FRange) -> FRange {
    if a.is_empty() {
        return FRange::NAN_ONLY;
    }
    match op {
        UnOp::FNeg => FRange {
            lo: -a.hi,
            hi: -a.lo,
            nan: a.nan,
        },
        UnOp::FAbs => {
            if a.lo >= 0.0 {
                a
            } else if a.hi <= 0.0 {
                FRange {
                    lo: -a.hi,
                    hi: -a.lo,
                    nan: a.nan,
                }
            } else {
                FRange {
                    lo: 0.0,
                    hi: (-a.lo).max(a.hi),
                    nan: a.nan,
                }
            }
        }
        UnOp::Sqrt => {
            // Correctly rounded and monotone; negative inputs give NaN.
            if a.hi < 0.0 {
                return FRange::NAN_ONLY;
            }
            FRange {
                lo: a.lo.max(0.0).sqrt(),
                hi: a.hi.sqrt(),
                nan: a.nan || a.lo < 0.0,
            }
        }
        UnOp::Sin | UnOp::Cos => FRange {
            // libm results stay within [-1, 1] up to rounding; pad a
            // little and accept NaN (infinite inputs).
            lo: -1.0000001,
            hi: 1.0000001,
            nan: true,
        },
        UnOp::Exp => FRange {
            lo: nudge_down(a.lo.exp(), LIBM_SLOP).max(0.0),
            hi: nudge_up(a.hi.exp(), LIBM_SLOP),
            nan: a.nan,
        },
        UnOp::Log => {
            if a.hi < 0.0 {
                return FRange::NAN_ONLY;
            }
            FRange {
                lo: nudge_down(a.lo.max(0.0).ln(), LIBM_SLOP),
                hi: nudge_up(a.hi.ln(), LIBM_SLOP),
                nan: a.nan || a.lo < 0.0,
            }
        }
        UnOp::Floor => FRange {
            // floor is exact and monotone.
            lo: a.lo.floor(),
            hi: a.hi.floor(),
            nan: a.nan,
        },
        UnOp::Not => unreachable!("integer op on float path"),
    }
}

/// Three-valued comparison outcome from interval reasoning.
fn icmp_range(pred: IPred, a: IRange, b: IRange) -> IRange {
    let t = IRange::exact(1);
    let f = IRange::exact(0);
    let both = IRange { lo: 0, hi: 1 };
    match pred {
        IPred::Eq => {
            if a.hi < b.lo || b.hi < a.lo {
                f
            } else if a.as_const().is_some() && a.as_const() == b.as_const() {
                t
            } else {
                both
            }
        }
        IPred::Ne => {
            if a.hi < b.lo || b.hi < a.lo {
                t
            } else if a.as_const().is_some() && a.as_const() == b.as_const() {
                f
            } else {
                both
            }
        }
        IPred::Slt => {
            if a.hi < b.lo {
                t
            } else if a.lo >= b.hi {
                f
            } else {
                both
            }
        }
        IPred::Sle => {
            if a.hi <= b.lo {
                t
            } else if a.lo > b.hi {
                f
            } else {
                both
            }
        }
        IPred::Sgt => icmp_range(IPred::Slt, b, a),
        IPred::Sge => icmp_range(IPred::Sle, b, a),
        IPred::Ult => {
            // Unsigned order agrees with signed order when both sides
            // share the sign regime; the common case is both non-negative.
            if a.lo >= 0 && b.lo >= 0 {
                icmp_range(IPred::Slt, a, b)
            } else {
                both
            }
        }
    }
}

fn fcmp_range(pred: FPred, a: FRange, b: FRange) -> IRange {
    let nan = a.nan || b.nan;
    let empty = a.is_empty() || b.is_empty();
    // Ordered predicates are false when either side is NaN.
    let can_be_true = !empty
        && match pred {
            FPred::Oeq => a.lo <= b.hi && b.lo <= a.hi,
            FPred::One => !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo),
            FPred::Olt => a.lo < b.hi,
            FPred::Ole => a.lo <= b.hi,
            FPred::Ogt => a.hi > b.lo,
            FPred::Oge => a.hi >= b.lo,
        };
    let can_be_false = nan
        || empty
        || match pred {
            FPred::Oeq => !(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo),
            FPred::One => a.lo <= b.hi && b.lo <= a.hi,
            FPred::Olt => a.hi >= b.lo,
            FPred::Ole => a.hi > b.lo,
            FPred::Ogt => a.lo <= b.hi,
            FPred::Oge => a.lo < b.hi,
        };
    match (can_be_true, can_be_false) {
        (true, false) => IRange::exact(1),
        (false, true) => IRange::exact(0),
        _ => IRange { lo: 0, hi: 1 },
    }
}

impl AbstractDomain for AbsRange {
    fn top(ty: Ty) -> AbsRange {
        top_of(ty)
    }

    fn of_const(c: Const) -> AbsRange {
        match c.ty {
            Ty::F64 => AbsRange::Float(FRange::exact(f64::from_bits(c.bits))),
            Ty::I1 => AbsRange::Int(IRange::exact((c.bits & 1) as i64)),
            Ty::I32 => AbsRange::Int(IRange::exact(c.bits as u32 as i32 as i64)),
            _ => AbsRange::Int(IRange::exact(c.bits as i64)),
        }
    }

    fn join(&self, other: &AbsRange) -> AbsRange {
        match (self, other) {
            (AbsRange::Int(a), AbsRange::Int(b)) => AbsRange::Int(IRange {
                lo: a.lo.min(b.lo),
                hi: a.hi.max(b.hi),
            }),
            (AbsRange::Float(a), AbsRange::Float(b)) => AbsRange::Float(FRange {
                lo: a.lo.min(b.lo),
                hi: a.hi.max(b.hi),
                nan: a.nan || b.nan,
            }),
            // Mixed kinds cannot occur in verified IR; fail safe.
            _ => AbsRange::Float(FRange::FULL),
        }
    }

    fn widen(&self, next: &AbsRange) -> AbsRange {
        match (self, next) {
            (AbsRange::Int(a), AbsRange::Int(b)) => AbsRange::Int(IRange {
                lo: if b.lo < a.lo {
                    i64::MIN
                } else {
                    a.lo.min(b.lo)
                },
                hi: if b.hi > a.hi {
                    i64::MAX
                } else {
                    a.hi.max(b.hi)
                },
            }),
            (AbsRange::Float(a), AbsRange::Float(b)) => AbsRange::Float(FRange {
                lo: if b.lo < a.lo {
                    f64::NEG_INFINITY
                } else {
                    a.lo.min(b.lo)
                },
                hi: if b.hi > a.hi {
                    f64::INFINITY
                } else {
                    a.hi.max(b.hi)
                },
                nan: a.nan || b.nan,
            }),
            _ => AbsRange::Float(FRange::FULL),
        }
    }

    fn transfer(op: &Op, ty: Ty, args: &[AbsRange], arg_tys: &[Ty]) -> AbsRange {
        match op {
            Op::Bin { op: b, .. } => {
                if b.is_float() {
                    match (args[0].float(), args[1].float()) {
                        (Some(x), Some(y)) => AbsRange::Float(float_bin(*b, x, y)),
                        _ => top_of(ty),
                    }
                } else {
                    match (args[0].int(), args[1].int()) {
                        (Some(x), Some(y)) => AbsRange::Int(int_bin(*b, ty, x, y)),
                        _ => top_of(ty),
                    }
                }
            }
            Op::Un { op: u, .. } => match u {
                UnOp::Not => match args[0].int() {
                    Some(r) => {
                        // !x = -x - 1 on two's complement.
                        let lo = (-(r.hi as i128)) - 1;
                        let hi = (-(r.lo as i128)) - 1;
                        AbsRange::Int(fit(ty, lo, hi))
                    }
                    None => top_of(ty),
                },
                _ => match args[0].float() {
                    Some(r) => AbsRange::Float(float_un(*u, r)),
                    None => top_of(ty),
                },
            },
            Op::Icmp { pred, .. } => match (args[0].int(), args[1].int()) {
                (Some(a), Some(b)) => AbsRange::Int(icmp_range(*pred, a, b)),
                _ => AbsRange::Int(IRange { lo: 0, hi: 1 }),
            },
            Op::Fcmp { pred, .. } => match (args[0].float(), args[1].float()) {
                (Some(a), Some(b)) => AbsRange::Int(fcmp_range(*pred, a, b)),
                _ => AbsRange::Int(IRange { lo: 0, hi: 1 }),
            },
            Op::Select { .. } => {
                let c = args[0].int().unwrap_or(IRange { lo: 0, hi: 1 });
                match c.as_const() {
                    Some(1) => args[1],
                    Some(0) => args[2],
                    _ => args[1].join(&args[2]),
                }
            }
            Op::Cast { kind, .. } => {
                let from = arg_tys[0];
                match kind {
                    CastKind::Trunc => match args[0].int() {
                        Some(r) => {
                            let b = IRange::full(ty);
                            if ty == Ty::I1 {
                                match r.as_const() {
                                    Some(v) => AbsRange::Int(IRange::exact(v & 1)),
                                    None if r.lo >= 0 && r.hi <= 1 => AbsRange::Int(r),
                                    None => AbsRange::Int(b),
                                }
                            } else if r.lo >= b.lo && r.hi <= b.hi {
                                AbsRange::Int(r)
                            } else {
                                AbsRange::Int(b)
                            }
                        }
                        None => top_of(ty),
                    },
                    CastKind::ZExt => match args[0].int() {
                        Some(r) => {
                            if from == Ty::I1 || r.lo >= 0 {
                                AbsRange::Int(r)
                            } else if from == Ty::I32 && r.hi < 0 {
                                AbsRange::Int(IRange {
                                    lo: r.lo + (1i64 << 32),
                                    hi: r.hi + (1i64 << 32),
                                })
                            } else if from == Ty::I32 {
                                AbsRange::Int(IRange {
                                    lo: 0,
                                    hi: (1i64 << 32) - 1,
                                })
                            } else {
                                top_of(ty)
                            }
                        }
                        None => top_of(ty),
                    },
                    CastKind::SExt => match args[0].int() {
                        Some(r) => {
                            if from == Ty::I1 {
                                // 0 -> 0, 1 -> -1 (all ones).
                                AbsRange::Int(IRange {
                                    lo: -r.hi,
                                    hi: -r.lo,
                                })
                            } else {
                                AbsRange::Int(r)
                            }
                        }
                        None => top_of(ty),
                    },
                    CastKind::Bitcast | CastKind::PtrToInt | CastKind::IntToPtr => {
                        if (from == Ty::F64) == (ty == Ty::F64) {
                            args[0]
                        } else {
                            top_of(ty)
                        }
                    }
                    CastKind::FpToSi => match args[0].float() {
                        Some(r) => {
                            let conv = |x: f64| -> i64 {
                                match ty {
                                    Ty::I32 => (x as i32) as i64,
                                    _ => x as i64,
                                }
                            };
                            if r.is_empty() {
                                // NaN converts to 0.
                                AbsRange::Int(IRange::exact(0))
                            } else {
                                let mut lo = conv(r.lo);
                                let mut hi = conv(r.hi);
                                if r.nan {
                                    lo = lo.min(0);
                                    hi = hi.max(0);
                                }
                                AbsRange::Int(IRange { lo, hi })
                            }
                        }
                        None => top_of(ty),
                    },
                    CastKind::SiToFp => match args[0].int() {
                        Some(r) => {
                            let (lo, hi) = if from == Ty::I1 {
                                (r.lo & 1, r.hi & 1)
                            } else {
                                (r.lo, r.hi)
                            };
                            // Rounding to nearest is monotone, so the
                            // converted corners bound every interior
                            // conversion.
                            AbsRange::Float(FRange {
                                lo: lo as f64,
                                hi: hi as f64,
                                nan: false,
                            })
                        }
                        None => top_of(ty),
                    },
                }
            }
            Op::Gep { .. } => match (args[0].int(), args[1].int()) {
                (Some(a), Some(b)) => {
                    // The VM wraps base+index in u64; reuse Add's i128
                    // overflow check on the signed view.
                    AbsRange::Int(int_bin(BinOp::Add, ty, a, b))
                }
                _ => top_of(ty),
            },
            Op::Load { .. } | Op::Alloca { .. } | Op::Call { .. } => top_of(ty),
            Op::Store { .. } | Op::Output { .. } => top_of(ty),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dataflow::analyze_values;
    use peppa_ir::{Module, Operand};

    fn compile(src: &str) -> Module {
        peppa_lang::compile(src, "rng").unwrap()
    }

    fn range_of_output(m: &Module) -> AbsRange {
        let f = m.entry_func();
        let facts = analyze_values::<AbsRange>(f, &Cfg::new(f));
        let out = f.instrs().find(|i| i.op.mnemonic() == "output").unwrap();
        match out.op.operands()[0] {
            Operand::Value(v) => facts.values[v.0 as usize],
            Operand::Const(c) => AbsRange::of_const(c),
        }
    }

    #[test]
    fn constant_arith_is_exact() {
        let r = range_of_output(&compile("fn main() { let a = 6; output a * 7; }"));
        assert_eq!(r.int().unwrap().as_const(), Some(42));
    }

    #[test]
    fn branch_join_unions() {
        let r = range_of_output(&compile(
            "fn main(x: int) { let r = 0; if (x > 0) { r = 10; } else { r = 20; } output r; }",
        ));
        let ir = r.int().unwrap();
        assert_eq!((ir.lo, ir.hi), (10, 20));
    }

    #[test]
    fn loop_counter_widens_without_diverging() {
        // With an unbounded trip count the widened counter reaches
        // i64::MAX, where the VM's wrapping add really can produce
        // negative values — so the only *sound* interval is FULL. The
        // point of this test is that the analysis converges and stays
        // sound, not that it stays tight.
        let m = compile(
            "fn main(n: int) { let s = 0; for (i = 0; i < n; i = i + 1) { s = s + 1; } output s; }",
        );
        let r = range_of_output(&m);
        let ir = r.int().unwrap();
        assert!(ir.contains(0) && ir.contains(1_000_000), "{ir:?}");
    }

    #[test]
    fn float_accumulator_keeps_lower_bound_through_widening() {
        // Floats don't wrap: adding a non-negative step to a widened
        // [0, +inf] accumulator keeps the lower bound.
        let m = compile(
            "fn main(n: int) { let s = 0.0; for (i = 0; i < n; i = i + 1) { s = s + 1.0; } output s; }",
        );
        let r = range_of_output(&m);
        let fr = r.float().unwrap();
        assert!(fr.lo >= 0.0, "{fr:?}");
    }

    #[test]
    fn float_interval_corners() {
        let r = range_of_output(&compile(
            "fn main(x: int) { let f = 2.0; if (x > 0) { f = 4.0; } output f * 10.0; }",
        ));
        let fr = r.float().unwrap();
        assert_eq!((fr.lo, fr.hi), (20.0, 40.0));
        assert!(!fr.nan);
    }

    #[test]
    fn division_by_straddling_interval_is_top() {
        let a = FRange {
            lo: 1.0,
            hi: 2.0,
            nan: false,
        };
        let b = FRange {
            lo: -1.0,
            hi: 1.0,
            nan: false,
        };
        let r = float_bin(BinOp::FDiv, a, b);
        assert!(r.nan && r.lo == f64::NEG_INFINITY && r.hi == f64::INFINITY);
    }

    #[test]
    fn zero_times_inf_flags_nan() {
        let a = FRange {
            lo: -1.0,
            hi: 1.0,
            nan: false,
        };
        let b = FRange {
            lo: f64::INFINITY,
            hi: f64::INFINITY,
            nan: false,
        };
        assert!(float_bin(BinOp::FMul, a, b).nan);
    }

    #[test]
    fn always_true_compare_is_constant_one() {
        let m = compile(
            "fn main(x: int) { let a = x & 15; if (a < 100) { output 1; } else { output 2; } }",
        );
        let f = m.entry_func();
        let facts = analyze_values::<AbsRange>(f, &Cfg::new(f));
        let icmp = f.instrs().find(|i| i.op.mnemonic() == "icmp").unwrap();
        let r = facts.values[icmp.result.unwrap().0 as usize];
        assert_eq!(r.int().unwrap().as_const(), Some(1), "{r:?}");
    }

    #[test]
    fn fptosi_saturates_and_handles_nan() {
        let r = AbsRange::transfer(
            &Op::Cast {
                kind: CastKind::FpToSi,
                a: Operand::f64(0.0),
                to: Ty::I64,
            },
            Ty::I64,
            &[AbsRange::Float(FRange {
                lo: -1e300,
                hi: 5.9,
                nan: true,
            })],
            &[Ty::F64],
        );
        let ir = r.int().unwrap();
        assert_eq!(ir.lo, i64::MIN);
        assert_eq!(ir.hi, 5);
        assert!(ir.contains(0), "NaN -> 0 must be included");
    }
}

//! The optimizer's bit-identity gate (CI must-not-skip).
//!
//! Every benchmark module, optimized at O1 and O2, must produce the
//! exact same observables as the unoptimized module — output stream,
//! return value, and status, bit for bit — on both execution engines,
//! at the reference input and at a deterministic spread of other
//! in-range inputs. This is the acceptance criterion of the rewrite
//! engine: the fault *space* may change across opt levels, golden-run
//! behaviour may not.

use peppa_analysis::rewrite::{optimize, OptLevel};
use peppa_apps::{all_benchmarks, Benchmark};
use peppa_ir::Module;
use peppa_vm::{CompiledModule, Engine, ExecLimits, RunOutput};

fn limits() -> ExecLimits {
    ExecLimits {
        max_dynamic: 50_000_000,
        ..ExecLimits::default()
    }
}

/// Runs on both engines and asserts they agree with each other (the
/// pre-existing engine differential), returning the interp result.
fn run_both(m: &Module, inputs: &[f64], what: &str) -> RunOutput {
    let interp = Engine::interp(m, limits()).run_numeric(inputs, None);
    let lowered = CompiledModule::lower(m);
    let compiled = Engine::new(m, limits(), Some(&lowered)).run_numeric(inputs, None);
    assert_eq!(
        interp.status, compiled.status,
        "{what}: engine status split"
    );
    assert_eq!(
        interp.output, compiled.output,
        "{what}: engine output split"
    );
    assert_eq!(interp.ret, compiled.ret, "{what}: engine ret split");
    interp
}

/// A deterministic spread of in-range inputs around the reference.
fn probe_inputs(b: &Benchmark) -> Vec<Vec<f64>> {
    let mut probes = vec![b.reference_input.clone()];
    // Each arg pinned to its range corners and small-window corners.
    for scale in [0.0f64, 1.0] {
        let v: Vec<f64> = b
            .args
            .iter()
            .map(|a| a.clamp(a.lo + scale * (a.hi - a.lo)))
            .collect();
        probes.push(v);
    }
    let small: Vec<f64> = b.args.iter().map(|a| a.clamp(a.small.0)).collect();
    probes.push(small);
    // A mid-range point, nudged per-arg so args differ.
    let mid: Vec<f64> = b
        .args
        .iter()
        .enumerate()
        .map(|(i, a)| a.clamp(a.lo + (a.hi - a.lo) * (0.3 + 0.1 * (i % 5) as f64)))
        .collect();
    probes.push(mid);
    probes
}

#[test]
fn benchmarks_bit_identical_across_opt_levels_and_engines() {
    for b in all_benchmarks() {
        for level in [OptLevel::O1, OptLevel::O2] {
            // optimize() verifies the output module and panics on any
            // broken invariant.
            let opt = optimize(&b.module, level);
            assert!(
                opt.module.num_instrs <= b.module.num_instrs,
                "{}@{level}: optimizer grew the module",
                b.name
            );
            assert_eq!(
                opt.provenance.len(),
                opt.module.num_instrs,
                "{}@{level}: provenance arity",
                b.name
            );
            for (i, inputs) in probe_inputs(&b).iter().enumerate() {
                let what = format!("{} probe {i} at {level}", b.name);
                let base = run_both(&b.module, inputs, &format!("{what} (O0)"));
                let tuned = run_both(&opt.module, inputs, &what);
                assert_eq!(base.status, tuned.status, "{what}: status changed");
                assert_eq!(base.output, tuned.output, "{what}: output changed");
                assert_eq!(base.ret, tuned.ret, "{what}: ret changed");
                // LICM may execute a handful of hoisted instructions
                // for loops that run zero iterations; allow that slack
                // but catch any real regression.
                assert!(
                    tuned.profile.dynamic <= base.profile.dynamic + 64,
                    "{what}: dynamic instrs grew ({} -> {})",
                    base.profile.dynamic,
                    tuned.profile.dynamic
                );
            }
        }
    }
}

/// Not a gate (optstudy is) — a quick console report of the per-bench
/// dynamic-instruction reduction: `cargo test -p peppa-analysis --test
/// opt_differential report_dynamic_reduction -- --ignored --nocapture`.
#[test]
#[ignore]
fn report_dynamic_reduction() {
    let mut geo = 0.0;
    let mut n = 0;
    for b in all_benchmarks() {
        let opt = optimize(&b.module, OptLevel::O2);
        let base = Engine::interp(&b.module, limits()).run_numeric(&b.reference_input, None);
        let tuned = Engine::interp(&opt.module, limits()).run_numeric(&b.reference_input, None);
        let red = 1.0 - tuned.profile.dynamic as f64 / base.profile.dynamic as f64;
        if std::env::var("PEPPA_OPT_STATS").is_ok() {
            print!("{}", peppa_analysis::rewrite::render_stats(&opt.stats));
        }
        geo += (1.0 - red).ln();
        n += 1;
        println!(
            "{:<16} static {:>5} -> {:>5}  dynamic {:>12} -> {:>12}  ({:.1}% fewer)",
            b.name,
            b.module.num_instrs,
            opt.module.num_instrs,
            base.profile.dynamic,
            tuned.profile.dynamic,
            red * 100.0
        );
    }
    println!(
        "geomean reduction: {:.1}%",
        (1.0 - (geo / n as f64).exp()) * 100.0
    );
}

#[test]
fn optimized_benchmarks_round_trip_through_printer() {
    for b in all_benchmarks() {
        let opt = optimize(&b.module, OptLevel::O2).module;
        let text = opt.to_string();
        let reparsed = peppa_ir::parse_module(&text)
            .unwrap_or_else(|e| panic!("{}@O2 failed to re-parse: {e}", b.name));
        assert_eq!(reparsed, opt, "{}: O2 module round-trip mismatch", b.name);
    }
}

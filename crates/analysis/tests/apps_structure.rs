//! Structural checks of the static analyses over the real benchmark
//! modules (the same modules the experiments run on).

use peppa_analysis::{defuse::def_use, prune_fi_space};
use peppa_ir::OpClass;

#[test]
fn pruning_ratios_land_in_table4_band() {
    // Paper's Table 4: 25.49%..58.69%, average 49.32%. Our kernels are
    // smaller, so accept a wider band, but every kernel must prune a
    // nontrivial fraction and the average must be substantial.
    let mut sum = 0.0;
    let benches = peppa_apps::all_benchmarks();
    for b in &benches {
        let p = prune_fi_space(&b.module);
        let r = p.pruning_ratio();
        assert!(r > 0.10, "{}: pruning ratio only {:.1}%", b.name, r * 100.0);
        assert!(
            r < 0.90,
            "{}: pruning ratio implausibly high {:.1}%",
            b.name,
            r * 100.0
        );
        sum += r;
    }
    let avg = sum / benches.len() as f64;
    assert!(
        avg > 0.25 && avg < 0.75,
        "average pruning ratio {:.1}%",
        avg * 100.0
    );
}

#[test]
fn subgroups_never_mix_boundary_and_plain_instructions() {
    for b in peppa_apps::all_benchmarks() {
        let p = prune_fi_space(&b.module);
        let instrs = b.module.all_instrs();
        for g in &p.groups {
            let boundary_members = g
                .iter()
                .filter(|s| instrs[s.0 as usize].1.op.is_group_boundary())
                .count();
            if boundary_members > 0 {
                assert_eq!(
                    g.len(),
                    1,
                    "{}: boundary instruction grouped with others: {:?}",
                    b.name,
                    g
                );
            }
        }
    }
}

#[test]
fn compare_instructions_are_singletons() {
    // The Figure 4 rule in force on real code: every icmp/fcmp is
    // measured on its own.
    for b in peppa_apps::all_benchmarks() {
        let p = prune_fi_space(&b.module);
        for (_, ins) in b.module.all_instrs() {
            if ins.op.class() == OpClass::Compare {
                let gid = p.group_of[ins.sid.0 as usize]
                    .unwrap_or_else(|| panic!("{}: unmeasured compare", b.name));
                assert_eq!(p.groups[gid as usize].len(), 1, "{}", b.name);
            }
        }
    }
}

#[test]
fn def_use_graphs_are_substantial_and_symmetric() {
    for b in peppa_apps::all_benchmarks() {
        let du = def_use(&b.module);
        let edge_count: usize = du.adj.iter().map(|n| n.len()).sum::<usize>() / 2;
        assert!(
            edge_count >= b.module.num_instrs / 2,
            "{}: suspiciously sparse def-use graph ({} edges for {} instrs)",
            b.name,
            edge_count,
            b.module.num_instrs
        );
        for (s, ns) in du.adj.iter().enumerate() {
            for &t in ns {
                assert!(
                    du.adj[t as usize].contains(&(s as u32)),
                    "{}: asymmetric edge {s}->{t}",
                    b.name
                );
            }
        }
    }
}

#[test]
fn outputs_are_dataflow_connected_to_computation() {
    // Every benchmark's `output` instructions must sit in the def-use
    // graph (they consume computed values) — guards against kernels
    // whose observables are disconnected from the computation.
    for b in peppa_apps::all_benchmarks() {
        let du = def_use(&b.module);
        let mut outputs = 0;
        let mut connected = 0;
        for (_, ins) in b.module.all_instrs() {
            if ins.op.mnemonic() == "output" {
                outputs += 1;
                if !du.adj[ins.sid.0 as usize].is_empty() {
                    connected += 1;
                }
            }
        }
        assert!(outputs > 0, "{}: no outputs", b.name);
        assert_eq!(connected, outputs, "{}: disconnected output", b.name);
    }
}

//! Soundness of the abstract domains against the concrete interpreter.
//!
//! For every bundled MiniC benchmark, run the VM on random inputs with a
//! hook observing each value definition, and assert the concrete bits are
//! contained in the static known-bits and interval abstractions computed
//! for that instruction's result. Any failure here means a transfer
//! function in `knownbits.rs` or `range.rs` claims more than the VM
//! delivers — exactly the bug class that would silently skew the
//! masking predictor.

use peppa_analysis::{analyze_values, AbsRange, Cfg, KnownBits, ValueFacts};
use peppa_apps::{all_benchmarks, Benchmark};
use peppa_ir::{Instr, Ty};
use peppa_vm::{encode_inputs, CompiledModule, Engine, ExecHook, ExecLimits, Vm};
use proptest::prelude::*;
use proptest::TestRng;
use std::sync::OnceLock;

struct BenchFacts {
    bench: Benchmark,
    kb: Vec<ValueFacts<KnownBits>>,
    rg: Vec<ValueFacts<AbsRange>>,
    /// `by_sid[sid]`: (function index, result value index, result type)
    /// for value-producing instructions.
    by_sid: Vec<Option<(usize, u32, Ty)>>,
}

fn facts() -> &'static Vec<BenchFacts> {
    static FACTS: OnceLock<Vec<BenchFacts>> = OnceLock::new();
    FACTS.get_or_init(|| {
        all_benchmarks()
            .into_iter()
            .map(|bench| {
                let m = &bench.module;
                let mut kb = Vec::new();
                let mut rg = Vec::new();
                let mut by_sid = vec![None; m.num_instrs];
                for (fi, f) in m.functions.iter().enumerate() {
                    let cfg = Cfg::new(f);
                    kb.push(analyze_values::<KnownBits>(f, &cfg));
                    rg.push(analyze_values::<AbsRange>(f, &cfg));
                    for ins in f.instrs() {
                        if let Some(r) = ins.result {
                            by_sid[ins.sid.0 as usize] = Some((fi, r.0, f.ty_of(r)));
                        }
                    }
                }
                BenchFacts {
                    bench,
                    kb,
                    rg,
                    by_sid,
                }
            })
            .collect()
    })
}

struct SoundnessHook<'a> {
    f: &'a BenchFacts,
    checked: u64,
    failures: Vec<String>,
}

impl ExecHook for SoundnessHook<'_> {
    const ENABLED: bool = true;

    fn def_value(&mut self, ins: &Instr, bits: u64) {
        let Some((fi, v, ty)) = self.f.by_sid[ins.sid.0 as usize] else {
            return;
        };
        self.checked += 1;
        if self.failures.len() >= 3 {
            return;
        }
        let kb = &self.f.kb[fi].values[v as usize];
        if !kb.contains(bits) {
            self.failures.push(format!(
                "{}: sid {} ({}): bits {bits:#x} violate known-bits zeros={:#x} ones={:#x}",
                self.f.bench.name,
                ins.sid.0,
                ins.op.mnemonic(),
                kb.zeros,
                kb.ones,
            ));
        }
        let rg = &self.f.rg[fi].values[v as usize];
        if !rg.contains_bits(ty, bits) {
            self.failures.push(format!(
                "{}: sid {} ({}): bits {bits:#x} (ty {ty}) outside range {rg:?}",
                self.f.bench.name,
                ins.sid.0,
                ins.op.mnemonic(),
            ));
        }
    }
}

/// Limits small enough to keep hundreds of runs fast; a `Hang` status
/// just truncates the run — every def executed before the cutoff was
/// still checked.
fn limits() -> ExecLimits {
    ExecLimits {
        max_dynamic: 2_000_000,
        ..ExecLimits::default()
    }
}

/// Runs `bench` on `inputs` with the soundness hook; returns
/// (defs checked, failure messages).
fn check_run(bf: &BenchFacts, inputs: &[f64]) -> (u64, Vec<String>) {
    let bits = encode_inputs(bf.bench.module.entry_func(), inputs);
    let vm = Vm::new(&bf.bench.module, limits());
    let mut hook = SoundnessHook {
        f: bf,
        checked: 0,
        failures: Vec::new(),
    };
    vm.run_with_hook(&bits, None, &mut hook);
    (hook.checked, hook.failures)
}

/// One lowered bytecode module per benchmark, shared across cases.
fn compiled() -> &'static Vec<CompiledModule> {
    static CODE: OnceLock<Vec<CompiledModule>> = OnceLock::new();
    CODE.get_or_init(|| {
        facts()
            .iter()
            .map(|bf| CompiledModule::lower(&bf.bench.module))
            .collect()
    })
}

/// [`check_run`] on the compiled (threaded-bytecode) engine, so the
/// static abstractions are validated against both backends' concrete
/// semantics — a lowering bug that changed any defined value would
/// surface here even if it kept outputs intact.
fn check_run_compiled(
    bf: &BenchFacts,
    code: &CompiledModule,
    inputs: &[f64],
) -> (u64, Vec<String>) {
    let bits = encode_inputs(bf.bench.module.entry_func(), inputs);
    let eng = Engine::new(&bf.bench.module, limits(), Some(code));
    let mut hook = SoundnessHook {
        f: bf,
        checked: 0,
        failures: Vec::new(),
    };
    eng.run_with_hook(&bits, None, &mut hook);
    (hook.checked, hook.failures)
}

/// Random input within the benchmark's *small* workload window (§4.2.1's
/// light-workload corner), so each run stays well under the dynamic
/// budget while still exercising every kernel.
fn sample_inputs(bench: &Benchmark, rng: &mut TestRng) -> Vec<f64> {
    bench
        .args
        .iter()
        .map(|a| {
            let (lo, hi) = a.small;
            a.clamp(lo + rng.unit_f64() * (hi - lo))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concrete_defs_are_contained_in_abstractions(seed in any::<u64>()) {
        let mut rng = TestRng::new(&format!("soundness-{seed}"));
        for bf in facts() {
            let inputs = sample_inputs(&bf.bench, &mut rng);
            let (checked, failures) = check_run(bf, &inputs);
            prop_assert!(checked > 0, "{}: no defs executed", bf.bench.name);
            prop_assert!(
                failures.is_empty(),
                "{}: inputs {:?}: {}",
                bf.bench.name,
                inputs,
                failures.join("; ")
            );
        }
    }
}

/// Records every dynamic last-writer relation: on a load, the store
/// that most recently wrote the loaded word (if any) forms a
/// `store sid → load sid` pair the static memory-dependence graph must
/// cover.
#[derive(Default)]
struct MemPairHook {
    last_writer: std::collections::HashMap<u64, u32>,
    pairs: std::collections::HashSet<(u32, u32)>,
}

impl ExecHook for MemPairHook {
    const ENABLED: bool = true;

    fn mem_store(&mut self, ins: &Instr, addr: u64, _bits: u64) {
        self.last_writer.insert(addr, ins.sid.0);
    }

    fn mem_load(&mut self, ins: &Instr, addr: u64, _bits: u64) {
        if let Some(&store) = self.last_writer.get(&addr) {
            self.pairs.insert((store, ins.sid.0));
        }
    }
}

fn memdep_graphs() -> &'static Vec<peppa_analysis::MemDepGraph> {
    static GRAPHS: OnceLock<Vec<peppa_analysis::MemDepGraph>> = OnceLock::new();
    GRAPHS.get_or_init(|| {
        all_benchmarks()
            .iter()
            .map(|b| peppa_analysis::MemDepGraph::new(&b.module))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every store→load pair the VM actually executes must be an edge of
    /// the static [`MemDepGraph`] — the may-alias over-approximation the
    /// fault-propagation analysis and the memory lints rely on.
    #[test]
    fn dynamic_store_load_pairs_are_covered(seed in any::<u64>()) {
        let mut rng = TestRng::new(&format!("memdep-{seed}"));
        for (bf, g) in facts().iter().zip(memdep_graphs()) {
            let inputs = sample_inputs(&bf.bench, &mut rng);
            let bits = encode_inputs(bf.bench.module.entry_func(), &inputs);
            let vm = Vm::new(&bf.bench.module, limits());
            let mut hook = MemPairHook::default();
            vm.run_with_hook(&bits, None, &mut hook);
            prop_assert!(
                !hook.pairs.is_empty(),
                "{}: no store→load pairs observed",
                bf.bench.name
            );
            for &(s, l) in &hook.pairs {
                prop_assert!(
                    g.covers(peppa_ir::InstrId(s), peppa_ir::InstrId(l)),
                    "{}: dynamic store sid {s} → load sid {l} missing from MemDepGraph",
                    bf.bench.name
                );
            }
        }
    }
}

#[test]
fn reference_inputs_are_sound() {
    for bf in facts() {
        let inputs = bf.bench.reference_input.clone();
        let (checked, failures) = check_run(bf, &inputs);
        assert!(checked > 0, "{}: no defs executed", bf.bench.name);
        assert!(
            failures.is_empty(),
            "{}: reference input: {}",
            bf.bench.name,
            failures.join("; ")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same containment law on the compiled engine, plus agreement
    /// with the interpreter on how many defs were checked — the def
    /// streams are contractually bit-identical, so a count mismatch
    /// means the engines diverged before any abstraction was violated.
    #[test]
    fn compiled_engine_defs_are_contained_and_match_interp(seed in any::<u64>()) {
        let mut rng = TestRng::new(&format!("soundness-compiled-{seed}"));
        for (bf, code) in facts().iter().zip(compiled()) {
            let inputs = sample_inputs(&bf.bench, &mut rng);
            let (ic, ifail) = check_run(bf, &inputs);
            let (cc, cfail) = check_run_compiled(bf, code, &inputs);
            prop_assert!(cc > 0, "{}: no defs executed on compiled engine", bf.bench.name);
            prop_assert_eq!(
                ic, cc,
                "{}: engines checked different def counts on {:?}",
                bf.bench.name, inputs
            );
            prop_assert!(ifail.is_empty(), "{}: {}", bf.bench.name, ifail.join("; "));
            prop_assert!(cfail.is_empty(), "{}: compiled: {}", bf.bench.name, cfail.join("; "));
        }
    }
}

#[test]
fn reference_inputs_are_sound_on_compiled_engine() {
    for (bf, code) in facts().iter().zip(compiled()) {
        let (checked, failures) = check_run_compiled(bf, code, &bf.bench.reference_input);
        assert!(checked > 0, "{}: no defs executed", bf.bench.name);
        assert!(
            failures.is_empty(),
            "{}: reference input (compiled): {}",
            bf.bench.name,
            failures.join("; ")
        );
    }
}

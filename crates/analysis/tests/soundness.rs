//! Soundness of the abstract domains against the concrete interpreter.
//!
//! For every bundled MiniC benchmark, run the VM on random inputs with a
//! hook observing each value definition, and assert the concrete bits are
//! contained in the static known-bits and interval abstractions computed
//! for that instruction's result. Any failure here means a transfer
//! function in `knownbits.rs` or `range.rs` claims more than the VM
//! delivers — exactly the bug class that would silently skew the
//! masking predictor.

use peppa_analysis::{analyze_values, AbsRange, Cfg, KnownBits, ValueFacts};
use peppa_apps::{all_benchmarks, Benchmark};
use peppa_ir::{Instr, Ty};
use peppa_vm::{encode_inputs, CompiledModule, Engine, ExecHook, ExecLimits, Vm};
use proptest::prelude::*;
use proptest::TestRng;
use std::sync::OnceLock;

struct BenchFacts {
    bench: Benchmark,
    kb: Vec<ValueFacts<KnownBits>>,
    rg: Vec<ValueFacts<AbsRange>>,
    /// `by_sid[sid]`: (function index, result value index, result type)
    /// for value-producing instructions.
    by_sid: Vec<Option<(usize, u32, Ty)>>,
}

fn facts() -> &'static Vec<BenchFacts> {
    static FACTS: OnceLock<Vec<BenchFacts>> = OnceLock::new();
    FACTS.get_or_init(|| {
        all_benchmarks()
            .into_iter()
            .map(|bench| {
                let m = &bench.module;
                let mut kb = Vec::new();
                let mut rg = Vec::new();
                let mut by_sid = vec![None; m.num_instrs];
                for (fi, f) in m.functions.iter().enumerate() {
                    let cfg = Cfg::new(f);
                    kb.push(analyze_values::<KnownBits>(f, &cfg));
                    rg.push(analyze_values::<AbsRange>(f, &cfg));
                    for ins in f.instrs() {
                        if let Some(r) = ins.result {
                            by_sid[ins.sid.0 as usize] = Some((fi, r.0, f.ty_of(r)));
                        }
                    }
                }
                BenchFacts {
                    bench,
                    kb,
                    rg,
                    by_sid,
                }
            })
            .collect()
    })
}

struct SoundnessHook<'a> {
    f: &'a BenchFacts,
    checked: u64,
    failures: Vec<String>,
}

impl ExecHook for SoundnessHook<'_> {
    const ENABLED: bool = true;

    fn def_value(&mut self, ins: &Instr, bits: u64) {
        let Some((fi, v, ty)) = self.f.by_sid[ins.sid.0 as usize] else {
            return;
        };
        self.checked += 1;
        if self.failures.len() >= 3 {
            return;
        }
        let kb = &self.f.kb[fi].values[v as usize];
        if !kb.contains(bits) {
            self.failures.push(format!(
                "{}: sid {} ({}): bits {bits:#x} violate known-bits zeros={:#x} ones={:#x}",
                self.f.bench.name,
                ins.sid.0,
                ins.op.mnemonic(),
                kb.zeros,
                kb.ones,
            ));
        }
        let rg = &self.f.rg[fi].values[v as usize];
        if !rg.contains_bits(ty, bits) {
            self.failures.push(format!(
                "{}: sid {} ({}): bits {bits:#x} (ty {ty}) outside range {rg:?}",
                self.f.bench.name,
                ins.sid.0,
                ins.op.mnemonic(),
            ));
        }
    }
}

/// Limits small enough to keep hundreds of runs fast; a `Hang` status
/// just truncates the run — every def executed before the cutoff was
/// still checked.
fn limits() -> ExecLimits {
    ExecLimits {
        max_dynamic: 2_000_000,
        ..ExecLimits::default()
    }
}

/// Runs `bench` on `inputs` with the soundness hook; returns
/// (defs checked, failure messages).
fn check_run(bf: &BenchFacts, inputs: &[f64]) -> (u64, Vec<String>) {
    let bits = encode_inputs(bf.bench.module.entry_func(), inputs);
    let vm = Vm::new(&bf.bench.module, limits());
    let mut hook = SoundnessHook {
        f: bf,
        checked: 0,
        failures: Vec::new(),
    };
    vm.run_with_hook(&bits, None, &mut hook);
    (hook.checked, hook.failures)
}

/// One lowered bytecode module per benchmark, shared across cases.
fn compiled() -> &'static Vec<CompiledModule> {
    static CODE: OnceLock<Vec<CompiledModule>> = OnceLock::new();
    CODE.get_or_init(|| {
        facts()
            .iter()
            .map(|bf| CompiledModule::lower(&bf.bench.module))
            .collect()
    })
}

/// [`check_run`] on the compiled (threaded-bytecode) engine, so the
/// static abstractions are validated against both backends' concrete
/// semantics — a lowering bug that changed any defined value would
/// surface here even if it kept outputs intact.
fn check_run_compiled(
    bf: &BenchFacts,
    code: &CompiledModule,
    inputs: &[f64],
) -> (u64, Vec<String>) {
    let bits = encode_inputs(bf.bench.module.entry_func(), inputs);
    let eng = Engine::new(&bf.bench.module, limits(), Some(code));
    let mut hook = SoundnessHook {
        f: bf,
        checked: 0,
        failures: Vec::new(),
    };
    eng.run_with_hook(&bits, None, &mut hook);
    (hook.checked, hook.failures)
}

/// Random input within the benchmark's *small* workload window (§4.2.1's
/// light-workload corner), so each run stays well under the dynamic
/// budget while still exercising every kernel.
fn sample_inputs(bench: &Benchmark, rng: &mut TestRng) -> Vec<f64> {
    bench
        .args
        .iter()
        .map(|a| {
            let (lo, hi) = a.small;
            a.clamp(lo + rng.unit_f64() * (hi - lo))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn concrete_defs_are_contained_in_abstractions(seed in any::<u64>()) {
        let mut rng = TestRng::new(&format!("soundness-{seed}"));
        for bf in facts() {
            let inputs = sample_inputs(&bf.bench, &mut rng);
            let (checked, failures) = check_run(bf, &inputs);
            prop_assert!(checked > 0, "{}: no defs executed", bf.bench.name);
            prop_assert!(
                failures.is_empty(),
                "{}: inputs {:?}: {}",
                bf.bench.name,
                inputs,
                failures.join("; ")
            );
        }
    }
}

/// Records every dynamic last-writer relation: on a load, the store
/// that most recently wrote the loaded word (if any) forms a
/// `store sid → load sid` pair the static memory-dependence graph must
/// cover.
#[derive(Default)]
struct MemPairHook {
    last_writer: std::collections::HashMap<u64, u32>,
    pairs: std::collections::HashSet<(u32, u32)>,
}

impl ExecHook for MemPairHook {
    const ENABLED: bool = true;

    fn mem_store(&mut self, ins: &Instr, addr: u64, _bits: u64) {
        self.last_writer.insert(addr, ins.sid.0);
    }

    fn mem_load(&mut self, ins: &Instr, addr: u64, _bits: u64) {
        if let Some(&store) = self.last_writer.get(&addr) {
            self.pairs.insert((store, ins.sid.0));
        }
    }
}

fn memdep_graphs() -> &'static Vec<peppa_analysis::MemDepGraph> {
    static GRAPHS: OnceLock<Vec<peppa_analysis::MemDepGraph>> = OnceLock::new();
    GRAPHS.get_or_init(|| {
        all_benchmarks()
            .iter()
            .map(|b| peppa_analysis::MemDepGraph::new(&b.module))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every store→load pair the VM actually executes must be an edge of
    /// the static [`MemDepGraph`] — the may-alias over-approximation the
    /// fault-propagation analysis and the memory lints rely on.
    #[test]
    fn dynamic_store_load_pairs_are_covered(seed in any::<u64>()) {
        let mut rng = TestRng::new(&format!("memdep-{seed}"));
        for (bf, g) in facts().iter().zip(memdep_graphs()) {
            let inputs = sample_inputs(&bf.bench, &mut rng);
            let bits = encode_inputs(bf.bench.module.entry_func(), &inputs);
            let vm = Vm::new(&bf.bench.module, limits());
            let mut hook = MemPairHook::default();
            vm.run_with_hook(&bits, None, &mut hook);
            prop_assert!(
                !hook.pairs.is_empty(),
                "{}: no store→load pairs observed",
                bf.bench.name
            );
            for &(s, l) in &hook.pairs {
                prop_assert!(
                    g.covers(peppa_ir::InstrId(s), peppa_ir::InstrId(l)),
                    "{}: dynamic store sid {s} → load sid {l} missing from MemDepGraph",
                    bf.bench.name
                );
            }
        }
    }
}

#[test]
fn reference_inputs_are_sound() {
    for bf in facts() {
        let inputs = bf.bench.reference_input.clone();
        let (checked, failures) = check_run(bf, &inputs);
        assert!(checked > 0, "{}: no defs executed", bf.bench.name);
        assert!(
            failures.is_empty(),
            "{}: reference input: {}",
            bf.bench.name,
            failures.join("; ")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The same containment law on the compiled engine, plus agreement
    /// with the interpreter on how many defs were checked — the def
    /// streams are contractually bit-identical, so a count mismatch
    /// means the engines diverged before any abstraction was violated.
    #[test]
    fn compiled_engine_defs_are_contained_and_match_interp(seed in any::<u64>()) {
        let mut rng = TestRng::new(&format!("soundness-compiled-{seed}"));
        for (bf, code) in facts().iter().zip(compiled()) {
            let inputs = sample_inputs(&bf.bench, &mut rng);
            let (ic, ifail) = check_run(bf, &inputs);
            let (cc, cfail) = check_run_compiled(bf, code, &inputs);
            prop_assert!(cc > 0, "{}: no defs executed on compiled engine", bf.bench.name);
            prop_assert_eq!(
                ic, cc,
                "{}: engines checked different def counts on {:?}",
                bf.bench.name, inputs
            );
            prop_assert!(ifail.is_empty(), "{}: {}", bf.bench.name, ifail.join("; "));
            prop_assert!(cfail.is_empty(), "{}: compiled: {}", bf.bench.name, cfail.join("; "));
        }
    }
}

#[test]
fn reference_inputs_are_sound_on_compiled_engine() {
    for (bf, code) in facts().iter().zip(compiled()) {
        let (checked, failures) = check_run_compiled(bf, code, &bf.bench.reference_input);
        assert!(checked > 0, "{}: no defs executed", bf.bench.name);
        assert!(
            failures.is_empty(),
            "{}: reference input (compiled): {}",
            bf.bench.name,
            failures.join("; ")
        );
    }
}

// ---------------------------------------------------------------------------
// Randomized multi-function module soundness
//
// The bundled benchmarks exercise a fixed set of interprocedural shapes.
// This section *generates* MiniC modules — bounded loops, masked global-
// array indices, a call DAG with recursion, const-arg call sites (the k=1
// specialization trigger), int and float chains — and checks, per module:
//
//  (a) every concrete def on the golden run is contained in the
//      *interprocedural* known-bits and interval abstractions
//      ([`analyze_module_interproc`]), on both engines;
//  (b) injecting faults into cells the union table (per-bit reachability
//      ∪ input-specific deviation) claims masked leaves the run Benign —
//      status Ok and bit-identical outputs, the same classification the
//      campaign layer uses — on both engines.
//
// `PEPPA_SOUNDNESS_MODULES` scales the module count (CI sets 200+); the
// default keeps the local run fast. Generation is a pure function of the
// module index, so any failure names a reproducible seed.
// ---------------------------------------------------------------------------

use peppa_analysis::deviation::combined_skip_cells;
use peppa_analysis::{analyze_module_interproc, CallGraph, FaultReach, InterprocFacts};
use peppa_ir::Module;
use peppa_vm::Injection;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Gen {
    s: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            s: seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
        }
    }
    fn below(&mut self, n: u64) -> u64 {
        splitmix(&mut self.s) % n
    }

    /// Random int expression over `vars`, trap-free by construction:
    /// `%` only by positive literals, shifts only by small literals,
    /// no division (SDiv's `MIN / -1` corner stays out of reach).
    fn int_expr(&mut self, depth: u32, vars: &[&str]) -> String {
        if depth == 0 || self.below(4) == 0 {
            return if self.below(2) == 0 {
                vars[self.below(vars.len() as u64) as usize].to_string()
            } else {
                format!("{}", self.below(1000))
            };
        }
        let a = self.int_expr(depth - 1, vars);
        let b = self.int_expr(depth - 1, vars);
        match self.below(9) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} & {b})"),
            4 => format!("({a} | {b})"),
            5 => format!("({a} ^ {b})"),
            6 => format!("({a} % {})", [17u64, 97, 257, 4099][self.below(4) as usize]),
            7 => format!("({a} >> {})", 1 + self.below(7)),
            _ => format!("min({a}, {b})"),
        }
    }

    /// Random float expression; division only by nonzero literals.
    fn float_expr(&mut self, depth: u32, vars: &[&str]) -> String {
        if depth == 0 || self.below(4) == 0 {
            return if self.below(2) == 0 {
                vars[self.below(vars.len() as u64) as usize].to_string()
            } else {
                format!("{:.3}", self.below(4000) as f64 * 0.001)
            };
        }
        let a = self.float_expr(depth - 1, vars);
        let b = self.float_expr(depth - 1, vars);
        match self.below(6) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} / {})", ["2.0", "4.0", "1.5"][self.below(3) as usize]),
            4 => format!("fmax({a}, {b})"),
            _ => format!("fmin({a}, {b})"),
        }
    }
}

/// Generates one random multi-function MiniC module and the input it
/// will be run on. Deterministic in `seed`.
fn gen_module_source(seed: u64) -> (String, Vec<f64>) {
    let mut g = Gen::new(seed);
    let l1 = 3 + g.below(8);
    let l2 = 2 + g.below(6);
    let rec_depth = 2 + g.below(5);
    let c1 = g.below(64);
    let c2 = g.below(64);
    // Half the modules call `mix` with a literal second argument inside
    // the hot loop: that site plus `mix(c1, c2)` below are the k=1
    // specialization candidates.
    let loop_arg = if g.below(2) == 0 {
        format!("{}", g.below(64))
    } else {
        "b".to_string()
    };
    let mix_t = g.int_expr(2, &["a", "b"]);
    let mix_early = g.int_expr(1, &["a", "b", "t"]);
    let mix_ret = g.int_expr(2, &["a", "b", "t"]);
    let rec_step = g.int_expr(1, &["acc", "k"]);
    let blend = g.float_expr(2, &["u", "v"]);
    let flit = format!("{:.3}", g.below(2000) as f64 * 0.001);
    let flit2 = format!("{:.3}", 1.0 + g.below(1000) as f64 * 0.001);
    let src = format!(
        "global int gi[16];\n\
         global float gf[16];\n\
         \n\
         fn mix(a: int, b: int) -> int {{\n\
             let t = {mix_t};\n\
             if (t < 0) {{ return {mix_early}; }}\n\
             return {mix_ret};\n\
         }}\n\
         \n\
         fn rec(k: int, acc: int) -> int {{\n\
             if (k <= 0) {{ return acc; }}\n\
             return rec(k - 1, {rec_step});\n\
         }}\n\
         \n\
         fn blend(u: float, v: float) -> float {{\n\
             return {blend};\n\
         }}\n\
         \n\
         fn main(a: int, b: int, x: float) {{\n\
             let s = a * 2654435761 + b;\n\
             for (i = 0; i < {l1}; i = i + 1) {{\n\
                 s = mix(s, {loop_arg});\n\
                 gi[i & 15] = s;\n\
                 gf[i & 15] = blend(x, i2f(i & 7)) + {flit};\n\
             }}\n\
             let t = 0;\n\
             let acc = 0.0;\n\
             for (i = 0; i < {l2}; i = i + 1) {{\n\
                 t = t + (gi[(i * 3) & 15] % 509);\n\
                 acc = acc + gf[i & 15] * {flit2};\n\
             }}\n\
             output t;\n\
             output acc;\n\
             output rec({rec_depth}, s & 255);\n\
             output mix({c1}, {c2});\n\
         }}\n"
    );
    let inputs = vec![
        g.below(40) as f64,
        g.below(50) as f64,
        0.25 + g.below(8) as f64 * 0.5,
    ];
    (src, inputs)
}

/// Per-def containment check against the *interprocedural* facts.
struct InterprocHook<'a> {
    kb: &'a InterprocFacts<KnownBits>,
    rg: &'a InterprocFacts<AbsRange>,
    by_sid: &'a [Option<(usize, u32, Ty)>],
    checked: u64,
    failures: Vec<String>,
}

impl ExecHook for InterprocHook<'_> {
    const ENABLED: bool = true;

    fn def_value(&mut self, ins: &Instr, bits: u64) {
        let Some((fi, v, ty)) = self.by_sid[ins.sid.0 as usize] else {
            return;
        };
        self.checked += 1;
        if self.failures.len() >= 3 {
            return;
        }
        let kb = &self.kb.facts.per_func[fi].values[v as usize];
        if !kb.contains(bits) {
            self.failures.push(format!(
                "sid {} ({}): bits {bits:#x} violate interproc known-bits zeros={:#x} ones={:#x}",
                ins.sid.0,
                ins.op.mnemonic(),
                kb.zeros,
                kb.ones,
            ));
        }
        let rg = &self.rg.facts.per_func[fi].values[v as usize];
        if !rg.contains_bits(ty, bits) {
            self.failures.push(format!(
                "sid {} ({}): bits {bits:#x} (ty {ty}) outside interproc range {rg:?}",
                ins.sid.0,
                ins.op.mnemonic(),
            ));
        }
    }
}

fn by_sid_map(module: &Module) -> Vec<Option<(usize, u32, Ty)>> {
    let mut by_sid = vec![None; module.num_instrs];
    for (fi, f) in module.functions.iter().enumerate() {
        for ins in f.instrs() {
            if let Some(r) = ins.result {
                by_sid[ins.sid.0 as usize] = Some((fi, r.0, f.ty_of(r)));
            }
        }
    }
    by_sid
}

fn generated_module_count() -> u64 {
    std::env::var("PEPPA_SOUNDNESS_MODULES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24)
}

/// Checks one generated module on both engines; panics with the seed and
/// source on any violation.
fn check_generated(seed: u64) {
    let (src, inputs) = gen_module_source(seed);
    let module = peppa_lang::compile(&src, "generated")
        .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e:?}\n{src}"));
    let code = CompiledModule::lower(&module);
    let cg = CallGraph::new(&module);
    let kb = analyze_module_interproc::<KnownBits>(&module, &cg);
    let rg = analyze_module_interproc::<AbsRange>(&module, &cg);
    let by_sid = by_sid_map(&module);

    // (a) interprocedural abstraction containment, both engines.
    let bits = encode_inputs(module.entry_func(), &inputs);
    let mut counts = [0u64; 2];
    for (k, eng) in [
        Engine::interp(&module, limits()),
        Engine::new(&module, limits(), Some(&code)),
    ]
    .iter()
    .enumerate()
    {
        let mut hook = InterprocHook {
            kb: &kb,
            rg: &rg,
            by_sid: &by_sid,
            checked: 0,
            failures: Vec::new(),
        };
        eng.run_with_hook(&bits, None, &mut hook);
        assert!(
            hook.failures.is_empty(),
            "seed {seed} ({}): {}\n{src}",
            eng.kind().as_str(),
            hook.failures.join("; ")
        );
        assert!(hook.checked > 0, "seed {seed}: no defs executed\n{src}");
        counts[k] = hook.checked;
    }
    assert_eq!(
        counts[0], counts[1],
        "seed {seed}: engines checked different def counts\n{src}"
    );

    // (b) the union masked-cell table is benign under actual injection.
    let fr = FaultReach::analyze(&module);
    let cells = combined_skip_cells(&module, &fr, &inputs, limits(), 0);
    let interp = Engine::interp(&module, limits());
    let golden = interp.run_numeric(&inputs, None);
    assert!(
        golden.status.is_ok(),
        "seed {seed}: golden run failed\n{src}"
    );

    let mut pool: Vec<(u32, u32)> = Vec::new();
    for (sid, &mask) in cells.iter().enumerate() {
        if golden.profile.exec_counts[sid] == 0 {
            continue;
        }
        for bit in 0..64 {
            if mask >> bit & 1 != 0 {
                pool.push((sid as u32, bit));
            }
        }
    }
    let mut g = Gen::new(seed ^ 0xce11);
    let n = pool.len().min(6);
    let compiled_eng = Engine::new(&module, limits(), Some(&code));
    for k in 0..n {
        let (sid, bit) = pool[k * pool.len() / n];
        let instance = g.below(golden.profile.exec_counts[sid as usize]);
        let inj = Injection {
            target: peppa_vm::InjectionTarget::StaticInstance {
                sid: peppa_ir::InstrId(sid),
                instance,
            },
            bit,
            burst: 0,
        };
        for eng in [&interp, &compiled_eng] {
            let faulty = eng.run_numeric(&inputs, Some(inj));
            let benign =
                faulty.status.is_ok() && faulty.output == golden.output && faulty.ret == golden.ret;
            assert!(
                benign,
                "seed {seed} ({}): masked cell sid {sid} bit {bit} instance {instance} \
                 was not benign (status {:?})\n{src}",
                eng.kind().as_str(),
                faulty.status,
            );
        }
    }
}

#[test]
fn generated_modules_are_sound_interproc_and_under_injection() {
    for i in 0..generated_module_count() {
        check_generated(0x5eed_0000 + i);
    }
}

/// 4-way differential for the rewrite engine on one generated module:
/// {O0, O2} × {interp, compiled} must agree on status, output stream and
/// return value, bit for bit. The engine pair catches lowering bugs, the
/// opt-level pair catches unsound rewrites, and the cross terms catch
/// rewrites that only break one backend's lowering.
fn check_generated_across_opt_levels(seed: u64) {
    let (src, inputs) = gen_module_source(seed);
    let module = peppa_lang::compile(&src, "generated-opt")
        .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e:?}\n{src}"));
    let opt = peppa_analysis::optimize(&module, peppa_analysis::OptLevel::O2).module;
    let mut runs = Vec::new();
    for (label, m) in [("O0", &module), ("O2", &opt)] {
        let code = CompiledModule::lower(m);
        for (kind, eng) in [
            ("interp", Engine::interp(m, limits())),
            ("compiled", Engine::new(m, limits(), Some(&code))),
        ] {
            runs.push((label, kind, eng.run_numeric(&inputs, None)));
        }
    }
    let (l0, k0, base) = &runs[0];
    for (l, k, r) in &runs[1..] {
        assert_eq!(
            base.status, r.status,
            "seed {seed}: status split {l0}/{k0} vs {l}/{k}\n{src}"
        );
        assert_eq!(
            base.output, r.output,
            "seed {seed}: output split {l0}/{k0} vs {l}/{k}\n{src}"
        );
        assert_eq!(
            base.ret, r.ret,
            "seed {seed}: ret split {l0}/{k0} vs {l}/{k}\n{src}"
        );
    }
}

#[test]
fn generated_modules_agree_across_opt_levels_and_engines() {
    for i in 0..generated_module_count() {
        check_generated_across_opt_levels(0x0c0d_e000 + i);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The k=1 specialization containment law, property-tested over
    /// generated modules: a call-site summary specialized on literal
    /// const arguments must be contained in the context-insensitive
    /// base summary on *every* channel — constant refinement can only
    /// shrink transfers, never grow them. A violation would let a
    /// specialized site claim masking the general summary denies,
    /// which is exactly the unsoundness `ModuleSummaries::at_site`
    /// relies on never happening.
    #[test]
    fn specialized_summaries_are_contained_in_base(seed in any::<u32>()) {
        let (src, _) = gen_module_source(seed as u64);
        let module = peppa_lang::compile(&src, "spec-prop")
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e:?}\n{src}"));
        let cg = CallGraph::new(&module);
        let sums = peppa_analysis::ModuleSummaries::compute(&module, &cg);

        // Map call-site sid → callee for every call in the module.
        let mut callee_of = std::collections::HashMap::new();
        for f in &module.functions {
            for ins in f.instrs() {
                if let peppa_ir::Op::Call { func, .. } = &ins.op {
                    callee_of.insert(ins.sid.0, func.0 as usize);
                }
            }
        }

        for (&sid, spec) in &sums.spec {
            let callee = callee_of[&sid];
            let base = &sums.base[callee];
            for i in 0..spec.sink_bits.len() {
                prop_assert_eq!(
                    spec.sink_bits[i] & !base.sink_bits[i], 0,
                    "seed {}: site {} param {}: spec sink ⊄ base", seed, sid, i
                );
                prop_assert_eq!(
                    spec.mem_bits[i] & !base.mem_bits[i], 0,
                    "seed {}: site {} param {}: spec mem ⊄ base", seed, sid, i
                );
                for b in 0..64 {
                    prop_assert_eq!(
                        spec.ret_transfer[i][b] & !base.ret_transfer[i][b], 0,
                        "seed {}: site {} param {} ret bit {}: spec transfer ⊄ base",
                        seed, sid, i, b
                    );
                }
            }
            prop_assert_eq!(
                spec.env_ret & !base.env_ret, 0,
                "seed {}: site {}: spec env ⊄ base", seed, sid
            );
        }
    }
}

//! Shadow-taint fault-provenance engine.
//!
//! [`TaintHook`] rides the [`ExecHook`] seam and mirrors the interpreter's
//! state with a *shadow* state: one 64-bit taint mask per live register,
//! per memory word, and per in-flight return value. The mask is seeded at
//! the injection point with the exact canonical flip mask and propagated
//! forward per opcode. Bit `i` of a mask means "bit `i` of this canonical
//! value may differ from the fault-free run".
//!
//! # The matter-mask contract
//!
//! The forward transfer of every opcode here is the *adjoint* of the
//! backward per-bit transfer in `peppa-analysis`'s `reach.rs`: taint bit
//! `j` appears in a result exactly when the static rule says operand bit
//! `i` (for some tainted `i`) matters to result bit `j`, over the same
//! canonical representation (i1 in bit 0, i32 with bits 31..63 folded
//! into one sign group). This gives the containment property the
//! `repro provenance` experiment checks: if a traced run's taint reaches
//! a sink, the executed def-use chain is one of the paths the backward
//! analysis joined over, so the seed bit is in the static matter mask and
//! the cell is classified `MayPropagate`. A dynamically-propagating cell
//! that the static analysis calls `ProvablyMasked` is a soundness bug in
//! one of the two engines.
//!
//! Masks are a *superset* of the bits that actually differ between the
//! clean and faulty concrete executions (checked differentially by
//! proptest): rules for bitwise/shift/arithmetic ops are per-bit precise,
//! everything else (FP, division data paths, comparisons) degrades to
//! all-or-nothing.
//!
//! # Sinks
//!
//! Propagation is declared when taint reaches an *observable sink* — the
//! same sink set `reach.rs` seeds its backward analysis with: `output`
//! operands, the entry function's return value, branch conditions, memory
//! addresses, divisors, and allocation sizes. After the first sink hit,
//! control flow (and therefore concrete addresses) may diverge from the
//! clean run, so shadow state past that point is best-effort; the
//! first-sink record itself is taken before any divergence and is sound.

use crate::hooks::ExecHook;
use peppa_ir::{BinOp, CastKind, FuncId, Function, Instr, Module, Op, Operand, Ty, UnOp, ValueId};
use std::collections::HashMap;

const FULL: u64 = u64::MAX;

/// Bit `i` set iff `m` has any bit at position ≥ `i`.
#[inline]
fn smear_down(m: u64) -> u64 {
    let mut m = m;
    m |= m >> 1;
    m |= m >> 2;
    m |= m >> 4;
    m |= m >> 8;
    m |= m >> 16;
    m |= m >> 32;
    m
}

/// Bit `i` set iff `m` has any bit at position ≤ `i`.
#[inline]
fn smear_up(m: u64) -> u64 {
    let mut m = m;
    m |= m << 1;
    m |= m << 2;
    m |= m << 4;
    m |= m << 8;
    m |= m << 16;
    m |= m << 32;
    m
}

#[inline]
fn width_mask(w: u32) -> u64 {
    if w >= 64 {
        FULL
    } else {
        (1u64 << w) - 1
    }
}

#[inline]
fn full_if(t: u64) -> u64 {
    if t != 0 {
        FULL
    } else {
        0
    }
}

/// Folds a taint mask into the canonical-form bits of type `ty` — the
/// same folding `reach.rs::canon_matter` applies to matter masks (the
/// shared matter-mask contract): i1 carries bit 0 only, canonical i32
/// mirrors bit 31 across the whole high group.
#[inline]
pub fn canon_taint(ty: Ty, t: u64) -> u64 {
    const HIGH: u64 = 0xFFFF_FFFF_8000_0000;
    match ty {
        Ty::I1 => t & 1,
        Ty::I32 => {
            if t & HIGH != 0 {
                (t & 0x7FFF_FFFF) | HIGH
            } else {
                t
            }
        }
        _ => t,
    }
}

fn const_bits(o: &Operand) -> Option<u64> {
    match o {
        Operand::Const(c) => Some(c.bits),
        Operand::Value(_) => None,
    }
}

/// Forward taint transfer for a binary op: taint of the result given the
/// operand taints. Adjoint of `reach.rs::bin_contribution`.
fn bin_taint(op: BinOp, w: u32, a: &Operand, b: &Operand, ta: u64, tb: u64) -> u64 {
    match op {
        // Carries move influence strictly upward.
        BinOp::Add | BinOp::Sub => smear_up(ta | tb),
        BinOp::Mul => {
            // A deviation that is a multiple of 2^i times a constant
            // multiple of 2^k deviates the product only at bits ≥ i+k.
            let via = |t: u64, other: &Operand| match const_bits(other) {
                Some(0) => 0,
                Some(c) => smear_up(t) << (c.trailing_zeros().min(63)),
                None => smear_up(t),
            };
            via(ta, b) | via(tb, a)
        }
        BinOp::SDiv => full_if(ta | tb),
        BinOp::SRem => {
            let dividend = if ta != 0 {
                // Truncated remainder by ±2^k depends only on the
                // dividend's low k bits and its sign bit.
                match const_bits(b).map(|c| (c as i64).unsigned_abs()) {
                    Some(m) if m.is_power_of_two() => {
                        let k = m.trailing_zeros();
                        if k == 0 {
                            0 // x % ±1 == 0 regardless of x
                        } else {
                            full_if(ta & (width_mask(k) | (1u64 << (w - 1))))
                        }
                    }
                    _ => FULL,
                }
            } else {
                0
            };
            dividend | full_if(tb)
        }
        BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv => full_if(ta | tb),
        BinOp::And => {
            let via = |t: u64, other: &Operand| match const_bits(other) {
                Some(c) => t & c,
                None => t,
            };
            via(ta, b) | via(tb, a)
        }
        BinOp::Or => {
            let via = |t: u64, other: &Operand| match const_bits(other) {
                Some(c) => t & !c,
                None => t,
            };
            via(ta, b) | via(tb, a)
        }
        BinOp::Xor => ta | tb,
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            let amt_mask = (w - 1).max(1) as u64;
            if tb & amt_mask != 0 {
                // The shift amount itself may deviate: any result bit can.
                return FULL;
            }
            match const_bits(b).map(|c| (c & amt_mask) as u32) {
                Some(s) => match op {
                    BinOp::Shl => ta << s,
                    BinOp::LShr => (ta & width_mask(w)) >> s,
                    // Arithmetic shift of the canonical mask replicates a
                    // deviating sign into the vacated top bits.
                    BinOp::AShr => ((ta as i64) >> s) as u64,
                    _ => unreachable!(),
                },
                None => match op {
                    // Equal-but-unknown amount: bits move only up (shl)
                    // or only down (shr).
                    BinOp::Shl => smear_up(ta),
                    BinOp::LShr => smear_down(ta & width_mask(w)),
                    BinOp::AShr => smear_down(ta & width_mask(w)),
                    _ => unreachable!(),
                },
            }
        }
    }
}

/// Where taint first reached an observable — the sink categories
/// `reach.rs` seeds its backward analysis with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkKind {
    /// Operand of an `output` instruction.
    Output,
    /// The entry function's return value.
    Ret,
    /// A conditional branch condition.
    BranchCond,
    /// A load/store address.
    MemAddr,
    /// An integer divisor (trap surface).
    Divisor,
    /// An `alloca` word count.
    AllocaSize,
}

impl SinkKind {
    pub fn as_str(self) -> &'static str {
        match self {
            SinkKind::Output => "output",
            SinkKind::Ret => "ret",
            SinkKind::BranchCond => "branch_cond",
            SinkKind::MemAddr => "mem_addr",
            SinkKind::Divisor => "divisor",
            SinkKind::AllocaSize => "alloca_size",
        }
    }
}

/// First taint arrival at a sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkHit {
    pub kind: SinkKind,
    /// Static id of the sink instruction; `None` for terminator sinks
    /// (branch conditions, the entry return).
    pub sid: Option<u32>,
    /// Dynamic (non-terminator) instruction index at the hit, 1-based.
    pub dynamic: u64,
}

/// Provenance summary of one traced faulty run.
#[derive(Debug, Clone, Default)]
pub struct TaintReport {
    /// Whether the injection activated (taint was seeded).
    pub seeded: bool,
    /// Dynamic index of the corrupted instruction (1-based), 0 if never
    /// seeded.
    pub seed_dynamic: u64,
    /// Static id of the corrupted instruction.
    pub seed_sid: u32,
    /// Canonical XOR mask the flip applied.
    pub seed_mask: u64,
    /// Value definitions that carried taint (propagation hop count).
    pub tainted_defs: u64,
    /// Per-static-instruction taint touch counts, sparse and sorted by
    /// sid: an instruction is "touched" on a dynamic execution that read
    /// or produced tainted data.
    pub sid_hits: Vec<(u32, u64)>,
    /// First taint arrival at an observable sink, if any.
    pub first_sink: Option<SinkHit>,
    /// Dynamic index of the first `output` executed with a tainted
    /// operand — the first taint-carrying observable write.
    pub first_tainted_output: Option<u64>,
    /// Dynamic index at which the last tainted location died (register
    /// overwritten, memory overwritten/cleared, or frame popped), if the
    /// taint went extinct before the run ended.
    pub extinction_dynamic: Option<u64>,
    /// Tainted locations (registers + memory words) still live at run
    /// end.
    pub live_at_end: u64,
}

impl TaintReport {
    /// Taint reached an observable sink: the fault *dynamically
    /// propagated* (the witness for the static containment check).
    pub fn propagated(&self) -> bool {
        self.first_sink.is_some()
    }

    /// Taint died before reaching any sink.
    pub fn extinguished(&self) -> bool {
        self.first_sink.is_none() && self.extinction_dynamic.is_some()
    }

    /// Distinct static instructions that touched taint.
    pub fn sids_touched(&self) -> usize {
        self.sid_hits.len()
    }
}

struct Frame {
    fid: FuncId,
    regs: Vec<u64>,
}

struct Seed {
    dynamic: u64,
    sid: u32,
    mask: u64,
}

/// The shadow engine. One instance traces exactly one run (construct
/// fresh per [`crate::Vm::run_with_hook`] call, then [`finish`]).
///
/// [`finish`]: TaintHook::finish
pub struct TaintHook<'m> {
    module: &'m Module,
    frames: Vec<Frame>,
    mem: HashMap<u64, u64>,
    scratch: Vec<u64>,
    /// Count of non-terminator dynamic instructions seen, 1-based inside
    /// callbacks (mirrors `Profile::dynamic`).
    dyn_index: u64,
    seed: Option<Seed>,
    /// Seed mask waiting for the corrupted instruction's `def_value`.
    pending_seed: u64,
    seed_applied: bool,
    /// Shadow of the word a `load` just read, consumed by its def.
    pending_load: u64,
    /// Shadow of the value a callee just returned, consumed by the call's
    /// def (or discarded at the next instruction for void calls).
    pending_ret: u64,
    /// Locations (registers + memory words) currently holding nonzero
    /// taint.
    live: u64,
    hits: Vec<u64>,
    counted_dyn: u64,
    tainted_defs: u64,
    first_tainted_output: Option<u64>,
    extinct_at: Option<u64>,
    first_sink: Option<SinkHit>,
    /// When enabled, the canonical taint mask of every value definition
    /// in dynamic def order (pre-seed defs record 0) — the alignment the
    /// differential superset property test checks against concrete runs.
    def_trace: Option<Vec<u64>>,
}

impl<'m> TaintHook<'m> {
    pub fn new(module: &'m Module) -> TaintHook<'m> {
        let entry = module.func(module.entry);
        TaintHook {
            module,
            frames: vec![Frame {
                fid: module.entry,
                regs: vec![0; entry.value_types.len()],
            }],
            mem: HashMap::new(),
            scratch: Vec::new(),
            dyn_index: 0,
            seed: None,
            pending_seed: 0,
            seed_applied: false,
            pending_load: 0,
            pending_ret: 0,
            live: 0,
            hits: vec![0; module.num_instrs],
            counted_dyn: 0,
            tainted_defs: 0,
            first_tainted_output: None,
            extinct_at: None,
            first_sink: None,
            def_trace: None,
        }
    }

    /// A shadow engine aligned with a run resumed from `snap` (see
    /// [`crate::Vm::resume_from_with_hook`]): the dynamic-instruction
    /// mirror continues from the snapshot's counter and the shadow frame
    /// stack matches the snapshot's live frames, all with zero taint.
    /// Because every location's taint is zero until the fault seeds it —
    /// and a resumed trial's injection always lies at or after the
    /// snapshot — the resulting [`TaintReport`] is identical to what a
    /// full-prefix traced run would produce.
    pub fn resumed(module: &'m Module, snap: &crate::VmSnapshot) -> TaintHook<'m> {
        let mut hook = TaintHook::new(module);
        hook.dyn_index = snap.dynamic();
        hook.frames = snap
            .frame_fids()
            .iter()
            .map(|&fid| Frame {
                fid,
                regs: vec![0; module.func(fid).value_types.len()],
            })
            .collect();
        hook
    }

    /// Records the taint mask of every value definition, retrievable via
    /// [`def_trace`](TaintHook::def_trace). Entry `k` aligns with the
    /// `k`-th value-producing dynamic instruction (the same indexing
    /// `InjectionTarget::DynamicIndex` uses).
    pub fn enable_def_trace(&mut self) {
        self.def_trace = Some(Vec::new());
    }

    /// Per-def taint masks recorded since [`enable_def_trace`]
    /// (empty if never enabled).
    ///
    /// [`enable_def_trace`]: TaintHook::enable_def_trace
    pub fn def_trace(&self) -> &[u64] {
        self.def_trace.as_deref().unwrap_or(&[])
    }

    pub fn finish(self) -> TaintReport {
        let sid_hits: Vec<(u32, u64)> = self
            .hits
            .iter()
            .enumerate()
            .filter(|(_, &h)| h > 0)
            .map(|(s, &h)| (s as u32, h))
            .collect();
        TaintReport {
            seeded: self.seed.is_some(),
            seed_dynamic: self.seed.as_ref().map_or(0, |s| s.dynamic),
            seed_sid: self.seed.as_ref().map_or(0, |s| s.sid),
            seed_mask: self.seed.as_ref().map_or(0, |s| s.mask),
            tainted_defs: self.tainted_defs,
            sid_hits,
            first_sink: self.first_sink,
            first_tainted_output: self.first_tainted_output,
            extinction_dynamic: self.extinct_at,
            live_at_end: self.live,
        }
    }

    fn cur_func(&self) -> &'m Function {
        self.module.func(self.frames.last().expect("no frame").fid)
    }

    /// Taint of an operand in the current frame.
    fn t_op(&self, o: &Operand) -> u64 {
        match o {
            Operand::Const(_) => 0,
            Operand::Value(v) => self.frames.last().map_or(0, |f| f.regs[v.0 as usize]),
        }
    }

    fn set_reg(&mut self, v: ValueId, t: u64) {
        let f = self.frames.last_mut().expect("no frame");
        let slot = &mut f.regs[v.0 as usize];
        self.live = self.live + (t != 0) as u64 - (*slot != 0) as u64;
        *slot = t;
    }

    fn set_mem(&mut self, addr: u64, t: u64) {
        if t != 0 {
            if self.mem.insert(addr, t).is_none_or(|old| old == 0) {
                self.live += 1;
            }
        } else if self.mem.remove(&addr).is_some_and(|old| old != 0) {
            self.live -= 1;
        }
    }

    fn sink(&mut self, kind: SinkKind, sid: Option<u32>) {
        if self.first_sink.is_none() {
            self.first_sink = Some(SinkHit {
                kind,
                sid,
                dynamic: self.dyn_index,
            });
        }
    }

    fn maybe_extinct(&mut self) {
        if self.seed_applied
            && self.live == 0
            && self.pending_ret == 0
            && self.pending_seed == 0
            && self.extinct_at.is_none()
        {
            self.extinct_at = Some(self.dyn_index);
        }
    }

    fn touch(&mut self, sid: u32) {
        if self.counted_dyn != self.dyn_index {
            self.hits[sid as usize] += 1;
            self.counted_dyn = self.dyn_index;
        }
    }

    fn any_operand_tainted(&self, op: &Op) -> bool {
        let t = |o: &Operand| self.t_op(o) != 0;
        match op {
            Op::Bin { a, b, .. } | Op::Icmp { a, b, .. } | Op::Fcmp { a, b, .. } => t(a) || t(b),
            Op::Un { a, .. } | Op::Cast { a, .. } => t(a),
            Op::Select { cond, t: tv, f } => t(cond) || t(tv) || t(f),
            Op::Load { addr, .. } => t(addr),
            Op::Store { addr, value } => t(addr) || t(value),
            Op::Gep { base, index } => t(base) || t(index),
            Op::Alloca { words } => t(words),
            Op::Call { args, .. } => args.iter().any(t),
            Op::Output { value } => t(value),
        }
    }

    /// Forward transfer: result taint of a value-producing op.
    fn result_taint(&mut self, func: &Function, op: &Op) -> u64 {
        match op {
            Op::Bin { op, a, b } => {
                let w = func.operand_ty(a).bits();
                bin_taint(*op, w, a, b, self.t_op(a), self.t_op(b))
            }
            Op::Un { op, a } => {
                let ta = self.t_op(a);
                match op {
                    UnOp::Not => ta,
                    UnOp::FNeg => ta, // per-bit bijection on payload+sign
                    UnOp::FAbs => ta & !(1u64 << 63),
                    _ => full_if(ta),
                }
            }
            Op::Icmp { a, b, .. } | Op::Fcmp { a, b, .. } => {
                full_if(self.t_op(a) | self.t_op(b)) & 1
            }
            Op::Select { cond, t, f } => {
                if self.t_op(cond) & 1 != 0 {
                    FULL
                } else {
                    self.t_op(t) | self.t_op(f)
                }
            }
            Op::Cast { kind, a, to } => {
                let from = func.operand_ty(a);
                let ta = self.t_op(a);
                match kind {
                    CastKind::Trunc => ta & width_mask(to.bits()),
                    CastKind::ZExt => ta & width_mask(from.bits()),
                    CastKind::SExt => {
                        if from == Ty::I1 {
                            full_if(ta & 1)
                        } else {
                            ta // canonical i32 taint is already sign-folded
                        }
                    }
                    CastKind::FpToSi | CastKind::SiToFp => full_if(ta),
                    CastKind::Bitcast | CastKind::PtrToInt | CastKind::IntToPtr => {
                        ta & width_mask(to.bits())
                    }
                }
            }
            Op::Gep { base, index } => smear_up(self.t_op(base) | self.t_op(index)),
            // A tainted word count is a sink (recorded in `begin_instr`);
            // the base address of *this* alloca is VM stack state, not a
            // function of the operand bits.
            Op::Alloca { .. } => 0,
            Op::Load { addr, ty } => {
                let raw = std::mem::take(&mut self.pending_load);
                canon_taint(*ty, raw & width_mask(ty.bits())) | full_if(self.t_op(addr))
            }
            Op::Call { .. } => std::mem::take(&mut self.pending_ret),
            Op::Store { .. } | Op::Output { .. } => 0,
        }
    }
}

impl ExecHook for TaintHook<'_> {
    const ENABLED: bool = true;

    fn begin_instr(&mut self, ins: &Instr) -> bool {
        self.dyn_index += 1;
        if self.seed.is_none() {
            return false;
        }
        // A tainted return value discarded by a void call dies here.
        if self.pending_ret != 0 && !matches!(ins.op, Op::Call { .. }) {
            self.pending_ret = 0;
            self.maybe_extinct();
        }
        if self.any_operand_tainted(&ins.op) {
            self.touch(ins.sid.0);
        }
        // Sink detection on operand taints, before the op executes (and
        // so before any trap or divergence it may cause).
        match &ins.op {
            Op::Output { value } if self.t_op(value) != 0 => {
                if self.first_tainted_output.is_none() {
                    self.first_tainted_output = Some(self.dyn_index);
                }
                self.sink(SinkKind::Output, Some(ins.sid.0));
            }
            Op::Store { addr, .. } | Op::Load { addr, .. } if self.t_op(addr) != 0 => {
                self.sink(SinkKind::MemAddr, Some(ins.sid.0));
            }
            Op::Bin {
                op: BinOp::SDiv | BinOp::SRem,
                b,
                ..
            } if self.t_op(b) != 0 => {
                self.sink(SinkKind::Divisor, Some(ins.sid.0));
            }
            Op::Alloca { words } if self.t_op(words) != 0 => {
                self.sink(SinkKind::AllocaSize, Some(ins.sid.0));
            }
            _ => {}
        }
        false
    }

    fn def_value(&mut self, ins: &Instr, _bits: u64) {
        if self.seed.is_none() {
            if ins.result.is_some() {
                if let Some(tr) = &mut self.def_trace {
                    tr.push(0);
                }
            }
            return;
        }
        let Some(r) = ins.result else { return };
        let func = self.cur_func();
        let mut t = self.result_taint(func, &ins.op);
        if self.pending_seed != 0 {
            t |= std::mem::take(&mut self.pending_seed);
            self.seed_applied = true;
        }
        t = canon_taint(func.ty_of(r), t);
        if let Some(tr) = &mut self.def_trace {
            tr.push(t);
        }
        if t != 0 {
            self.tainted_defs += 1;
            self.touch(ins.sid.0);
        }
        self.set_reg(r, t);
        self.maybe_extinct();
    }

    fn mem_store(&mut self, ins: &Instr, addr: u64, _bits: u64) {
        if self.seed.is_none() {
            return;
        }
        let t = match &ins.op {
            Op::Store { value, .. } => self.t_op(value),
            _ => 0,
        };
        self.set_mem(addr, t);
        self.maybe_extinct();
    }

    fn mem_load(&mut self, _ins: &Instr, addr: u64, _bits: u64) {
        if self.seed.is_none() {
            return;
        }
        self.pending_load = self.mem.get(&addr).copied().unwrap_or(0);
    }

    fn mem_clear(&mut self, base: u64, words: u64) {
        if self.seed.is_none() || self.mem.is_empty() {
            return;
        }
        for addr in base..base.saturating_add(words) {
            self.set_mem(addr, 0);
        }
        self.maybe_extinct();
    }

    fn fault_injected(&mut self, ins: &Instr, flip_mask: u64) {
        self.seed = Some(Seed {
            dynamic: self.dyn_index,
            sid: ins.sid.0,
            mask: flip_mask,
        });
        self.pending_seed = flip_mask;
    }

    fn branch_transfer(&mut self, cond: Option<&Operand>, params: &[ValueId], args: &[Operand]) {
        if self.seed.is_none() {
            return;
        }
        if let Some(c) = cond {
            if self.t_op(c) & 1 != 0 {
                self.sink(SinkKind::BranchCond, None);
            }
        }
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.extend(args.iter().map(|a| self.t_op(a)));
        for (&p, &t) in params.iter().zip(&buf) {
            self.set_reg(p, t);
        }
        self.scratch = buf;
        self.maybe_extinct();
    }

    fn call_enter(&mut self, ins: &Instr, callee: FuncId) {
        // The shadow frame stack mirrors the call stack even before the
        // seed: a fault may activate inside any callee.
        let mut regs = vec![0u64; self.module.func(callee).value_types.len()];
        if self.seed.is_some() {
            if let Op::Call { args, .. } = &ins.op {
                for (slot, a) in regs.iter_mut().zip(args) {
                    *slot = self.t_op(a);
                }
            }
        }
        self.live += regs.iter().filter(|&&t| t != 0).count() as u64;
        self.frames.push(Frame { fid: callee, regs });
    }

    fn func_ret(&mut self, value: Option<&Operand>) {
        let t = value.map_or(0, |v| self.t_op(v));
        let popped = self.frames.pop().expect("taint frame underflow");
        self.live -= popped.regs.iter().filter(|&&x| x != 0).count() as u64;
        if self.frames.is_empty() && t != 0 {
            // The entry function's return value is an observable.
            self.sink(SinkKind::Ret, None);
        }
        self.pending_ret = t;
        self.maybe_extinct();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecLimits, Injection, InjectionTarget, Vm};
    use crate::inputs::encode_inputs;
    use peppa_ir::{IPred, ModuleBuilder};

    fn traced(m: &Module, inputs: &[f64], inj: Injection) -> (crate::exec::RunOutput, TaintReport) {
        let vm = Vm::new(m, ExecLimits::default());
        let bits = encode_inputs(m.entry_func(), inputs);
        let mut hook = TaintHook::new(m);
        let out = vm.run_with_hook(&bits, Some(inj), &mut hook);
        (out, hook.finish())
    }

    fn dyn_inj(k: u64, bit: u32) -> Injection {
        Injection::single(InjectionTarget::DynamicIndex(k), bit)
    }

    /// sum = 0; for i in 0..n { sum += i*i }; output sum; ret sum
    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("loop");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let n = f.param(0);
        let (head, hv) = f.new_block(&[Ty::I64, Ty::I64]);
        let (body, _) = f.new_block(&[]);
        let (exit, _) = f.new_block(&[]);
        f.br(head, &[Operand::i64(0), Operand::i64(0)]);
        f.switch_to(head);
        let c = f.icmp(IPred::Slt, hv[0], n);
        f.cond_br(c, body, &[], exit, &[]);
        f.switch_to(body);
        let sq = f.mul(hv[0], hv[0]);
        let sum2 = f.add(hv[1], sq);
        let i2 = f.add(hv[0], Operand::i64(1));
        f.br(head, &[i2, sum2]);
        f.switch_to(exit);
        f.output(hv[1]);
        f.ret(Some(hv[1]));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        m
    }

    #[test]
    fn taint_reaches_output_sink() {
        let m = loop_module();
        // Dynamic value index 1 is the first mul (index 0 is the icmp).
        let (out, rep) = traced(&m, &[5.0], dyn_inj(1, 3));
        assert!(out.fault_activated);
        assert!(rep.seeded);
        assert_eq!(rep.seed_mask, 1 << 3);
        assert!(rep.propagated(), "{rep:?}");
        let sink = rep.first_sink.unwrap();
        assert_eq!(sink.kind, SinkKind::Output);
        assert!(rep.first_tainted_output.is_some());
        assert!(rep.tainted_defs >= 2, "mul -> sum2 -> ... at minimum");
        assert!(rep.sids_touched() >= 2);
        assert!(rep.extinction_dynamic.is_none());
    }

    #[test]
    fn dead_taint_extinguishes_without_sink() {
        // a = x + 1 (injected, never used); b = x * x; output b; ret b
        let mut mb = ModuleBuilder::new("dead");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let _a = f.add(x, Operand::i64(1));
        let b = f.mul(x, x);
        f.output(b);
        f.ret(Some(b));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();

        let (out, rep) = traced(&m, &[7.0], dyn_inj(0, 5));
        assert!(out.fault_activated);
        assert!(rep.seeded);
        assert!(!rep.propagated(), "{rep:?}");
        // The tainted register dies when the entry frame pops at ret.
        assert!(rep.extinguished());
        assert_eq!(rep.live_at_end, 0);
    }

    #[test]
    fn and_mask_kills_high_bit_taint() {
        // v = x + 0 (inject bit 40); w = v & 0xFF; output w
        let mut mb = ModuleBuilder::new("and");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let v = f.add(x, Operand::i64(0));
        let w = f.bin(BinOp::And, v, Operand::i64(0xFF));
        f.output(w);
        f.ret(Some(w));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();

        let (out, rep) = traced(&m, &[3.0], dyn_inj(0, 40));
        assert!(out.fault_activated);
        // Taint at bit 40 cannot pass `& 0xFF`.
        assert!(!rep.propagated(), "{rep:?}");
        // But a low-bit flip does propagate.
        let (_, rep) = traced(&m, &[3.0], dyn_inj(0, 2));
        assert!(rep.propagated());
    }

    #[test]
    fn i32_seed_mask_is_canonical() {
        let mut mb = ModuleBuilder::new("i32");
        let main = mb.declare("main", &[], Some(Ty::I64));
        let mut f = mb.define(main);
        let v = f.bin(BinOp::Add, Operand::i32(1), Operand::i32(0));
        let w = f.cast(CastKind::SExt, v, Ty::I64);
        f.output(w);
        f.ret(Some(w));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let (out, rep) = traced(&m, &[], dyn_inj(0, 31));
        assert!(out.fault_activated);
        // Flipping the i32 sign bit deviates the whole canonical high
        // group — the seed mask must record that, not just bit 31.
        assert_eq!(rep.seed_mask, 0xFFFF_FFFF_8000_0000);
        assert!(rep.propagated());
    }

    #[test]
    fn divisor_sink_detected() {
        // d = x + 0 (injected); q = 100 / d; output q
        let mut mb = ModuleBuilder::new("div");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let d = f.add(x, Operand::i64(0));
        let q = f.bin(BinOp::SDiv, Operand::i64(100), d);
        f.output(q);
        f.ret(Some(q));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        // x=4, flip bit 0 -> d=5: no trap, but the divisor was tainted.
        let (out, rep) = traced(&m, &[4.0], dyn_inj(0, 0));
        assert!(out.status.is_ok());
        let sink = rep.first_sink.expect("divisor sink");
        assert_eq!(sink.kind, SinkKind::Divisor);
    }

    #[test]
    fn branch_cond_sink_detected() {
        let m = loop_module();
        // Dynamic value index 0 is the first icmp: its taint reaches the
        // cond_br before anything else.
        let (out, rep) = traced(&m, &[5.0], dyn_inj(0, 0));
        assert!(out.fault_activated);
        let sink = rep.first_sink.expect("branch sink");
        assert_eq!(sink.kind, SinkKind::BranchCond);
        assert_eq!(sink.sid, None);
    }

    #[test]
    fn taint_flows_through_memory() {
        // g[2] = x + 0 (injected); l = g[2]; output l
        let mut mb = ModuleBuilder::new("mem");
        let g = mb.global("g", 4);
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let v = f.add(x, Operand::i64(0));
        let p = f.gep(g, Operand::i64(2));
        f.store(p, v);
        let l = f.load(p, Ty::I64);
        f.output(l);
        f.ret(Some(l));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();

        let (out, rep) = traced(&m, &[9.0], dyn_inj(0, 7));
        assert!(out.fault_activated);
        let sink = rep.first_sink.expect("output sink via memory");
        assert_eq!(sink.kind, SinkKind::Output);
    }

    #[test]
    fn overwritten_memory_taint_extinguishes() {
        // g[2] = tainted v; g[2] = 0; l = g[2] (clean); output l
        let mut mb = ModuleBuilder::new("overwrite");
        let g = mb.global("g", 4);
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let v = f.add(x, Operand::i64(0));
        let p = f.gep(g, Operand::i64(2));
        f.store(p, v);
        f.store(p, Operand::i64(0));
        let l = f.load(p, Ty::I64);
        f.output(l);
        f.ret(Some(l));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();

        let (out, rep) = traced(&m, &[9.0], dyn_inj(0, 7));
        assert!(out.fault_activated);
        assert!(!rep.propagated(), "{rep:?}");
        assert!(rep.extinguished());
    }

    #[test]
    fn taint_crosses_call_return() {
        // callee(y) = y * y (injected inside); main outputs callee(3).
        let mut mb = ModuleBuilder::new("call");
        let callee = mb.declare("sq", &[Ty::I64], Some(Ty::I64));
        let main = mb.declare("main", &[], Some(Ty::I64));
        {
            let mut f = mb.define(callee);
            let y = f.param(0);
            let r = f.mul(y, y);
            f.ret(Some(r));
            f.finish();
        }
        {
            let mut f = mb.define(main);
            let r = f.call(callee, &[Operand::i64(3)]).unwrap();
            f.output(r);
            f.ret(Some(r));
            f.finish();
        }
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();

        let (out, rep) = traced(&m, &[], dyn_inj(0, 1));
        assert!(out.fault_activated);
        let sink = rep.first_sink.expect("sink through call return");
        assert_eq!(sink.kind, SinkKind::Output);
        assert!(rep.tainted_defs >= 2, "callee mul + caller call def");
    }

    #[test]
    fn unactivated_fault_reports_unseeded() {
        let m = loop_module();
        let (out, rep) = traced(&m, &[5.0], dyn_inj(1_000_000, 0));
        assert!(!out.fault_activated);
        assert!(!rep.seeded);
        assert!(!rep.propagated());
        assert_eq!(rep.tainted_defs, 0);
    }

    #[test]
    fn forward_rules_are_supersets_of_concrete_diffs() {
        // Spot-check the adjoint rules against concrete arithmetic.
        // add: flip bit 2 of a=12 -> diff bits must be within smear_up.
        let a = 12u64;
        let fa = a ^ 4;
        let diff = (a.wrapping_add(100)) ^ (fa.wrapping_add(100));
        let ta = bin_taint(BinOp::Add, 64, &Operand::i64(0), &Operand::i64(100), 4, 0);
        assert_eq!(diff & !ta, 0, "add rule must cover carries");
        // and with constant masks taint.
        let tand = bin_taint(
            BinOp::And,
            64,
            &Operand::i64(0),
            &Operand::i64(0xF0),
            0xFF00,
            0,
        );
        assert_eq!(tand, 0);
        // shl by constant moves taint up.
        let tshl = bin_taint(BinOp::Shl, 64, &Operand::i64(0), &Operand::i64(4), 1, 0);
        assert_eq!(tshl, 1 << 4);
        // ashr replicates a deviating sign bit downward: taint at bit 63
        // shifted right by 8 taints the top 9 bits.
        let tashr = bin_taint(
            BinOp::AShr,
            64,
            &Operand::i64(0),
            &Operand::i64(8),
            1 << 63,
            0,
        );
        assert_eq!(tashr, 0xFF80_0000_0000_0000);
    }

    #[test]
    fn canon_taint_matches_matter_contract() {
        assert_eq!(canon_taint(Ty::I1, 0b110), 0);
        assert_eq!(canon_taint(Ty::I1, 0b11), 1);
        assert_eq!(canon_taint(Ty::I32, 1 << 31), 0xFFFF_FFFF_8000_0000);
        assert_eq!(canon_taint(Ty::I32, 1 << 40), 0xFFFF_FFFF_8000_0000);
        assert_eq!(canon_taint(Ty::I32, 0x7F), 0x7F);
        assert_eq!(canon_taint(Ty::I64, FULL), FULL);
    }
}

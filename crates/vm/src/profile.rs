//! Execution profiles: the dynamic counterpart of the static instruction
//! table.

/// Per-run execution profile.
///
/// `exec_counts[sid]` is `N_i` from Eq. 2 of the paper — how many times
/// static instruction `sid` executed. `dynamic` is `N_total` restricted to
/// non-terminator instructions (terminators carry no injectable value, so
/// the paper's per-instruction statistics never mention them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Profile {
    /// Executions of each static instruction, indexed by `sid`.
    pub exec_counts: Vec<u64>,
    /// Total dynamic (non-terminator) instructions executed.
    pub dynamic: u64,
    /// Dynamic instructions that produced a value — the population from
    /// which fault sites are drawn.
    pub value_dynamic: u64,
}

impl Profile {
    pub fn new(num_instrs: usize) -> Profile {
        Profile {
            exec_counts: vec![0; num_instrs],
            dynamic: 0,
            value_dynamic: 0,
        }
    }

    /// Static code coverage: the fraction of static instructions that
    /// executed at least once (§3.2.2 profiles coverage "based on static
    /// instructions").
    pub fn coverage(&self) -> f64 {
        if self.exec_counts.is_empty() {
            return 0.0;
        }
        let covered = self.exec_counts.iter().filter(|&&c| c > 0).count();
        covered as f64 / self.exec_counts.len() as f64
    }

    /// Set of executed static instruction ids.
    pub fn covered_sids(&self) -> Vec<u32> {
        self.exec_counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i as u32)
            .collect()
    }

    /// Relative dynamic footprint `N_i / N_total` of one instruction.
    pub fn footprint(&self, sid: usize) -> f64 {
        if self.dynamic == 0 {
            return 0.0;
        }
        self.exec_counts[sid] as f64 / self.dynamic as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_executed() {
        let p = Profile {
            exec_counts: vec![3, 0, 1, 0],
            dynamic: 4,
            value_dynamic: 4,
        };
        assert!((p.coverage() - 0.5).abs() < 1e-12);
        assert_eq!(p.covered_sids(), vec![0, 2]);
    }

    #[test]
    fn empty_profile() {
        let p = Profile::new(0);
        assert_eq!(p.coverage(), 0.0);
    }

    #[test]
    fn footprint_fractions() {
        let p = Profile {
            exec_counts: vec![1, 3],
            dynamic: 4,
            value_dynamic: 4,
        };
        assert!((p.footprint(1) - 0.75).abs() < 1e-12);
    }
}

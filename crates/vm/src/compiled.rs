//! The compiled execution backend: a threaded-bytecode machine over
//! [`CompiledModule`] that is observably bit-identical to the
//! interpreter in `exec.rs`.
//!
//! Every observable the interpreter produces — output words, return
//! bits, `Profile` counters, trap/hang classification, fault
//! activation, `ExecHook` callback streams, snapshot frame
//! coordinates, convergence decisions — is produced here in the same
//! order with the same values. The machine differs only in *how* it
//! gets there: it dispatches over pre-lowered [`Bc`] ops with all
//! operands resolved to flat register indices, executes fused
//! superinstructions where the lowering found the patterns, and skips
//! the interpreter's per-instruction operand matching entirely.
//!
//! The equivalence argument is structural: each `Bc` handler performs
//! the exact bookkeeping sequence of the interpreter's driver loop
//! for the instruction(s) it covers (dynamic count → hang check →
//! exec count → `begin_instr` → compute → `finish` → `end_instr`),
//! fused handlers check the snapshot-boundary gate between their
//! components and bail to the unfused stub at `pc + 1` when it is
//! due, and register indices below `num_values` coincide with
//! `ValueId`s so fault injection flips the same typed bits of the
//! same register. Unchecked register/code accesses are justified by
//! the bounds sweep at the end of lowering (`lower::validate`); debug
//! builds keep the assertions.

use crate::exec::{
    canon, exec_bin, exec_cast, exec_fcmp as fcmp, exec_icmp as icmp, exec_un, flip_bits,
    ExecLimits, Injection, InjectionTarget, ResumeScratch, RunEnd, RunOutput, RunStatus, Stop,
    Trap,
};
use crate::hooks::{ExecHook, NoHook};
use crate::lower::{Bc, CompiledFunc, CompiledModule, NO_REG};
use crate::profile::Profile;
use crate::snapshot::{mask_contains, ConvergeMasks, ReadSets, SnapData, TrialResume, VmSnapshot};
use peppa_ir::{FuncId, Instr, Module, Term};
use std::time::Instant;

#[inline(always)]
fn rd(regs: &[u64], i: u32) -> u64 {
    debug_assert!((i as usize) < regs.len(), "register read out of bounds");
    unsafe { *regs.get_unchecked(i as usize) }
}

#[inline(always)]
fn wr(regs: &mut [u64], i: u32, v: u64) {
    debug_assert!((i as usize) < regs.len(), "register write out of bounds");
    unsafe { *regs.get_unchecked_mut(i as usize) = v }
}

/// One activation record of the compiled machine. The frame's
/// register file lives in the run's shared register arena at
/// `[base, base + num_regs)`: the interpreter's value registers in
/// the first `num_values` slots and the function's constant pool
/// behind them. `pc` replaces the interpreter's `(block, instr)` pair
/// (recoverable through [`CompiledFunc::meta`]). Keeping frames in
/// one arena makes a call push a bump + one memcpy of the prebuilt
/// frame image instead of a heap allocation.
struct CFrame {
    fid: FuncId,
    base: u32,
    pc: u32,
    frame_sp: u64,
    call_timer: Option<Instant>,
}

/// Convergence checkpoints threaded through a resumed trial; mirrors
/// the interpreter's `SnapCtl::Converge`.
struct ConvergeCtl<'a> {
    checkpoints: &'a [VmSnapshot],
    next: usize,
    masks: Option<&'a ConvergeMasks>,
    read_sets: Option<&'a ReadSets>,
}

/// Why the inner dispatch loop handed control back to the driver.
enum Exit {
    /// `frame.pc` is at a [`Bc::Call`]; push the callee frame.
    Call,
    /// `frame.pc` is at a [`Bc::Ret`]; pop the frame.
    Ret,
    /// A snapshot boundary is due at `frame.pc`.
    Boundary,
}

struct CMachine<'m, H: ExecHook> {
    module: &'m Module,
    code: &'m CompiledModule,
    limits: ExecLimits,
    memory: Vec<u64>,
    hwm: usize,
    stack_ptr: u64,
    profile: Profile,
    output: Vec<u64>,
    injection: Option<Injection>,
    /// `value_dynamic` value at which a [`InjectionTarget::DynamicIndex`]
    /// fault fires (`k + 1`); `u64::MAX` when absent or already applied.
    inj_vd: u64,
    /// A [`InjectionTarget::StaticInstance`] fault is still pending, so
    /// every def must run the sid/instance check.
    static_pending: bool,
    fault_activated: bool,
    conv: Option<ConvergeCtl<'m>>,
    /// Cached `value_dynamic` of the next interesting boundary
    /// (`u64::MAX` when none): the per-def gate is one compare.
    next_vd: u64,
    /// Completed-segment execution counts, indexed by flat pc
    /// (`pc_base[fid] + segment start pc`). The turbo loop records one
    /// hit per fully executed straight-line segment instead of one
    /// `exec_counts` read-modify-write per instruction;
    /// [`Self::expand_seg_hits`] folds the hits back into per-sid
    /// `exec_counts` before the profile is observable. Only the
    /// hook-free, injection-far fast path writes here — every slow-path
    /// instruction still counts directly — so live `exec_counts` reads
    /// (the `StaticInstance` check) always see exact values: a pending
    /// static injection disables the turbo loop outright.
    seg_hits: Vec<u64>,
    hook: H,
}

impl<'m, H: ExecHook> CMachine<'m, H> {
    #[inline]
    fn instr_at(&self, fid: FuncId, pc: usize) -> &'m Instr {
        let cf = &self.code.funcs[fid.0 as usize];
        let (b, i) = cf.meta[pc];
        &self.module.func(fid).blocks[b as usize].instrs[i as usize]
    }

    #[inline(always)]
    fn begin(
        &mut self,
        fid: FuncId,
        cf: &CompiledFunc,
        pc: usize,
    ) -> Result<Option<Instant>, Stop> {
        self.profile.dynamic += 1;
        if self.profile.dynamic > self.limits.max_dynamic {
            return Err(Stop::Hang);
        }
        let sid = cf.sids[pc];
        debug_assert_ne!(sid, u32::MAX, "begin at a terminator pc");
        self.profile.exec_counts[sid as usize] += 1;
        if H::ENABLED && self.hook.begin_instr(self.instr_at(fid, pc)) {
            return Ok(Some(Instant::now()));
        }
        Ok(None)
    }

    #[inline(always)]
    fn end(&mut self, fid: FuncId, pc: usize, timer: Option<Instant>) {
        if H::ENABLED {
            if let Some(t0) = timer {
                let ins = self.instr_at(fid, pc);
                self.hook.end_instr(ins, t0.elapsed().as_nanos() as u64);
            }
        }
    }

    /// The interpreter's `finish_instr` for a value-producing op at
    /// `pc`: bump `value_dynamic`, apply a pending injection, write the
    /// register, notify the hook.
    #[inline(always)]
    fn finish(
        &mut self,
        fid: FuncId,
        cf: &CompiledFunc,
        pc: usize,
        dst: u32,
        bits: u64,
        regs: &mut [u64],
    ) {
        let mut bits = bits;
        self.profile.value_dynamic += 1;
        if self.profile.value_dynamic == self.inj_vd
            || (self.static_pending && self.static_hits(cf, pc))
        {
            bits = self.apply_fault(fid, pc, bits);
        }
        wr(regs, dst, bits);
        if H::ENABLED {
            let ins = self.instr_at(fid, pc);
            self.hook.def_value(ins, bits);
        }
    }

    #[inline]
    fn static_hits(&self, cf: &CompiledFunc, pc: usize) -> bool {
        match self.injection {
            Some(Injection {
                target: InjectionTarget::StaticInstance { sid, instance },
                ..
            }) => cf.sids[pc] == sid.0 && self.profile.exec_counts[sid.0 as usize] - 1 == instance,
            _ => false,
        }
    }

    #[cold]
    fn apply_fault(&mut self, fid: FuncId, pc: usize, bits: u64) -> u64 {
        let inj = self.injection.expect("fault fired without an injection");
        let ins = self.instr_at(fid, pc);
        let r = ins.result.expect("injected instruction has a result");
        let ty = self.module.func(fid).ty_of(r);
        let flipped = flip_bits(ty, bits, inj.bit, inj.burst);
        if H::ENABLED {
            self.hook.fault_injected(ins, bits ^ flipped);
        }
        self.fault_activated = true;
        self.inj_vd = u64::MAX;
        self.static_pending = false;
        flipped
    }

    #[inline(always)]
    fn mem_read(&self, addr: u64) -> Result<u64, Stop> {
        if addr == 0 || addr >= self.memory.len() as u64 {
            return Err(Stop::Trap(Trap::OutOfBounds { addr }));
        }
        Ok(unsafe { *self.memory.get_unchecked(addr as usize) })
    }

    #[inline(always)]
    fn mem_write(&mut self, addr: u64, value: u64) -> Result<(), Stop> {
        if addr == 0 || addr >= self.memory.len() as u64 {
            return Err(Stop::Trap(Trap::OutOfBounds { addr }));
        }
        unsafe { *self.memory.get_unchecked_mut(addr as usize) = value };
        if addr as usize >= self.hwm {
            self.hwm = addr as usize + 1;
        }
        Ok(())
    }

    /// Pushes a callee frame: one bump of the register arena plus a
    /// memcpy of the prebuilt frame image (zeros + constant pool),
    /// then the parameters. Depth check first, as in the interpreter's
    /// `push_frame`.
    fn push_cframe(
        &mut self,
        frames: &mut Vec<CFrame>,
        arena: &mut Vec<u64>,
        fid: FuncId,
        args: &[u64],
        call_timer: Option<Instant>,
    ) -> Result<(), Stop> {
        if frames.len() >= self.limits.max_call_depth {
            return Err(Stop::Trap(Trap::CallDepth));
        }
        let cf = &self.code.funcs[fid.0 as usize];
        let base = arena.len();
        arena.extend_from_slice(&cf.frame_image);
        arena[base..base + args.len()].copy_from_slice(args);
        frames.push(CFrame {
            fid,
            base: base as u32,
            pc: 0,
            frame_sp: self.stack_ptr,
            call_timer,
        });
        Ok(())
    }

    /// Folds the turbo loop's per-segment hit counters back into
    /// per-sid `exec_counts`: each completed segment contributes its
    /// hit count to every instruction it covers, in the same amounts
    /// per-instruction counting would have produced. Runs once per
    /// execution, before the profile escapes.
    fn expand_seg_hits(&mut self) {
        let code = self.code;
        for (fi, cf) in code.funcs.iter().enumerate() {
            let base = code.pc_base[fi] as usize;
            for start in 0..cf.code.len() {
                let h = self.seg_hits[base + start];
                if h == 0 {
                    continue;
                }
                let mut pc = start;
                loop {
                    match cf.code[pc] {
                        Bc::Br { .. } | Bc::CondBr { .. } | Bc::Ret { .. } | Bc::Call { .. } => {
                            break
                        }
                        Bc::CmpBrI { .. } | Bc::CmpBrF { .. } => {
                            self.profile.exec_counts[cf.sids[pc] as usize] += h;
                            break;
                        }
                        Bc::IAddCmpBrI { .. } => {
                            self.profile.exec_counts[cf.sids[pc] as usize] += h;
                            self.profile.exec_counts[cf.sids[pc + 1] as usize] += h;
                            break;
                        }
                        Bc::GepLoad { .. } | Bc::GepStore { .. } | Bc::FMulAdd { .. } => {
                            self.profile.exec_counts[cf.sids[pc] as usize] += h;
                            self.profile.exec_counts[cf.sids[pc + 1] as usize] += h;
                            pc += 2;
                        }
                        _ => {
                            self.profile.exec_counts[cf.sids[pc] as usize] += h;
                            pc += 1;
                        }
                    }
                }
            }
        }
    }

    /// Exact `exec_counts` for a segment the turbo loop abandoned
    /// mid-way (a trap): credit the `remaining` instructions that
    /// actually began, in execution order from the segment start.
    #[cold]
    fn credit_partial(&mut self, cf: &CompiledFunc, start_pc: usize, mut remaining: u64) {
        let mut pc = start_pc;
        while remaining > 0 {
            match cf.code[pc] {
                Bc::GepLoad { .. } | Bc::GepStore { .. } | Bc::FMulAdd { .. } => {
                    self.profile.exec_counts[cf.sids[pc] as usize] += 1;
                    remaining -= 1;
                    if remaining > 0 {
                        self.profile.exec_counts[cf.sids[pc + 1] as usize] += 1;
                        remaining -= 1;
                    }
                    pc += 2;
                }
                Bc::CmpBrI { .. } | Bc::CmpBrF { .. } => {
                    self.profile.exec_counts[cf.sids[pc] as usize] += 1;
                    remaining -= 1;
                    pc += 2;
                }
                Bc::IAddCmpBrI { .. } => {
                    self.profile.exec_counts[cf.sids[pc] as usize] += 1;
                    remaining -= 1;
                    if remaining > 0 {
                        self.profile.exec_counts[cf.sids[pc + 1] as usize] += 1;
                        remaining -= 1;
                    }
                    pc += 3;
                }
                Bc::Br { .. } | Bc::CondBr { .. } | Bc::Ret { .. } | Bc::Call { .. } => {
                    unreachable!("partial segment walk crossed a segment end")
                }
                _ => {
                    self.profile.exec_counts[cf.sids[pc] as usize] += 1;
                    remaining -= 1;
                    pc += 1;
                }
            }
        }
    }

    /// The interpreter's converge arm of `snapshot_boundary`, verbatim
    /// over compiled frames.
    #[cold]
    fn boundary(&mut self, frames: &[CFrame], arena: &[u64]) -> Option<RunEnd> {
        let (checkpoints, mut next, masks, read_sets) = match &self.conv {
            None => {
                self.next_vd = u64::MAX;
                return None;
            }
            Some(c) => (c.checkpoints, c.next, c.masks, c.read_sets),
        };
        let mut matched = None;
        while next < checkpoints.len() {
            let cp = checkpoints[next].data();
            if cp.value_dynamic < self.profile.value_dynamic
                || (cp.value_dynamic == self.profile.value_dynamic && !self.fault_activated)
            {
                next += 1;
                continue;
            }
            if cp.value_dynamic > self.profile.value_dynamic {
                break;
            }
            next += 1;
            if self.state_matches(cp, frames, arena, masks, read_sets) {
                matched = Some(RunEnd::Converged {
                    at_value_dynamic: cp.value_dynamic,
                    checkpoint_dynamic: cp.dynamic,
                    dynamic_at_exit: self.profile.dynamic,
                    output_matches: self.output == cp.output,
                });
                break;
            }
        }
        self.next_vd = checkpoints
            .get(next)
            .map_or(u64::MAX, |c| c.data().value_dynamic);
        if let Some(c) = &mut self.conv {
            c.next = next;
        }
        matched
    }

    /// `State::state_matches` with frame coordinates recovered through
    /// [`CompiledFunc::meta`]; only the value registers participate
    /// (the constant-pool tail is immutable and engine-private).
    fn state_matches(
        &self,
        cp: &SnapData,
        frames: &[CFrame],
        arena: &[u64],
        masks: Option<&ConvergeMasks>,
        read_sets: Option<&ReadSets>,
    ) -> bool {
        if self.stack_ptr != cp.stack_ptr || frames.len() != cp.frames.len() {
            return false;
        }
        for (f, s) in frames.iter().zip(&cp.frames) {
            let cf = &self.code.funcs[f.fid.0 as usize];
            let (b, i) = cf.meta[f.pc as usize];
            if f.fid != s.fid || b != s.block || i != s.instr || f.frame_sp != s.frame_sp {
                return false;
            }
            let regs = &arena[f.base as usize..f.base as usize + cf.num_values];
            match masks {
                None => {
                    if regs != &s.regs[..] {
                        return false;
                    }
                }
                Some(m) => {
                    let live = m.mask(f.fid, b, i);
                    for (k, (a, bb)) in regs.iter().zip(&s.regs).enumerate() {
                        if a != bb && mask_contains(live, k) {
                            return false;
                        }
                    }
                }
            }
        }
        if let Some(set) = read_sets.and_then(|r| r.set_at(cp.value_dynamic)) {
            return set
                .iter()
                .all(|&a| self.memory[a as usize] == cp.mem.get(a as usize).copied().unwrap_or(0));
        }
        if self.memory[..cp.hwm] != cp.mem[..] {
            return false;
        }
        self.memory[cp.hwm..self.hwm.max(cp.hwm)]
            .iter()
            .all(|&w| w == 0)
    }

    /// The driver: outer loop owns frame pushes/pops and the boundary
    /// gate; the inner loop threads through one frame's bytecode.
    ///
    /// The inner loop is two-tier. The **turbo** tier runs whole
    /// straight-line segments with batched bookkeeping whenever a
    /// one-time gate proves nothing observable can happen inside the
    /// segment: hooks are compile-time disabled, no static-instance
    /// injection is pending, the hang budget cannot expire
    /// (`dynamic + n_ops <= max_dynamic`), and no def in the segment
    /// can reach the pending injection index or the next snapshot
    /// boundary (`value_dynamic + n_defs < min(inj_vd, next_vd)`).
    /// Under that proof the per-instruction counters collapse to two
    /// local register increments (written back at every exit) and
    /// `exec_counts` collapses to one segment-hit increment, expanded
    /// exactly at run end by [`Self::expand_seg_hits`]. A trap
    /// mid-segment reconstructs the exact partial counters the
    /// per-instruction path would have left. Whenever the gate fails,
    /// the **exact** tier — per-instruction dispatch with full
    /// `begin`/`finish` bookkeeping — takes over until the next taken
    /// branch, where the gate is retried. Both tiers produce
    /// bit-identical observables; the split is pure wall-clock.
    fn drive(&mut self, frames: &mut Vec<CFrame>, arena: &mut Vec<u64>) -> Result<RunEnd, Stop> {
        let module = self.module;
        let code = self.code;
        let mut move_buf: Vec<u64> = Vec::new();
        let mut arg_buf: Vec<u64> = Vec::new();
        'outer: loop {
            if self.profile.value_dynamic >= self.next_vd {
                if let Some(end) = self.boundary(frames, arena) {
                    return Ok(end);
                }
            }
            let fidx = frames.len() - 1;
            let exit = {
                let frame = &mut frames[fidx];
                let fid = frame.fid;
                let cf = &code.funcs[fid.0 as usize];
                let pcb = code.pc_base[fid.0 as usize] as usize;
                let base = frame.base as usize;
                let frame_pc = &mut frame.pc;
                let regs = &mut arena[base..];
                let mut pc = *frame_pc as usize;
                'inner: loop {
                    if !H::ENABLED && !self.static_pending {
                        // ---- turbo tier ----
                        let gate_vd = self.inj_vd.min(self.next_vd);
                        let max_dyn = self.limits.max_dynamic;
                        let mut dynamic = self.profile.dynamic;
                        let mut vd = self.profile.value_dynamic;
                        'turbo: loop {
                            debug_assert!(pc < cf.seg.len(), "pc out of bounds");
                            let s = unsafe { *cf.seg.get_unchecked(pc) };
                            if vd + s.n_defs as u64 >= gate_vd || dynamic + s.n_ops as u64 > max_dyn
                            {
                                break 'turbo;
                            }
                            let seg_start = pc;
                            let dyn0 = dynamic;
                            macro_rules! turbo_trap {
                                ($e:expr) => {{
                                    self.profile.dynamic = dynamic;
                                    self.profile.value_dynamic = vd;
                                    self.credit_partial(cf, seg_start, dynamic - dyn0);
                                    return Err($e);
                                }};
                            }
                            'ops: loop {
                                debug_assert!(pc < cf.code.len(), "pc out of bounds");
                                let bc = unsafe { *cf.code.get_unchecked(pc) };
                                match bc {
                                    Bc::Bin { op, ty, dst, a, b } => {
                                        dynamic += 1;
                                        match exec_bin(op, ty, rd(regs, a), rd(regs, b)) {
                                            Ok(r) => {
                                                vd += 1;
                                                wr(regs, dst, r);
                                                pc += 1;
                                            }
                                            Err(e) => turbo_trap!(e),
                                        }
                                    }
                                    Bc::IAdd { dst, a, b } => {
                                        dynamic += 1;
                                        let r = (rd(regs, a) as i64)
                                            .wrapping_add(rd(regs, b) as i64)
                                            as u64;
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::ISub { dst, a, b } => {
                                        dynamic += 1;
                                        let r = (rd(regs, a) as i64)
                                            .wrapping_sub(rd(regs, b) as i64)
                                            as u64;
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::IMul { dst, a, b } => {
                                        dynamic += 1;
                                        let r = (rd(regs, a) as i64)
                                            .wrapping_mul(rd(regs, b) as i64)
                                            as u64;
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::FAdd { dst, a, b } => {
                                        dynamic += 1;
                                        let r = (f64::from_bits(rd(regs, a))
                                            + f64::from_bits(rd(regs, b)))
                                        .to_bits();
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::FSub { dst, a, b } => {
                                        dynamic += 1;
                                        let r = (f64::from_bits(rd(regs, a))
                                            - f64::from_bits(rd(regs, b)))
                                        .to_bits();
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::FMul { dst, a, b } => {
                                        dynamic += 1;
                                        let r = (f64::from_bits(rd(regs, a))
                                            * f64::from_bits(rd(regs, b)))
                                        .to_bits();
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::FDiv { dst, a, b } => {
                                        dynamic += 1;
                                        let r = (f64::from_bits(rd(regs, a))
                                            / f64::from_bits(rd(regs, b)))
                                        .to_bits();
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::FMulAdd { t, a, b, dst, x, y } => {
                                        dynamic += 1;
                                        let m = (f64::from_bits(rd(regs, a))
                                            * f64::from_bits(rd(regs, b)))
                                        .to_bits();
                                        vd += 1;
                                        wr(regs, t, m);
                                        dynamic += 1;
                                        let s = (f64::from_bits(rd(regs, x))
                                            + f64::from_bits(rd(regs, y)))
                                        .to_bits();
                                        vd += 1;
                                        wr(regs, dst, s);
                                        pc += 2;
                                    }
                                    Bc::Un { op, ty, dst, a } => {
                                        dynamic += 1;
                                        let r = exec_un(op, ty, rd(regs, a));
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::Icmp { pred, dst, a, b } => {
                                        dynamic += 1;
                                        let r = icmp(pred, rd(regs, a), rd(regs, b));
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::Fcmp { pred, dst, a, b } => {
                                        dynamic += 1;
                                        let r = fcmp(pred, rd(regs, a), rd(regs, b));
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::Select { dst, cond, t, f } => {
                                        dynamic += 1;
                                        let c = rd(regs, cond) & 1;
                                        let r = if c != 0 { rd(regs, t) } else { rd(regs, f) };
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::Cast {
                                        kind,
                                        from,
                                        to,
                                        dst,
                                        a,
                                    } => {
                                        dynamic += 1;
                                        let r = exec_cast(kind, from, to, rd(regs, a));
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::Load { ty, dst, addr } => {
                                        dynamic += 1;
                                        match self.mem_read(rd(regs, addr)) {
                                            Ok(w) => {
                                                vd += 1;
                                                wr(regs, dst, canon(ty, w));
                                                pc += 1;
                                            }
                                            Err(e) => turbo_trap!(e),
                                        }
                                    }
                                    Bc::Store { addr, val } => {
                                        dynamic += 1;
                                        match self.mem_write(rd(regs, addr), rd(regs, val)) {
                                            Ok(()) => pc += 1,
                                            Err(e) => turbo_trap!(e),
                                        }
                                    }
                                    Bc::Gep { dst, base, index } => {
                                        dynamic += 1;
                                        let r = rd(regs, base).wrapping_add(rd(regs, index));
                                        vd += 1;
                                        wr(regs, dst, r);
                                        pc += 1;
                                    }
                                    Bc::Alloca { dst, words } => {
                                        dynamic += 1;
                                        match self.alloca(fid, pc, rd(regs, words)) {
                                            Ok(r) => {
                                                vd += 1;
                                                wr(regs, dst, r);
                                                pc += 1;
                                            }
                                            Err(e) => turbo_trap!(e),
                                        }
                                    }
                                    Bc::Output { val } => {
                                        dynamic += 1;
                                        let v = rd(regs, val);
                                        self.output.push(v);
                                        pc += 1;
                                    }
                                    Bc::GepLoad {
                                        ty,
                                        gep_dst,
                                        base,
                                        index,
                                        dst,
                                    } => {
                                        dynamic += 1;
                                        let p = rd(regs, base).wrapping_add(rd(regs, index));
                                        vd += 1;
                                        wr(regs, gep_dst, p);
                                        dynamic += 1;
                                        match self.mem_read(p) {
                                            Ok(w) => {
                                                vd += 1;
                                                wr(regs, dst, canon(ty, w));
                                                pc += 2;
                                            }
                                            Err(e) => turbo_trap!(e),
                                        }
                                    }
                                    Bc::GepStore {
                                        gep_dst,
                                        base,
                                        index,
                                        val,
                                    } => {
                                        dynamic += 1;
                                        let p = rd(regs, base).wrapping_add(rd(regs, index));
                                        vd += 1;
                                        wr(regs, gep_dst, p);
                                        dynamic += 1;
                                        match self.mem_write(p, rd(regs, val)) {
                                            Ok(()) => pc += 2,
                                            Err(e) => turbo_trap!(e),
                                        }
                                    }
                                    Bc::CmpBrI {
                                        pred,
                                        dst,
                                        a,
                                        b,
                                        edge,
                                    } => {
                                        dynamic += 1;
                                        let r = icmp(pred, rd(regs, a), rd(regs, b));
                                        vd += 1;
                                        wr(regs, dst, r);
                                        self.seg_hits[pcb + seg_start] += 1;
                                        let e = if r != 0 { edge } else { edge + 1 };
                                        pc = take_edge(cf, e, regs, &mut move_buf) as usize;
                                        break 'ops;
                                    }
                                    Bc::CmpBrF {
                                        pred,
                                        dst,
                                        a,
                                        b,
                                        edge,
                                    } => {
                                        dynamic += 1;
                                        let r = fcmp(pred, rd(regs, a), rd(regs, b));
                                        vd += 1;
                                        wr(regs, dst, r);
                                        self.seg_hits[pcb + seg_start] += 1;
                                        let e = if r != 0 { edge } else { edge + 1 };
                                        pc = take_edge(cf, e, regs, &mut move_buf) as usize;
                                        break 'ops;
                                    }
                                    Bc::IAddCmpBrI {
                                        dst,
                                        a,
                                        b,
                                        pred,
                                        cdst,
                                        ca,
                                        cb,
                                        edge,
                                    } => {
                                        dynamic += 1;
                                        let r = (rd(regs, a) as i64)
                                            .wrapping_add(rd(regs, b) as i64)
                                            as u64;
                                        vd += 1;
                                        wr(regs, dst, r);
                                        dynamic += 1;
                                        let c = icmp(pred, rd(regs, ca), rd(regs, cb));
                                        vd += 1;
                                        wr(regs, cdst, c);
                                        self.seg_hits[pcb + seg_start] += 1;
                                        let e = if c != 0 { edge } else { edge + 1 };
                                        pc = take_edge(cf, e, regs, &mut move_buf) as usize;
                                        break 'ops;
                                    }
                                    Bc::Br { edge } => {
                                        self.seg_hits[pcb + seg_start] += 1;
                                        pc = take_edge(cf, edge, regs, &mut move_buf) as usize;
                                        break 'ops;
                                    }
                                    Bc::CondBr { cond, edge } => {
                                        self.seg_hits[pcb + seg_start] += 1;
                                        let c = rd(regs, cond) & 1;
                                        let e = if c != 0 { edge } else { edge + 1 };
                                        pc = take_edge(cf, e, regs, &mut move_buf) as usize;
                                        break 'ops;
                                    }
                                    Bc::Call { .. } => {
                                        self.seg_hits[pcb + seg_start] += 1;
                                        self.profile.dynamic = dynamic;
                                        self.profile.value_dynamic = vd;
                                        *frame_pc = pc as u32;
                                        break 'inner Exit::Call;
                                    }
                                    Bc::Ret { .. } => {
                                        self.seg_hits[pcb + seg_start] += 1;
                                        self.profile.dynamic = dynamic;
                                        self.profile.value_dynamic = vd;
                                        *frame_pc = pc as u32;
                                        break 'inner Exit::Ret;
                                    }
                                }
                            }
                        }
                        self.profile.dynamic = dynamic;
                        self.profile.value_dynamic = vd;
                    }
                    // ---- exact tier ----
                    debug_assert!(pc < cf.code.len(), "pc out of bounds");
                    let bc = unsafe { *cf.code.get_unchecked(pc) };
                    match bc {
                        Bc::Bin { op, ty, dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = exec_bin(op, ty, rd(regs, a), rd(regs, b))?;
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Un { op, ty, dst, a } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = exec_un(op, ty, rd(regs, a));
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Icmp { pred, dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = icmp(pred, rd(regs, a), rd(regs, b));
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Fcmp { pred, dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = fcmp(pred, rd(regs, a), rd(regs, b));
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Select { dst, cond, t, f } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let c = rd(regs, cond) & 1;
                            let r = if c != 0 { rd(regs, t) } else { rd(regs, f) };
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Cast {
                            kind,
                            from,
                            to,
                            dst,
                            a,
                        } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = exec_cast(kind, from, to, rd(regs, a));
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Load { ty, dst, addr } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let p = rd(regs, addr);
                            let word = self.mem_read(p)?;
                            if H::ENABLED {
                                let ins = self.instr_at(fid, pc);
                                self.hook.mem_load(ins, p, word);
                            }
                            self.finish(fid, cf, pc, dst, canon(ty, word), regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Store { addr, val } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let p = rd(regs, addr);
                            let v = rd(regs, val);
                            self.mem_write(p, v)?;
                            if H::ENABLED {
                                let ins = self.instr_at(fid, pc);
                                self.hook.mem_store(ins, p, v);
                            }
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Gep { dst, base, index } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = rd(regs, base).wrapping_add(rd(regs, index));
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Alloca { dst, words } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = self.alloca(fid, pc, rd(regs, words))?;
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::Output { val } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let v = rd(regs, val);
                            self.output.push(v);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::IAdd { dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = (rd(regs, a) as i64).wrapping_add(rd(regs, b) as i64) as u64;
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::ISub { dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = (rd(regs, a) as i64).wrapping_sub(rd(regs, b) as i64) as u64;
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::IMul { dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = (rd(regs, a) as i64).wrapping_mul(rd(regs, b) as i64) as u64;
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::FAdd { dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = (f64::from_bits(rd(regs, a)) + f64::from_bits(rd(regs, b)))
                                .to_bits();
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::FSub { dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = (f64::from_bits(rd(regs, a)) - f64::from_bits(rd(regs, b)))
                                .to_bits();
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::FMul { dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = (f64::from_bits(rd(regs, a)) * f64::from_bits(rd(regs, b)))
                                .to_bits();
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::FDiv { dst, a, b } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = (f64::from_bits(rd(regs, a)) / f64::from_bits(rd(regs, b)))
                                .to_bits();
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            pc += 1;
                        }
                        Bc::FMulAdd { t, a, b, dst, x, y } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let m = (f64::from_bits(rd(regs, a)) * f64::from_bits(rd(regs, b)))
                                .to_bits();
                            self.finish(fid, cf, pc, t, m, regs);
                            self.end(fid, pc, timer);
                            if self.profile.value_dynamic >= self.next_vd {
                                // Boundary between the multiply and the
                                // add: resume at the unfused stub.
                                *frame_pc = (pc + 1) as u32;
                                break 'inner Exit::Boundary;
                            }
                            let timer = self.begin(fid, cf, pc + 1)?;
                            let s = (f64::from_bits(rd(regs, x)) + f64::from_bits(rd(regs, y)))
                                .to_bits();
                            self.finish(fid, cf, pc + 1, dst, s, regs);
                            self.end(fid, pc + 1, timer);
                            pc += 2;
                        }
                        Bc::Call { .. } => {
                            *frame_pc = pc as u32;
                            break 'inner Exit::Call;
                        }
                        Bc::Ret { .. } => {
                            *frame_pc = pc as u32;
                            break 'inner Exit::Ret;
                        }
                        Bc::Br { edge } => {
                            if H::ENABLED {
                                let (b, _) = cf.meta[pc];
                                let func = module.func(fid);
                                if let Term::Br { target, args } = &func.blocks[b as usize].term {
                                    self.hook.branch_transfer(
                                        None,
                                        &func.blocks[target.0 as usize].params,
                                        args,
                                    );
                                }
                            }
                            pc = take_edge(cf, edge, regs, &mut move_buf) as usize;
                            continue 'inner;
                        }
                        Bc::CondBr { cond, edge } => {
                            let c = rd(regs, cond) & 1;
                            let e = if c != 0 { edge } else { edge + 1 };
                            if H::ENABLED {
                                self.cond_branch_hook(fid, cf, pc, c);
                            }
                            pc = take_edge(cf, e, regs, &mut move_buf) as usize;
                            continue 'inner;
                        }
                        Bc::CmpBrI {
                            pred,
                            dst,
                            a,
                            b,
                            edge,
                        } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = icmp(pred, rd(regs, a), rd(regs, b));
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            if self.profile.value_dynamic >= self.next_vd {
                                // Boundary between the compare and the
                                // branch: resume at the unfused stub.
                                *frame_pc = (pc + 1) as u32;
                                break 'inner Exit::Boundary;
                            }
                            let c = rd(regs, dst) & 1;
                            let e = if c != 0 { edge } else { edge + 1 };
                            if H::ENABLED {
                                self.cond_branch_hook(fid, cf, pc + 1, c);
                            }
                            pc = take_edge(cf, e, regs, &mut move_buf) as usize;
                            continue 'inner;
                        }
                        Bc::CmpBrF {
                            pred,
                            dst,
                            a,
                            b,
                            edge,
                        } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = fcmp(pred, rd(regs, a), rd(regs, b));
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            if self.profile.value_dynamic >= self.next_vd {
                                *frame_pc = (pc + 1) as u32;
                                break 'inner Exit::Boundary;
                            }
                            let c = rd(regs, dst) & 1;
                            let e = if c != 0 { edge } else { edge + 1 };
                            if H::ENABLED {
                                self.cond_branch_hook(fid, cf, pc + 1, c);
                            }
                            pc = take_edge(cf, e, regs, &mut move_buf) as usize;
                            continue 'inner;
                        }
                        Bc::IAddCmpBrI {
                            dst,
                            a,
                            b,
                            pred,
                            cdst,
                            ca,
                            cb,
                            edge,
                        } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = (rd(regs, a) as i64).wrapping_add(rd(regs, b) as i64) as u64;
                            self.finish(fid, cf, pc, dst, r, regs);
                            self.end(fid, pc, timer);
                            if self.profile.value_dynamic >= self.next_vd {
                                // Boundary between the add and the
                                // compare: resume at the cmp-br stub.
                                *frame_pc = (pc + 1) as u32;
                                break 'inner Exit::Boundary;
                            }
                            let timer = self.begin(fid, cf, pc + 1)?;
                            let c = icmp(pred, rd(regs, ca), rd(regs, cb));
                            self.finish(fid, cf, pc + 1, cdst, c, regs);
                            self.end(fid, pc + 1, timer);
                            if self.profile.value_dynamic >= self.next_vd {
                                // Boundary between the compare and the
                                // branch: resume at the cond-br stub.
                                *frame_pc = (pc + 2) as u32;
                                break 'inner Exit::Boundary;
                            }
                            let c = rd(regs, cdst) & 1;
                            let e = if c != 0 { edge } else { edge + 1 };
                            if H::ENABLED {
                                self.cond_branch_hook(fid, cf, pc + 2, c);
                            }
                            pc = take_edge(cf, e, regs, &mut move_buf) as usize;
                            continue 'inner;
                        }
                        Bc::GepLoad {
                            ty,
                            gep_dst,
                            base,
                            index,
                            dst,
                        } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = rd(regs, base).wrapping_add(rd(regs, index));
                            self.finish(fid, cf, pc, gep_dst, r, regs);
                            self.end(fid, pc, timer);
                            if self.profile.value_dynamic >= self.next_vd {
                                *frame_pc = (pc + 1) as u32;
                                break 'inner Exit::Boundary;
                            }
                            let timer = self.begin(fid, cf, pc + 1)?;
                            let p = rd(regs, gep_dst);
                            let word = self.mem_read(p)?;
                            if H::ENABLED {
                                let ins = self.instr_at(fid, pc + 1);
                                self.hook.mem_load(ins, p, word);
                            }
                            self.finish(fid, cf, pc + 1, dst, canon(ty, word), regs);
                            self.end(fid, pc + 1, timer);
                            pc += 2;
                        }
                        Bc::GepStore {
                            gep_dst,
                            base,
                            index,
                            val,
                        } => {
                            let timer = self.begin(fid, cf, pc)?;
                            let r = rd(regs, base).wrapping_add(rd(regs, index));
                            self.finish(fid, cf, pc, gep_dst, r, regs);
                            self.end(fid, pc, timer);
                            if self.profile.value_dynamic >= self.next_vd {
                                *frame_pc = (pc + 1) as u32;
                                break 'inner Exit::Boundary;
                            }
                            let timer = self.begin(fid, cf, pc + 1)?;
                            let p = rd(regs, gep_dst);
                            let v = rd(regs, val);
                            self.mem_write(p, v)?;
                            if H::ENABLED {
                                let ins = self.instr_at(fid, pc + 1);
                                self.hook.mem_store(ins, p, v);
                            }
                            self.end(fid, pc + 1, timer);
                            pc += 2;
                        }
                    }
                    if self.profile.value_dynamic >= self.next_vd {
                        *frame_pc = pc as u32;
                        break 'inner Exit::Boundary;
                    }
                }
            };
            match exit {
                Exit::Boundary => continue 'outer,
                Exit::Call => {
                    let frame = frames.last_mut().expect("call with no frame");
                    let fid = frame.fid;
                    let cf = &code.funcs[fid.0 as usize];
                    let pc = frame.pc as usize;
                    let base = frame.base as usize;
                    let (callee, args_start) = match cf.code[pc] {
                        Bc::Call { callee, args, .. } => (callee, args as usize),
                        _ => unreachable!("Exit::Call at a non-call pc"),
                    };
                    let timer = self.begin(fid, cf, pc)?;
                    let nargs = module.func(callee).params.len();
                    arg_buf.clear();
                    arg_buf.extend(
                        cf.call_args[args_start..args_start + nargs]
                            .iter()
                            .map(|&r| rd(&arena[base..], r)),
                    );
                    if H::ENABLED {
                        let ins = self.instr_at(fid, pc);
                        self.hook.call_enter(ins, callee);
                    }
                    self.push_cframe(frames, arena, callee, &arg_buf, timer)?;
                    continue 'outer;
                }
                Exit::Ret => {
                    let frame = frames.last().expect("ret with no frame");
                    let fid = frame.fid;
                    let cf = &code.funcs[fid.0 as usize];
                    let pc = frame.pc as usize;
                    let val_reg = match cf.code[pc] {
                        Bc::Ret { val } => val,
                        _ => unreachable!("Exit::Ret at a non-ret pc"),
                    };
                    if H::ENABLED {
                        let (b, _) = cf.meta[pc];
                        if let Term::Ret { value } = &module.func(fid).blocks[b as usize].term {
                            self.hook.func_ret(value.as_ref());
                        }
                    }
                    let v = if val_reg == NO_REG {
                        None
                    } else {
                        Some(rd(&arena[frame.base as usize..], val_reg))
                    };
                    let frame_sp = frame.frame_sp;
                    let freed = frame_sp as usize..self.stack_ptr as usize;
                    if !freed.is_empty() {
                        let len = (freed.end - freed.start) as u64;
                        self.memory[freed].fill(0);
                        if H::ENABLED {
                            self.hook.mem_clear(frame_sp, len);
                        }
                    }
                    self.stack_ptr = frame_sp;
                    let popped = frames.pop().expect("ret with no frame");
                    arena.truncate(popped.base as usize);
                    let timer = popped.call_timer;
                    match frames.last_mut() {
                        None => return Ok(RunEnd::Done(v)),
                        Some(caller) => {
                            let ccf = &code.funcs[caller.fid.0 as usize];
                            let cpc = caller.pc as usize;
                            let dst = match ccf.code[cpc] {
                                Bc::Call { dst, .. } => dst,
                                _ => unreachable!("caller pc not at its call"),
                            };
                            if dst != NO_REG {
                                let cfid = caller.fid;
                                let bits = v.expect("value call returned nothing");
                                let cbase = caller.base as usize;
                                self.finish(cfid, ccf, cpc, dst, bits, &mut arena[cbase..]);
                            }
                            caller.pc += 1;
                            if timer.is_some() {
                                let cfid = caller.fid;
                                self.end(cfid, cpc, timer);
                            }
                        }
                    }
                    continue 'outer;
                }
            }
        }
    }

    /// Alloca with the interpreter's exact trap/high-water semantics.
    fn alloca(&mut self, _fid: FuncId, _pc: usize, words: u64) -> Result<u64, Stop> {
        let w = words as i64;
        if w < 0 {
            return Err(Stop::Trap(Trap::StackOverflow));
        }
        let base = self.stack_ptr;
        let end = base
            .checked_add(w as u64)
            .ok_or(Stop::Trap(Trap::StackOverflow))?;
        if end > self.memory.len() as u64 {
            return Err(Stop::Trap(Trap::StackOverflow));
        }
        self.memory[base as usize..end as usize].fill(0);
        self.hwm = self.hwm.max(end as usize);
        if H::ENABLED {
            self.hook.mem_clear(base, w as u64);
        }
        self.stack_ptr = end;
        Ok(base)
    }

    /// `branch_transfer` for a conditional branch: recover the `Term`
    /// operands the interpreter would pass. `pc` must be the pc whose
    /// `meta` names the branching block (the cond-br stub for fused
    /// pairs).
    #[cold]
    fn cond_branch_hook(&mut self, fid: FuncId, cf: &CompiledFunc, pc: usize, c: u64) {
        let (b, _) = cf.meta[pc];
        let func = self.module.func(fid);
        if let Term::CondBr {
            cond,
            then_target,
            then_args,
            else_target,
            else_args,
        } = &func.blocks[b as usize].term
        {
            let (target, targs) = if c != 0 {
                (then_target, then_args)
            } else {
                (else_target, else_args)
            };
            self.hook
                .branch_transfer(Some(cond), &func.blocks[target.0 as usize].params, targs);
        }
    }
}

/// Applies a branch edge's block-argument moves and returns the target
/// pc. Safe edges copy in place; unsafe ones buffer sources first —
/// both orders equal the interpreter's two-phase `arg_buf` copy (see
/// [`crate::lower::Edge::in_place`]).
#[inline(always)]
fn take_edge(cf: &CompiledFunc, e: u32, regs: &mut [u64], buf: &mut Vec<u64>) -> u32 {
    let ed = cf.edges[e as usize];
    let mv = &cf.moves[ed.moves_start as usize..(ed.moves_start + ed.moves_len) as usize];
    if ed.in_place {
        for &(d, s) in mv {
            let v = rd(regs, s);
            wr(regs, d, v);
        }
    } else {
        buf.clear();
        buf.extend(mv.iter().map(|&(_, s)| rd(regs, s)));
        for (&(d, _), &v) in mv.iter().zip(buf.iter()) {
            wr(regs, d, v);
        }
    }
    ed.target_pc
}

/// The compiled engine's public face: same constructor shape and entry
/// points as [`crate::Vm`], dispatching over a pre-lowered
/// [`CompiledModule`]. Snapshot *capture* stays on the interpreter
/// (it is a once-per-campaign, fault-free run); everything else —
/// full runs, hooked runs, snapshot resume, convergence trials — runs
/// here.
pub struct CompiledVm<'m> {
    module: &'m Module,
    code: &'m CompiledModule,
    limits: ExecLimits,
}

impl<'m> CompiledVm<'m> {
    /// `code` must be the result of [`CompiledModule::lower`] on this
    /// exact `module`.
    pub fn new(module: &'m Module, code: &'m CompiledModule, limits: ExecLimits) -> CompiledVm<'m> {
        assert_eq!(
            module.functions.len(),
            code.funcs.len(),
            "compiled code does not match the module"
        );
        CompiledVm {
            module,
            code,
            limits,
        }
    }

    pub fn run(&self, input_bits: &[u64], injection: Option<Injection>) -> RunOutput {
        let mut hook = NoHook;
        self.run_with_hook(input_bits, injection, &mut hook)
    }

    /// Golden/trial run from numeric inputs, as [`crate::Vm::run_numeric`].
    pub fn run_numeric(&self, inputs: &[f64], injection: Option<Injection>) -> RunOutput {
        let bits = crate::inputs::encode_inputs(self.module.entry_func(), inputs);
        self.run(&bits, injection)
    }

    pub fn run_with_hook<H: ExecHook>(
        &self,
        input_bits: &[u64],
        injection: Option<Injection>,
        hook: &mut H,
    ) -> RunOutput {
        self.run_impl(input_bits, injection, hook, None)
    }

    /// Full run that reuses `scratch`'s memory buffer across trials:
    /// instead of zero-allocating `memory_words` (the dominant fixed
    /// cost of a short trial), only the previous run's dirty span is
    /// zeroed and the prelowered globals image re-copied.
    pub fn run_amortized(
        &self,
        scratch: &mut ResumeScratch,
        input_bits: &[u64],
        injection: Option<Injection>,
    ) -> RunOutput {
        let mut hook = NoHook;
        self.run_impl(input_bits, injection, &mut hook, Some(scratch))
    }

    fn run_impl<H: ExecHook>(
        &self,
        input_bits: &[u64],
        injection: Option<Injection>,
        hook: &mut H,
        mut scratch: Option<&mut ResumeScratch>,
    ) -> RunOutput {
        let entry = self.module.entry_func();
        assert_eq!(input_bits.len(), entry.params.len(), "entry arity mismatch");
        let memory = match scratch.as_deref_mut() {
            Some(s) => s.take_restored(self.limits.memory_words, &self.code.globals_image),
            None => {
                let mut mem = vec![0u64; self.limits.memory_words];
                mem[..self.code.globals_image.len()].copy_from_slice(&self.code.globals_image);
                mem
            }
        };
        let mut m = self.machine(memory, hook, injection);
        m.hwm = self.module.globals_words() as usize;
        m.stack_ptr = self.module.globals_words();
        let args: Vec<u64> = input_bits
            .iter()
            .zip(&entry.params)
            .map(|(&b, &t)| canon(t, b))
            .collect();
        let mut frames: Vec<CFrame> = Vec::new();
        let mut arena: Vec<u64> = Vec::new();
        let end = m
            .push_cframe(&mut frames, &mut arena, self.module.entry, &args, None)
            .and_then(|()| m.drive(&mut frames, &mut arena));
        m.expand_seg_hits();
        if let Some(s) = scratch {
            let hwm = m.hwm;
            s.put_back(std::mem::take(&mut m.memory), hwm);
        }
        let (status, ret) = match end {
            Ok(RunEnd::Done(v)) => (RunStatus::Ok, v),
            Ok(RunEnd::Converged { .. }) => unreachable!("full runs carry no checkpoints"),
            Err(Stop::Trap(t)) => (RunStatus::Trap(t), None),
            Err(Stop::Hang) => (RunStatus::Hang, None),
        };
        RunOutput {
            status,
            output: m.output,
            ret,
            profile: m.profile,
            fault_activated: m.fault_activated,
            memory: None,
        }
    }

    pub fn resume_from(&self, snap: &VmSnapshot, injection: Option<Injection>) -> RunOutput {
        let mut hook = NoHook;
        self.resume_from_with_hook(snap, injection, &mut hook)
    }

    pub fn resume_from_with_hook<H: ExecHook>(
        &self,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        hook: &mut H,
    ) -> RunOutput {
        match self.resume_impl(snap, injection, hook, &[], None, None, None) {
            TrialResume::Completed(out) => out,
            TrialResume::Converged { .. } => unreachable!("no checkpoints supplied"),
        }
    }

    pub fn resume_trial(
        &self,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        checkpoints: &[VmSnapshot],
    ) -> TrialResume {
        let mut hook = NoHook;
        self.resume_impl(snap, injection, &mut hook, checkpoints, None, None, None)
    }

    #[allow(clippy::too_many_arguments)]
    pub fn resume_trial_amortized(
        &self,
        scratch: &mut ResumeScratch,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        checkpoints: &[VmSnapshot],
        masks: Option<&ConvergeMasks>,
        read_sets: Option<&ReadSets>,
    ) -> TrialResume {
        let mut hook = NoHook;
        self.resume_impl(
            snap,
            injection,
            &mut hook,
            checkpoints,
            masks,
            read_sets,
            Some(scratch),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn resume_impl<'a, H: ExecHook>(
        &'a self,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        hook: &'a mut H,
        checkpoints: &'a [VmSnapshot],
        masks: Option<&'a ConvergeMasks>,
        read_sets: Option<&'a ReadSets>,
        mut scratch: Option<&mut ResumeScratch>,
    ) -> TrialResume {
        let d = snap.data();
        assert_eq!(
            d.memory_words, self.limits.memory_words,
            "snapshot captured under a different memory size"
        );
        let memory = match scratch.as_deref_mut() {
            Some(s) => s.take_restored(self.limits.memory_words, &d.mem),
            None => {
                let mut mem = vec![0u64; self.limits.memory_words];
                mem[..d.mem.len()].copy_from_slice(&d.mem);
                mem
            }
        };
        let mut m = self.machine(memory, hook, injection);
        m.hwm = d.hwm;
        m.stack_ptr = d.stack_ptr;
        m.profile = Profile {
            exec_counts: d.exec_counts.clone(),
            dynamic: d.dynamic,
            value_dynamic: d.value_dynamic,
        };
        m.output = d.output.clone();
        if !checkpoints.is_empty() {
            m.next_vd = checkpoints
                .first()
                .map_or(u64::MAX, |c| c.data().value_dynamic);
            m.conv = Some(ConvergeCtl {
                checkpoints,
                next: 0,
                masks,
                read_sets,
            });
        }
        // Interpreter frames map onto pcs through `pc_of`; the register
        // file is widened with the function's constant pool.
        let mut frames: Vec<CFrame> = Vec::with_capacity(d.frames.len());
        let mut arena: Vec<u64> = Vec::new();
        for f in &d.frames {
            let cf = &self.code.funcs[f.fid.0 as usize];
            let base = arena.len();
            arena.extend_from_slice(&cf.frame_image);
            arena[base..base + f.regs.len()].copy_from_slice(&f.regs);
            frames.push(CFrame {
                fid: f.fid,
                base: base as u32,
                pc: cf.pc_of[f.block as usize][f.instr as usize],
                frame_sp: f.frame_sp,
                call_timer: None,
            });
        }
        let end = m.drive(&mut frames, &mut arena);
        m.expand_seg_hits();
        if let Some(s) = scratch {
            let hwm = m.hwm;
            s.put_back(std::mem::take(&mut m.memory), hwm);
        }
        match end {
            Ok(RunEnd::Done(v)) => TrialResume::Completed(RunOutput {
                status: RunStatus::Ok,
                output: m.output,
                ret: v,
                profile: m.profile,
                fault_activated: m.fault_activated,
                memory: None,
            }),
            Ok(RunEnd::Converged {
                at_value_dynamic,
                checkpoint_dynamic,
                dynamic_at_exit,
                output_matches,
            }) => TrialResume::Converged {
                at_value_dynamic,
                checkpoint_dynamic,
                dynamic_at_exit,
                output_matches,
            },
            Err(stop) => TrialResume::Completed(RunOutput {
                status: match stop {
                    Stop::Trap(t) => RunStatus::Trap(t),
                    Stop::Hang => RunStatus::Hang,
                },
                output: m.output,
                ret: None,
                profile: m.profile,
                fault_activated: m.fault_activated,
                memory: None,
            }),
        }
    }

    fn machine<'h, H: ExecHook>(
        &'h self,
        memory: Vec<u64>,
        hook: &'h mut H,
        injection: Option<Injection>,
    ) -> CMachine<'h, &'h mut H> {
        let inj_vd = match injection {
            Some(Injection {
                target: InjectionTarget::DynamicIndex(k),
                ..
            }) => k.saturating_add(1),
            _ => u64::MAX,
        };
        let static_pending = matches!(
            injection,
            Some(Injection {
                target: InjectionTarget::StaticInstance { .. },
                ..
            })
        );
        CMachine {
            module: self.module,
            code: self.code,
            limits: self.limits,
            memory,
            hwm: 0,
            stack_ptr: 0,
            profile: Profile::new(self.module.num_instrs),
            output: Vec::new(),
            injection,
            inj_vd,
            static_pending,
            fault_activated: false,
            conv: None,
            next_vd: u64::MAX,
            seg_hits: vec![0u64; self.code.total_pcs],
            hook,
        }
    }
}

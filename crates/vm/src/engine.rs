//! The execution-engine seam: one handle ([`Engine`]) that campaign,
//! provenance, and CLI code drive without caring whether trials run on
//! the tree-walking interpreter ([`crate::Vm`]) or the compiled
//! threaded-bytecode backend ([`CompiledVm`]).
//!
//! The two engines are observably bit-identical (see the
//! engine-equivalence contract in DESIGN.md and
//! `crates/vm/tests/engine_differential.rs`), so selecting one is a
//! pure performance decision. Snapshot *capture* always runs on the
//! interpreter — it is a once-per-campaign fault-free run, and the
//! resulting [`VmSnapshot`]s are engine-independent data that either
//! engine resumes from.

use crate::compiled::CompiledVm;
use crate::exec::{ExecLimits, Injection, ResumeScratch, RunOutput, Vm};
use crate::hooks::ExecHook;
use crate::lower::CompiledModule;
use crate::snapshot::{ConvergeMasks, ReadSets, TrialResume, VmSnapshot};
use peppa_ir::Module;

/// Which execution backend to run trials on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The tree-walking interpreter in `exec.rs` — the semantic
    /// reference.
    #[default]
    Interp,
    /// The register-allocated threaded-bytecode backend in
    /// `compiled.rs`, lowered once per module by
    /// [`CompiledModule::lower`].
    Compiled,
}

impl EngineKind {
    pub fn as_str(self) -> &'static str {
        match self {
            EngineKind::Interp => "interp",
            EngineKind::Compiled => "compiled",
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<EngineKind, String> {
        match s {
            "interp" | "interpreter" => Ok(EngineKind::Interp),
            "compiled" => Ok(EngineKind::Compiled),
            other => Err(format!(
                "unknown engine '{other}' (expected 'interp' or 'compiled')"
            )),
        }
    }
}

/// An execution engine bound to one module. Construct once per worker
/// (cheap: two references and a limits struct); the expensive
/// [`CompiledModule`] lowering is done once per campaign and shared.
pub struct Engine<'m> {
    module: &'m Module,
    limits: ExecLimits,
    compiled: Option<&'m CompiledModule>,
}

impl<'m> Engine<'m> {
    /// An engine running on the interpreter.
    pub fn interp(module: &'m Module, limits: ExecLimits) -> Engine<'m> {
        Engine {
            module,
            limits,
            compiled: None,
        }
    }

    /// An engine running on the compiled backend. `code` must be
    /// [`CompiledModule::lower`]'s output for this `module`.
    pub fn compiled(
        module: &'m Module,
        code: &'m CompiledModule,
        limits: ExecLimits,
    ) -> Engine<'m> {
        Engine {
            module,
            limits,
            compiled: Some(code),
        }
    }

    /// Dispatch on an optional pre-lowered module: `Some` selects the
    /// compiled backend, `None` the interpreter. This is the shape
    /// campaign runners use — they lower once (or not at all) up
    /// front and build per-worker engines from the shared reference.
    pub fn new(
        module: &'m Module,
        limits: ExecLimits,
        code: Option<&'m CompiledModule>,
    ) -> Engine<'m> {
        Engine {
            module,
            limits,
            compiled: code,
        }
    }

    pub fn kind(&self) -> EngineKind {
        match self.compiled {
            Some(_) => EngineKind::Compiled,
            None => EngineKind::Interp,
        }
    }

    fn vm(&self) -> Vm<'m> {
        Vm::new(self.module, self.limits)
    }

    fn cvm(&self) -> Option<CompiledVm<'m>> {
        self.compiled
            .map(|code| CompiledVm::new(self.module, code, self.limits))
    }

    pub fn run(&self, input_bits: &[u64], injection: Option<Injection>) -> RunOutput {
        match self.cvm() {
            Some(c) => c.run(input_bits, injection),
            None => self.vm().run(input_bits, injection),
        }
    }

    pub fn run_numeric(&self, inputs: &[f64], injection: Option<Injection>) -> RunOutput {
        match self.cvm() {
            Some(c) => c.run_numeric(inputs, injection),
            None => self.vm().run_numeric(inputs, injection),
        }
    }

    /// Full trial run that amortizes the per-run memory image across
    /// trials via `scratch` (one per worker thread). On the compiled
    /// backend this skips the `memory_words` zero-allocation that
    /// dominates short trials; the interpreter path is identical to
    /// [`Engine::run_numeric`] (the scratch is simply unused there —
    /// amortization is a compiled-backend feature, and the engines
    /// stay observably bit-identical either way).
    pub fn run_numeric_amortized(
        &self,
        scratch: &mut ResumeScratch,
        inputs: &[f64],
        injection: Option<Injection>,
    ) -> RunOutput {
        match self.cvm() {
            Some(c) => {
                let bits = crate::inputs::encode_inputs(self.module.entry_func(), inputs);
                c.run_amortized(scratch, &bits, injection)
            }
            None => self.vm().run_numeric(inputs, injection),
        }
    }

    pub fn run_with_hook<H: ExecHook>(
        &self,
        input_bits: &[u64],
        injection: Option<Injection>,
        hook: &mut H,
    ) -> RunOutput {
        match self.cvm() {
            Some(c) => c.run_with_hook(input_bits, injection, hook),
            None => self.vm().run_with_hook(input_bits, injection, hook),
        }
    }

    /// Snapshot capture — always the interpreter (see module docs);
    /// the snapshots resume on either engine.
    pub fn run_with_snapshots(
        &self,
        input_bits: &[u64],
        points: &[u64],
    ) -> (RunOutput, Vec<VmSnapshot>) {
        self.vm().run_with_snapshots(input_bits, points)
    }

    /// Snapshot + read-set capture — always the interpreter.
    pub fn run_with_snapshots_read_sets(
        &self,
        input_bits: &[u64],
        points: &[u64],
    ) -> (RunOutput, Vec<VmSnapshot>, ReadSets) {
        self.vm().run_with_snapshots_read_sets(input_bits, points)
    }

    pub fn resume_from(&self, snap: &VmSnapshot, injection: Option<Injection>) -> RunOutput {
        match self.cvm() {
            Some(c) => c.resume_from(snap, injection),
            None => self.vm().resume_from(snap, injection),
        }
    }

    pub fn resume_from_with_hook<H: ExecHook>(
        &self,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        hook: &mut H,
    ) -> RunOutput {
        match self.cvm() {
            Some(c) => c.resume_from_with_hook(snap, injection, hook),
            None => self.vm().resume_from_with_hook(snap, injection, hook),
        }
    }

    pub fn resume_trial(
        &self,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        checkpoints: &[VmSnapshot],
    ) -> TrialResume {
        match self.cvm() {
            Some(c) => c.resume_trial(snap, injection, checkpoints),
            None => self.vm().resume_trial(snap, injection, checkpoints),
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub fn resume_trial_amortized(
        &self,
        scratch: &mut ResumeScratch,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        checkpoints: &[VmSnapshot],
        masks: Option<&ConvergeMasks>,
        read_sets: Option<&ReadSets>,
    ) -> TrialResume {
        match self.cvm() {
            Some(c) => {
                c.resume_trial_amortized(scratch, snap, injection, checkpoints, masks, read_sets)
            }
            None => self.vm().resume_trial_amortized(
                scratch,
                snap,
                injection,
                checkpoints,
                masks,
                read_sets,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_round_trips_through_strings() {
        for k in [EngineKind::Interp, EngineKind::Compiled] {
            assert_eq!(k.as_str().parse::<EngineKind>().unwrap(), k);
        }
        assert!("jit".parse::<EngineKind>().is_err());
        assert_eq!(EngineKind::default(), EngineKind::Interp);
    }
}

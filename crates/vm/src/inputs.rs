//! Conversion between user-facing numeric program inputs and the entry
//! function's typed parameters.
//!
//! PEPPA-X treats a program input as "a set of input arguments" (§4.2.4),
//! all numeric (§3.1.2). We carry inputs as `f64` vectors throughout the
//! search and encode them here: float parameters take the value directly,
//! integer parameters take the rounded value.

use peppa_ir::{Function, Ty};

/// Encodes a numeric input vector as raw register bits for `func`'s
/// parameters. Panics if the arity does not match.
pub fn encode_inputs(func: &Function, inputs: &[f64]) -> Vec<u64> {
    assert_eq!(
        inputs.len(),
        func.params.len(),
        "input arity mismatch for {}: got {}, need {}",
        func.name,
        inputs.len(),
        func.params.len()
    );
    inputs
        .iter()
        .zip(&func.params)
        .map(|(&x, &ty)| match ty {
            Ty::F64 => x.to_bits(),
            Ty::I64 => (x.round() as i64) as u64,
            Ty::I32 => ((x.round() as i64) as i32 as i64) as u64,
            Ty::I1 => (x != 0.0) as u64,
            Ty::Ptr => x.round().max(0.0) as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_ir::{Block, Term};

    fn f(params: Vec<Ty>) -> Function {
        Function {
            name: "t".into(),
            value_types: params.clone(),
            params,
            ret: None,
            blocks: vec![Block {
                params: vec![],
                instrs: vec![],
                term: Term::Ret { value: None },
            }],
        }
    }

    #[test]
    fn float_passthrough() {
        let func = f(vec![Ty::F64]);
        assert_eq!(encode_inputs(&func, &[2.5]), vec![2.5f64.to_bits()]);
    }

    #[test]
    fn int_rounding() {
        let func = f(vec![Ty::I64, Ty::I64]);
        assert_eq!(
            encode_inputs(&func, &[2.6, -3.4]),
            vec![3u64, (-3i64) as u64]
        );
    }

    #[test]
    fn i32_wraps_to_sign_extended() {
        let func = f(vec![Ty::I32]);
        assert_eq!(encode_inputs(&func, &[-1.0]), vec![u64::MAX]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let func = f(vec![Ty::F64]);
        encode_inputs(&func, &[1.0, 2.0]);
    }
}

//! VM state snapshots: capture a mid-run machine state once, resume it
//! many times.
//!
//! A fault-injection campaign re-executes the golden prefix of the
//! program once per trial just to reach the injection point. A
//! [`VmSnapshot`] freezes the complete interpreter state at an
//! inter-instruction boundary — the frame stack (per-frame register
//! files and program positions), the written prefix of memory, the
//! output stream, and the dynamic/value-dynamic instruction counters —
//! so [`crate::Vm::resume_from`] can restart execution mid-stream and
//! every trial only pays for the suffix after its fork point.
//!
//! Determinism contract: the interpreter is deterministic and snapshots
//! are taken at instruction boundaries, so a resumed run executes the
//! *bit-identical* instruction stream the full run would have executed
//! from that point: same dynamic indices (the counters are part of the
//! snapshot, so `InjectionTarget::DynamicIndex` sites land on the same
//! instruction), same trap/hang behaviour (the budget check uses the
//! restored `Profile::dynamic`), same outputs. Memory is stored as the
//! prefix up to the run's write high-water mark; everything beyond it
//! is provably still zero, so restoring `zeros ++ prefix` rebuilds the
//! exact image at a fraction of the cost.
//!
//! Snapshots are cheaply cloneable (`Arc`-shared) and `Send + Sync`, so
//! one capture run can feed every worker thread of a campaign.

use crate::exec::RunOutput;
use peppa_ir::FuncId;
use std::sync::Arc;

/// One frozen activation record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FrameSnap {
    pub(crate) fid: FuncId,
    pub(crate) regs: Vec<u64>,
    /// Current block index within the function.
    pub(crate) block: u32,
    /// Next instruction index within the block.
    pub(crate) instr: u32,
    /// Stack pointer to restore when this frame returns.
    pub(crate) frame_sp: u64,
}

/// The full frozen machine state (shared, immutable).
#[derive(Debug)]
pub(crate) struct SnapData {
    pub(crate) frames: Vec<FrameSnap>,
    /// First [`hwm`](Self::hwm) words of memory; every word beyond the
    /// high-water mark was never written and is still zero.
    pub(crate) mem: Vec<u64>,
    pub(crate) hwm: usize,
    /// Full memory size the run was configured with (restore sanity
    /// check — a snapshot only resumes under the same memory limit).
    pub(crate) memory_words: usize,
    pub(crate) stack_ptr: u64,
    /// Output words emitted before the capture point.
    pub(crate) output: Vec<u64>,
    /// `Profile::dynamic` at capture.
    pub(crate) dynamic: u64,
    /// `Profile::value_dynamic` at capture — the fork-point coordinate.
    pub(crate) value_dynamic: u64,
    /// `Profile::exec_counts` at capture (keeps
    /// `InjectionTarget::StaticInstance` targeting exact across resume).
    pub(crate) exec_counts: Vec<u64>,
}

/// An immutable, cheaply cloneable snapshot of a point along a run.
///
/// Captured by [`crate::Vm::run_with_snapshots`], consumed by
/// [`crate::Vm::resume_from`] / [`crate::Vm::resume_trial`]. Clones
/// share the underlying state via [`Arc`].
#[derive(Debug, Clone)]
pub struct VmSnapshot {
    data: Arc<SnapData>,
}

impl VmSnapshot {
    pub(crate) fn new(data: SnapData) -> VmSnapshot {
        VmSnapshot {
            data: Arc::new(data),
        }
    }

    pub(crate) fn data(&self) -> &SnapData {
        &self.data
    }

    /// The value-dynamic index of the capture point: the snapshot sits
    /// just before the `value_dynamic()`-th value-producing instruction
    /// executes, so it is a valid start for any injection site `k >=
    /// value_dynamic()`.
    pub fn value_dynamic(&self) -> u64 {
        self.data.value_dynamic
    }

    /// Dynamic (non-terminator) instructions executed before the
    /// capture point — the prefix a resumed trial does *not* re-run.
    pub fn dynamic(&self) -> u64 {
        self.data.dynamic
    }

    /// Call depth at the capture point.
    pub fn depth(&self) -> usize {
        self.data.frames.len()
    }

    /// Function ids of the live frames, outermost first (used to rebuild
    /// shadow-engine frame stacks on resume).
    pub fn frame_fids(&self) -> Vec<FuncId> {
        self.data.frames.iter().map(|f| f.fid).collect()
    }

    /// Approximate heap size of the captured state in bytes.
    pub fn bytes(&self) -> u64 {
        let d = &*self.data;
        let frame_words: usize = d.frames.iter().map(|f| f.regs.len() + 4).sum();
        ((d.mem.len() + d.output.len() + d.exec_counts.len() + frame_words) * 8 + 64) as u64
    }
}

/// Per-boundary live-register masks, consumed by
/// [`crate::Vm::resume_trial_amortized`] to widen convergence
/// detection: a register that is statically dead at a frame's current
/// position is never read before being overwritten on any path from
/// that point, so a corrupted value parked in it cannot influence the
/// continuation and must not block state convergence with the golden
/// run. Without masks, a benign fault that lands in a register whose
/// last use has already passed keeps the register file unequal for the
/// rest of the run and forces the trial to execute its entire suffix.
///
/// Indexing: `funcs[fid][block][boundary]` is a bitset (64 values per
/// word) over the function's value ids; `boundary` is the index of the
/// next instruction to execute (`n_instrs` = before the terminator) —
/// the same coordinates [`FrameSnap`] freezes. The VM only consumes
/// the masks; the liveness computation lives in the analysis layer
/// (`peppa_analysis::converge_masks`).
#[derive(Debug, Clone)]
pub struct ConvergeMasks {
    funcs: Vec<Vec<Vec<Vec<u64>>>>,
}

impl ConvergeMasks {
    /// Wraps raw per-function/block/boundary live-value bitset words.
    /// Soundness rests on the producer: a value missing from a mask is
    /// asserted to be dead (never read before redefinition) at that
    /// boundary.
    pub fn from_raw(funcs: Vec<Vec<Vec<Vec<u64>>>>) -> ConvergeMasks {
        ConvergeMasks { funcs }
    }

    pub(crate) fn mask(&self, fid: FuncId, block: u32, instr: u32) -> &[u64] {
        &self.funcs[fid.0 as usize][block as usize][instr as usize]
    }
}

pub(crate) fn mask_contains(words: &[u64], idx: usize) -> bool {
    words
        .get(idx / 64)
        .is_some_and(|w| w & (1 << (idx % 64)) != 0)
}

/// One memory access of a golden capture run, in execution order.
#[derive(Debug, Clone, Copy)]
pub(crate) enum AccessEv {
    Load(u32),
    Store(u32),
    /// A range zero-fill (alloca initialization, frame scrub on return):
    /// semantically a store of zero to every word in `[base, base+len)`.
    Zero {
        base: u32,
        len: u32,
    },
}

/// Memory-access trace of a golden capture run, with one mark per
/// captured snapshot recording how far the trace had progressed (and
/// the checkpoint's `value_dynamic` coordinate).
#[derive(Debug, Default)]
pub(crate) struct AccessLog {
    pub(crate) events: Vec<AccessEv>,
    /// `(events-index, value_dynamic)` per captured snapshot, in
    /// capture order.
    pub(crate) marks: Vec<(usize, u64)>,
}

/// Per-checkpoint *future read sets* of the golden run: for checkpoint
/// `j`, the sorted word addresses the golden continuation loads after
/// `j` **before overwriting them**. Computed by a single backward sweep
/// over the capture run's access trace.
///
/// Soundness (lockstep induction): suppose a faulty run reaches
/// checkpoint `j`'s `value_dynamic` with equal frame positions and
/// live registers, and its memory agrees with golden's on every
/// address in the read set. Both runs are then about to execute the
/// same instruction with the same operands. Each subsequent step
/// computes identical values (equal inputs), stores to identical
/// addresses (addresses are computed from equal registers, so any
/// word either run reads was either written identically by both since
/// `j`, or is in the read set and equal by assumption), transfers
/// control identically, and emits identical output. The faulty
/// continuation is therefore *behaviourally* identical to golden's —
/// same future outputs, same dynamic instruction count, no traps —
/// even though words outside the read set (dead memory) may differ
/// forever. This converts "a corrupted value is parked in memory that
/// is never read again" from a convergence blocker into a convergence.
///
/// It also makes the *failing* compare cheap: instead of scanning the
/// whole written image, a non-converged trial only scans the handful
/// of words the continuation actually depends on.
#[derive(Debug)]
pub struct ReadSets {
    /// `(value_dynamic, sorted word addresses)` per checkpoint.
    sets: Vec<(u64, Vec<u32>)>,
}

impl ReadSets {
    /// Backward-sweeps the access trace: walking from the end of the
    /// run towards each mark, a `Load` makes its address live and any
    /// store (including range zero-fills) kills it; the live set at a
    /// mark is exactly that checkpoint's future read set.
    pub(crate) fn from_log(log: &AccessLog, memory_words: usize) -> ReadSets {
        let mut live = vec![0u64; memory_words.div_ceil(64)];
        let mut sets: Vec<(u64, Vec<u32>)> = Vec::with_capacity(log.marks.len());
        let mut ev = log.events.len();
        for &(mark, value_dynamic) in log.marks.iter().rev() {
            while ev > mark {
                ev -= 1;
                match log.events[ev] {
                    AccessEv::Load(a) => live[a as usize / 64] |= 1 << (a % 64),
                    AccessEv::Store(a) => live[a as usize / 64] &= !(1 << (a % 64)),
                    AccessEv::Zero { base, len } => clear_range(&mut live, base, len),
                }
            }
            sets.push((value_dynamic, collect_bits(&live)));
        }
        sets.reverse();
        ReadSets { sets }
    }

    /// The read set of the checkpoint captured at `value_dynamic`, if
    /// one exists.
    pub(crate) fn set_at(&self, value_dynamic: u64) -> Option<&[u32]> {
        self.sets
            .binary_search_by_key(&value_dynamic, |(vd, _)| *vd)
            .ok()
            .map(|i| self.sets[i].1.as_slice())
    }

    /// Total words across all per-checkpoint sets (diagnostics).
    pub fn total_words(&self) -> usize {
        self.sets.iter().map(|(_, s)| s.len()).sum()
    }
}

fn clear_range(live: &mut [u64], base: u32, len: u32) {
    let (start, end) = (base as usize, base as usize + len as usize);
    let (first_w, last_w) = (start / 64, end / 64);
    if first_w == last_w {
        if len > 0 {
            live[first_w] &= !(((1u64 << (end - last_w * 64)) - 1) & !((1u64 << (start % 64)) - 1));
        }
        return;
    }
    live[first_w] &= (1u64 << (start % 64)) - 1;
    for w in &mut live[first_w + 1..last_w] {
        *w = 0;
    }
    let tail = end % 64;
    if tail != 0 {
        live[last_w] &= !((1u64 << tail) - 1);
    }
}

fn collect_bits(live: &[u64]) -> Vec<u32> {
    let mut out = Vec::new();
    for (wi, &w) in live.iter().enumerate() {
        let mut w = w;
        while w != 0 {
            let b = w.trailing_zeros();
            out.push((wi * 64) as u32 + b);
            w &= w - 1;
        }
    }
    out
}

/// Result of [`crate::Vm::resume_trial`]: either the resumed run
/// terminated normally, or its machine state became bit-identical to
/// the golden run's at a later checkpoint, which pins the rest of the
/// execution (the interpreter is deterministic, so identical state
/// implies an identical continuation) and lets the trial stop early.
#[derive(Debug)]
pub enum TrialResume {
    /// Ran to a normal end (clean exit, trap, or hang).
    Completed(RunOutput),
    /// Machine state converged with the golden checkpoint captured at
    /// `at_value_dynamic`. The continuation is exactly the golden
    /// continuation, so the final status is `Ok` unless the projected
    /// total instruction count overruns the budget, and the final
    /// output/return match golden iff the output emitted so far does.
    Converged {
        /// Fork-point coordinate of the checkpoint that matched.
        at_value_dynamic: u64,
        /// `Profile::dynamic` of the golden run at that checkpoint.
        checkpoint_dynamic: u64,
        /// `Profile::dynamic` of the resumed run when it matched (can
        /// exceed `checkpoint_dynamic` if the faulty path ran longer
        /// before converging).
        dynamic_at_exit: u64,
        /// Whether the output emitted so far equals the golden output
        /// at the checkpoint (decides benign vs SDC).
        output_matches: bool,
    },
}

//! The PIR interpreter.
//!
//! Register representation: every value is held as a canonical 64-bit
//! pattern — `i64`/`ptr` raw, `i32` sign-extended into 64 bits, `i1` as
//! 0/1, `f64` as its IEEE bits. Bit flips are applied within the value's
//! *typed* width and the result re-canonicalized, which matches LLFI
//! flipping a random bit of the destination register of the instruction's
//! width.
//!
//! The machine is an explicit frame-stack interpreter: calls push a
//! [`Frame`] and returns pop it, with no recursion on the host stack.
//! That makes the complete execution state a plain value — the frame
//! vector plus [`State`] — which is what lets [`Vm::run_with_snapshots`]
//! freeze it at any instruction boundary into a [`VmSnapshot`] and
//! [`Vm::resume_from`] thaw it later, bit-exactly.

use crate::hooks::{ExecHook, NoHook};
use crate::profile::Profile;
use crate::snapshot::{
    mask_contains, AccessEv, AccessLog, ConvergeMasks, FrameSnap, ReadSets, SnapData, TrialResume,
    VmSnapshot,
};
use peppa_ir::{
    BinOp, CastKind, FPred, FuncId, IPred, Instr, InstrId, Module, Op, Operand, Term, Ty, UnOp,
};

/// Execution traps — the "crash" failure category of the paper ("the
/// raising of a hardware trap or exception … the OS terminates the
/// program").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Load or store outside the memory segment, or through null.
    OutOfBounds { addr: u64 },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Stack allocation exhausted memory (or had a negative size).
    StackOverflow,
    /// Call depth exceeded the limit.
    CallDepth,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::OutOfBounds { addr } => write!(f, "out-of-bounds access at word {addr}"),
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::StackOverflow => write!(f, "stack allocation overflow"),
            Trap::CallDepth => write!(f, "call depth limit exceeded"),
        }
    }
}

/// Terminal status of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Clean exit.
    Ok,
    /// Crashed with a trap.
    Trap(Trap),
    /// Exceeded the dynamic-instruction budget.
    Hang,
}

impl RunStatus {
    pub fn is_ok(self) -> bool {
        matches!(self, RunStatus::Ok)
    }
}

/// Which dynamic instruction to corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionTarget {
    /// The `k`-th value-producing dynamic instruction of the whole run
    /// (0-based) — used when sampling faults uniformly over the execution.
    DynamicIndex(u64),
    /// The `instance`-th execution (0-based) of one static instruction —
    /// used for per-instruction SDC probability measurement.
    StaticInstance { sid: InstrId, instance: u64 },
}

/// A bit-flip fault specification.
///
/// The default fault model is a single bit flip (`burst == 0`), the
/// de-facto standard the paper adopts (§3.1.3). Setting `burst = k`
/// flips `k` *additional adjacent* bits — the multi-bit model used to
/// validate that single-bit campaigns do not understate SDC rates
/// (Sangchoolie et al., DSN'17, cited as [47]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    pub target: InjectionTarget,
    /// Bit position; reduced modulo the target value's typed width.
    pub bit: u32,
    /// Additional adjacent bits to flip (0 = single-bit model).
    pub burst: u8,
}

impl Injection {
    /// Single-bit flip at `bit` of the targeted dynamic instruction.
    pub fn single(target: InjectionTarget, bit: u32) -> Injection {
        Injection {
            target,
            bit,
            burst: 0,
        }
    }
}

/// Resource limits for one run.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Dynamic (non-terminator) instruction budget; exceeding it reports
    /// [`RunStatus::Hang`].
    pub max_dynamic: u64,
    /// Total memory, in 64-bit words (globals + stack).
    pub memory_words: usize,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_dynamic: 200_000_000,
            memory_words: 1 << 21,
            max_call_depth: 128,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub status: RunStatus,
    /// Words emitted by `output` instructions up to termination.
    pub output: Vec<u64>,
    /// Entry function's return value bits, if it returned one.
    pub ret: Option<u64>,
    pub profile: Profile,
    /// Whether the injection target was reached (the fault *activated*).
    pub fault_activated: bool,
    /// Final memory image, present only for [`Vm::run_capture`] — used
    /// by error-propagation tracing to diff faulty vs golden state.
    pub memory: Option<Vec<u64>>,
}

impl RunOutput {
    /// True when `self` silently corrupted data relative to `golden`:
    /// clean exit but different observable output (§2.2's SDC
    /// definition: "a mismatch between the outputs of a program's faulty
    /// execution and error-free execution").
    pub fn is_sdc_vs(&self, golden: &RunOutput) -> bool {
        self.status.is_ok() && (self.output != golden.output || self.ret != golden.ret)
    }
}

pub(crate) enum Stop {
    Trap(Trap),
    Hang,
}

/// How the driver loop ended (besides a trap or hang).
pub(crate) enum RunEnd {
    /// The entry function returned.
    Done(Option<u64>),
    /// Convergence early-exit: machine state matched a golden checkpoint.
    Converged {
        at_value_dynamic: u64,
        checkpoint_dynamic: u64,
        dynamic_at_exit: u64,
        output_matches: bool,
    },
}

/// Snapshot plumbing threaded through the driver loop. `Off` costs one
/// well-predicted branch per instruction boundary.
enum SnapCtl<'a> {
    Off,
    /// Capture a [`VmSnapshot`] at each `value_dynamic` in `points`
    /// (sorted, distinct).
    Capture {
        points: &'a [u64],
        next: usize,
        out: Vec<VmSnapshot>,
        /// Return slot for the memory-access trace: when `Some`, the
        /// run logs every load/store/zero-fill and marks each capture
        /// point, so the caller can derive per-checkpoint future read
        /// sets ([`ReadSets`]).
        log: Option<AccessLog>,
    },
    /// After the fault activates, compare machine state against each
    /// golden checkpoint when its `value_dynamic` is reached; exit early
    /// on a match (the continuation is then pinned to golden's).
    Converge {
        checkpoints: &'a [VmSnapshot],
        next: usize,
        /// Cached `value_dynamic` of `checkpoints[next]` (`u64::MAX`
        /// when exhausted), so the per-instruction boundary check is a
        /// single integer compare instead of an `Arc` dereference.
        next_vd: u64,
        /// Live-register masks widening the comparison (dead registers
        /// cannot affect the continuation and are ignored).
        masks: Option<&'a ConvergeMasks>,
        /// Golden future read sets widening the memory comparison:
        /// only words the golden continuation actually loads (before
        /// overwriting) can affect it, so everything else is ignored.
        read_sets: Option<&'a ReadSets>,
    },
}

/// Reusable memory arena for the campaign resume path.
///
/// Every run needs a zeroed `memory_words`-sized image; allocating and
/// zeroing one per trial dominates short resumed trials (the default
/// image is 16 MiB while a restored prefix is a few KiB). The scratch
/// keeps one buffer alive across trials and re-zeroes only the prefix
/// the previous trial actually dirtied — `memory[hwm..]` is never
/// written, the same invariant snapshots rest on — so a restore costs
/// O(high-water mark), not O(memory size). One scratch per worker
/// thread; the restored image is bit-identical to a fresh allocation.
pub struct ResumeScratch {
    buf: Vec<u64>,
    dirty: usize,
}

impl ResumeScratch {
    pub fn new() -> ResumeScratch {
        ResumeScratch {
            buf: Vec::new(),
            dirty: 0,
        }
    }

    /// Takes the buffer out, restored to the exact `zeros ++ prefix`
    /// image a fresh allocation would produce.
    pub(crate) fn take_restored(&mut self, words: usize, prefix: &[u64]) -> Vec<u64> {
        if self.buf.len() != words {
            self.buf = vec![0u64; words];
            self.dirty = 0;
        } else {
            let dirty = self.dirty.min(words);
            self.buf[..dirty].fill(0);
        }
        self.buf[..prefix.len()].copy_from_slice(prefix);
        std::mem::take(&mut self.buf)
    }

    pub(crate) fn put_back(&mut self, buf: Vec<u64>, hwm: usize) {
        self.buf = buf;
        self.dirty = hwm;
    }
}

impl Default for ResumeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// The interpreter. Cheap to construct; holds no run state.
pub struct Vm<'m> {
    module: &'m Module,
    limits: ExecLimits,
}

/// Canonical 64-bit representation of a value of type `ty`: `i32` is
/// kept sign-extended, `i1` is 0/1, everything else is raw bits. Public
/// because the optimizer's constant folder must produce exactly the
/// representation the engines compute with.
#[inline]
pub fn canon(ty: Ty, bits: u64) -> u64 {
    match ty {
        Ty::I1 => bits & 1,
        Ty::I32 => (bits as u32 as i32 as i64) as u64,
        _ => bits,
    }
}

#[inline]
pub(crate) fn flip_bits(ty: Ty, bits: u64, bit: u32, burst: u8) -> u64 {
    let w = ty.bits();
    let mut mask = 0u64;
    for k in 0..=burst as u32 {
        mask |= 1u64 << ((bit + k) % w);
    }
    canon(ty, bits ^ mask)
}

/// One live activation record of the explicit frame stack.
struct Frame {
    fid: FuncId,
    regs: Vec<u64>,
    /// Current block index within the function.
    block: u32,
    /// Next instruction index within the block.
    instr: u32,
    /// Stack pointer to restore when this frame returns.
    frame_sp: u64,
    /// Timer for the *caller's* call instruction, when the hook asked to
    /// time it; ends when this frame returns.
    call_timer: Option<std::time::Instant>,
}

struct State<'m, H: ExecHook> {
    module: &'m Module,
    limits: ExecLimits,
    memory: Vec<u64>,
    /// High-water mark: `memory[hwm..]` has never been written and is
    /// still zero — snapshots only store (and compare) `memory[..hwm]`.
    hwm: usize,
    stack_ptr: u64,
    profile: Profile,
    output: Vec<u64>,
    injection: Option<Injection>,
    fault_activated: bool,
    /// When set (golden capture runs only), every memory access is
    /// traced so per-checkpoint future read sets can be derived.
    access_log: Option<AccessLog>,
    hook: H,
}

impl<'m> Vm<'m> {
    pub fn new(module: &'m Module, limits: ExecLimits) -> Vm<'m> {
        Vm { module, limits }
    }

    /// Runs the entry function on encoded input bits (see
    /// [`crate::encode_inputs`]), optionally injecting one fault.
    pub fn run(&self, input_bits: &[u64], injection: Option<Injection>) -> RunOutput {
        self.run_impl(input_bits, injection, false, NoHook, &mut SnapCtl::Off)
    }

    /// Like [`run`](Self::run), but the returned [`RunOutput::memory`]
    /// holds the final memory image (even on trap or budget exhaustion),
    /// enabling state diffing between runs.
    pub fn run_capture(&self, input_bits: &[u64], injection: Option<Injection>) -> RunOutput {
        self.run_impl(input_bits, injection, true, NoHook, &mut SnapCtl::Off)
    }

    /// Like [`run`](Self::run), with an [`ExecHook`] observing each
    /// dynamic instruction (per-opcode profiling, sampled timing). The
    /// instruction loop is monomorphized over the hook type, so the
    /// hook-free paths above pay nothing for this entry point existing.
    pub fn run_with_hook<H: ExecHook>(
        &self,
        input_bits: &[u64],
        injection: Option<Injection>,
        hook: &mut H,
    ) -> RunOutput {
        self.run_impl(input_bits, injection, false, hook, &mut SnapCtl::Off)
    }

    /// Fault-free run that captures a [`VmSnapshot`] at each fork point
    /// in `points` (sorted, distinct `value_dynamic` coordinates). A
    /// point the run never reaches is skipped; the returned snapshots
    /// are in point order.
    pub fn run_with_snapshots(
        &self,
        input_bits: &[u64],
        points: &[u64],
    ) -> (RunOutput, Vec<VmSnapshot>) {
        debug_assert!(
            points.windows(2).all(|w| w[0] < w[1]),
            "fork points must be sorted and distinct"
        );
        let mut ctl = SnapCtl::Capture {
            points,
            next: 0,
            out: Vec::with_capacity(points.len()),
            log: None,
        };
        let out = self.run_impl(input_bits, None, false, NoHook, &mut ctl);
        let snaps = match ctl {
            SnapCtl::Capture { out, .. } => out,
            _ => unreachable!(),
        };
        (out, snaps)
    }

    /// [`run_with_snapshots`](Self::run_with_snapshots) that also traces
    /// the run's memory accesses and derives each checkpoint's *future
    /// read set* — the words the golden continuation loads after the
    /// checkpoint before overwriting them (see [`ReadSets`]). The sets
    /// let [`resume_trial_amortized`](Self::resume_trial_amortized)
    /// detect convergence on observable state rather than bit-identical
    /// memory.
    pub fn run_with_snapshots_read_sets(
        &self,
        input_bits: &[u64],
        points: &[u64],
    ) -> (RunOutput, Vec<VmSnapshot>, ReadSets) {
        debug_assert!(
            points.windows(2).all(|w| w[0] < w[1]),
            "fork points must be sorted and distinct"
        );
        assert!(
            self.limits.memory_words <= u32::MAX as usize,
            "access tracing addresses memory with u32 word indices"
        );
        let mut ctl = SnapCtl::Capture {
            points,
            next: 0,
            out: Vec::with_capacity(points.len()),
            log: Some(AccessLog::default()),
        };
        let out = self.run_impl(input_bits, None, false, NoHook, &mut ctl);
        let (snaps, log) = match ctl {
            SnapCtl::Capture { out, log, .. } => (out, log.expect("capture returns the log")),
            _ => unreachable!(),
        };
        let read_sets = ReadSets::from_log(&log, self.limits.memory_words);
        (out, snaps, read_sets)
    }

    /// Resumes execution from `snap` to a normal end. With an injection
    /// whose site lies at or after the snapshot's
    /// [`value_dynamic`](VmSnapshot::value_dynamic), the result is
    /// bit-identical to a full run with the same injection.
    pub fn resume_from(&self, snap: &VmSnapshot, injection: Option<Injection>) -> RunOutput {
        match self.resume_impl(snap, injection, false, NoHook, &[], None, None, None) {
            TrialResume::Completed(out) => out,
            TrialResume::Converged { .. } => unreachable!("no checkpoints supplied"),
        }
    }

    /// Like [`resume_from`](Self::resume_from), capturing the final
    /// memory image in [`RunOutput::memory`].
    pub fn resume_capture(&self, snap: &VmSnapshot, injection: Option<Injection>) -> RunOutput {
        match self.resume_impl(snap, injection, true, NoHook, &[], None, None, None) {
            TrialResume::Completed(out) => out,
            TrialResume::Converged { .. } => unreachable!("no checkpoints supplied"),
        }
    }

    /// Like [`resume_from`](Self::resume_from), with an [`ExecHook`]
    /// re-attached mid-stream. The hook only observes the suffix; shadow
    /// engines that mirror interpreter state (e.g.
    /// [`crate::TaintHook`]) must be initialized from the same snapshot
    /// (see [`crate::TaintHook::resumed`]).
    pub fn resume_from_with_hook<H: ExecHook>(
        &self,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        hook: &mut H,
    ) -> RunOutput {
        match self.resume_impl(snap, injection, false, hook, &[], None, None, None) {
            TrialResume::Completed(out) => out,
            TrialResume::Converged { .. } => unreachable!("no checkpoints supplied"),
        }
    }

    /// Campaign fast path: resumes from `snap` and, once the fault has
    /// activated, compares machine state against each later golden
    /// `checkpoint` as its fork point is reached. On a match the run
    /// stops early ([`TrialResume::Converged`]) — determinism pins the
    /// continuation to golden's, so the final outcome is already known.
    pub fn resume_trial(
        &self,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        checkpoints: &[VmSnapshot],
    ) -> TrialResume {
        self.resume_impl(
            snap,
            injection,
            false,
            NoHook,
            checkpoints,
            None,
            None,
            None,
        )
    }

    /// [`resume_trial`](Self::resume_trial) with the campaign-loop
    /// amortizations: a reusable memory arena ([`ResumeScratch`]) that
    /// skips the per-trial zeroed-image allocation, and optional static
    /// live-register masks ([`ConvergeMasks`]) that let the convergence
    /// check ignore registers that are provably dead at the checkpoint.
    /// Outcome-equivalent to `resume_trial`: the arena restores the
    /// exact `zeros ++ prefix` image a fresh allocation would produce,
    /// and a masked register is never read before being overwritten, so
    /// its value cannot change the continuation.
    #[allow(clippy::too_many_arguments)]
    pub fn resume_trial_amortized(
        &self,
        scratch: &mut ResumeScratch,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        checkpoints: &[VmSnapshot],
        masks: Option<&ConvergeMasks>,
        read_sets: Option<&ReadSets>,
    ) -> TrialResume {
        self.resume_impl(
            snap,
            injection,
            false,
            NoHook,
            checkpoints,
            masks,
            read_sets,
            Some(scratch),
        )
    }

    fn run_impl<H: ExecHook>(
        &self,
        input_bits: &[u64],
        injection: Option<Injection>,
        capture: bool,
        hook: H,
        ctl: &mut SnapCtl<'_>,
    ) -> RunOutput {
        let entry = self.module.entry_func();
        assert_eq!(input_bits.len(), entry.params.len(), "entry arity mismatch");

        let mut memory = vec![0u64; self.limits.memory_words];
        let layout = self.module.global_layout();
        for (g, base) in self.module.globals.iter().zip(&layout) {
            let base = *base as usize;
            memory[base..base + g.init.len()].copy_from_slice(&g.init);
        }

        let mut state = State {
            module: self.module,
            limits: self.limits,
            stack_ptr: self.module.globals_words(),
            memory,
            hwm: self.module.globals_words() as usize,
            profile: Profile::new(self.module.num_instrs),
            output: Vec::new(),
            injection,
            fault_activated: false,
            access_log: match ctl {
                SnapCtl::Capture { log, .. } => log.take(),
                _ => None,
            },
            hook,
        };

        let args: Vec<u64> = input_bits
            .iter()
            .zip(&entry.params)
            .map(|(&b, &t)| canon(t, b))
            .collect();

        let mut frames: Vec<Frame> = Vec::new();
        let end = state
            .push_frame(&mut frames, self.module.entry, &args, None)
            .and_then(|()| state.drive(&mut frames, ctl));
        let (status, ret) = match end {
            Ok(RunEnd::Done(v)) => (RunStatus::Ok, v),
            Ok(RunEnd::Converged { .. }) => unreachable!("full runs carry no checkpoints"),
            Err(Stop::Trap(t)) => (RunStatus::Trap(t), None),
            Err(Stop::Hang) => (RunStatus::Hang, None),
        };
        if let SnapCtl::Capture { log, .. } = ctl {
            *log = state.access_log.take();
        }
        RunOutput {
            status,
            output: state.output,
            ret,
            profile: state.profile,
            fault_activated: state.fault_activated,
            memory: if capture { Some(state.memory) } else { None },
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn resume_impl<H: ExecHook>(
        &self,
        snap: &VmSnapshot,
        injection: Option<Injection>,
        capture: bool,
        hook: H,
        checkpoints: &[VmSnapshot],
        masks: Option<&ConvergeMasks>,
        read_sets: Option<&ReadSets>,
        mut scratch: Option<&mut ResumeScratch>,
    ) -> TrialResume {
        let d = snap.data();
        assert_eq!(
            d.memory_words, self.limits.memory_words,
            "snapshot captured under a different memory size"
        );
        let memory = match scratch.as_deref_mut() {
            Some(s) => s.take_restored(self.limits.memory_words, &d.mem),
            None => {
                let mut m = vec![0u64; self.limits.memory_words];
                m[..d.mem.len()].copy_from_slice(&d.mem);
                m
            }
        };

        let mut state = State {
            module: self.module,
            limits: self.limits,
            memory,
            hwm: d.hwm,
            stack_ptr: d.stack_ptr,
            profile: Profile {
                exec_counts: d.exec_counts.clone(),
                dynamic: d.dynamic,
                value_dynamic: d.value_dynamic,
            },
            output: d.output.clone(),
            injection,
            fault_activated: false,
            access_log: None,
            hook,
        };
        let mut frames: Vec<Frame> = d
            .frames
            .iter()
            .map(|f| Frame {
                fid: f.fid,
                regs: f.regs.clone(),
                block: f.block,
                instr: f.instr,
                frame_sp: f.frame_sp,
                call_timer: None,
            })
            .collect();

        let mut ctl = if checkpoints.is_empty() {
            SnapCtl::Off
        } else {
            SnapCtl::Converge {
                checkpoints,
                next: 0,
                next_vd: checkpoints
                    .first()
                    .map_or(u64::MAX, |c| c.data().value_dynamic),
                masks,
                read_sets,
            }
        };
        let end = state.drive(&mut frames, &mut ctl);
        // Hand the arena back before building the result; a capturing
        // resume keeps the image instead (it is returned to the caller).
        if let Some(s) = scratch {
            if !capture {
                let hwm = state.hwm;
                s.put_back(std::mem::take(&mut state.memory), hwm);
            }
        }
        let completed = |state: State<'m, H>, status: RunStatus, ret: Option<u64>| {
            TrialResume::Completed(RunOutput {
                status,
                output: state.output,
                ret,
                profile: state.profile,
                fault_activated: state.fault_activated,
                memory: if capture { Some(state.memory) } else { None },
            })
        };
        match end {
            Ok(RunEnd::Done(v)) => completed(state, RunStatus::Ok, v),
            Ok(RunEnd::Converged {
                at_value_dynamic,
                checkpoint_dynamic,
                dynamic_at_exit,
                output_matches,
            }) => TrialResume::Converged {
                at_value_dynamic,
                checkpoint_dynamic,
                dynamic_at_exit,
                output_matches,
            },
            Err(Stop::Trap(t)) => completed(state, RunStatus::Trap(t), None),
            Err(Stop::Hang) => completed(state, RunStatus::Hang, None),
        }
    }

    /// Convenience: golden (fault-free) run from numeric inputs.
    pub fn run_numeric(&self, inputs: &[f64], injection: Option<Injection>) -> RunOutput {
        let bits = crate::inputs::encode_inputs(self.module.entry_func(), inputs);
        self.run(&bits, injection)
    }
}

impl<'m, H: ExecHook> State<'m, H> {
    fn push_frame(
        &mut self,
        frames: &mut Vec<Frame>,
        fid: FuncId,
        args: &[u64],
        call_timer: Option<std::time::Instant>,
    ) -> Result<(), Stop> {
        if frames.len() >= self.limits.max_call_depth {
            return Err(Stop::Trap(Trap::CallDepth));
        }
        let func = self.module.func(fid);
        let mut regs = vec![0u64; func.value_types.len()];
        regs[..args.len()].copy_from_slice(args);
        frames.push(Frame {
            fid,
            regs,
            block: 0,
            instr: 0,
            frame_sp: self.stack_ptr,
            call_timer,
        });
        Ok(())
    }

    /// The driver loop: executes the top frame until the entry function
    /// returns, a trap/hang stops the run, or (in converge mode) the
    /// state matches a golden checkpoint. Every iteration starts at an
    /// instruction boundary — the only points snapshots see.
    fn drive(&mut self, frames: &mut Vec<Frame>, ctl: &mut SnapCtl<'_>) -> Result<RunEnd, Stop> {
        let module = self.module;
        let mut arg_buf: Vec<u64> = Vec::new();
        loop {
            // Cheap per-boundary gate: the heavy snapshot/convergence
            // bookkeeping only runs when the next interesting
            // `value_dynamic` coordinate has actually been reached.
            let boundary_due = match ctl {
                SnapCtl::Off => false,
                SnapCtl::Capture { points, next, .. } => {
                    *next < points.len() && self.profile.value_dynamic >= points[*next]
                }
                SnapCtl::Converge { next_vd, .. } => self.profile.value_dynamic >= *next_vd,
            };
            if boundary_due {
                if let Some(end) = self.snapshot_boundary(frames, ctl) {
                    return Ok(end);
                }
            }
            let frame = frames.last_mut().expect("drive on empty frame stack");
            let func = module.func(frame.fid);
            let block = &func.blocks[frame.block as usize];
            if (frame.instr as usize) < block.instrs.len() {
                let ins = &block.instrs[frame.instr as usize];
                self.profile.dynamic += 1;
                if self.profile.dynamic > self.limits.max_dynamic {
                    return Err(Stop::Hang);
                }
                self.profile.exec_counts[ins.sid.0 as usize] += 1;
                let timer = if H::ENABLED && self.hook.begin_instr(ins) {
                    Some(std::time::Instant::now())
                } else {
                    None
                };
                if let Op::Call { func: callee, args } = &ins.op {
                    let vals: Vec<u64> = args.iter().map(|a| eval(&frame.regs, a)).collect();
                    if H::ENABLED {
                        self.hook.call_enter(ins, *callee);
                    }
                    self.push_frame(frames, *callee, &vals, timer)?;
                    continue;
                }
                let computed = self.exec_instr(func, ins, &mut frame.regs)?;
                self.finish_instr(func, ins, computed, &mut frame.regs);
                frame.instr += 1;
                if let Some(t0) = timer {
                    self.hook.end_instr(ins, t0.elapsed().as_nanos() as u64);
                }
            } else {
                match &block.term {
                    Term::Br { target, args } => {
                        arg_buf.clear();
                        arg_buf.extend(args.iter().map(|a| eval(&frame.regs, a)));
                        let t = &func.blocks[target.0 as usize];
                        if H::ENABLED {
                            self.hook.branch_transfer(None, &t.params, args);
                        }
                        for (&p, &v) in t.params.iter().zip(&arg_buf) {
                            frame.regs[p.0 as usize] = v;
                        }
                        frame.block = target.0;
                        frame.instr = 0;
                    }
                    Term::CondBr {
                        cond,
                        then_target,
                        then_args,
                        else_target,
                        else_args,
                    } => {
                        let c = eval(&frame.regs, cond) & 1;
                        let (target, targs) = if c != 0 {
                            (then_target, then_args)
                        } else {
                            (else_target, else_args)
                        };
                        arg_buf.clear();
                        arg_buf.extend(targs.iter().map(|a| eval(&frame.regs, a)));
                        let t = &func.blocks[target.0 as usize];
                        if H::ENABLED {
                            self.hook.branch_transfer(Some(cond), &t.params, targs);
                        }
                        for (&p, &v) in t.params.iter().zip(&arg_buf) {
                            frame.regs[p.0 as usize] = v;
                        }
                        frame.block = target.0;
                        frame.instr = 0;
                    }
                    Term::Ret { value } => {
                        if H::ENABLED {
                            self.hook.func_ret(value.as_ref());
                        }
                        let v = value.as_ref().map(|x| eval(&frame.regs, x));
                        // Stack memory is zero-initialized: scrub the
                        // frame's alloca region on return so popped data
                        // never leaks into a later frame and — crucially —
                        // so a corrupted value parked in a dead frame slot
                        // cannot keep a faulty run's memory image unequal
                        // to golden's after the frame is gone.
                        let freed = frame.frame_sp as usize..self.stack_ptr as usize;
                        if !freed.is_empty() {
                            let len = (freed.end - freed.start) as u64;
                            self.memory[freed].fill(0);
                            if let Some(l) = &mut self.access_log {
                                l.events.push(AccessEv::Zero {
                                    base: frame.frame_sp as u32,
                                    len: len as u32,
                                });
                            }
                            if H::ENABLED {
                                self.hook.mem_clear(frame.frame_sp, len);
                            }
                        }
                        self.stack_ptr = frame.frame_sp;
                        let timer = frame.call_timer;
                        frames.pop();
                        match frames.last_mut() {
                            None => return Ok(RunEnd::Done(v)),
                            Some(caller) => {
                                let cfunc = module.func(caller.fid);
                                let cins = &cfunc.blocks[caller.block as usize].instrs
                                    [caller.instr as usize];
                                self.finish_instr(cfunc, cins, v, &mut caller.regs);
                                caller.instr += 1;
                                if let Some(t0) = timer {
                                    self.hook.end_instr(cins, t0.elapsed().as_nanos() as u64);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Snapshot bookkeeping at an instruction boundary; returns an early
    /// end when a convergence checkpoint matches.
    #[cold]
    fn snapshot_boundary(&mut self, frames: &[Frame], ctl: &mut SnapCtl<'_>) -> Option<RunEnd> {
        match ctl {
            SnapCtl::Off => None,
            SnapCtl::Capture {
                points, next, out, ..
            } => {
                while *next < points.len() && self.profile.value_dynamic >= points[*next] {
                    if self.profile.value_dynamic == points[*next] {
                        out.push(self.capture(frames));
                        if let Some(l) = &mut self.access_log {
                            l.marks.push((l.events.len(), self.profile.value_dynamic));
                        }
                    }
                    *next += 1;
                }
                None
            }
            SnapCtl::Converge {
                checkpoints,
                next,
                next_vd,
                masks,
                read_sets,
            } => {
                let mut matched = None;
                while *next < checkpoints.len() {
                    let cp = checkpoints[*next].data();
                    if cp.value_dynamic < self.profile.value_dynamic
                        || (cp.value_dynamic == self.profile.value_dynamic && !self.fault_activated)
                    {
                        // Passed pre-activation: identical-to-golden by
                        // construction, exiting here would misclassify a
                        // not-yet-injected trial.
                        *next += 1;
                        continue;
                    }
                    if cp.value_dynamic > self.profile.value_dynamic {
                        break;
                    }
                    *next += 1;
                    if self.state_matches(cp, frames, *masks, *read_sets) {
                        matched = Some(RunEnd::Converged {
                            at_value_dynamic: cp.value_dynamic,
                            checkpoint_dynamic: cp.dynamic,
                            dynamic_at_exit: self.profile.dynamic,
                            output_matches: self.output == cp.output,
                        });
                        break;
                    }
                }
                *next_vd = checkpoints
                    .get(*next)
                    .map_or(u64::MAX, |c| c.data().value_dynamic);
                matched
            }
        }
    }

    fn capture(&self, frames: &[Frame]) -> VmSnapshot {
        VmSnapshot::new(SnapData {
            frames: frames
                .iter()
                .map(|f| FrameSnap {
                    fid: f.fid,
                    regs: f.regs.clone(),
                    block: f.block,
                    instr: f.instr,
                    frame_sp: f.frame_sp,
                })
                .collect(),
            mem: self.memory[..self.hwm].to_vec(),
            hwm: self.hwm,
            memory_words: self.limits.memory_words,
            stack_ptr: self.stack_ptr,
            output: self.output.clone(),
            dynamic: self.profile.dynamic,
            value_dynamic: self.profile.value_dynamic,
            exec_counts: self.profile.exec_counts.clone(),
        })
    }

    /// Machine-state equality against a golden checkpoint. Cheap
    /// discriminators (stack pointer, frame positions, registers) run
    /// first; the memory compare is bounded by the high-water marks —
    /// both sides are provably zero beyond them. With `masks`, register
    /// comparison skips values that are statically dead at the frame's
    /// position: they are never read before being overwritten on any
    /// path, so a differing value parked there cannot change the
    /// continuation (see [`ConvergeMasks`]). With `read_sets`, the
    /// memory comparison checks only the checkpoint's future read set —
    /// the words the golden continuation loads before overwriting them;
    /// agreement there pins the continuation behaviourally even when
    /// dead memory differs (see [`ReadSets`]).
    fn state_matches(
        &self,
        cp: &SnapData,
        frames: &[Frame],
        masks: Option<&ConvergeMasks>,
        read_sets: Option<&ReadSets>,
    ) -> bool {
        if self.stack_ptr != cp.stack_ptr || frames.len() != cp.frames.len() {
            return false;
        }
        for (f, s) in frames.iter().zip(&cp.frames) {
            if f.fid != s.fid
                || f.block != s.block
                || f.instr != s.instr
                || f.frame_sp != s.frame_sp
            {
                return false;
            }
            match masks {
                None => {
                    if f.regs != s.regs {
                        return false;
                    }
                }
                Some(m) => {
                    let live = m.mask(f.fid, f.block, f.instr);
                    for (i, (a, b)) in f.regs.iter().zip(&s.regs).enumerate() {
                        if a != b && mask_contains(live, i) {
                            return false;
                        }
                    }
                }
            }
        }
        if let Some(set) = read_sets.and_then(|r| r.set_at(cp.value_dynamic)) {
            return set
                .iter()
                .all(|&a| self.memory[a as usize] == cp.mem.get(a as usize).copied().unwrap_or(0));
        }
        if self.memory[..cp.hwm] != cp.mem[..] {
            return false;
        }
        // Anything the faulty run wrote beyond the golden high-water
        // mark must have been zeroed again for the states to be equal.
        self.memory[cp.hwm..self.hwm.max(cp.hwm)]
            .iter()
            .all(|&w| w == 0)
    }

    /// Computes one non-call instruction. Returns the value to write to
    /// the result register, if any; the write itself (with fault
    /// injection) happens in [`finish_instr`](Self::finish_instr).
    #[inline]
    fn exec_instr(
        &mut self,
        func: &peppa_ir::Function,
        ins: &Instr,
        regs: &mut [u64],
    ) -> Result<Option<u64>, Stop> {
        let computed: Option<u64> = match &ins.op {
            Op::Bin { op, a, b } => {
                let ty = func.operand_ty(a);
                Some(exec_bin(*op, ty, eval(regs, a), eval(regs, b))?)
            }
            Op::Un { op, a } => {
                let ty = func.operand_ty(a);
                Some(exec_un(*op, ty, eval(regs, a)))
            }
            Op::Icmp { pred, a, b } => Some(exec_icmp(*pred, eval(regs, a), eval(regs, b))),
            Op::Fcmp { pred, a, b } => Some(exec_fcmp(*pred, eval(regs, a), eval(regs, b))),
            Op::Select { cond, t, f } => {
                let c = eval(regs, cond) & 1;
                Some(if c != 0 { eval(regs, t) } else { eval(regs, f) })
            }
            Op::Cast { kind, a, to } => {
                let from = func.operand_ty(a);
                Some(exec_cast(*kind, from, *to, eval(regs, a)))
            }
            Op::Load { addr, ty } => {
                let p = eval(regs, addr);
                let word = self.mem_read(p)?;
                if let Some(l) = &mut self.access_log {
                    l.events.push(AccessEv::Load(p as u32));
                }
                if H::ENABLED {
                    self.hook.mem_load(ins, p, word);
                }
                Some(canon(*ty, word))
            }
            Op::Store { addr, value } => {
                let p = eval(regs, addr);
                let v = eval(regs, value);
                self.mem_write(p, v)?;
                if let Some(l) = &mut self.access_log {
                    l.events.push(AccessEv::Store(p as u32));
                }
                if H::ENABLED {
                    self.hook.mem_store(ins, p, v);
                }
                None
            }
            Op::Gep { base, index } => Some(eval(regs, base).wrapping_add(eval(regs, index))),
            Op::Alloca { words } => {
                let w = eval(regs, words) as i64;
                if w < 0 {
                    return Err(Stop::Trap(Trap::StackOverflow));
                }
                let base = self.stack_ptr;
                let end = base
                    .checked_add(w as u64)
                    .ok_or(Stop::Trap(Trap::StackOverflow))?;
                if end > self.memory.len() as u64 {
                    return Err(Stop::Trap(Trap::StackOverflow));
                }
                self.memory[base as usize..end as usize].fill(0);
                self.hwm = self.hwm.max(end as usize);
                if let Some(l) = &mut self.access_log {
                    l.events.push(AccessEv::Zero {
                        base: base as u32,
                        len: w as u32,
                    });
                }
                if H::ENABLED {
                    self.hook.mem_clear(base, w as u64);
                }
                self.stack_ptr = end;
                Some(base)
            }
            Op::Call { .. } => unreachable!("calls are handled by the driver loop"),
            Op::Output { value } => {
                let v = eval(regs, value);
                self.output.push(v);
                None
            }
        };
        Ok(computed)
    }

    /// Result write for a value-producing instruction: bumps the
    /// value-dynamic counter, applies a pending fault injection, stores
    /// the (possibly flipped) bits, and notifies the hook. Calls reach
    /// this when their frame pops.
    #[inline]
    fn finish_instr(
        &mut self,
        func: &peppa_ir::Function,
        ins: &Instr,
        computed: Option<u64>,
        regs: &mut [u64],
    ) {
        if let Some(r) = ins.result {
            let mut bits = computed.expect("value instruction computed nothing");
            self.profile.value_dynamic += 1;
            if let Some(inj) = self.injection {
                if !self.fault_activated && self.hits(ins, inj) {
                    let flipped = flip_bits(func.ty_of(r), bits, inj.bit, inj.burst);
                    if H::ENABLED {
                        self.hook.fault_injected(ins, bits ^ flipped);
                    }
                    bits = flipped;
                    self.fault_activated = true;
                }
            }
            regs[r.0 as usize] = bits;
            if H::ENABLED {
                self.hook.def_value(ins, bits);
            }
        }
    }

    #[inline]
    fn hits(&self, ins: &Instr, inj: Injection) -> bool {
        match inj.target {
            InjectionTarget::DynamicIndex(k) => self.profile.value_dynamic - 1 == k,
            InjectionTarget::StaticInstance { sid, instance } => {
                ins.sid == sid && self.profile.exec_counts[sid.0 as usize] - 1 == instance
            }
        }
    }

    #[inline]
    fn mem_read(&self, addr: u64) -> Result<u64, Stop> {
        if addr == 0 || addr >= self.memory.len() as u64 {
            return Err(Stop::Trap(Trap::OutOfBounds { addr }));
        }
        Ok(self.memory[addr as usize])
    }

    #[inline]
    fn mem_write(&mut self, addr: u64, value: u64) -> Result<(), Stop> {
        if addr == 0 || addr >= self.memory.len() as u64 {
            return Err(Stop::Trap(Trap::OutOfBounds { addr }));
        }
        self.memory[addr as usize] = value;
        if addr as usize >= self.hwm {
            self.hwm = addr as usize + 1;
        }
        Ok(())
    }
}

#[inline]
pub(crate) fn eval(regs: &[u64], op: &Operand) -> u64 {
    match op {
        Operand::Value(v) => regs[v.0 as usize],
        Operand::Const(c) => canon(c.ty, c.bits),
    }
}

#[inline]
pub(crate) fn exec_bin(op: BinOp, ty: Ty, a: u64, b: u64) -> Result<u64, Stop> {
    exec_bin_checked(op, ty, a, b).ok_or(Stop::Trap(Trap::DivByZero))
}

/// Bit-exact binary-op semantics shared by both engines and the
/// optimizer's constant folder. `None` means the operation traps
/// (integer division/remainder by zero).
#[inline]
pub fn exec_bin_checked(op: BinOp, ty: Ty, a: u64, b: u64) -> Option<u64> {
    let r = match op {
        BinOp::Add => (a as i64).wrapping_add(b as i64) as u64,
        BinOp::Sub => (a as i64).wrapping_sub(b as i64) as u64,
        BinOp::Mul => (a as i64).wrapping_mul(b as i64) as u64,
        BinOp::SDiv => {
            let (x, y) = (a as i64, b as i64);
            if y == 0 {
                return None;
            }
            x.wrapping_div(y) as u64
        }
        BinOp::SRem => {
            let (x, y) = (a as i64, b as i64);
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y) as u64
        }
        BinOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        BinOp::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        BinOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        BinOp::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        // Shift counts are masked to the type width (deterministic
        // behaviour even when a flipped bit lands in a shift amount).
        BinOp::Shl => a << (b & (ty.bits() as u64 - 1).max(1)),
        BinOp::LShr => {
            let w = ty.bits();
            let masked = if w == 64 { a } else { a & ((1u64 << w) - 1) };
            masked >> (b & (w as u64 - 1).max(1))
        }
        BinOp::AShr => ((a as i64) >> (b & (ty.bits() as u64 - 1).max(1))) as u64,
    };
    Some(canon(ty, r))
}

/// Bit-exact integer-compare semantics (operands in canonical form).
#[inline]
pub fn exec_icmp(pred: IPred, a: u64, b: u64) -> u64 {
    let (x, y) = (a as i64, b as i64);
    let r = match pred {
        IPred::Eq => x == y,
        IPred::Ne => x != y,
        IPred::Slt => x < y,
        IPred::Sle => x <= y,
        IPred::Sgt => x > y,
        IPred::Sge => x >= y,
        IPred::Ult => (x as u64) < (y as u64),
    };
    r as u64
}

/// Bit-exact float-compare semantics (ordered: NaN compares false).
#[inline]
pub fn exec_fcmp(pred: FPred, a: u64, b: u64) -> u64 {
    let x = f64::from_bits(a);
    let y = f64::from_bits(b);
    let r = match pred {
        FPred::Oeq => x == y,
        FPred::One => x != y && !x.is_nan() && !y.is_nan(),
        FPred::Olt => x < y,
        FPred::Ole => x <= y,
        FPred::Ogt => x > y,
        FPred::Oge => x >= y,
    };
    r as u64
}

/// Bit-exact unary-op semantics shared by both engines and the
/// optimizer's constant folder.
#[inline]
pub fn exec_un(op: UnOp, ty: Ty, a: u64) -> u64 {
    let r = match op {
        UnOp::FNeg => (-f64::from_bits(a)).to_bits(),
        UnOp::Not => !a,
        UnOp::Sqrt => f64::from_bits(a).sqrt().to_bits(),
        UnOp::Sin => f64::from_bits(a).sin().to_bits(),
        UnOp::Cos => f64::from_bits(a).cos().to_bits(),
        UnOp::Exp => f64::from_bits(a).exp().to_bits(),
        UnOp::Log => f64::from_bits(a).ln().to_bits(),
        UnOp::Floor => f64::from_bits(a).floor().to_bits(),
        UnOp::FAbs => f64::from_bits(a).abs().to_bits(),
    };
    canon(ty, r)
}

/// Bit-exact cast semantics shared by both engines and the optimizer's
/// constant folder (`FpToSi` saturates; see [`CastKind`] docs).
#[inline]
pub fn exec_cast(kind: CastKind, from: Ty, to: Ty, a: u64) -> u64 {
    match kind {
        CastKind::Trunc | CastKind::Bitcast | CastKind::PtrToInt | CastKind::IntToPtr => {
            canon(to, a)
        }
        CastKind::ZExt => {
            // Zero-extension uses the *unsigned* narrow value.
            let narrow = from.truncate_bits(a);
            canon(to, narrow)
        }
        CastKind::SExt => {
            if from == Ty::I1 {
                if a & 1 != 0 {
                    u64::MAX
                } else {
                    0
                }
            } else {
                a // i32 is already canonically sign-extended
            }
        }
        CastKind::FpToSi => {
            let x = f64::from_bits(a);
            match to {
                Ty::I32 => ((x as i32) as i64) as u64,
                _ => (x as i64) as u64,
            }
        }
        CastKind::SiToFp => {
            let v = if from == Ty::I1 {
                (a & 1) as i64
            } else {
                a as i64
            };
            (v as f64).to_bits()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_ir::{IPred, ModuleBuilder, Operand};

    /// sum = 0; for i in 0..n { sum += i*i }; output sum
    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("loop");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let n = f.param(0);
        let (head, hv) = f.new_block(&[Ty::I64, Ty::I64]); // i, sum
        let (body, _) = f.new_block(&[]);
        let (exit, _) = f.new_block(&[]);
        f.br(head, &[Operand::i64(0), Operand::i64(0)]);
        f.switch_to(head);
        let c = f.icmp(IPred::Slt, hv[0], n);
        f.cond_br(c, body, &[], exit, &[]);
        f.switch_to(body);
        let sq = f.mul(hv[0], hv[0]);
        let sum2 = f.add(hv[1], sq);
        let i2 = f.add(hv[0], Operand::i64(1));
        f.br(head, &[i2, sum2]);
        f.switch_to(exit);
        f.output(hv[1]);
        f.ret(Some(hv[1]));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        m
    }

    #[test]
    fn sum_of_squares() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let out = vm.run_numeric(&[5.0], None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.output, vec![30]); // 0+1+4+9+16
        assert_eq!(out.ret, Some(30));
    }

    #[test]
    fn profile_counts_loop_iterations() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let out = vm.run_numeric(&[10.0], None);
        // icmp executes 11 times; mul/add/add 10 times; output once.
        assert_eq!(out.profile.exec_counts[0], 11);
        assert_eq!(out.profile.exec_counts[1], 10);
        assert_eq!(out.profile.dynamic, 11 + 30 + 1);
        // All but `output` produce values.
        assert_eq!(out.profile.value_dynamic, 11 + 30);
    }

    #[test]
    fn hang_on_budget() {
        let m = loop_module();
        let vm = Vm::new(
            &m,
            ExecLimits {
                max_dynamic: 50,
                ..Default::default()
            },
        );
        let out = vm.run_numeric(&[1e9 /* huge */], None);
        assert_eq!(out.status, RunStatus::Hang);
    }

    #[test]
    fn injected_fault_changes_output() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let golden = vm.run_numeric(&[5.0], None);
        // Flip bit 3 of the first mul result (dynamic value index 1 is the
        // first mul: index 0 is the first icmp).
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(1),
            bit: 3,
            burst: 0,
        };
        let faulty = vm.run_numeric(&[5.0], Some(inj));
        assert!(faulty.fault_activated);
        assert!(faulty.is_sdc_vs(&golden));
        // 0*0=0 flipped bit3 -> 8; totals 30 -> 38.
        assert_eq!(faulty.output, vec![38]);
    }

    #[test]
    fn injection_into_icmp_takes_wrong_branch() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let golden = vm.run_numeric(&[5.0], None);
        // Flip the very first icmp (i -> loop exits immediately, sum 0).
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(0),
            bit: 0,
            burst: 0,
        };
        let faulty = vm.run_numeric(&[5.0], Some(inj));
        assert_eq!(faulty.status, RunStatus::Ok);
        assert_eq!(faulty.output, vec![0]);
        assert!(faulty.is_sdc_vs(&golden));
    }

    #[test]
    fn static_instance_targeting() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        // mul is sid 1; instance 3 computes 3*3=9; flip bit 0 -> 8.
        let inj = Injection {
            target: InjectionTarget::StaticInstance {
                sid: InstrId(1),
                instance: 3,
            },
            bit: 0,
            burst: 0,
        };
        let faulty = vm.run_numeric(&[5.0], Some(inj));
        assert!(faulty.fault_activated);
        assert_eq!(faulty.output, vec![29]); // 30 - 1
    }

    #[test]
    fn fault_not_activated_when_target_beyond_run() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(10_000),
            bit: 0,
            burst: 0,
        };
        let out = vm.run_numeric(&[5.0], Some(inj));
        assert!(!out.fault_activated);
        assert_eq!(out.output, vec![30]);
    }

    fn mem_module() -> Module {
        // Writes param into g[idx] then reads g[idx] back; traps if idx OOB.
        let mut mb = ModuleBuilder::new("mem");
        let g = mb.global("g", 4);
        let main = mb.declare("main", &[Ty::I64, Ty::F64], Some(Ty::F64));
        let mut f = mb.define(main);
        let idx = f.param(0);
        let val = f.param(1);
        let p = f.gep(g, idx);
        let vb = f.cast(CastKind::Bitcast, val, Ty::I64);
        f.store(p, vb);
        let l = f.load(p, Ty::F64);
        f.output(l);
        f.ret(Some(l));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        m
    }

    #[test]
    fn memory_roundtrip() {
        let m = mem_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let out = vm.run_numeric(&[2.0, 6.25], None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.ret, Some(6.25f64.to_bits()));
    }

    #[test]
    fn oob_store_traps() {
        let m = mem_module();
        let vm = Vm::new(
            &m,
            ExecLimits {
                memory_words: 64,
                ..Default::default()
            },
        );
        let out = vm.run_numeric(&[1000.0, 1.0], None);
        assert!(matches!(
            out.status,
            RunStatus::Trap(Trap::OutOfBounds { .. })
        ));
    }

    #[test]
    fn flipped_pointer_crashes() {
        let m = mem_module();
        let vm = Vm::new(
            &m,
            ExecLimits {
                memory_words: 64,
                ..Default::default()
            },
        );
        // Flip a high bit of the gep result -> wild address -> trap.
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(0),
            bit: 40,
            burst: 0,
        };
        let out = vm.run_numeric(&[2.0, 1.5], Some(inj));
        assert!(matches!(
            out.status,
            RunStatus::Trap(Trap::OutOfBounds { .. })
        ));
    }

    #[test]
    fn div_by_zero_traps() {
        let mut mb = ModuleBuilder::new("div");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let q = f.bin(BinOp::SDiv, Operand::i64(100), x);
        f.ret(Some(q));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let vm = Vm::new(&m, ExecLimits::default());
        assert_eq!(
            vm.run_numeric(&[0.0], None).status,
            RunStatus::Trap(Trap::DivByZero)
        );
        assert_eq!(vm.run_numeric(&[4.0], None).ret, Some(25));
    }

    #[test]
    fn alloca_scopes_per_call() {
        // callee allocas 8 words each call; calling twice must not leak.
        let mut mb = ModuleBuilder::new("alloca");
        let callee = mb.declare("callee", &[Ty::I64], Some(Ty::I64));
        let main = mb.declare("main", &[], Some(Ty::I64));
        {
            let mut f = mb.define(callee);
            let x = f.param(0);
            let buf = f.alloca(Operand::i64(8));
            f.store(buf, x);
            let v = f.load(buf, Ty::I64);
            f.ret(Some(v));
            f.finish();
        }
        {
            let mut f = mb.define(main);
            let a = f.call(callee, &[Operand::i64(11)]).unwrap();
            let b = f.call(callee, &[Operand::i64(31)]).unwrap();
            let s = f.add(a, b);
            f.output(s);
            f.ret(Some(s));
            f.finish();
        }
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        // Memory just big enough for one frame's alloca at a time.
        let vm = Vm::new(
            &m,
            ExecLimits {
                memory_words: 12,
                ..Default::default()
            },
        );
        let out = vm.run_numeric(&[], None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.ret, Some(42));
    }

    #[test]
    fn recursion_depth_trap() {
        let mut mb = ModuleBuilder::new("rec");
        let f_id = mb.declare("f", &[Ty::I64], Some(Ty::I64));
        {
            let mut f = mb.define(f_id);
            let x = f.param(0);
            let r = f.call(f_id, &[x]).unwrap();
            f.ret(Some(r));
            f.finish();
        }
        mb.set_entry(f_id);
        let m = mb.finish();
        let vm = Vm::new(
            &m,
            ExecLimits {
                max_call_depth: 16,
                ..Default::default()
            },
        );
        assert_eq!(
            vm.run_numeric(&[1.0], None).status,
            RunStatus::Trap(Trap::CallDepth)
        );
    }

    #[test]
    fn i32_canonicalization_after_flip() {
        // Flipping bit 31 of an i32 changes the sign and stays canonical.
        let mut mb = ModuleBuilder::new("i32");
        let main = mb.declare("main", &[], Some(Ty::I64));
        let mut f = mb.define(main);
        let v = f.bin(BinOp::Add, Operand::i32(1), Operand::i32(0));
        let w = f.cast(CastKind::SExt, v, Ty::I64);
        f.output(w);
        f.ret(Some(w));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let vm = Vm::new(&m, ExecLimits::default());
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(0),
            bit: 31,
            burst: 0,
        };
        let out = vm.run_numeric(&[], Some(inj));
        assert_eq!(out.ret, Some((1i64 + i32::MIN as i64) as u64));
    }

    #[test]
    fn hook_counts_match_profile() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let bits = crate::inputs::encode_inputs(m.entry_func(), &[10.0]);
        let mut prof = crate::hooks::OpcodeProfile::new(1);
        let out = vm.run_with_hook(&bits, None, &mut prof);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(prof.total(), out.profile.dynamic);
        for (sid, c) in out.profile.exec_counts.iter().enumerate() {
            assert_eq!(prof.sid_count(InstrId(sid as u32)), *c, "sid {sid}");
        }
        let table = prof.hot_table(&m, 3);
        assert!(table.contains("icmp"), "{table}");
    }

    #[test]
    fn hooked_run_output_matches_plain_run() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let bits = crate::inputs::encode_inputs(m.entry_func(), &[7.0]);
        let plain = vm.run(&bits, None);
        let mut prof = crate::hooks::OpcodeProfile::default();
        let hooked = vm.run_with_hook(&bits, None, &mut prof);
        assert_eq!(plain.output, hooked.output);
        assert_eq!(plain.ret, hooked.ret);
        assert_eq!(plain.profile, hooked.profile);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let a = vm.run_numeric(&[17.0], None);
        let b = vm.run_numeric(&[17.0], None);
        assert_eq!(a.output, b.output);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn snapshot_resume_matches_full_run() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let bits = crate::inputs::encode_inputs(m.entry_func(), &[9.0]);
        let full = vm.run(&bits, None);
        let points: Vec<u64> = vec![0, 5, 13, 27];
        let (cap_out, snaps) = vm.run_with_snapshots(&bits, &points);
        assert_eq!(cap_out.output, full.output);
        assert_eq!(snaps.len(), points.len());
        for (s, &p) in snaps.iter().zip(&points) {
            assert_eq!(s.value_dynamic(), p);
            let resumed = vm.resume_from(s, None);
            assert_eq!(resumed.status, RunStatus::Ok);
            assert_eq!(resumed.output, full.output, "point {p}");
            assert_eq!(resumed.ret, full.ret, "point {p}");
            assert_eq!(resumed.profile, full.profile, "point {p}");
        }
    }

    #[test]
    fn snapshot_resume_with_injection_is_bit_exact() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let bits = crate::inputs::encode_inputs(m.entry_func(), &[9.0]);
        let (_, snaps) = vm.run_with_snapshots(&bits, &[7]);
        let snap = &snaps[0];
        for site in 7..20u64 {
            for bit in [0u32, 5, 31] {
                let inj = Injection::single(InjectionTarget::DynamicIndex(site), bit);
                let full = vm.run(&bits, Some(inj));
                let resumed = vm.resume_from(snap, Some(inj));
                assert_eq!(resumed.status, full.status, "site {site} bit {bit}");
                assert_eq!(resumed.output, full.output, "site {site} bit {bit}");
                assert_eq!(resumed.ret, full.ret, "site {site} bit {bit}");
                assert_eq!(resumed.profile, full.profile, "site {site} bit {bit}");
                assert_eq!(
                    resumed.fault_activated, full.fault_activated,
                    "site {site} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn snapshot_resume_preserves_memory_and_calls() {
        // Exercise alloca/call frames across the snapshot boundary.
        let mut mb = ModuleBuilder::new("snapcall");
        let callee = mb.declare("callee", &[Ty::I64], Some(Ty::I64));
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        {
            let mut f = mb.define(callee);
            let x = f.param(0);
            let buf = f.alloca(Operand::i64(4));
            let x2 = f.mul(x, x);
            f.store(buf, x2);
            let v = f.load(buf, Ty::I64);
            f.ret(Some(v));
            f.finish();
        }
        {
            let mut f = mb.define(main);
            let n = f.param(0);
            let a = f.call(callee, &[n]).unwrap();
            let b = f.call(callee, &[a]).unwrap();
            f.output(b);
            f.ret(Some(b));
            f.finish();
        }
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        let vm = Vm::new(&m, ExecLimits::default());
        let bits = crate::inputs::encode_inputs(m.entry_func(), &[3.0]);
        let full = vm.run_capture(&bits, None);
        assert_eq!(full.ret, Some(81));
        // Capture at every value boundary; resume each mid-call snapshot.
        let points: Vec<u64> = (0..full.profile.value_dynamic).collect();
        let (_, snaps) = vm.run_with_snapshots(&bits, &points);
        assert_eq!(snaps.len(), points.len());
        for s in &snaps {
            let resumed = vm.resume_capture(s, None);
            assert_eq!(resumed.ret, full.ret);
            assert_eq!(resumed.memory, full.memory, "point {}", s.value_dynamic());
        }
    }

    #[test]
    fn convergence_exit_detects_benign_state() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let bits = crate::inputs::encode_inputs(m.entry_func(), &[20.0]);
        let golden = vm.run(&bits, None);
        // Fork at 0, checkpoints thereafter every 10 value instructions.
        let points: Vec<u64> = (0..golden.profile.value_dynamic).step_by(10).collect();
        let (_, snaps) = vm.run_with_snapshots(&bits, &points);
        // Flip a dead-ish bit of an icmp *result* after it was consumed?
        // icmp results feed cond_br immediately, so instead corrupt the
        // loop induction variable's square: sum diverges permanently and
        // the trial must NOT converge-exit as benign.
        let inj = Injection::single(InjectionTarget::DynamicIndex(1), 3);
        match vm.resume_trial(&snaps[0], Some(inj), &snaps[1..]) {
            TrialResume::Completed(out) => {
                assert!(out.is_sdc_vs(&golden));
            }
            TrialResume::Converged { output_matches, .. } => {
                // State converged only if the corrupted sum re-joined the
                // golden value, which a +8 offset never does; output
                // divergence must be flagged.
                assert!(!output_matches);
            }
        }
    }
}

//! The PIR interpreter.
//!
//! Register representation: every value is held as a canonical 64-bit
//! pattern — `i64`/`ptr` raw, `i32` sign-extended into 64 bits, `i1` as
//! 0/1, `f64` as its IEEE bits. Bit flips are applied within the value's
//! *typed* width and the result re-canonicalized, which matches LLFI
//! flipping a random bit of the destination register of the instruction's
//! width.

use crate::hooks::{ExecHook, NoHook};
use crate::profile::Profile;
use peppa_ir::{
    BinOp, CastKind, FPred, IPred, Instr, InstrId, Module, Op, Operand, Term, Ty, UnOp,
};

/// Execution traps — the "crash" failure category of the paper ("the
/// raising of a hardware trap or exception … the OS terminates the
/// program").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// Load or store outside the memory segment, or through null.
    OutOfBounds { addr: u64 },
    /// Integer division or remainder by zero.
    DivByZero,
    /// Stack allocation exhausted memory (or had a negative size).
    StackOverflow,
    /// Call depth exceeded the limit.
    CallDepth,
}

impl std::fmt::Display for Trap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trap::OutOfBounds { addr } => write!(f, "out-of-bounds access at word {addr}"),
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::StackOverflow => write!(f, "stack allocation overflow"),
            Trap::CallDepth => write!(f, "call depth limit exceeded"),
        }
    }
}

/// Terminal status of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// Clean exit.
    Ok,
    /// Crashed with a trap.
    Trap(Trap),
    /// Exceeded the dynamic-instruction budget.
    Hang,
}

impl RunStatus {
    pub fn is_ok(self) -> bool {
        matches!(self, RunStatus::Ok)
    }
}

/// Which dynamic instruction to corrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionTarget {
    /// The `k`-th value-producing dynamic instruction of the whole run
    /// (0-based) — used when sampling faults uniformly over the execution.
    DynamicIndex(u64),
    /// The `instance`-th execution (0-based) of one static instruction —
    /// used for per-instruction SDC probability measurement.
    StaticInstance { sid: InstrId, instance: u64 },
}

/// A bit-flip fault specification.
///
/// The default fault model is a single bit flip (`burst == 0`), the
/// de-facto standard the paper adopts (§3.1.3). Setting `burst = k`
/// flips `k` *additional adjacent* bits — the multi-bit model used to
/// validate that single-bit campaigns do not understate SDC rates
/// (Sangchoolie et al., DSN'17, cited as [47]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injection {
    pub target: InjectionTarget,
    /// Bit position; reduced modulo the target value's typed width.
    pub bit: u32,
    /// Additional adjacent bits to flip (0 = single-bit model).
    pub burst: u8,
}

impl Injection {
    /// Single-bit flip at `bit` of the targeted dynamic instruction.
    pub fn single(target: InjectionTarget, bit: u32) -> Injection {
        Injection {
            target,
            bit,
            burst: 0,
        }
    }
}

/// Resource limits for one run.
#[derive(Debug, Clone, Copy)]
pub struct ExecLimits {
    /// Dynamic (non-terminator) instruction budget; exceeding it reports
    /// [`RunStatus::Hang`].
    pub max_dynamic: u64,
    /// Total memory, in 64-bit words (globals + stack).
    pub memory_words: usize,
    /// Maximum call depth.
    pub max_call_depth: usize,
}

impl Default for ExecLimits {
    fn default() -> Self {
        ExecLimits {
            max_dynamic: 200_000_000,
            memory_words: 1 << 21,
            max_call_depth: 128,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RunOutput {
    pub status: RunStatus,
    /// Words emitted by `output` instructions up to termination.
    pub output: Vec<u64>,
    /// Entry function's return value bits, if it returned one.
    pub ret: Option<u64>,
    pub profile: Profile,
    /// Whether the injection target was reached (the fault *activated*).
    pub fault_activated: bool,
    /// Final memory image, present only for [`Vm::run_capture`] — used
    /// by error-propagation tracing to diff faulty vs golden state.
    pub memory: Option<Vec<u64>>,
}

impl RunOutput {
    /// True when `self` silently corrupted data relative to `golden`:
    /// clean exit but different observable output (§2.2's SDC
    /// definition: "a mismatch between the outputs of a program's faulty
    /// execution and error-free execution").
    pub fn is_sdc_vs(&self, golden: &RunOutput) -> bool {
        self.status.is_ok() && (self.output != golden.output || self.ret != golden.ret)
    }
}

enum Stop {
    Trap(Trap),
    Hang,
}

/// The interpreter. Cheap to construct; holds no run state.
pub struct Vm<'m> {
    module: &'m Module,
    limits: ExecLimits,
}

#[inline]
fn canon(ty: Ty, bits: u64) -> u64 {
    match ty {
        Ty::I1 => bits & 1,
        Ty::I32 => (bits as u32 as i32 as i64) as u64,
        _ => bits,
    }
}

#[inline]
fn flip_bits(ty: Ty, bits: u64, bit: u32, burst: u8) -> u64 {
    let w = ty.bits();
    let mut mask = 0u64;
    for k in 0..=burst as u32 {
        mask |= 1u64 << ((bit + k) % w);
    }
    canon(ty, bits ^ mask)
}

struct State<'m, H: ExecHook> {
    module: &'m Module,
    limits: ExecLimits,
    memory: Vec<u64>,
    stack_ptr: u64,
    profile: Profile,
    output: Vec<u64>,
    injection: Option<Injection>,
    fault_activated: bool,
    depth: usize,
    hook: H,
}

impl<'m> Vm<'m> {
    pub fn new(module: &'m Module, limits: ExecLimits) -> Vm<'m> {
        Vm { module, limits }
    }

    /// Runs the entry function on encoded input bits (see
    /// [`crate::encode_inputs`]), optionally injecting one fault.
    pub fn run(&self, input_bits: &[u64], injection: Option<Injection>) -> RunOutput {
        self.run_impl(input_bits, injection, false, NoHook)
    }

    /// Like [`run`](Self::run), but the returned [`RunOutput::memory`]
    /// holds the final memory image (even on trap or budget exhaustion),
    /// enabling state diffing between runs.
    pub fn run_capture(&self, input_bits: &[u64], injection: Option<Injection>) -> RunOutput {
        self.run_impl(input_bits, injection, true, NoHook)
    }

    /// Like [`run`](Self::run), with an [`ExecHook`] observing each
    /// dynamic instruction (per-opcode profiling, sampled timing). The
    /// instruction loop is monomorphized over the hook type, so the
    /// hook-free paths above pay nothing for this entry point existing.
    pub fn run_with_hook<H: ExecHook>(
        &self,
        input_bits: &[u64],
        injection: Option<Injection>,
        hook: &mut H,
    ) -> RunOutput {
        self.run_impl(input_bits, injection, false, hook)
    }

    fn run_impl<H: ExecHook>(
        &self,
        input_bits: &[u64],
        injection: Option<Injection>,
        capture: bool,
        hook: H,
    ) -> RunOutput {
        let entry = self.module.entry_func();
        assert_eq!(input_bits.len(), entry.params.len(), "entry arity mismatch");

        let mut memory = vec![0u64; self.limits.memory_words];
        let layout = self.module.global_layout();
        for (g, base) in self.module.globals.iter().zip(&layout) {
            let base = *base as usize;
            memory[base..base + g.init.len()].copy_from_slice(&g.init);
        }

        let mut state = State {
            module: self.module,
            limits: self.limits,
            stack_ptr: self.module.globals_words(),
            memory,
            profile: Profile::new(self.module.num_instrs),
            output: Vec::new(),
            injection,
            fault_activated: false,
            depth: 0,
            hook,
        };

        let args: Vec<u64> = input_bits
            .iter()
            .zip(&entry.params)
            .map(|(&b, &t)| canon(t, b))
            .collect();

        let (status, ret) = match state.run_function(self.module.entry, &args) {
            Ok(v) => (RunStatus::Ok, v),
            Err(Stop::Trap(t)) => (RunStatus::Trap(t), None),
            Err(Stop::Hang) => (RunStatus::Hang, None),
        };
        RunOutput {
            status,
            output: state.output,
            ret,
            profile: state.profile,
            fault_activated: state.fault_activated,
            memory: if capture { Some(state.memory) } else { None },
        }
    }

    /// Convenience: golden (fault-free) run from numeric inputs.
    pub fn run_numeric(&self, inputs: &[f64], injection: Option<Injection>) -> RunOutput {
        let bits = crate::inputs::encode_inputs(self.module.entry_func(), inputs);
        self.run(&bits, injection)
    }
}

impl<'m, H: ExecHook> State<'m, H> {
    fn run_function(&mut self, fid: peppa_ir::FuncId, args: &[u64]) -> Result<Option<u64>, Stop> {
        if self.depth >= self.limits.max_call_depth {
            return Err(Stop::Trap(Trap::CallDepth));
        }
        self.depth += 1;
        let frame_sp = self.stack_ptr;
        let result = self.run_frame(fid, args);
        self.stack_ptr = frame_sp;
        self.depth -= 1;
        result
    }

    fn run_frame(&mut self, fid: peppa_ir::FuncId, args: &[u64]) -> Result<Option<u64>, Stop> {
        let func = self.module.func(fid);
        let mut regs = vec![0u64; func.value_types.len()];
        regs[..args.len()].copy_from_slice(args);

        let mut cur = 0usize;
        let mut arg_buf: Vec<u64> = Vec::new();
        loop {
            let block = &func.blocks[cur];
            for ins in &block.instrs {
                self.profile.dynamic += 1;
                if self.profile.dynamic > self.limits.max_dynamic {
                    return Err(Stop::Hang);
                }
                self.profile.exec_counts[ins.sid.0 as usize] += 1;
                if H::ENABLED {
                    if self.hook.begin_instr(ins) {
                        let t0 = std::time::Instant::now();
                        self.exec_instr(func, ins, &mut regs)?;
                        self.hook.end_instr(ins, t0.elapsed().as_nanos() as u64);
                    } else {
                        self.exec_instr(func, ins, &mut regs)?;
                    }
                } else {
                    self.exec_instr(func, ins, &mut regs)?;
                }
            }
            match &block.term {
                Term::Br { target, args } => {
                    arg_buf.clear();
                    arg_buf.extend(args.iter().map(|a| eval(&regs, a)));
                    let t = &func.blocks[target.0 as usize];
                    if H::ENABLED {
                        self.hook.branch_transfer(None, &t.params, args);
                    }
                    for (&p, &v) in t.params.iter().zip(&arg_buf) {
                        regs[p.0 as usize] = v;
                    }
                    cur = target.0 as usize;
                }
                Term::CondBr {
                    cond,
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                } => {
                    let c = eval(&regs, cond) & 1;
                    let (target, targs) = if c != 0 {
                        (then_target, then_args)
                    } else {
                        (else_target, else_args)
                    };
                    arg_buf.clear();
                    arg_buf.extend(targs.iter().map(|a| eval(&regs, a)));
                    let t = &func.blocks[target.0 as usize];
                    if H::ENABLED {
                        self.hook.branch_transfer(Some(cond), &t.params, targs);
                    }
                    for (&p, &v) in t.params.iter().zip(&arg_buf) {
                        regs[p.0 as usize] = v;
                    }
                    cur = target.0 as usize;
                }
                Term::Ret { value } => {
                    if H::ENABLED {
                        self.hook.func_ret(value.as_ref());
                    }
                    return Ok(value.as_ref().map(|v| eval(&regs, v)));
                }
            }
        }
    }

    #[inline]
    fn exec_instr(
        &mut self,
        func: &peppa_ir::Function,
        ins: &Instr,
        regs: &mut [u64],
    ) -> Result<(), Stop> {
        let computed: Option<u64> = match &ins.op {
            Op::Bin { op, a, b } => {
                let ty = func.operand_ty(a);
                Some(exec_bin(*op, ty, eval(regs, a), eval(regs, b))?)
            }
            Op::Un { op, a } => {
                let ty = func.operand_ty(a);
                Some(exec_un(*op, ty, eval(regs, a)))
            }
            Op::Icmp { pred, a, b } => {
                let (x, y) = (eval(regs, a) as i64, eval(regs, b) as i64);
                let r = match pred {
                    IPred::Eq => x == y,
                    IPred::Ne => x != y,
                    IPred::Slt => x < y,
                    IPred::Sle => x <= y,
                    IPred::Sgt => x > y,
                    IPred::Sge => x >= y,
                    IPred::Ult => (x as u64) < (y as u64),
                };
                Some(r as u64)
            }
            Op::Fcmp { pred, a, b } => {
                let x = f64::from_bits(eval(regs, a));
                let y = f64::from_bits(eval(regs, b));
                let r = match pred {
                    FPred::Oeq => x == y,
                    FPred::One => x != y && !x.is_nan() && !y.is_nan(),
                    FPred::Olt => x < y,
                    FPred::Ole => x <= y,
                    FPred::Ogt => x > y,
                    FPred::Oge => x >= y,
                };
                Some(r as u64)
            }
            Op::Select { cond, t, f } => {
                let c = eval(regs, cond) & 1;
                Some(if c != 0 { eval(regs, t) } else { eval(regs, f) })
            }
            Op::Cast { kind, a, to } => {
                let from = func.operand_ty(a);
                Some(exec_cast(*kind, from, *to, eval(regs, a)))
            }
            Op::Load { addr, ty } => {
                let p = eval(regs, addr);
                let word = self.mem_read(p)?;
                if H::ENABLED {
                    self.hook.mem_load(ins, p, word);
                }
                Some(canon(*ty, word))
            }
            Op::Store { addr, value } => {
                let p = eval(regs, addr);
                let v = eval(regs, value);
                self.mem_write(p, v)?;
                if H::ENABLED {
                    self.hook.mem_store(ins, p, v);
                }
                None
            }
            Op::Gep { base, index } => Some(eval(regs, base).wrapping_add(eval(regs, index))),
            Op::Alloca { words } => {
                let w = eval(regs, words) as i64;
                if w < 0 {
                    return Err(Stop::Trap(Trap::StackOverflow));
                }
                let base = self.stack_ptr;
                let end = base
                    .checked_add(w as u64)
                    .ok_or(Stop::Trap(Trap::StackOverflow))?;
                if end > self.memory.len() as u64 {
                    return Err(Stop::Trap(Trap::StackOverflow));
                }
                self.memory[base as usize..end as usize].fill(0);
                if H::ENABLED {
                    self.hook.mem_clear(base, w as u64);
                }
                self.stack_ptr = end;
                Some(base)
            }
            Op::Call { func: callee, args } => {
                let vals: Vec<u64> = args.iter().map(|a| eval(regs, a)).collect();
                if H::ENABLED {
                    self.hook.call_enter(ins, *callee);
                }
                self.run_function(*callee, &vals)?
            }
            Op::Output { value } => {
                let v = eval(regs, value);
                self.output.push(v);
                None
            }
        };

        if let Some(r) = ins.result {
            let mut bits = computed.expect("value instruction computed nothing");
            self.profile.value_dynamic += 1;
            if let Some(inj) = self.injection {
                if !self.fault_activated && self.hits(ins, inj) {
                    let flipped = flip_bits(func.ty_of(r), bits, inj.bit, inj.burst);
                    if H::ENABLED {
                        self.hook.fault_injected(ins, bits ^ flipped);
                    }
                    bits = flipped;
                    self.fault_activated = true;
                }
            }
            regs[r.0 as usize] = bits;
            if H::ENABLED {
                self.hook.def_value(ins, bits);
            }
        }
        Ok(())
    }

    #[inline]
    fn hits(&self, ins: &Instr, inj: Injection) -> bool {
        match inj.target {
            InjectionTarget::DynamicIndex(k) => self.profile.value_dynamic - 1 == k,
            InjectionTarget::StaticInstance { sid, instance } => {
                ins.sid == sid && self.profile.exec_counts[sid.0 as usize] - 1 == instance
            }
        }
    }

    #[inline]
    fn mem_read(&self, addr: u64) -> Result<u64, Stop> {
        if addr == 0 || addr >= self.memory.len() as u64 {
            return Err(Stop::Trap(Trap::OutOfBounds { addr }));
        }
        Ok(self.memory[addr as usize])
    }

    #[inline]
    fn mem_write(&mut self, addr: u64, value: u64) -> Result<(), Stop> {
        if addr == 0 || addr >= self.memory.len() as u64 {
            return Err(Stop::Trap(Trap::OutOfBounds { addr }));
        }
        self.memory[addr as usize] = value;
        Ok(())
    }
}

#[inline]
fn eval(regs: &[u64], op: &Operand) -> u64 {
    match op {
        Operand::Value(v) => regs[v.0 as usize],
        Operand::Const(c) => canon(c.ty, c.bits),
    }
}

#[inline]
fn exec_bin(op: BinOp, ty: Ty, a: u64, b: u64) -> Result<u64, Stop> {
    let r = match op {
        BinOp::Add => (a as i64).wrapping_add(b as i64) as u64,
        BinOp::Sub => (a as i64).wrapping_sub(b as i64) as u64,
        BinOp::Mul => (a as i64).wrapping_mul(b as i64) as u64,
        BinOp::SDiv => {
            let (x, y) = (a as i64, b as i64);
            if y == 0 {
                return Err(Stop::Trap(Trap::DivByZero));
            }
            x.wrapping_div(y) as u64
        }
        BinOp::SRem => {
            let (x, y) = (a as i64, b as i64);
            if y == 0 {
                return Err(Stop::Trap(Trap::DivByZero));
            }
            x.wrapping_rem(y) as u64
        }
        BinOp::FAdd => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        BinOp::FSub => (f64::from_bits(a) - f64::from_bits(b)).to_bits(),
        BinOp::FMul => (f64::from_bits(a) * f64::from_bits(b)).to_bits(),
        BinOp::FDiv => (f64::from_bits(a) / f64::from_bits(b)).to_bits(),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        // Shift counts are masked to the type width (deterministic
        // behaviour even when a flipped bit lands in a shift amount).
        BinOp::Shl => a << (b & (ty.bits() as u64 - 1).max(1)),
        BinOp::LShr => {
            let w = ty.bits();
            let masked = if w == 64 { a } else { a & ((1u64 << w) - 1) };
            masked >> (b & (w as u64 - 1).max(1))
        }
        BinOp::AShr => ((a as i64) >> (b & (ty.bits() as u64 - 1).max(1))) as u64,
    };
    Ok(canon(ty, r))
}

#[inline]
fn exec_un(op: UnOp, ty: Ty, a: u64) -> u64 {
    let r = match op {
        UnOp::FNeg => (-f64::from_bits(a)).to_bits(),
        UnOp::Not => !a,
        UnOp::Sqrt => f64::from_bits(a).sqrt().to_bits(),
        UnOp::Sin => f64::from_bits(a).sin().to_bits(),
        UnOp::Cos => f64::from_bits(a).cos().to_bits(),
        UnOp::Exp => f64::from_bits(a).exp().to_bits(),
        UnOp::Log => f64::from_bits(a).ln().to_bits(),
        UnOp::Floor => f64::from_bits(a).floor().to_bits(),
        UnOp::FAbs => f64::from_bits(a).abs().to_bits(),
    };
    canon(ty, r)
}

#[inline]
fn exec_cast(kind: CastKind, from: Ty, to: Ty, a: u64) -> u64 {
    match kind {
        CastKind::Trunc | CastKind::Bitcast | CastKind::PtrToInt | CastKind::IntToPtr => {
            canon(to, a)
        }
        CastKind::ZExt => {
            // Zero-extension uses the *unsigned* narrow value.
            let narrow = from.truncate_bits(a);
            canon(to, narrow)
        }
        CastKind::SExt => {
            if from == Ty::I1 {
                if a & 1 != 0 {
                    u64::MAX
                } else {
                    0
                }
            } else {
                a // i32 is already canonically sign-extended
            }
        }
        CastKind::FpToSi => {
            let x = f64::from_bits(a);
            match to {
                Ty::I32 => ((x as i32) as i64) as u64,
                _ => (x as i64) as u64,
            }
        }
        CastKind::SiToFp => {
            let v = if from == Ty::I1 {
                (a & 1) as i64
            } else {
                a as i64
            };
            (v as f64).to_bits()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_ir::{IPred, ModuleBuilder, Operand};

    /// sum = 0; for i in 0..n { sum += i*i }; output sum
    fn loop_module() -> Module {
        let mut mb = ModuleBuilder::new("loop");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let n = f.param(0);
        let (head, hv) = f.new_block(&[Ty::I64, Ty::I64]); // i, sum
        let (body, _) = f.new_block(&[]);
        let (exit, _) = f.new_block(&[]);
        f.br(head, &[Operand::i64(0), Operand::i64(0)]);
        f.switch_to(head);
        let c = f.icmp(IPred::Slt, hv[0], n);
        f.cond_br(c, body, &[], exit, &[]);
        f.switch_to(body);
        let sq = f.mul(hv[0], hv[0]);
        let sum2 = f.add(hv[1], sq);
        let i2 = f.add(hv[0], Operand::i64(1));
        f.br(head, &[i2, sum2]);
        f.switch_to(exit);
        f.output(hv[1]);
        f.ret(Some(hv[1]));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        m
    }

    #[test]
    fn sum_of_squares() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let out = vm.run_numeric(&[5.0], None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.output, vec![30]); // 0+1+4+9+16
        assert_eq!(out.ret, Some(30));
    }

    #[test]
    fn profile_counts_loop_iterations() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let out = vm.run_numeric(&[10.0], None);
        // icmp executes 11 times; mul/add/add 10 times; output once.
        assert_eq!(out.profile.exec_counts[0], 11);
        assert_eq!(out.profile.exec_counts[1], 10);
        assert_eq!(out.profile.dynamic, 11 + 30 + 1);
        // All but `output` produce values.
        assert_eq!(out.profile.value_dynamic, 11 + 30);
    }

    #[test]
    fn hang_on_budget() {
        let m = loop_module();
        let vm = Vm::new(
            &m,
            ExecLimits {
                max_dynamic: 50,
                ..Default::default()
            },
        );
        let out = vm.run_numeric(&[1e9 /* huge */], None);
        assert_eq!(out.status, RunStatus::Hang);
    }

    #[test]
    fn injected_fault_changes_output() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let golden = vm.run_numeric(&[5.0], None);
        // Flip bit 3 of the first mul result (dynamic value index 1 is the
        // first mul: index 0 is the first icmp).
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(1),
            bit: 3,
            burst: 0,
        };
        let faulty = vm.run_numeric(&[5.0], Some(inj));
        assert!(faulty.fault_activated);
        assert!(faulty.is_sdc_vs(&golden));
        // 0*0=0 flipped bit3 -> 8; totals 30 -> 38.
        assert_eq!(faulty.output, vec![38]);
    }

    #[test]
    fn injection_into_icmp_takes_wrong_branch() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let golden = vm.run_numeric(&[5.0], None);
        // Flip the very first icmp (i -> loop exits immediately, sum 0).
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(0),
            bit: 0,
            burst: 0,
        };
        let faulty = vm.run_numeric(&[5.0], Some(inj));
        assert_eq!(faulty.status, RunStatus::Ok);
        assert_eq!(faulty.output, vec![0]);
        assert!(faulty.is_sdc_vs(&golden));
    }

    #[test]
    fn static_instance_targeting() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        // mul is sid 1; instance 3 computes 3*3=9; flip bit 0 -> 8.
        let inj = Injection {
            target: InjectionTarget::StaticInstance {
                sid: InstrId(1),
                instance: 3,
            },
            bit: 0,
            burst: 0,
        };
        let faulty = vm.run_numeric(&[5.0], Some(inj));
        assert!(faulty.fault_activated);
        assert_eq!(faulty.output, vec![29]); // 30 - 1
    }

    #[test]
    fn fault_not_activated_when_target_beyond_run() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(10_000),
            bit: 0,
            burst: 0,
        };
        let out = vm.run_numeric(&[5.0], Some(inj));
        assert!(!out.fault_activated);
        assert_eq!(out.output, vec![30]);
    }

    fn mem_module() -> Module {
        // Writes param into g[idx] then reads g[idx] back; traps if idx OOB.
        let mut mb = ModuleBuilder::new("mem");
        let g = mb.global("g", 4);
        let main = mb.declare("main", &[Ty::I64, Ty::F64], Some(Ty::F64));
        let mut f = mb.define(main);
        let idx = f.param(0);
        let val = f.param(1);
        let p = f.gep(g, idx);
        let vb = f.cast(CastKind::Bitcast, val, Ty::I64);
        f.store(p, vb);
        let l = f.load(p, Ty::F64);
        f.output(l);
        f.ret(Some(l));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        m
    }

    #[test]
    fn memory_roundtrip() {
        let m = mem_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let out = vm.run_numeric(&[2.0, 6.25], None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.ret, Some(6.25f64.to_bits()));
    }

    #[test]
    fn oob_store_traps() {
        let m = mem_module();
        let vm = Vm::new(
            &m,
            ExecLimits {
                memory_words: 64,
                ..Default::default()
            },
        );
        let out = vm.run_numeric(&[1000.0, 1.0], None);
        assert!(matches!(
            out.status,
            RunStatus::Trap(Trap::OutOfBounds { .. })
        ));
    }

    #[test]
    fn flipped_pointer_crashes() {
        let m = mem_module();
        let vm = Vm::new(
            &m,
            ExecLimits {
                memory_words: 64,
                ..Default::default()
            },
        );
        // Flip a high bit of the gep result -> wild address -> trap.
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(0),
            bit: 40,
            burst: 0,
        };
        let out = vm.run_numeric(&[2.0, 1.5], Some(inj));
        assert!(matches!(
            out.status,
            RunStatus::Trap(Trap::OutOfBounds { .. })
        ));
    }

    #[test]
    fn div_by_zero_traps() {
        let mut mb = ModuleBuilder::new("div");
        let main = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        let mut f = mb.define(main);
        let x = f.param(0);
        let q = f.bin(BinOp::SDiv, Operand::i64(100), x);
        f.ret(Some(q));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let vm = Vm::new(&m, ExecLimits::default());
        assert_eq!(
            vm.run_numeric(&[0.0], None).status,
            RunStatus::Trap(Trap::DivByZero)
        );
        assert_eq!(vm.run_numeric(&[4.0], None).ret, Some(25));
    }

    #[test]
    fn alloca_scopes_per_call() {
        // callee allocas 8 words each call; calling twice must not leak.
        let mut mb = ModuleBuilder::new("alloca");
        let callee = mb.declare("callee", &[Ty::I64], Some(Ty::I64));
        let main = mb.declare("main", &[], Some(Ty::I64));
        {
            let mut f = mb.define(callee);
            let x = f.param(0);
            let buf = f.alloca(Operand::i64(8));
            f.store(buf, x);
            let v = f.load(buf, Ty::I64);
            f.ret(Some(v));
            f.finish();
        }
        {
            let mut f = mb.define(main);
            let a = f.call(callee, &[Operand::i64(11)]).unwrap();
            let b = f.call(callee, &[Operand::i64(31)]).unwrap();
            let s = f.add(a, b);
            f.output(s);
            f.ret(Some(s));
            f.finish();
        }
        mb.set_entry(main);
        let m = mb.finish();
        peppa_ir::verify(&m).unwrap();
        // Memory just big enough for one frame's alloca at a time.
        let vm = Vm::new(
            &m,
            ExecLimits {
                memory_words: 12,
                ..Default::default()
            },
        );
        let out = vm.run_numeric(&[], None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.ret, Some(42));
    }

    #[test]
    fn recursion_depth_trap() {
        let mut mb = ModuleBuilder::new("rec");
        let f_id = mb.declare("f", &[Ty::I64], Some(Ty::I64));
        {
            let mut f = mb.define(f_id);
            let x = f.param(0);
            let r = f.call(f_id, &[x]).unwrap();
            f.ret(Some(r));
            f.finish();
        }
        mb.set_entry(f_id);
        let m = mb.finish();
        let vm = Vm::new(
            &m,
            ExecLimits {
                max_call_depth: 16,
                ..Default::default()
            },
        );
        assert_eq!(
            vm.run_numeric(&[1.0], None).status,
            RunStatus::Trap(Trap::CallDepth)
        );
    }

    #[test]
    fn i32_canonicalization_after_flip() {
        // Flipping bit 31 of an i32 changes the sign and stays canonical.
        let mut mb = ModuleBuilder::new("i32");
        let main = mb.declare("main", &[], Some(Ty::I64));
        let mut f = mb.define(main);
        let v = f.bin(BinOp::Add, Operand::i32(1), Operand::i32(0));
        let w = f.cast(CastKind::SExt, v, Ty::I64);
        f.output(w);
        f.ret(Some(w));
        f.finish();
        mb.set_entry(main);
        let m = mb.finish();
        let vm = Vm::new(&m, ExecLimits::default());
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(0),
            bit: 31,
            burst: 0,
        };
        let out = vm.run_numeric(&[], Some(inj));
        assert_eq!(out.ret, Some((1i64 + i32::MIN as i64) as u64));
    }

    #[test]
    fn hook_counts_match_profile() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let bits = crate::inputs::encode_inputs(m.entry_func(), &[10.0]);
        let mut prof = crate::hooks::OpcodeProfile::new(1);
        let out = vm.run_with_hook(&bits, None, &mut prof);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(prof.total(), out.profile.dynamic);
        for (sid, c) in out.profile.exec_counts.iter().enumerate() {
            assert_eq!(prof.sid_count(InstrId(sid as u32)), *c, "sid {sid}");
        }
        let table = prof.hot_table(&m, 3);
        assert!(table.contains("icmp"), "{table}");
    }

    #[test]
    fn hooked_run_output_matches_plain_run() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let bits = crate::inputs::encode_inputs(m.entry_func(), &[7.0]);
        let plain = vm.run(&bits, None);
        let mut prof = crate::hooks::OpcodeProfile::default();
        let hooked = vm.run_with_hook(&bits, None, &mut prof);
        assert_eq!(plain.output, hooked.output);
        assert_eq!(plain.ret, hooked.ret);
        assert_eq!(plain.profile, hooked.profile);
    }

    #[test]
    fn deterministic_repeat_runs() {
        let m = loop_module();
        let vm = Vm::new(&m, ExecLimits::default());
        let a = vm.run_numeric(&[17.0], None);
        let b = vm.run_numeric(&[17.0], None);
        assert_eq!(a.output, b.output);
        assert_eq!(a.profile, b.profile);
    }
}

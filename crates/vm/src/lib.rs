//! The PIR virtual machine.
//!
//! This crate plays the role the native CPU plays in the paper's
//! experiments: it executes benchmark programs, records the dynamic
//! execution profile (the `N_i` counts of Eq. 2), detects crashes and
//! hangs, and — when asked — flips a single bit in the return value of one
//! dynamic instruction, exactly LLFI's fault model (§3.1.3: "inject single
//! bit flips into a random instruction's return value").
//!
//! Observable behaviour of a run:
//! * the **output stream** (words appended by `output` instructions) —
//!   compared against a golden run to detect SDCs;
//! * the **status** — clean exit, trap (crash), or budget exhaustion
//!   (hang);
//! * the **profile** — per-static-instruction execution counts, total
//!   dynamic instructions, and the count of value-producing dynamic
//!   instructions (the fault-site population).

//!
//! Two execution engines sit behind the same observables: the
//! tree-walking interpreter ([`Vm`], the semantic reference) and the
//! compiled threaded-bytecode backend ([`CompiledVm`], ~10× faster,
//! differentially tested bit-exact). [`Engine`] is the seam callers
//! select one through; [`CompiledModule::lower`] is the one-time
//! translation.

pub mod compiled;
pub mod engine;
pub mod exec;
pub mod hooks;
pub mod inputs;
pub mod lower;
pub mod profile;
pub mod snapshot;
pub mod taint;

pub use compiled::CompiledVm;
pub use engine::{Engine, EngineKind};
pub use exec::{
    canon, exec_bin_checked, exec_cast, exec_fcmp, exec_icmp, exec_un, ExecLimits, Injection,
    InjectionTarget, ResumeScratch, RunOutput, RunStatus, Trap, Vm,
};
pub use hooks::{ExecHook, NoHook, OpcodeProfile};
pub use inputs::encode_inputs;
pub use lower::CompiledModule;
pub use profile::Profile;
pub use snapshot::{ConvergeMasks, ReadSets, TrialResume, VmSnapshot};
pub use taint::{SinkHit, SinkKind, TaintHook, TaintReport};

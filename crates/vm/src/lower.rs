//! Lowering PIR to register-allocated, superinstruction threaded
//! bytecode — the compiled execution backend's front half.
//!
//! [`CompiledModule::lower`] translates every function into a flat
//! [`Bc`] array the dispatch loop in [`crate::compiled`] threads
//! through. The translation eliminates the interpreter's per-operand
//! work up front:
//!
//! * **Register allocation.** Each frame owns a flat `u64` register
//!   file of `num_values + consts.len()` words: SSA values keep their
//!   `ValueId` index (so fault injection, hooks, and snapshot frames
//!   see the exact interpreter register file in the first
//!   `num_values` slots), and every distinct constant is
//!   canonicalized once at lowering time and parked in a read-only
//!   tail. An operand is then always a plain `u32` register index —
//!   no `Operand` match, no per-use `canon`.
//! * **Superinstructions.** Five fused shapes cover the hottest
//!   dispatch sequences: compare-and-branch ([`Bc::CmpBrI`] /
//!   [`Bc::CmpBrF`]: a block-terminal `icmp`/`fcmp` feeding the
//!   `cond_br`), address-calc-load ([`Bc::GepLoad`]),
//!   address-calc-store ([`Bc::GepStore`]), f64 multiply-add
//!   ([`Bc::FMulAdd`]), and the counted-loop latch
//!   ([`Bc::IAddCmpBrI`]: i64 add + compare + branch). Each fused
//!   opcode still
//!   performs full per-covered-instruction bookkeeping (dynamic
//!   counts, hang budget, injection check, hooks) in interpreter
//!   order, and emits its second component *unfused* at `pc + 1` — a
//!   stub the machine jumps into when a snapshot boundary falls
//!   between the two halves, and that [`CompiledFunc::pc_of`] targets
//!   when a resume lands mid-pair. Fusion is therefore invisible to
//!   every observable.
//! * **Branch edges.** Block-argument transfers become pre-resolved
//!   move lists (`(dst, src)` register pairs) with a lowering-time
//!   proof of whether an in-place sequential copy is safe; otherwise
//!   the machine buffers sources first, exactly like the
//!   interpreter's two-phase `arg_buf` copy.
//!
//! [`lower`] ends with a validation sweep asserting every register
//! index, edge target, and pool range is in bounds. The dispatch loop
//! relies on that invariant for its unchecked register accesses.
//!
//! [`lower`]: CompiledModule::lower

use crate::exec::canon;
use peppa_ir::{
    BinOp, CastKind, FPred, FuncId, Function, IPred, Module, Op, Operand, Term, Ty, UnOp,
};
use std::collections::HashMap;

/// Register index sentinel: "no register" (void call results, `ret`
/// without a value).
pub(crate) const NO_REG: u32 = u32::MAX;

/// One threaded-bytecode operation. Operand fields are indices into
/// the frame's register file (values first, then the constant pool
/// tail); `dst` fields always index the value range so interpreter
/// semantics (and snapshot frames) are preserved bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Bc {
    Bin {
        op: BinOp,
        ty: Ty,
        dst: u32,
        a: u32,
        b: u32,
    },
    Un {
        op: UnOp,
        ty: Ty,
        dst: u32,
        a: u32,
    },
    Icmp {
        pred: IPred,
        dst: u32,
        a: u32,
        b: u32,
    },
    Fcmp {
        pred: FPred,
        dst: u32,
        a: u32,
        b: u32,
    },
    Select {
        dst: u32,
        cond: u32,
        t: u32,
        f: u32,
    },
    Cast {
        kind: CastKind,
        from: Ty,
        to: Ty,
        dst: u32,
        a: u32,
    },
    Load {
        ty: Ty,
        dst: u32,
        addr: u32,
    },
    Store {
        addr: u32,
        val: u32,
    },
    Gep {
        dst: u32,
        base: u32,
        index: u32,
    },
    Alloca {
        dst: u32,
        words: u32,
    },
    Output {
        val: u32,
    },
    Call {
        callee: FuncId,
        /// Start of the argument register list in
        /// [`CompiledFunc::call_args`].
        args: u32,
        /// Result register, or [`NO_REG`] for void callees.
        dst: u32,
    },
    /// Unconditional jump through [`CompiledFunc::edges`].
    Br {
        edge: u32,
    },
    /// Conditional jump: the then-edge is `edge`, the else-edge is
    /// `edge + 1` (edge pairs are allocated adjacently).
    CondBr {
        cond: u32,
        edge: u32,
    },
    Ret {
        /// Returned register, or [`NO_REG`].
        val: u32,
    },
    /// Fused `icmp` + `cond_br`: the compare still writes `dst` (so
    /// injection can corrupt the decision) and the branch reads the
    /// possibly-flipped register. The unfused [`Bc::CondBr`] stub
    /// sits at `pc + 1`.
    CmpBrI {
        pred: IPred,
        dst: u32,
        a: u32,
        b: u32,
        edge: u32,
    },
    /// Fused `fcmp` + `cond_br`; see [`Bc::CmpBrI`].
    CmpBrF {
        pred: FPred,
        dst: u32,
        a: u32,
        b: u32,
        edge: u32,
    },
    /// Fused `gep` + `load` through the gep's result. Both results
    /// are written (`gep_dst`, then `dst`); the unfused [`Bc::Load`]
    /// stub sits at `pc + 1`.
    GepLoad {
        ty: Ty,
        gep_dst: u32,
        base: u32,
        index: u32,
        dst: u32,
    },
    /// Fused `gep` + `store` through the gep's result; the unfused
    /// [`Bc::Store`] stub sits at `pc + 1`.
    GepStore {
        gep_dst: u32,
        base: u32,
        index: u32,
        val: u32,
    },
    /// Type-specialized [`Bc::Bin`] fast paths. Each is exactly
    /// `exec_bin` for its `(op, ty)` pair — wrapping `i64` arithmetic
    /// or IEEE `f64` through the bit pattern — emitted only for types
    /// whose `canon` is the identity (I64 / F64), so the dispatch loop
    /// skips both the nested op/ty match and the canonicalization.
    IAdd {
        dst: u32,
        a: u32,
        b: u32,
    },
    ISub {
        dst: u32,
        a: u32,
        b: u32,
    },
    IMul {
        dst: u32,
        a: u32,
        b: u32,
    },
    FAdd {
        dst: u32,
        a: u32,
        b: u32,
    },
    FSub {
        dst: u32,
        a: u32,
        b: u32,
    },
    FMul {
        dst: u32,
        a: u32,
        b: u32,
    },
    FDiv {
        dst: u32,
        a: u32,
        b: u32,
    },
    /// Fused loop latch: `dst = a + b` (wrapping i64), then
    /// `cdst = icmp pred(ca, cb)` (typically reading the fresh `dst`),
    /// then branch on `cdst` — the canonical counted-loop back edge in
    /// one dispatch. The unfused [`Bc::CmpBrI`] stub sits at `pc + 1`
    /// (with its own [`Bc::CondBr`] stub at `pc + 2`).
    IAddCmpBrI {
        dst: u32,
        a: u32,
        b: u32,
        pred: IPred,
        cdst: u32,
        ca: u32,
        cb: u32,
        edge: u32,
    },
    /// Fused f64 multiply-add: `t = a * b` then `dst = x + y`, where
    /// `x` or `y` is `t` (the add reads the freshly written multiply
    /// result, in interpreter order — so injection into `t` still
    /// flows into the sum). Both results are written; the unfused
    /// [`Bc::FAdd`] stub sits at `pc + 1`.
    FMulAdd {
        t: u32,
        a: u32,
        b: u32,
        dst: u32,
        x: u32,
        y: u32,
    },
}

/// Straight-line segment summary for one pc: how many interpreter
/// instructions (and how many of them value-producing) execute from
/// this pc up to — and, for fused compare-and-branch, including — the
/// segment's terminating bytecode. A segment ends at the first
/// [`Bc::Br`] / [`Bc::CondBr`] / [`Bc::Call`] / [`Bc::Ret`]
/// (exclusive) or [`Bc::CmpBrI`] / [`Bc::CmpBrF`] (inclusive: the
/// compare is an instruction). The turbo dispatch loop reads this
/// once per segment to prove that no hang, injection, or snapshot
/// boundary can fire inside it, and then runs the whole segment with
/// batched bookkeeping.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegInfo {
    pub(crate) n_ops: u32,
    pub(crate) n_defs: u32,
}

/// One branch edge: the target pc plus the pre-resolved
/// block-argument moves.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Edge {
    pub(crate) target_pc: u32,
    /// Range `[moves_start, moves_start + moves_len)` into
    /// [`CompiledFunc::moves`].
    pub(crate) moves_start: u32,
    pub(crate) moves_len: u32,
    /// Sequential in-place copying is safe: no move's destination is
    /// read as a source by a later move. When false the machine
    /// buffers all sources before writing (the interpreter's
    /// two-phase copy).
    pub(crate) in_place: bool,
}

/// One function's threaded bytecode plus the side tables the machine
/// and the snapshot bridge need.
#[derive(Debug)]
pub(crate) struct CompiledFunc {
    pub(crate) code: Vec<Bc>,
    /// Static instruction id per pc ([`u32::MAX`] for terminators).
    pub(crate) sids: Vec<u32>,
    /// `(block, instr)` interpreter coordinates per pc — `instr ==
    /// block.instrs.len()` marks the terminator position. Used for
    /// hook `&Instr` lookups and snapshot frame mapping.
    pub(crate) meta: Vec<(u32, u32)>,
    /// `pc_of[block][instr]` for `instr` in `0..=instrs.len()`: the
    /// pc at which execution (re)starts from interpreter position
    /// `(block, instr)`. Mid-fusion positions map onto the stubs, so
    /// any snapshot the interpreter can capture is resumable here.
    pub(crate) pc_of: Vec<Vec<u32>>,
    /// Interpreter register-file size (`value_types.len()`).
    pub(crate) num_values: usize,
    /// Canonicalized, deduplicated constants, copied to
    /// `regs[num_values..]` at frame push.
    pub(crate) consts: Vec<u64>,
    pub(crate) edges: Vec<Edge>,
    /// `(dst, src)` register moves for branch edges.
    pub(crate) moves: Vec<(u32, u32)>,
    /// Argument register lists for calls.
    pub(crate) call_args: Vec<u32>,
    /// Per-pc straight-line segment summaries (see [`SegInfo`]).
    pub(crate) seg: Vec<SegInfo>,
    /// Pre-built frame register image: `num_values` zeros followed by
    /// the constant pool. Frame push is one `extend_from_slice`.
    pub(crate) frame_image: Vec<u64>,
}

impl CompiledFunc {
    /// Total frame register-file size.
    pub(crate) fn num_regs(&self) -> usize {
        self.num_values + self.consts.len()
    }
}

/// A whole module lowered to threaded bytecode. Plain owned data:
/// build once per campaign, share across worker threads.
#[derive(Debug)]
pub struct CompiledModule {
    pub(crate) funcs: Vec<CompiledFunc>,
    /// First flat-pc of each function in the module-wide pc space
    /// (prefix sums of `funcs[i].code.len()`), used to index the
    /// per-run segment-hit table.
    pub(crate) pc_base: Vec<u32>,
    /// Total bytecode length across all functions.
    pub(crate) total_pcs: usize,
    /// Initialized-globals image: the first `globals_words` of a fresh
    /// memory, with every global's `init` placed at its layout base.
    /// Lets the compiled engine restore run-start memory from a reused
    /// scratch buffer (zero the dirty span, copy this prefix) instead
    /// of zero-allocating `memory_words` per trial.
    pub(crate) globals_image: Vec<u64>,
}

impl CompiledModule {
    /// Lowers every function of `module`. Panics on an internally
    /// inconsistent module (the verifier catches those first).
    pub fn lower(module: &Module) -> CompiledModule {
        let funcs: Vec<CompiledFunc> = module.functions.iter().map(lower_func).collect();
        let mut pc_base = Vec::with_capacity(funcs.len());
        let mut total = 0usize;
        for f in &funcs {
            pc_base.push(total as u32);
            total += f.code.len();
        }
        let mut globals_image = vec![0u64; module.globals_words() as usize];
        for (g, base) in module.globals.iter().zip(&module.global_layout()) {
            let base = *base as usize;
            globals_image[base..base + g.init.len()].copy_from_slice(&g.init);
        }
        let cm = CompiledModule {
            funcs,
            pc_base,
            total_pcs: total,
            globals_image,
        };
        validate(module, &cm);
        cm
    }

    /// Static superinstruction count across the module (fused pairs
    /// emitted), exposed for tests and diagnostics.
    pub fn fused_pairs(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| f.code.iter())
            .filter(|bc| {
                matches!(
                    bc,
                    Bc::CmpBrI { .. }
                        | Bc::CmpBrF { .. }
                        | Bc::GepLoad { .. }
                        | Bc::GepStore { .. }
                        | Bc::FMulAdd { .. }
                        | Bc::IAddCmpBrI { .. }
                )
            })
            .count()
    }
}

struct Lowerer<'f> {
    func: &'f Function,
    num_values: usize,
    consts: Vec<u64>,
    const_ix: HashMap<u64, u32>,
    code: Vec<Bc>,
    sids: Vec<u32>,
    meta: Vec<(u32, u32)>,
    pc_of: Vec<Vec<u32>>,
    edges: Vec<Edge>,
    moves: Vec<(u32, u32)>,
    call_args: Vec<u32>,
}

impl<'f> Lowerer<'f> {
    /// Register index for an operand; constants intern into the pool
    /// pre-canonicalized, so `regs[reg(op)]` equals the interpreter's
    /// `eval(regs, op)` everywhere.
    fn reg(&mut self, op: &Operand) -> u32 {
        match op {
            Operand::Value(v) => v.0,
            Operand::Const(c) => {
                let bits = canon(c.ty, c.bits);
                let nv = self.num_values as u32;
                match self.const_ix.get(&bits) {
                    Some(&i) => nv + i,
                    None => {
                        let i = self.consts.len() as u32;
                        self.consts.push(bits);
                        self.const_ix.insert(bits, i);
                        nv + i
                    }
                }
            }
        }
    }

    fn result_reg(&self, ins: &peppa_ir::Instr) -> u32 {
        ins.result.map_or(NO_REG, |r| r.0)
    }

    fn emit(&mut self, bc: Bc, sid: u32, block: u32, instr: u32) -> u32 {
        let pc = self.code.len() as u32;
        self.code.push(bc);
        self.sids.push(sid);
        self.meta.push((block, instr));
        pc
    }

    /// Builds one branch edge. `target_pc` temporarily holds the
    /// target *block id*; [`lower_func`] patches it to the block's
    /// entry pc once all pcs are assigned.
    fn edge(&mut self, target: u32, args: &[Operand]) -> u32 {
        let params = &self.func.blocks[target as usize].params;
        let moves_start = self.moves.len() as u32;
        for (p, a) in params.iter().zip(args) {
            let src = self.reg(a);
            if p.0 != src {
                self.moves.push((p.0, src));
            }
        }
        let ms = moves_start as usize;
        let emitted = &self.moves[ms..];
        // In-place is safe iff no destination is read by a later move.
        let in_place = emitted
            .iter()
            .enumerate()
            .all(|(k, m)| !emitted[k + 1..].iter().any(|m2| m2.1 == m.0));
        let e = self.edges.len() as u32;
        self.edges.push(Edge {
            target_pc: target,
            moves_start,
            moves_len: (self.moves.len() - ms) as u32,
            in_place,
        });
        e
    }
}

/// True when `op` is a `Load` whose address is exactly `gep_result`.
fn loads_through(op: &Op, gep_result: peppa_ir::ValueId) -> bool {
    matches!(op, Op::Load { addr: Operand::Value(v), .. } if *v == gep_result)
}

fn stores_through(op: &Op, gep_result: peppa_ir::ValueId) -> bool {
    matches!(op, Op::Store { addr: Operand::Value(v), .. } if *v == gep_result)
}

/// True when `op` is an f64 `FAdd` reading `mul_result` as an operand.
fn adds_through(op: &Op, mul_result: peppa_ir::ValueId) -> bool {
    matches!(op, Op::Bin { op: BinOp::FAdd, a, b }
        if matches!(a, Operand::Value(v) if *v == mul_result)
            || matches!(b, Operand::Value(v) if *v == mul_result))
}

fn lower_func(func: &Function) -> CompiledFunc {
    let mut lo = Lowerer {
        func,
        num_values: func.value_types.len(),
        consts: Vec::new(),
        const_ix: HashMap::new(),
        code: Vec::new(),
        sids: Vec::new(),
        meta: Vec::new(),
        pc_of: Vec::with_capacity(func.blocks.len()),
        edges: Vec::new(),
        moves: Vec::new(),
        call_args: Vec::new(),
    };

    for (bi, block) in func.blocks.iter().enumerate() {
        let bi = bi as u32;
        let n = block.instrs.len();
        let mut pcs: Vec<u32> = Vec::with_capacity(n + 1);
        let mut i = 0usize;
        let mut term_done = false;
        while i < n {
            let ins = &block.instrs[i];
            let ii = i as u32;
            match &ins.op {
                // Address-calc fusions: gep feeding the very next
                // load/store's address.
                Op::Gep { base, index } if i + 1 < n => {
                    let gep_dst = lo.result_reg(ins);
                    let next = &block.instrs[i + 1];
                    let r = ins.result.expect("gep always has a result");
                    if loads_through(&next.op, r) {
                        let (b, x) = (lo.reg(base), lo.reg(index));
                        let (ty, dst) = match &next.op {
                            Op::Load { ty, .. } => (*ty, lo.result_reg(next)),
                            _ => unreachable!(),
                        };
                        pcs.push(lo.emit(
                            Bc::GepLoad {
                                ty,
                                gep_dst,
                                base: b,
                                index: x,
                                dst,
                            },
                            ins.sid.0,
                            bi,
                            ii,
                        ));
                        // Unfused second half at pc + 1: the resume /
                        // boundary-bailout entry point.
                        pcs.push(lo.emit(
                            Bc::Load {
                                ty,
                                dst,
                                addr: gep_dst,
                            },
                            next.sid.0,
                            bi,
                            ii + 1,
                        ));
                        i += 2;
                        continue;
                    }
                    if stores_through(&next.op, r) {
                        let (b, x) = (lo.reg(base), lo.reg(index));
                        let val = match &next.op {
                            Op::Store { value, .. } => lo.reg(value),
                            _ => unreachable!(),
                        };
                        pcs.push(lo.emit(
                            Bc::GepStore {
                                gep_dst,
                                base: b,
                                index: x,
                                val,
                            },
                            ins.sid.0,
                            bi,
                            ii,
                        ));
                        pcs.push(lo.emit(Bc::Store { addr: gep_dst, val }, next.sid.0, bi, ii + 1));
                        i += 2;
                        continue;
                    }
                    let (b, x) = (lo.reg(base), lo.reg(index));
                    pcs.push(lo.emit(
                        Bc::Gep {
                            dst: gep_dst,
                            base: b,
                            index: x,
                        },
                        ins.sid.0,
                        bi,
                        ii,
                    ));
                    i += 1;
                }
                // Compare-and-branch fusion: a block-terminal compare
                // feeding the conditional branch.
                Op::Icmp { .. } | Op::Fcmp { .. }
                    if i + 1 == n
                        && matches!(
                            (&block.term, ins.result),
                            (
                                Term::CondBr {
                                    cond: Operand::Value(c),
                                    ..
                                },
                                Some(r)
                            ) if *c == r
                        ) =>
                {
                    let dst = lo.result_reg(ins);
                    let (then_target, then_args, else_target, else_args) = match &block.term {
                        Term::CondBr {
                            then_target,
                            then_args,
                            else_target,
                            else_args,
                            ..
                        } => (then_target.0, then_args, else_target.0, else_args),
                        _ => unreachable!(),
                    };
                    let e = lo.edge(then_target, then_args);
                    let e2 = lo.edge(else_target, else_args);
                    debug_assert_eq!(e2, e + 1, "cond-br edges are allocated adjacently");
                    let fused = match &ins.op {
                        Op::Icmp { pred, a, b } => {
                            let (ra, rb) = (lo.reg(a), lo.reg(b));
                            Bc::CmpBrI {
                                pred: *pred,
                                dst,
                                a: ra,
                                b: rb,
                                edge: e,
                            }
                        }
                        Op::Fcmp { pred, a, b } => {
                            let (ra, rb) = (lo.reg(a), lo.reg(b));
                            Bc::CmpBrF {
                                pred: *pred,
                                dst,
                                a: ra,
                                b: rb,
                                edge: e,
                            }
                        }
                        _ => unreachable!(),
                    };
                    pcs.push(lo.emit(fused, ins.sid.0, bi, ii));
                    // Unfused cond-br stub doubles as the block's
                    // terminator position.
                    pcs.push(lo.emit(Bc::CondBr { cond: dst, edge: e }, u32::MAX, bi, ii + 1));
                    term_done = true;
                    i += 1;
                }
                // Loop-latch fusion: an i64 add immediately followed by
                // the block-terminal compare feeding the conditional
                // branch (the canonical counted-loop back edge).
                Op::Bin {
                    op: BinOp::Add,
                    a,
                    b,
                } if i + 2 == n
                    && lo.func.operand_ty(a) == Ty::I64
                    && matches!(&block.instrs[i + 1].op, Op::Icmp { .. })
                    && matches!(
                        (&block.term, block.instrs[i + 1].result),
                        (
                            Term::CondBr {
                                cond: Operand::Value(c),
                                ..
                            },
                            Some(r)
                        ) if *c == r
                    ) =>
                {
                    let dst = lo.result_reg(ins);
                    let (ra, rb) = (lo.reg(a), lo.reg(b));
                    let next = &block.instrs[i + 1];
                    let cdst = lo.result_reg(next);
                    let (pred, ca, cb) = match &next.op {
                        Op::Icmp { pred, a, b } => (*pred, lo.reg(a), lo.reg(b)),
                        _ => unreachable!(),
                    };
                    let (then_target, then_args, else_target, else_args) = match &block.term {
                        Term::CondBr {
                            then_target,
                            then_args,
                            else_target,
                            else_args,
                            ..
                        } => (then_target.0, then_args, else_target.0, else_args),
                        _ => unreachable!(),
                    };
                    let e = lo.edge(then_target, then_args);
                    let e2 = lo.edge(else_target, else_args);
                    debug_assert_eq!(e2, e + 1, "cond-br edges are allocated adjacently");
                    pcs.push(lo.emit(
                        Bc::IAddCmpBrI {
                            dst,
                            a: ra,
                            b: rb,
                            pred,
                            cdst,
                            ca,
                            cb,
                            edge: e,
                        },
                        ins.sid.0,
                        bi,
                        ii,
                    ));
                    // Unfused compare-and-branch at pc + 1 (resume /
                    // boundary entry), with its own cond-br stub at
                    // pc + 2 doubling as the terminator position.
                    pcs.push(lo.emit(
                        Bc::CmpBrI {
                            pred,
                            dst: cdst,
                            a: ca,
                            b: cb,
                            edge: e,
                        },
                        next.sid.0,
                        bi,
                        ii + 1,
                    ));
                    pcs.push(lo.emit(
                        Bc::CondBr {
                            cond: cdst,
                            edge: e,
                        },
                        u32::MAX,
                        bi,
                        ii + 2,
                    ));
                    term_done = true;
                    i += 2;
                }
                // Multiply-add fusion: an f64 multiply feeding the very
                // next instruction, an f64 add.
                Op::Bin {
                    op: BinOp::FMul,
                    a,
                    b,
                } if i + 1 < n
                    && lo.func.operand_ty(a) == Ty::F64
                    && ins
                        .result
                        .is_some_and(|r| adds_through(&block.instrs[i + 1].op, r)) =>
                {
                    let t = lo.result_reg(ins);
                    let next = &block.instrs[i + 1];
                    let dst = lo.result_reg(next);
                    let (ra, rb) = (lo.reg(a), lo.reg(b));
                    let (x, y) = match &next.op {
                        Op::Bin { a: x, b: y, .. } => (lo.reg(x), lo.reg(y)),
                        _ => unreachable!(),
                    };
                    pcs.push(lo.emit(
                        Bc::FMulAdd {
                            t,
                            a: ra,
                            b: rb,
                            dst,
                            x,
                            y,
                        },
                        ins.sid.0,
                        bi,
                        ii,
                    ));
                    // Unfused add at pc + 1: the resume / boundary-
                    // bailout entry point.
                    pcs.push(lo.emit(Bc::FAdd { dst, a: x, b: y }, next.sid.0, bi, ii + 1));
                    i += 2;
                    continue;
                }
                _ => {
                    let bc = plain_bc(&mut lo, ins);
                    pcs.push(lo.emit(bc, ins.sid.0, bi, ii));
                    i += 1;
                }
            }
        }
        if !term_done {
            let tpc = match block.term.clone() {
                Term::Br { target, args } => {
                    let e = lo.edge(target.0, &args);
                    lo.emit(Bc::Br { edge: e }, u32::MAX, bi, n as u32)
                }
                Term::CondBr {
                    cond,
                    then_target,
                    then_args,
                    else_target,
                    else_args,
                } => {
                    let c = lo.reg(&cond);
                    let e = lo.edge(then_target.0, &then_args);
                    let e2 = lo.edge(else_target.0, &else_args);
                    debug_assert_eq!(e2, e + 1);
                    lo.emit(Bc::CondBr { cond: c, edge: e }, u32::MAX, bi, n as u32)
                }
                Term::Ret { value } => {
                    let val = value.as_ref().map_or(NO_REG, |v| lo.reg(v));
                    lo.emit(Bc::Ret { val }, u32::MAX, bi, n as u32)
                }
            };
            pcs.push(tpc);
        }
        debug_assert_eq!(pcs.len(), n + 1);
        lo.pc_of.push(pcs);
    }

    // Patch edge targets from block ids to entry pcs.
    for e in &mut lo.edges {
        e.target_pc = lo.pc_of[e.target_pc as usize][0];
    }

    let seg = seg_table(&lo.code);
    let mut frame_image = vec![0u64; lo.num_values];
    frame_image.extend_from_slice(&lo.consts);
    CompiledFunc {
        code: lo.code,
        sids: lo.sids,
        meta: lo.meta,
        pc_of: lo.pc_of,
        num_values: lo.num_values,
        consts: lo.consts,
        edges: lo.edges,
        moves: lo.moves,
        call_args: lo.call_args,
        seg,
        frame_image,
    }
}

/// Backward sweep computing [`SegInfo`] for every pc. Fused pairs
/// count both covered instructions and skip their unfused stub; the
/// stub pc gets its own (independent) segment summary, since resumes
/// and boundary bailouts can land there.
fn seg_table(code: &[Bc]) -> Vec<SegInfo> {
    let mut seg = vec![
        SegInfo {
            n_ops: 0,
            n_defs: 0
        };
        code.len()
    ];
    let add = |s: SegInfo, ops: u32, defs: u32| SegInfo {
        n_ops: s.n_ops + ops,
        n_defs: s.n_defs + defs,
    };
    for pc in (0..code.len()).rev() {
        seg[pc] = match code[pc] {
            Bc::Br { .. } | Bc::CondBr { .. } | Bc::Ret { .. } | Bc::Call { .. } => SegInfo {
                n_ops: 0,
                n_defs: 0,
            },
            Bc::CmpBrI { .. } | Bc::CmpBrF { .. } => SegInfo {
                n_ops: 1,
                n_defs: 1,
            },
            Bc::IAddCmpBrI { .. } => SegInfo {
                n_ops: 2,
                n_defs: 2,
            },
            Bc::GepLoad { .. } | Bc::FMulAdd { .. } => add(seg[pc + 2], 2, 2),
            Bc::GepStore { .. } => add(seg[pc + 2], 2, 1),
            Bc::Store { .. } | Bc::Output { .. } => add(seg[pc + 1], 1, 0),
            _ => add(seg[pc + 1], 1, 1),
        };
    }
    seg
}

fn plain_bc(lo: &mut Lowerer<'_>, ins: &peppa_ir::Instr) -> Bc {
    let dst = lo.result_reg(ins);
    match &ins.op {
        Op::Bin { op, a, b } => {
            let ty = lo.func.operand_ty(a);
            let (ra, rb) = (lo.reg(a), lo.reg(b));
            match (op, ty) {
                (BinOp::Add, Ty::I64) => Bc::IAdd { dst, a: ra, b: rb },
                (BinOp::Sub, Ty::I64) => Bc::ISub { dst, a: ra, b: rb },
                (BinOp::Mul, Ty::I64) => Bc::IMul { dst, a: ra, b: rb },
                (BinOp::FAdd, Ty::F64) => Bc::FAdd { dst, a: ra, b: rb },
                (BinOp::FSub, Ty::F64) => Bc::FSub { dst, a: ra, b: rb },
                (BinOp::FMul, Ty::F64) => Bc::FMul { dst, a: ra, b: rb },
                (BinOp::FDiv, Ty::F64) => Bc::FDiv { dst, a: ra, b: rb },
                _ => Bc::Bin {
                    op: *op,
                    ty,
                    dst,
                    a: ra,
                    b: rb,
                },
            }
        }
        Op::Un { op, a } => {
            let ty = lo.func.operand_ty(a);
            let ra = lo.reg(a);
            Bc::Un {
                op: *op,
                ty,
                dst,
                a: ra,
            }
        }
        Op::Icmp { pred, a, b } => {
            let (ra, rb) = (lo.reg(a), lo.reg(b));
            Bc::Icmp {
                pred: *pred,
                dst,
                a: ra,
                b: rb,
            }
        }
        Op::Fcmp { pred, a, b } => {
            let (ra, rb) = (lo.reg(a), lo.reg(b));
            Bc::Fcmp {
                pred: *pred,
                dst,
                a: ra,
                b: rb,
            }
        }
        Op::Select { cond, t, f } => {
            let (rc, rt, rf) = (lo.reg(cond), lo.reg(t), lo.reg(f));
            Bc::Select {
                dst,
                cond: rc,
                t: rt,
                f: rf,
            }
        }
        Op::Cast { kind, a, to } => {
            let from = lo.func.operand_ty(a);
            let ra = lo.reg(a);
            Bc::Cast {
                kind: *kind,
                from,
                to: *to,
                dst,
                a: ra,
            }
        }
        Op::Load { addr, ty } => {
            let ra = lo.reg(addr);
            Bc::Load {
                ty: *ty,
                dst,
                addr: ra,
            }
        }
        Op::Store { addr, value } => {
            let (ra, rv) = (lo.reg(addr), lo.reg(value));
            Bc::Store { addr: ra, val: rv }
        }
        Op::Gep { base, index } => {
            let (rb, ri) = (lo.reg(base), lo.reg(index));
            Bc::Gep {
                dst,
                base: rb,
                index: ri,
            }
        }
        Op::Alloca { words } => {
            let rw = lo.reg(words);
            Bc::Alloca { dst, words: rw }
        }
        Op::Call { func, args } => {
            let start = lo.call_args.len() as u32;
            let regs: Vec<u32> = args.iter().map(|a| lo.reg(a)).collect();
            lo.call_args.extend(regs);
            Bc::Call {
                callee: *func,
                args: start,
                dst,
            }
        }
        Op::Output { value } => {
            let rv = lo.reg(value);
            Bc::Output { val: rv }
        }
    }
}

/// Post-lowering validation: every register index, edge target, and
/// pool range is in bounds. The dispatch loop's unchecked register
/// accesses are sound exactly because this sweep ran.
fn validate(module: &Module, cm: &CompiledModule) {
    assert_eq!(module.functions.len(), cm.funcs.len());
    for (func, cf) in module.functions.iter().zip(&cm.funcs) {
        let total = cf.num_regs() as u32;
        let nv = cf.num_values as u32;
        let npc = cf.code.len() as u32;
        assert_eq!(cf.sids.len(), cf.code.len());
        assert_eq!(cf.meta.len(), cf.code.len());
        assert_eq!(cf.pc_of.len(), func.blocks.len());
        for (b, pcs) in func.blocks.iter().zip(&cf.pc_of) {
            assert_eq!(pcs.len(), b.instrs.len() + 1);
            assert!(pcs.iter().all(|&p| p < npc));
        }
        let src = |r: u32| assert!(r < total, "source register out of bounds");
        let dst = |r: u32| assert!(r < nv, "destination register out of bounds");
        let opt_dst = |r: u32| assert!(r == NO_REG || r < nv);
        let edge = |e: u32| {
            let ed = &cf.edges[e as usize];
            assert!(ed.target_pc < npc);
            let lo = ed.moves_start as usize;
            let hi = lo + ed.moves_len as usize;
            assert!(hi <= cf.moves.len());
            for &(d, s) in &cf.moves[lo..hi] {
                assert!(d < nv && s < total);
            }
        };
        for (pc, bc) in cf.code.iter().enumerate() {
            match *bc {
                Bc::Bin { dst: d, a, b, .. }
                | Bc::Icmp { dst: d, a, b, .. }
                | Bc::Fcmp { dst: d, a, b, .. }
                | Bc::IAdd { dst: d, a, b }
                | Bc::ISub { dst: d, a, b }
                | Bc::IMul { dst: d, a, b }
                | Bc::FAdd { dst: d, a, b }
                | Bc::FSub { dst: d, a, b }
                | Bc::FMul { dst: d, a, b }
                | Bc::FDiv { dst: d, a, b } => {
                    dst(d);
                    src(a);
                    src(b);
                }
                Bc::FMulAdd {
                    t,
                    a,
                    b,
                    dst: d,
                    x,
                    y,
                } => {
                    dst(t);
                    dst(d);
                    src(a);
                    src(b);
                    src(x);
                    src(y);
                    assert!(x == t || y == t, "mul-add fusion must read its multiply");
                    assert!(
                        matches!(cf.code[pc + 1], Bc::FAdd { dst, a, b } if dst == d && a == x && b == y),
                        "mul-add stub mismatch at pc {pc}"
                    );
                }
                Bc::Un { dst: d, a, .. } | Bc::Cast { dst: d, a, .. } => {
                    dst(d);
                    src(a);
                }
                Bc::Select {
                    dst: d, cond, t, f, ..
                } => {
                    dst(d);
                    src(cond);
                    src(t);
                    src(f);
                }
                Bc::Load { dst: d, addr, .. } => {
                    dst(d);
                    src(addr);
                }
                Bc::Store { addr, val } => {
                    src(addr);
                    src(val);
                }
                Bc::Gep {
                    dst: d,
                    base,
                    index,
                } => {
                    dst(d);
                    src(base);
                    src(index);
                }
                Bc::Alloca { dst: d, words } => {
                    dst(d);
                    src(words);
                }
                Bc::Output { val } => src(val),
                Bc::Call {
                    callee,
                    args,
                    dst: d,
                } => {
                    opt_dst(d);
                    let f = module.func(callee);
                    let lo = args as usize;
                    let hi = lo + f.params.len();
                    assert!(hi <= cf.call_args.len());
                    for &r in &cf.call_args[lo..hi] {
                        src(r);
                    }
                }
                Bc::Br { edge: e } => edge(e),
                Bc::CondBr { cond, edge: e } => {
                    src(cond);
                    edge(e);
                    edge(e + 1);
                }
                Bc::Ret { val } => {
                    if val != NO_REG {
                        src(val);
                    }
                }
                Bc::CmpBrI {
                    dst: d,
                    a,
                    b,
                    edge: e,
                    ..
                }
                | Bc::CmpBrF {
                    dst: d,
                    a,
                    b,
                    edge: e,
                    ..
                } => {
                    dst(d);
                    src(a);
                    src(b);
                    edge(e);
                    edge(e + 1);
                    // The stub at pc + 1 must be the unfused cond-br.
                    assert!(
                        matches!(cf.code[pc + 1], Bc::CondBr { cond, edge } if cond == d && edge == e),
                        "cmp-br stub mismatch at pc {pc}"
                    );
                }
                Bc::IAddCmpBrI {
                    dst: d,
                    a,
                    b,
                    pred,
                    cdst,
                    ca,
                    cb,
                    edge: e,
                } => {
                    dst(d);
                    dst(cdst);
                    src(a);
                    src(b);
                    src(ca);
                    src(cb);
                    edge(e);
                    edge(e + 1);
                    // Stubs: the unfused cmp-br at pc + 1, its own
                    // cond-br stub at pc + 2.
                    assert!(
                        matches!(cf.code[pc + 1], Bc::CmpBrI { pred: p, dst, a, b, edge }
                            if p == pred && dst == cdst && a == ca && b == cb && edge == e),
                        "latch cmp-br stub mismatch at pc {pc}"
                    );
                    assert!(
                        matches!(cf.code[pc + 2], Bc::CondBr { cond, edge } if cond == cdst && edge == e),
                        "latch cond-br stub mismatch at pc {pc}"
                    );
                }
                Bc::GepLoad {
                    gep_dst,
                    base,
                    index,
                    dst: d,
                    ..
                } => {
                    dst(gep_dst);
                    dst(d);
                    src(base);
                    src(index);
                    assert!(
                        matches!(cf.code[pc + 1], Bc::Load { dst, addr, .. } if dst == d && addr == gep_dst),
                        "gep-load stub mismatch at pc {pc}"
                    );
                }
                Bc::GepStore {
                    gep_dst,
                    base,
                    index,
                    val,
                } => {
                    dst(gep_dst);
                    src(base);
                    src(index);
                    src(val);
                    assert!(
                        matches!(cf.code[pc + 1], Bc::Store { addr, val: v } if addr == gep_dst && v == val),
                        "gep-store stub mismatch at pc {pc}"
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_ir::ModuleBuilder;

    fn loop_module() -> Module {
        // sum = 0; for i in 0..n { sum += buf[i] } ; output sum
        let mut mb = ModuleBuilder::new("lower-test");
        let buf = mb.global_init("buf", 8, vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let f = mb.declare("main", &[Ty::I64], Some(Ty::I64));
        mb.set_entry(f);
        let mut fb = mb.define(f);
        let n = fb.param(0);
        let (body, bp) = fb.new_block(&[Ty::I64, Ty::I64]);
        let (done, dp) = fb.new_block(&[Ty::I64]);
        fb.br(body, &[Operand::i64(0), Operand::i64(0)]);
        fb.switch_to(body);
        let (i, acc) = (bp[0], bp[1]);
        let p = fb.gep(buf, i);
        let v = fb.load(p, Ty::I64);
        let acc2 = fb.add(acc, v);
        let i2 = fb.add(i, Operand::i64(1));
        let c = fb.icmp(IPred::Slt, i2, n);
        fb.cond_br(c, body, &[i2, acc2], done, &[acc2]);
        fb.switch_to(done);
        fb.output(dp[0]);
        fb.ret(Some(dp[0]));
        fb.finish();
        mb.finish()
    }

    #[test]
    fn lowering_emits_fused_pairs_with_stubs() {
        let m = loop_module();
        let cm = CompiledModule::lower(&m);
        assert!(cm.fused_pairs() >= 2, "expected gep-load and cmp-br fusion");
        let cf = &cm.funcs[m.entry.0 as usize];
        // Every (block, instr) coordinate has a resume pc.
        for (bi, b) in m.entry_func().blocks.iter().enumerate() {
            assert_eq!(cf.pc_of[bi].len(), b.instrs.len() + 1);
        }
    }

    #[test]
    fn const_pool_is_deduped() {
        let m = loop_module();
        let cm = CompiledModule::lower(&m);
        let cf = &cm.funcs[m.entry.0 as usize];
        let mut seen = std::collections::HashSet::new();
        for &c in &cf.consts {
            assert!(seen.insert(c), "duplicate constant {c:#x} in pool");
        }
    }

    #[test]
    fn meta_covers_every_pc() {
        let m = loop_module();
        let cm = CompiledModule::lower(&m);
        for (f, cf) in m.functions.iter().zip(&cm.funcs) {
            for (pc, &(b, i)) in cf.meta.iter().enumerate() {
                assert!((b as usize) < f.blocks.len(), "pc {pc} block out of range");
                assert!(i as usize <= f.blocks[b as usize].instrs.len());
            }
        }
    }
}

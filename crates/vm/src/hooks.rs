//! Execution hooks: zero-cost instrumentation points in the interpreter.
//!
//! The interpreter's instruction loop is monomorphized over an
//! [`ExecHook`]. The default [`NoHook`] has `ENABLED == false`, so the
//! hook branch is `if false { .. }` after constant folding and the
//! un-instrumented path compiles to exactly the code it had before hooks
//! existed. Profiling callers pass an [`OpcodeProfile`] (or their own
//! hook) to [`crate::Vm::run_with_hook`].
//!
//! Wall-time is *sampled*: timing every instruction would pay two
//! `Instant::now()` calls per dynamic instruction and measure mostly
//! timer overhead. `OpcodeProfile` times every `sample_every`-th
//! instruction and scales counts up when estimating totals.

use peppa_ir::{FuncId, Instr, InstrId, Module, Op, Operand, ValueId};

/// An instrumentation sink for the interpreter's instruction loop.
///
/// `ENABLED` gates every call site behind a compile-time constant;
/// implementations with `ENABLED == false` cost nothing at runtime.
pub trait ExecHook {
    const ENABLED: bool;

    /// Called before each dynamic instruction. Returns `true` to request
    /// wall-clock timing for this instruction ([`end_instr`] then fires
    /// with the elapsed time).
    ///
    /// [`end_instr`]: ExecHook::end_instr
    #[inline]
    fn begin_instr(&mut self, ins: &Instr) -> bool {
        let _ = ins;
        false
    }

    /// Called after a timed instruction with its elapsed wall time.
    #[inline]
    fn end_instr(&mut self, ins: &Instr, elapsed_ns: u64) {
        let _ = (ins, elapsed_ns);
    }

    /// Called when a value-producing instruction writes its result
    /// register, with the canonical bits actually written (after any
    /// fault injection). The static-analysis soundness tests use this to
    /// compare concrete def values against their abstractions.
    #[inline]
    fn def_value(&mut self, ins: &Instr, bits: u64) {
        let _ = (ins, bits);
    }

    /// Called after a successful `store`, with the resolved word address
    /// and the raw word written. The memory-dependence soundness tests
    /// use this to record dynamic last-writer relations.
    #[inline]
    fn mem_store(&mut self, ins: &Instr, addr: u64, bits: u64) {
        let _ = (ins, addr, bits);
    }

    /// Called after a successful `load`, with the resolved word address
    /// and the raw word read (before type reinterpretation).
    #[inline]
    fn mem_load(&mut self, ins: &Instr, addr: u64, bits: u64) {
        let _ = (ins, addr, bits);
    }

    /// Called when the interpreter zero-fills a memory range (`alloca`
    /// reusing stack words). Shadow engines drop any stale per-word state
    /// for `[base, base + words)`.
    #[inline]
    fn mem_clear(&mut self, base: u64, words: u64) {
        let _ = (base, words);
    }

    /// Called exactly once per faulty run, at the instruction whose result
    /// the injection corrupts, with the canonical XOR mask the flip
    /// applied (old bits ^ new bits). Fires before [`def_value`] for the
    /// same instruction. Shadow engines use this to seed taint.
    ///
    /// [`def_value`]: ExecHook::def_value
    #[inline]
    fn fault_injected(&mut self, ins: &Instr, flip_mask: u64) {
        let _ = (ins, flip_mask);
    }

    /// Called at each taken branch edge, before the interpreter copies
    /// `args` into the target block's `params`. `cond` is the condition
    /// operand for conditional branches (`None` for unconditional ones),
    /// evaluated in the *current* register file.
    #[inline]
    fn branch_transfer(&mut self, cond: Option<&Operand>, params: &[ValueId], args: &[Operand]) {
        let _ = (cond, params, args);
    }

    /// Called immediately before entering `callee`'s frame for the call
    /// instruction `ins` (arguments are in `ins.op`, evaluated in the
    /// caller's register file).
    #[inline]
    fn call_enter(&mut self, ins: &Instr, callee: FuncId) {
        let _ = (ins, callee);
    }

    /// Called when a frame returns, with the returned operand (evaluated
    /// in the *returning* frame's register file). The matching
    /// [`call_enter`] frame is the one being popped; when no frame was
    /// ever pushed for it, this is the entry function returning.
    ///
    /// [`call_enter`]: ExecHook::call_enter
    #[inline]
    fn func_ret(&mut self, value: Option<&Operand>) {
        let _ = value;
    }
}

/// The default hook: compiles to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHook;

impl ExecHook for NoHook {
    const ENABLED: bool = false;
}

impl<H: ExecHook> ExecHook for &mut H {
    const ENABLED: bool = H::ENABLED;

    #[inline]
    fn begin_instr(&mut self, ins: &Instr) -> bool {
        (**self).begin_instr(ins)
    }

    #[inline]
    fn end_instr(&mut self, ins: &Instr, elapsed_ns: u64) {
        (**self).end_instr(ins, elapsed_ns)
    }

    #[inline]
    fn def_value(&mut self, ins: &Instr, bits: u64) {
        (**self).def_value(ins, bits)
    }

    #[inline]
    fn mem_store(&mut self, ins: &Instr, addr: u64, bits: u64) {
        (**self).mem_store(ins, addr, bits)
    }

    #[inline]
    fn mem_load(&mut self, ins: &Instr, addr: u64, bits: u64) {
        (**self).mem_load(ins, addr, bits)
    }

    #[inline]
    fn mem_clear(&mut self, base: u64, words: u64) {
        (**self).mem_clear(base, words)
    }

    #[inline]
    fn fault_injected(&mut self, ins: &Instr, flip_mask: u64) {
        (**self).fault_injected(ins, flip_mask)
    }

    #[inline]
    fn branch_transfer(&mut self, cond: Option<&Operand>, params: &[ValueId], args: &[Operand]) {
        (**self).branch_transfer(cond, params, args)
    }

    #[inline]
    fn call_enter(&mut self, ins: &Instr, callee: FuncId) {
        (**self).call_enter(ins, callee)
    }

    #[inline]
    fn func_ret(&mut self, value: Option<&Operand>) {
        (**self).func_ret(value)
    }
}

/// Number of coarse opcode categories (the [`Op`] variants).
const OP_KINDS: usize = 12;

const OP_NAMES: [&str; OP_KINDS] = [
    "bin", "un", "icmp", "fcmp", "select", "cast", "load", "store", "gep", "alloca", "call",
    "output",
];

#[inline]
fn op_index(op: &Op) -> usize {
    match op {
        Op::Bin { .. } => 0,
        Op::Un { .. } => 1,
        Op::Icmp { .. } => 2,
        Op::Fcmp { .. } => 3,
        Op::Select { .. } => 4,
        Op::Cast { .. } => 5,
        Op::Load { .. } => 6,
        Op::Store { .. } => 7,
        Op::Gep { .. } => 8,
        Op::Alloca { .. } => 9,
        Op::Call { .. } => 10,
        Op::Output { .. } => 11,
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct OpTiming {
    samples: u64,
    sum_ns: u64,
    max_ns: u64,
}

/// An [`ExecHook`] collecting per-opcode dynamic counts and sampled
/// per-opcode wall time, plus per-static-instruction (`sid`) counts for
/// the hot-instruction table.
#[derive(Debug, Clone)]
pub struct OpcodeProfile {
    /// Dynamic executions per [`Op`] variant.
    counts: [u64; OP_KINDS],
    /// Sampled timings per [`Op`] variant.
    timing: [OpTiming; OP_KINDS],
    /// Dynamic executions per static instruction, indexed by `sid`.
    sid_counts: Vec<u64>,
    /// Time every `sample_every`-th instruction (1 = every instruction).
    sample_every: u64,
    tick: u64,
}

impl Default for OpcodeProfile {
    fn default() -> Self {
        OpcodeProfile::new(64)
    }
}

impl ExecHook for OpcodeProfile {
    const ENABLED: bool = true;

    #[inline]
    fn begin_instr(&mut self, ins: &Instr) -> bool {
        self.counts[op_index(&ins.op)] += 1;
        let sid = ins.sid.0 as usize;
        if sid >= self.sid_counts.len() {
            self.sid_counts.resize(sid + 1, 0);
        }
        self.sid_counts[sid] += 1;
        self.tick += 1;
        self.tick.is_multiple_of(self.sample_every)
    }

    #[inline]
    fn end_instr(&mut self, ins: &Instr, elapsed_ns: u64) {
        let t = &mut self.timing[op_index(&ins.op)];
        t.samples += 1;
        t.sum_ns += elapsed_ns;
        t.max_ns = t.max_ns.max(elapsed_ns);
    }
}

impl OpcodeProfile {
    pub fn new(sample_every: u64) -> OpcodeProfile {
        OpcodeProfile {
            counts: [0; OP_KINDS],
            timing: [OpTiming::default(); OP_KINDS],
            sid_counts: Vec::new(),
            sample_every: sample_every.max(1),
            tick: 0,
        }
    }

    /// Total dynamic instructions observed.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Dynamic count for one opcode category (by [`Op`] variant name,
    /// e.g. `"bin"`, `"load"`). `None` for unknown names.
    pub fn count_of(&self, name: &str) -> Option<u64> {
        OP_NAMES
            .iter()
            .position(|n| *n == name)
            .map(|i| self.counts[i])
    }

    /// Dynamic count for one static instruction.
    pub fn sid_count(&self, sid: InstrId) -> u64 {
        self.sid_counts.get(sid.0 as usize).copied().unwrap_or(0)
    }

    /// Per-opcode summary: `(name, dynamic count, sampled mean ns)`,
    /// sorted by count descending, zero-count rows dropped.
    pub fn opcode_summary(&self) -> Vec<(&'static str, u64, f64)> {
        let mut rows: Vec<(&'static str, u64, f64)> = (0..OP_KINDS)
            .filter(|&i| self.counts[i] > 0)
            .map(|i| {
                let t = &self.timing[i];
                let mean = if t.samples == 0 {
                    0.0
                } else {
                    t.sum_ns as f64 / t.samples as f64
                };
                (OP_NAMES[i], self.counts[i], mean)
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.1));
        rows
    }

    /// Renders the hot-instruction table: the `top` most-executed static
    /// instructions with mnemonic, dynamic count, and share of the total.
    pub fn hot_table(&self, module: &Module, top: usize) -> String {
        let total = self.total().max(1);
        let mut sids: Vec<(usize, u64)> = self
            .sid_counts
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, c)| *c > 0)
            .collect();
        sids.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        sids.truncate(top);

        let mut out = String::new();
        out.push_str(&format!(
            "{:>6}  {:>8}  {:>14}  {:>6}\n",
            "sid", "op", "dyn", "share"
        ));
        for (sid, count) in sids {
            let mnemonic = module
                .op_of(InstrId(sid as u32))
                .map(|op| op.mnemonic())
                .unwrap_or("?");
            out.push_str(&format!(
                "{:>6}  {:>8}  {:>14}  {:>5.1}%\n",
                sid,
                mnemonic,
                count,
                count as f64 / total as f64 * 100.0
            ));
        }
        out.push_str(&format!("  total dynamic instructions: {}\n", self.total()));
        for (name, count, mean_ns) in self.opcode_summary() {
            out.push_str(&format!(
                "  {:>8}: {:>12} dyn, ~{:.0} ns sampled mean\n",
                name, count, mean_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_hook_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NoHook>(), 0);
        const { assert!(!NoHook::ENABLED) };
    }

    #[test]
    fn sampling_interval_controls_timing_requests() {
        let ins = Instr {
            sid: InstrId(0),
            op: Op::Gep {
                base: peppa_ir::Operand::i64(0),
                index: peppa_ir::Operand::i64(0),
            },
            result: None,
        };
        let mut p = OpcodeProfile::new(4);
        let timed: usize = (0..16).filter(|_| p.begin_instr(&ins)).count();
        assert_eq!(timed, 4);
        assert_eq!(p.total(), 16);
        assert_eq!(p.count_of("gep"), Some(16));
        assert_eq!(p.sid_count(InstrId(0)), 16);
    }
}

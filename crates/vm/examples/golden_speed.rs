//! Quick per-engine golden-run throughput probe over the benchmark
//! suite: prints ns/instr and the compiled/interp ratio per benchmark.
//! Used to sanity-check engine performance without a full campaign
//! (`cargo run --release -p peppa-vm --example golden_speed`).

use peppa_vm::{CompiledModule, Engine, EngineKind, ExecLimits, ResumeScratch};
use std::time::Instant;

fn main() {
    let limits = ExecLimits::default();
    for bench in peppa_apps::all_benchmarks() {
        let code = CompiledModule::lower(&bench.module);
        let interp = Engine::new(&bench.module, limits, None);
        let compiled = Engine::new(&bench.module, limits, Some(&code));
        let golden = interp.run_numeric(&bench.reference_input, None);
        let dynamic = golden.profile.dynamic;
        let reps = (30_000_000 / dynamic.max(1)).clamp(3, 200) as u32;
        let mut times = [0f64; 2];
        for (i, eng) in [&interp, &compiled].iter().enumerate() {
            // Campaign-mode timing: trials reuse a per-worker scratch
            // (a no-op on the interpreter, which has no amortized path).
            let mut scratch = ResumeScratch::new();
            let t0 = Instant::now();
            for _ in 0..reps {
                let out = eng.run_numeric_amortized(&mut scratch, &bench.reference_input, None);
                assert_eq!(out.output, golden.output);
            }
            times[i] = t0.elapsed().as_secs_f64() / reps as f64;
        }
        let _ = EngineKind::Interp;
        println!(
            "{:16} dyn {:>9}  interp {:7.2} ns/i  compiled {:7.2} ns/i  ratio {:5.2}x",
            bench.name,
            dynamic,
            times[0] * 1e9 / dynamic as f64,
            times[1] * 1e9 / dynamic as f64,
            times[0] / times[1]
        );
    }
}

//! Property test for the snapshot/resume engine.
//!
//! For random straight-line integer programs, capture a snapshot at
//! *every* value-instruction boundary along the golden run and check
//! that resuming from each one — with and without an injected fault —
//! reproduces the straight run bit-for-bit: same status, same output,
//! same return value, same final memory image, same dynamic counters.
//! This is the determinism contract `run_campaign_snapshotted` rests
//! on, exercised over arbitrary programs instead of hand-picked
//! kernels.

use peppa_vm::{encode_inputs, ExecLimits, Injection, InjectionTarget, RunStatus, Vm};
use proptest::prelude::*;

/// One generated statement, decoded from one random `u64` (the offline
/// proptest stand-in has no `prop_map`, so custom strategies are
/// unpacked by hand). Mirrors the generator in `taint_differential.rs`.
#[derive(Debug, Clone)]
struct Stmt {
    op: u8,
    lhs: u8,
    rhs: u8,
    lit: u32,
    shift: u8,
}

impl Stmt {
    fn decode(raw: u64) -> Stmt {
        Stmt {
            op: (raw & 0xff) as u8,
            lhs: ((raw >> 8) & 0xff) as u8,
            rhs: ((raw >> 16) & 0xff) as u8,
            lit: ((raw >> 24) & 0xffff_ffff) as u32,
            shift: ((raw >> 56) & 0xff) as u8,
        }
    }
}

fn operand(sel: u8, defined: usize, lit: u32) -> String {
    match sel as usize % (defined + 3) {
        0 => "a".to_string(),
        1 => "b".to_string(),
        2 => lit.to_string(),
        k => format!("v{}", k - 3),
    }
}

fn render_program(stmts: &[Stmt]) -> String {
    let mut src = String::from("fn main(a: int, b: int) {\n");
    for (i, s) in stmts.iter().enumerate() {
        let x = operand(s.lhs, i, s.lit);
        let y = operand(s.rhs, i, s.lit ^ 0x55);
        let sh = s.shift % 63;
        let expr = match s.op % 11 {
            0 => format!("{x} + {y}"),
            1 => format!("{x} - {y}"),
            2 => format!("{x} * {y}"),
            3 => format!("{x} & {y}"),
            4 => format!("{x} | {y}"),
            5 => format!("{x} ^ {y}"),
            6 => format!("{x} << {sh}"),
            7 => format!("{x} >> {sh}"),
            8 => format!("min({x}, {y})"),
            9 => format!("max({x}, {y})"),
            _ => format!("abs({x})"),
        };
        src.push_str(&format!("    let v{i} = {expr};\n"));
    }
    src.push_str(&format!("    output v{};\n}}\n", stmts.len() - 1));
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn resume_from_every_boundary_matches_straight_run(
        raw_stmts in proptest::collection::vec(any::<u64>(), 1..12),
        a in any::<i32>(),
        b in any::<i32>(),
        site_sel in any::<u64>(),
        bit in 0u32..64,
    ) {
        let stmts: Vec<Stmt> = raw_stmts.iter().map(|&r| Stmt::decode(r)).collect();
        let src = render_program(&stmts);
        let m = peppa_lang::compile(&src, "snapprop").unwrap();
        let inputs = [a as i64 as f64, b as i64 as f64];
        let in_bits = encode_inputs(m.entry_func(), &inputs);
        let vm = Vm::new(&m, ExecLimits::default());

        let golden = vm.run_capture(&in_bits, None);
        prop_assert_eq!(golden.status, RunStatus::Ok);
        prop_assert!(golden.profile.value_dynamic > 0);

        // Snapshot at every value-instruction boundary of the run.
        let points: Vec<u64> = (0..golden.profile.value_dynamic).collect();
        let (replay, snaps) = vm.run_with_snapshots(&in_bits, &points);
        prop_assert_eq!(replay.status, RunStatus::Ok);
        prop_assert_eq!(snaps.len(), points.len());

        let site = site_sel % golden.profile.value_dynamic;
        let inj = Injection {
            target: InjectionTarget::DynamicIndex(site),
            bit,
            burst: 0,
        };
        let faulty_full = vm.run_capture(&in_bits, Some(inj));

        for (i, snap) in snaps.iter().enumerate() {
            prop_assert_eq!(snap.value_dynamic(), points[i]);

            // Clean resume reproduces the golden run from any boundary.
            let clean = vm.resume_capture(snap, None);
            prop_assert_eq!(clean.status, golden.status);
            prop_assert_eq!(&clean.output, &golden.output);
            prop_assert_eq!(clean.ret, golden.ret);
            prop_assert_eq!(clean.profile.dynamic, golden.profile.dynamic);
            prop_assert_eq!(clean.profile.value_dynamic, golden.profile.value_dynamic);
            prop_assert_eq!(&clean.profile.exec_counts, &golden.profile.exec_counts);
            prop_assert_eq!(&clean.memory, &golden.memory, "clean resume memory @{i}\n{src}");

            // Faulty resume is bit-exact with the full faulty run
            // whenever the snapshot precedes the injection site.
            if snap.value_dynamic() <= site {
                let f = vm.resume_capture(snap, Some(inj));
                prop_assert_eq!(f.status, faulty_full.status, "@{i}\n{src}");
                prop_assert_eq!(&f.output, &faulty_full.output);
                prop_assert_eq!(f.ret, faulty_full.ret);
                prop_assert_eq!(f.fault_activated, faulty_full.fault_activated);
                prop_assert_eq!(f.profile.dynamic, faulty_full.profile.dynamic);
                prop_assert_eq!(&f.memory, &faulty_full.memory, "faulty resume memory @{i}\n{src}");
            }
        }
    }
}

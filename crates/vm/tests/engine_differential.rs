//! Engine differential harness: the compiled threaded-bytecode
//! backend must be observably bit-identical to the interpreter on all
//! seven benchmarks — golden runs, hooked runs (full `ExecHook` event
//! streams), injected runs, and snapshot-resumed runs with and
//! without convergence checkpoints (`--snapshots {0,8}` composition).
//!
//! The interpreter is the semantic reference; any mismatch is a
//! compiled-engine bug by definition (IRFuzzer's lesson: backend
//! lowering is where silent divergence hides).

use peppa_ir::{FuncId, Instr, InstrId, Operand, ValueId};
use peppa_vm::{
    encode_inputs, CompiledModule, CompiledVm, ExecHook, ExecLimits, Injection, InjectionTarget,
    RunOutput, RunStatus, TrialResume, Vm, VmSnapshot,
};

/// Full observable event stream of a run, for stream-equality checks.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Begin(u32),
    Def(u32, u64),
    Load(u32, u64, u64),
    Store(u32, u64, u64),
    Clear(u64, u64),
    Fault(u32, u64),
    Branch(Option<Operand>, Vec<ValueId>, Vec<Operand>),
    Call(u32, u32),
    Ret(bool),
}

#[derive(Default)]
struct Recorder {
    events: Vec<Ev>,
}

impl ExecHook for Recorder {
    const ENABLED: bool = true;

    fn begin_instr(&mut self, ins: &Instr) -> bool {
        self.events.push(Ev::Begin(ins.sid.0));
        false
    }

    fn def_value(&mut self, ins: &Instr, bits: u64) {
        self.events.push(Ev::Def(ins.sid.0, bits));
    }

    fn mem_load(&mut self, ins: &Instr, addr: u64, bits: u64) {
        self.events.push(Ev::Load(ins.sid.0, addr, bits));
    }

    fn mem_store(&mut self, ins: &Instr, addr: u64, bits: u64) {
        self.events.push(Ev::Store(ins.sid.0, addr, bits));
    }

    fn mem_clear(&mut self, base: u64, words: u64) {
        self.events.push(Ev::Clear(base, words));
    }

    fn fault_injected(&mut self, ins: &Instr, flip_mask: u64) {
        self.events.push(Ev::Fault(ins.sid.0, flip_mask));
    }

    fn branch_transfer(&mut self, cond: Option<&Operand>, params: &[ValueId], args: &[Operand]) {
        self.events
            .push(Ev::Branch(cond.cloned(), params.to_vec(), args.to_vec()));
    }

    fn call_enter(&mut self, ins: &Instr, callee: FuncId) {
        self.events.push(Ev::Call(ins.sid.0, callee.0));
    }

    fn func_ret(&mut self, value: Option<&Operand>) {
        self.events.push(Ev::Ret(value.is_some()));
    }
}

fn assert_runs_eq(name: &str, what: &str, a: &RunOutput, b: &RunOutput) {
    assert_eq!(a.status, b.status, "{name}/{what}: status diverged");
    assert_eq!(a.output, b.output, "{name}/{what}: output diverged");
    assert_eq!(a.ret, b.ret, "{name}/{what}: return value diverged");
    assert_eq!(
        a.fault_activated, b.fault_activated,
        "{name}/{what}: fault activation diverged"
    );
    assert_eq!(
        a.profile.dynamic, b.profile.dynamic,
        "{name}/{what}: dynamic count diverged"
    );
    assert_eq!(
        a.profile.value_dynamic, b.profile.value_dynamic,
        "{name}/{what}: value-dynamic count diverged"
    );
    assert_eq!(
        a.profile.exec_counts, b.profile.exec_counts,
        "{name}/{what}: per-sid exec counts diverged"
    );
}

/// `k` injection sites spread across the golden fault-site population,
/// plus both ends.
fn sites(value_dynamic: u64, k: u64) -> Vec<u64> {
    let mut s: Vec<u64> = (0..k).map(|j| j * value_dynamic / k).collect();
    s.push(value_dynamic - 1);
    s.dedup();
    s
}

/// Stratified fork points, the same shape the campaign planner uses.
fn fork_points(value_dynamic: u64, k: u64) -> Vec<u64> {
    let mut p: Vec<u64> = (1..=k).map(|j| j * value_dynamic / (k + 1)).collect();
    p.dedup();
    p.retain(|&x| x > 0);
    p
}

#[test]
fn golden_and_hooked_runs_bit_identical() {
    for bench in peppa_apps::all_benchmarks() {
        let m = &bench.module;
        let bits = encode_inputs(m.entry_func(), &bench.reference_input);
        let limits = ExecLimits::default();
        let code = CompiledModule::lower(m);
        let vm = Vm::new(m, limits);
        let cvm = CompiledVm::new(m, &code, limits);

        let golden_i = vm.run(&bits, None);
        let golden_c = cvm.run(&bits, None);
        assert_eq!(
            golden_i.status,
            RunStatus::Ok,
            "{}: golden must pass",
            bench.name
        );
        assert_runs_eq(bench.name, "golden", &golden_i, &golden_c);

        let mut rec_i = Recorder::default();
        let mut rec_c = Recorder::default();
        let hooked_i = vm.run_with_hook(&bits, None, &mut rec_i);
        let hooked_c = cvm.run_with_hook(&bits, None, &mut rec_c);
        assert_runs_eq(bench.name, "hooked", &hooked_i, &hooked_c);
        assert_eq!(
            rec_i.events.len(),
            rec_c.events.len(),
            "{}: event stream length diverged",
            bench.name
        );
        if let Some(pos) = rec_i
            .events
            .iter()
            .zip(&rec_c.events)
            .position(|(a, b)| a != b)
        {
            panic!(
                "{}: event stream diverged at {pos}: interp {:?} vs compiled {:?}",
                bench.name, rec_i.events[pos], rec_c.events[pos]
            );
        }
    }
}

#[test]
fn injected_runs_bit_identical() {
    for bench in peppa_apps::all_benchmarks() {
        let m = &bench.module;
        let bits = encode_inputs(m.entry_func(), &bench.reference_input);
        let limits = ExecLimits::default();
        let code = CompiledModule::lower(m);
        let vm = Vm::new(m, limits);
        let cvm = CompiledVm::new(m, &code, limits);
        let golden = vm.run(&bits, None);
        let vd = golden.profile.value_dynamic;

        for (i, site) in sites(vd, 5).into_iter().enumerate() {
            let inj = Injection {
                target: InjectionTarget::DynamicIndex(site),
                bit: (i as u32 * 13) % 64,
                burst: (i % 2) as u8,
            };
            let fi = vm.run(&bits, Some(inj));
            let fc = cvm.run(&bits, Some(inj));
            assert!(
                fi.fault_activated,
                "{}: site {site} unreachable",
                bench.name
            );
            assert_runs_eq(bench.name, &format!("inj@{site}"), &fi, &fc);

            // Hooked faulty runs must also agree event-for-event.
            if i == 2 {
                let mut rec_i = Recorder::default();
                let mut rec_c = Recorder::default();
                vm.run_with_hook(&bits, Some(inj), &mut rec_i);
                cvm.run_with_hook(&bits, Some(inj), &mut rec_c);
                assert_eq!(
                    rec_i.events, rec_c.events,
                    "{}: faulty event stream diverged at site {site}",
                    bench.name
                );
            }
        }

        // Static-instance targeting exercises the per-def sid check.
        let (sid, &count) = golden
            .profile
            .exec_counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("non-empty profile");
        let inj = Injection {
            target: InjectionTarget::StaticInstance {
                sid: InstrId(sid as u32),
                instance: count / 2,
            },
            bit: 17,
            burst: 0,
        };
        let fi = vm.run(&bits, Some(inj));
        let fc = cvm.run(&bits, Some(inj));
        assert_runs_eq(bench.name, "static-inj", &fi, &fc);
    }
}

#[test]
fn snapshot_resume_bit_identical() {
    for bench in peppa_apps::all_benchmarks() {
        let m = &bench.module;
        let bits = encode_inputs(m.entry_func(), &bench.reference_input);
        let limits = ExecLimits::default();
        let code = CompiledModule::lower(m);
        let vm = Vm::new(m, limits);
        let cvm = CompiledVm::new(m, &code, limits);
        let golden = vm.run(&bits, None);
        let vd = golden.profile.value_dynamic;

        // Snapshots are engine-independent: captured once on the
        // interpreter, resumed on both engines.
        let points = fork_points(vd, 8);
        let (_, snaps) = vm.run_with_snapshots(&bits, &points);
        assert!(!snaps.is_empty(), "{}: no snapshots captured", bench.name);

        for (i, site) in sites(vd, 4).into_iter().enumerate() {
            let inj = Injection {
                target: InjectionTarget::DynamicIndex(site),
                bit: (7 + i as u32 * 11) % 64,
                burst: 0,
            };
            // --snapshots 0 composition: full runs.
            let full_i = vm.run(&bits, Some(inj));
            let full_c = cvm.run(&bits, Some(inj));
            assert_runs_eq(bench.name, &format!("full@{site}"), &full_i, &full_c);

            // --snapshots 8 composition: resume from the last fork
            // point at or before the site.
            let fork = snaps
                .iter()
                .rev()
                .find(|s: &&VmSnapshot| s.value_dynamic() <= site);
            if let Some(snap) = fork {
                let res_i = vm.resume_from(snap, Some(inj));
                let res_c = cvm.resume_from(snap, Some(inj));
                assert_runs_eq(bench.name, &format!("resume@{site}"), &res_i, &res_c);
                assert_runs_eq(
                    bench.name,
                    &format!("resume-vs-full@{site}"),
                    &full_i,
                    &res_c,
                );
            }
        }
    }
}

#[test]
fn converged_trials_match_across_engines() {
    for bench in peppa_apps::all_benchmarks() {
        let m = &bench.module;
        let bits = encode_inputs(m.entry_func(), &bench.reference_input);
        let limits = ExecLimits::default();
        let code = CompiledModule::lower(m);
        let vm = Vm::new(m, limits);
        let cvm = CompiledVm::new(m, &code, limits);
        let golden = vm.run(&bits, None);
        let vd = golden.profile.value_dynamic;

        let points = fork_points(vd, 8);
        let (_, snaps) = vm.run_with_snapshots(&bits, &points);
        let mut scratch_i = peppa_vm::ResumeScratch::new();
        let mut scratch_c = peppa_vm::ResumeScratch::new();

        for (fi, snap) in snaps.iter().enumerate() {
            let site = snap.value_dynamic() + (vd - snap.value_dynamic()) / 7;
            let inj = Injection {
                target: InjectionTarget::DynamicIndex(site),
                bit: 62,
                burst: 0,
            };
            let later = &snaps[fi + 1..];
            let ti = vm.resume_trial_amortized(&mut scratch_i, snap, Some(inj), later, None, None);
            let tc = cvm.resume_trial_amortized(&mut scratch_c, snap, Some(inj), later, None, None);
            match (&ti, &tc) {
                (TrialResume::Completed(a), TrialResume::Completed(b)) => {
                    assert_runs_eq(bench.name, &format!("trial@{site}"), a, b);
                }
                (
                    TrialResume::Converged {
                        at_value_dynamic: a1,
                        checkpoint_dynamic: a2,
                        dynamic_at_exit: a3,
                        output_matches: a4,
                    },
                    TrialResume::Converged {
                        at_value_dynamic: b1,
                        checkpoint_dynamic: b2,
                        dynamic_at_exit: b3,
                        output_matches: b4,
                    },
                ) => {
                    assert_eq!((a1, a2, a3, a4), (b1, b2, b3, b4), "{}: convergence data diverged", bench.name);
                }
                _ => panic!(
                    "{}: trial disposition diverged at site {site}: interp converged={} compiled converged={}",
                    bench.name,
                    matches!(ti, TrialResume::Converged { .. }),
                    matches!(tc, TrialResume::Converged { .. })
                ),
            }
        }
    }
}

#[test]
fn hang_classification_identical() {
    let bench = peppa_apps::benchmark_by_name("pathfinder").unwrap();
    let m = &bench.module;
    let bits = encode_inputs(m.entry_func(), &bench.reference_input);
    let limits = ExecLimits {
        max_dynamic: 10_000,
        ..Default::default()
    };
    let code = CompiledModule::lower(m);
    let hi = Vm::new(m, limits).run(&bits, None);
    let hc = CompiledVm::new(m, &code, limits).run(&bits, None);
    assert_eq!(hi.status, RunStatus::Hang);
    assert_runs_eq("pathfinder", "hang", &hi, &hc);
}

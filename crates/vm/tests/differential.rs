//! Differential tests: PIR arithmetic semantics against native Rust
//! semantics, driven by proptest through compiled MiniC expressions.

use peppa_vm::{ExecLimits, RunStatus, Vm};
use proptest::prelude::*;

fn eval_int(expr_src: &str, inputs: &[f64]) -> i64 {
    let src = format!("fn main(a: int, b: int, c: int) {{ output {expr_src}; }}");
    let m = peppa_lang::compile(&src, "diff").unwrap();
    let vm = Vm::new(&m, ExecLimits::default());
    let out = vm.run_numeric(inputs, None);
    assert_eq!(out.status, RunStatus::Ok);
    out.output[0] as i64
}

fn eval_float(expr_src: &str, inputs: &[f64]) -> f64 {
    let src = format!("fn main(x: float, y: float) {{ output {expr_src}; }}");
    let m = peppa_lang::compile(&src, "diff").unwrap();
    let vm = Vm::new(&m, ExecLimits::default());
    let out = vm.run_numeric(inputs, None);
    assert_eq!(out.status, RunStatus::Ok);
    f64::from_bits(out.output[0])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn integer_ring_ops(a in any::<i32>(), b in any::<i32>(), c in any::<i32>()) {
        let (a, b, c) = (a as i64, b as i64, c as i64);
        let ins = [a as f64, b as f64, c as f64];
        prop_assert_eq!(
            eval_int("a + b * c", &ins),
            a.wrapping_add(b.wrapping_mul(c))
        );
        prop_assert_eq!(eval_int("a - b - c", &ins), a.wrapping_sub(b).wrapping_sub(c));
    }

    #[test]
    fn division_and_remainder(a in any::<i32>(), b in 1i64..1_000_000) {
        let a = a as i64;
        let ins = [a as f64, b as f64, 0.0];
        prop_assert_eq!(eval_int("a / b", &ins), a / b);
        prop_assert_eq!(eval_int("a % b", &ins), a % b);
        // Euclidean-ish identity holds for truncating division.
        prop_assert_eq!(eval_int("(a / b) * b + a % b", &ins), a);
    }

    #[test]
    fn bitwise_ops(a in any::<i32>(), b in any::<i32>(), sh in 0i64..63) {
        let (a64, b64) = (a as i64, b as i64);
        let ins = [a64 as f64, b64 as f64, sh as f64];
        prop_assert_eq!(eval_int("a & b", &ins), a64 & b64);
        prop_assert_eq!(eval_int("a | b", &ins), a64 | b64);
        prop_assert_eq!(eval_int("a ^ b", &ins), a64 ^ b64);
        prop_assert_eq!(eval_int("a << c", &ins), a64 << sh);
        prop_assert_eq!(eval_int("a >> c", &ins), a64 >> sh);
    }

    #[test]
    fn comparisons_and_selects(a in any::<i32>(), b in any::<i32>()) {
        let (a64, b64) = (a as i64, b as i64);
        let ins = [a64 as f64, b64 as f64, 0.0];
        prop_assert_eq!(eval_int("min(a, b)", &ins), a64.min(b64));
        prop_assert_eq!(eval_int("max(a, b)", &ins), a64.max(b64));
        prop_assert_eq!(eval_int("abs(a)", &ins), a64.wrapping_abs());
    }

    #[test]
    fn float_field_ops(x in -1e10f64..1e10, y in -1e10f64..1e10) {
        let ins = [x, y];
        prop_assert_eq!(eval_float("x + y", &ins).to_bits(), (x + y).to_bits());
        prop_assert_eq!(eval_float("x * y", &ins).to_bits(), (x * y).to_bits());
        prop_assert_eq!(eval_float("x / y", &ins).to_bits(), (x / y).to_bits());
        prop_assert_eq!(eval_float("x - y", &ins).to_bits(), (x - y).to_bits());
    }

    #[test]
    fn float_builtins(x in 0.001f64..1e6) {
        let ins = [x, 0.0];
        prop_assert_eq!(eval_float("sqrt(x)", &ins).to_bits(), x.sqrt().to_bits());
        prop_assert_eq!(eval_float("log(x)", &ins).to_bits(), x.ln().to_bits());
        prop_assert_eq!(eval_float("floor(x)", &ins).to_bits(), x.floor().to_bits());
        prop_assert_eq!(eval_float("fabs(0.0 - x)", &ins).to_bits(), x.to_bits());
    }

    #[test]
    fn conversions_roundtrip(n in -1_000_000i64..1_000_000) {
        let ins = [n as f64, 0.0, 0.0];
        prop_assert_eq!(eval_int("f2i(i2f(a))", &ins), n);
    }

    #[test]
    fn fmin_fmax_consistent(x in -1e6f64..1e6, y in -1e6f64..1e6) {
        let ins = [x, y];
        let got_min = eval_float("fmin(x, y)", &ins);
        let got_max = eval_float("fmax(x, y)", &ins);
        prop_assert_eq!(got_min, if x < y { x } else { y });
        prop_assert_eq!(got_max, if x < y { y } else { x });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn loop_sum_matches_closed_form(n in 0i64..500) {
        let src = r#"
            fn main(n: int) {
                let s = 0;
                for (i = 1; i <= n; i = i + 1) { s = s + i; }
                output s;
            }
        "#;
        let m = peppa_lang::compile(src, "gauss").unwrap();
        let vm = Vm::new(&m, ExecLimits::default());
        let out = vm.run_numeric(&[n as f64], None);
        prop_assert_eq!(out.output[0] as i64, n * (n + 1) / 2);
    }

    #[test]
    fn profile_counts_scale_linearly(n in 1u64..200) {
        // The loop body instructions execute exactly n times.
        let src = "fn main(n: int) { let s = 0; for (i = 0; i < n; i = i + 1) { s = s + i * i; } output s; }";
        let m = peppa_lang::compile(src, "prof").unwrap();
        let vm = Vm::new(&m, ExecLimits::default());
        let out = vm.run_numeric(&[n as f64], None);
        // Some instruction has exactly n executions (the body multiply).
        prop_assert!(out.profile.exec_counts.contains(&n));
        // And the loop condition executes n+1 times.
        prop_assert!(out.profile.exec_counts.iter().any(|&c| c == n + 1));
    }
}

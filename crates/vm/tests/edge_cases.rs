//! Direct edge-case tests of interpreter semantics that the MiniC
//! differential tests cannot reach (built with the raw IR builder).

use peppa_ir::{BinOp, CastKind, IPred, Module, ModuleBuilder, Operand, Ty, UnOp};
use peppa_vm::{ExecLimits, RunStatus, Trap, Vm};

/// Builds `fn main() { output <expr built by f> }` and runs it.
fn eval(build: impl FnOnce(&mut peppa_ir::FunctionBuilder<'_>) -> Operand) -> u64 {
    let mut mb = ModuleBuilder::new("edge");
    let main = mb.declare("main", &[], None);
    let mut f = mb.define(main);
    let v = build(&mut f);
    f.output(v);
    f.ret(None);
    f.finish();
    mb.set_entry(main);
    let m = mb.finish();
    peppa_ir::verify(&m).unwrap();
    let vm = Vm::new(&m, ExecLimits::default());
    let out = vm.run_numeric(&[], None);
    assert_eq!(out.status, RunStatus::Ok);
    out.output[0]
}

#[test]
fn int_min_division_wraps() {
    // i64::MIN / -1 overflows; the VM wraps instead of trapping (LLVM
    // would be UB; determinism matters more than faithfulness here).
    let r = eval(|f| f.bin(BinOp::SDiv, Operand::i64(i64::MIN), Operand::i64(-1)));
    assert_eq!(r as i64, i64::MIN);
}

#[test]
fn srem_sign_follows_dividend() {
    let r = eval(|f| f.bin(BinOp::SRem, Operand::i64(-7), Operand::i64(3)));
    assert_eq!(r as i64, -1);
}

#[test]
fn shift_amounts_masked_to_width() {
    // Shift by 64+3 behaves as shift by 3 (masked), not UB.
    let r = eval(|f| f.bin(BinOp::Shl, Operand::i64(1), Operand::i64(67)));
    assert_eq!(r, 8);
    let r = eval(|f| f.bin(BinOp::AShr, Operand::i64(-16), Operand::i64(66)));
    assert_eq!(r as i64, -4);
}

#[test]
fn lshr_is_logical() {
    let r = eval(|f| f.bin(BinOp::LShr, Operand::i64(-1), Operand::i64(1)));
    assert_eq!(r, u64::MAX >> 1);
}

#[test]
fn i32_arithmetic_wraps_at_32_bits() {
    let r = eval(|f| {
        let v = f.bin(BinOp::Add, Operand::i32(i32::MAX), Operand::i32(1));
        f.cast(CastKind::SExt, v, Ty::I64)
    });
    assert_eq!(r as i64, i32::MIN as i64);
}

#[test]
fn zext_uses_unsigned_narrow_value() {
    let r = eval(|f| {
        let v = f.bin(BinOp::Add, Operand::i32(-1), Operand::i32(0));
        f.cast(CastKind::ZExt, v, Ty::I64)
    });
    assert_eq!(r, 0xffff_ffff);
}

#[test]
fn sext_of_true_is_all_ones() {
    let r = eval(|f| {
        let c = f.icmp(IPred::Eq, Operand::i64(1), Operand::i64(1));
        f.cast(CastKind::SExt, c, Ty::I64)
    });
    assert_eq!(r, u64::MAX);
}

#[test]
fn fptosi_saturates_and_zeroes_nan() {
    let r = eval(|f| f.cast(CastKind::FpToSi, Operand::f64(1e300), Ty::I64));
    assert_eq!(r as i64, i64::MAX);
    let r = eval(|f| f.cast(CastKind::FpToSi, Operand::f64(f64::NAN), Ty::I64));
    assert_eq!(r as i64, 0);
    let r = eval(|f| f.cast(CastKind::FpToSi, Operand::f64(-1e300), Ty::I64));
    assert_eq!(r as i64, i64::MIN);
}

#[test]
fn fcmp_ordered_predicates_false_on_nan() {
    for pred in [
        peppa_ir::FPred::Oeq,
        peppa_ir::FPred::One,
        peppa_ir::FPred::Olt,
        peppa_ir::FPred::Ole,
        peppa_ir::FPred::Ogt,
        peppa_ir::FPred::Oge,
    ] {
        let r = eval(move |f| {
            let c = f.fcmp(pred, Operand::f64(f64::NAN), Operand::f64(1.0));
            f.cast(CastKind::ZExt, c, Ty::I64)
        });
        assert_eq!(r, 0, "{pred:?} true on NaN");
    }
}

#[test]
fn ult_compares_unsigned() {
    let r = eval(|f| {
        let c = f.icmp(IPred::Ult, Operand::i64(-1), Operand::i64(1));
        f.cast(CastKind::ZExt, c, Ty::I64)
    });
    assert_eq!(r, 0, "-1 as unsigned is u64::MAX, not < 1");
}

#[test]
fn float_div_by_zero_is_inf_not_trap() {
    let r = eval(|f| f.bin(BinOp::FDiv, Operand::f64(1.0), Operand::f64(0.0)));
    assert_eq!(f64::from_bits(r), f64::INFINITY);
}

#[test]
fn not_on_i1_is_logical_negation() {
    let r = eval(|f| {
        let c = f.icmp(IPred::Eq, Operand::i64(1), Operand::i64(2)); // false
        let n = f.un(UnOp::Not, c);
        f.cast(CastKind::ZExt, n, Ty::I64)
    });
    assert_eq!(r, 1);
}

#[test]
fn bitcast_roundtrips_f64() {
    let r = eval(|f| {
        let bits = f.cast(CastKind::Bitcast, Operand::f64(-3.75), Ty::I64);
        f.cast(CastKind::Bitcast, bits, Ty::F64)
    });
    assert_eq!(f64::from_bits(r), -3.75);
}

fn trap_of(build: impl FnOnce(&mut peppa_ir::FunctionBuilder<'_>)) -> RunStatus {
    let mut mb = ModuleBuilder::new("trap");
    let main = mb.declare("main", &[], None);
    let mut f = mb.define(main);
    build(&mut f);
    f.ret(None);
    f.finish();
    mb.set_entry(main);
    let m = mb.finish();
    let vm = Vm::new(
        &m,
        ExecLimits {
            memory_words: 64,
            ..Default::default()
        },
    );
    vm.run_numeric(&[], None).status
}

#[test]
fn null_load_and_store_trap() {
    let s = trap_of(|f| {
        let p = f.cast(CastKind::IntToPtr, Operand::i64(0), Ty::Ptr);
        let _ = f.load(p, Ty::I64);
    });
    assert_eq!(s, RunStatus::Trap(Trap::OutOfBounds { addr: 0 }));
}

#[test]
fn negative_alloca_traps() {
    let s = trap_of(|f| {
        let _ = f.alloca(Operand::i64(-5));
    });
    assert_eq!(s, RunStatus::Trap(Trap::StackOverflow));
}

#[test]
fn alloca_larger_than_memory_traps() {
    let s = trap_of(|f| {
        let _ = f.alloca(Operand::i64(1_000_000));
    });
    assert_eq!(s, RunStatus::Trap(Trap::StackOverflow));
}

#[test]
fn memory_capture_present_even_on_trap() {
    let mut mb = ModuleBuilder::new("cap");
    let g = mb.global("g", 2);
    let main = mb.declare("main", &[], None);
    let mut f = mb.define(main);
    f.store(g, Operand::i64(42));
    let bad = f.cast(CastKind::IntToPtr, Operand::i64(0), Ty::Ptr);
    f.store(bad, Operand::i64(1)); // traps after the first store landed
    f.ret(None);
    f.finish();
    mb.set_entry(main);
    let m: Module = mb.finish();
    let vm = Vm::new(
        &m,
        ExecLimits {
            memory_words: 16,
            ..Default::default()
        },
    );
    let bits: Vec<u64> = vec![];
    let out = vm.run_capture(&bits, None);
    assert!(matches!(out.status, RunStatus::Trap(_)));
    let mem = out.memory.expect("capture requested");
    assert_eq!(mem[1], 42, "pre-trap store must be visible in the capture");
}

//! Differential soundness of the shadow-taint engine.
//!
//! For random straight-line integer programs (no branches, no memory),
//! the clean and the bit-flipped executions stay in dynamic lockstep, so
//! every value definition can be compared pairwise. The property: the
//! taint mask the shadow engine computes at each def is a *superset* of
//! the bits that actually differ between the two concrete runs —
//! over-approximation is allowed (that is what keeps the rules the
//! adjoint of the static matter masks), missing a differing bit never
//! is.

use peppa_ir::Instr;
use peppa_vm::{
    encode_inputs, ExecHook, ExecLimits, Injection, InjectionTarget, RunStatus, TaintHook, Vm,
};
use proptest::prelude::*;

/// Records the concrete canonical bits of every value definition.
struct DefBits {
    bits: Vec<u64>,
}

impl ExecHook for DefBits {
    const ENABLED: bool = true;

    fn def_value(&mut self, _ins: &Instr, bits: u64) {
        self.bits.push(bits);
    }
}

/// One generated statement: `let v<i> = <expr>;` built from earlier
/// values, the two inputs, and a literal. Decoded from one random
/// `u64` (the offline proptest stand-in has no `prop_map`, so custom
/// strategies are unpacked by hand).
#[derive(Debug, Clone)]
struct Stmt {
    op: u8,
    lhs: u8,
    rhs: u8,
    lit: u32,
    shift: u8,
}

impl Stmt {
    fn decode(raw: u64) -> Stmt {
        Stmt {
            op: (raw & 0xff) as u8,
            lhs: ((raw >> 8) & 0xff) as u8,
            rhs: ((raw >> 16) & 0xff) as u8,
            lit: ((raw >> 24) & 0xffff_ffff) as u32,
            shift: ((raw >> 56) & 0xff) as u8,
        }
    }
}

/// Picks an operand: the inputs, a literal, or any earlier value.
fn operand(sel: u8, defined: usize, lit: u32) -> String {
    match sel as usize % (defined + 3) {
        0 => "a".to_string(),
        1 => "b".to_string(),
        2 => lit.to_string(),
        k => format!("v{}", k - 3),
    }
}

/// Renders the statements as a straight-line MiniC program over two int
/// inputs, outputting the last value (so the final def is observable).
fn render_program(stmts: &[Stmt]) -> String {
    let mut src = String::from("fn main(a: int, b: int) {\n");
    for (i, s) in stmts.iter().enumerate() {
        let x = operand(s.lhs, i, s.lit);
        let y = operand(s.rhs, i, s.lit ^ 0x55);
        let sh = s.shift % 63;
        let expr = match s.op % 11 {
            0 => format!("{x} + {y}"),
            1 => format!("{x} - {y}"),
            2 => format!("{x} * {y}"),
            3 => format!("{x} & {y}"),
            4 => format!("{x} | {y}"),
            5 => format!("{x} ^ {y}"),
            6 => format!("{x} << {sh}"),
            7 => format!("{x} >> {sh}"),
            8 => format!("min({x}, {y})"),
            9 => format!("max({x}, {y})"),
            _ => format!("abs({x})"),
        };
        src.push_str(&format!("    let v{i} = {expr};\n"));
    }
    src.push_str(&format!("    output v{};\n}}\n", stmts.len() - 1));
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn taint_masks_cover_concrete_diffs(
        raw_stmts in proptest::collection::vec(any::<u64>(), 1..12),
        a in any::<i32>(),
        b in any::<i32>(),
        site_sel in any::<u64>(),
        bit in 0u32..64,
    ) {
        let stmts: Vec<Stmt> = raw_stmts.iter().map(|&r| Stmt::decode(r)).collect();
        let src = render_program(&stmts);
        let m = peppa_lang::compile(&src, "taintdiff").unwrap();
        let inputs = [a as i64 as f64, b as i64 as f64];
        let in_bits = encode_inputs(m.entry_func(), &inputs);
        let vm = Vm::new(&m, ExecLimits::default());

        let mut gold = DefBits { bits: Vec::new() };
        let gr = vm.run_with_hook(&in_bits, None, &mut gold);
        prop_assert_eq!(gr.status, RunStatus::Ok);
        prop_assert!(gr.profile.value_dynamic > 0);

        let inj = Injection {
            target: InjectionTarget::DynamicIndex(site_sel % gr.profile.value_dynamic),
            bit,
            burst: 0,
        };

        // Straight-line + no traps: the faulty run executes the same
        // def sequence, so defs compare index-by-index.
        let mut faulty = DefBits { bits: Vec::new() };
        let fr = vm.run_with_hook(&in_bits, Some(inj), &mut faulty);
        prop_assert_eq!(fr.status, RunStatus::Ok);
        prop_assert_eq!(gold.bits.len(), faulty.bits.len());

        let mut taint = TaintHook::new(&m);
        taint.enable_def_trace();
        let tr = vm.run_with_hook(&in_bits, Some(inj), &mut taint);
        prop_assert_eq!(tr.status, RunStatus::Ok);
        let masks = taint.def_trace().to_vec();
        let report = taint.finish();
        prop_assert!(report.seeded, "fault must activate in a straight line");
        prop_assert_eq!(masks.len(), gold.bits.len());

        for (k, ((g, f), t)) in gold.bits.iter().zip(&faulty.bits).zip(&masks).enumerate() {
            let diff = g ^ f;
            prop_assert_eq!(
                diff & !t,
                0,
                "def {k}: concrete diff {diff:#x} escapes taint mask {t:#x}\n{src}"
            );
        }
    }
}

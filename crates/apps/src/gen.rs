//! Random program-input generation (§3.1.2).
//!
//! The paper keeps a generated input only if (1) the program runs to
//! completion without errors, and (2) the dynamic instruction count stays
//! under a budget that keeps experiments tractable. We apply the same two
//! rules, scaled to the interpreter.

use crate::registry::Benchmark;
use peppa_stats::Pcg64;
use peppa_vm::{ExecLimits, RunStatus, Vm};

/// Default dynamic-instruction cap for accepted inputs — the interpreter
/// counterpart of the paper's 40-billion-instruction ceiling.
pub const DEFAULT_DYNAMIC_CAP: u64 = 20_000_000;

/// Checks the paper's two validity rules for one input.
pub fn valid_input(bench: &Benchmark, inputs: &[f64], limits: ExecLimits, cap: u64) -> bool {
    let vm = Vm::new(&bench.module, limits);
    let out = vm.run_numeric(inputs, None);
    out.status == RunStatus::Ok && out.profile.dynamic <= cap
}

/// Samples one candidate input uniformly within the benchmark's argument
/// ranges (no validity check).
pub fn sample_input(bench: &Benchmark, rng: &mut Pcg64) -> Vec<f64> {
    bench
        .args
        .iter()
        .map(|a| {
            let x = rng.gen_range_f64(a.lo, a.hi);
            a.clamp(x)
        })
        .collect()
}

/// Generates `count` valid random inputs. Panics if the acceptance rate
/// is pathologically low (>100 rejections per accepted input), which
/// would indicate a broken argument spec.
pub fn random_inputs(
    bench: &Benchmark,
    count: usize,
    seed: u64,
    limits: ExecLimits,
    cap: u64,
) -> Vec<Vec<f64>> {
    let mut rng = Pcg64::new(seed);
    let mut out = Vec::with_capacity(count);
    let mut rejects = 0usize;
    while out.len() < count {
        let candidate = sample_input(bench, &mut rng);
        if valid_input(bench, &candidate, limits, cap) {
            out.push(candidate);
        } else {
            rejects += 1;
            assert!(
                rejects < 100 * (count + 1),
                "benchmark {} rejects nearly all random inputs",
                bench.name
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::all_benchmarks;

    #[test]
    fn every_benchmark_accepts_random_inputs() {
        for b in all_benchmarks() {
            let inputs = random_inputs(&b, 3, 42, ExecLimits::default(), DEFAULT_DYNAMIC_CAP);
            assert_eq!(inputs.len(), 3, "{}", b.name);
            for input in &inputs {
                assert_eq!(input.len(), b.args.len());
                for (x, spec) in input.iter().zip(&b.args) {
                    assert!(*x >= spec.lo && *x <= spec.hi, "{} out of range", spec.name);
                    if spec.integer {
                        assert_eq!(x.fract(), 0.0);
                    }
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let b = crate::pathfinder::benchmark();
        let a = random_inputs(&b, 5, 7, ExecLimits::default(), DEFAULT_DYNAMIC_CAP);
        let c = random_inputs(&b, 5, 7, ExecLimits::default(), DEFAULT_DYNAMIC_CAP);
        assert_eq!(a, c);
    }

    #[test]
    fn reference_inputs_are_valid() {
        for b in all_benchmarks() {
            assert!(
                valid_input(
                    &b,
                    &b.reference_input,
                    ExecLimits::default(),
                    DEFAULT_DYNAMIC_CAP
                ),
                "{} reference input invalid",
                b.name
            );
        }
    }

    #[test]
    fn table1_static_instruction_counts() {
        // Shape check mirroring Table 1: every kernel is a real program,
        // tens to hundreds of static instructions, CoMD the largest-ish.
        for b in all_benchmarks() {
            assert!(
                b.static_instrs() > 40,
                "{} suspiciously small: {}",
                b.name,
                b.static_instrs()
            );
        }
    }
}

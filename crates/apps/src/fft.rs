//! FFT (SPLASH-2): radix-2 decimation-in-time 1-D FFT.
//!
//! Bit-reversal permutation followed by the standard butterfly ladder
//! with on-the-fly twiddle factors. The bit-reversal inner loop is pure
//! shift/mask manipulation — the opcode class the pruning heuristic
//! isolates — while the butterflies are an FP dataflow in which flipped
//! mantissa bits propagate to every output bin.
//!
//! Inputs: `logn` (transform size → footprint), `fseed` (signal), `amp`
//! (signal amplitude → quantization masking of low-order corruption).

use crate::registry::{ArgSpec, Benchmark};

pub const SOURCE: &str = r#"
// Radix-2 DIT FFT with bit-reversal, n = 2^logn <= 512.
global float re[512];
global float im[512];

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) % 2147483648;
}

fn main(logn: int, fseed: int, amp: float) {
    let n = 1 << logn;
    let s = fseed;
    for (i = 0; i < n; i = i + 1) {
        s = lcg(s);
        re[i] = (i2f(abs(s) % 2000) * 0.001 - 1.0) * amp;
        s = lcg(s);
        im[i] = (i2f(abs(s) % 2000) * 0.001 - 1.0) * amp;
    }

    // Bit-reversal permutation.
    for (i = 0; i < n; i = i + 1) {
        let rev = 0;
        let x = i;
        for (b = 0; b < logn; b = b + 1) {
            rev = (rev << 1) | (x & 1);
            x = x >> 1;
        }
        if (rev > i) {
            let tr = re[i];
            re[i] = re[rev];
            re[rev] = tr;
            let ti = im[i];
            im[i] = im[rev];
            im[rev] = ti;
        }
    }

    // Butterfly ladder.
    let len = 2;
    while (len <= n) {
        let half = len / 2;
        let theta = -6.283185307179586 / i2f(len);
        for (start = 0; start < n; start = start + len) {
            for (k = 0; k < half; k = k + 1) {
                let ang = theta * i2f(k);
                let wr = cos(ang);
                let wi = sin(ang);
                let br = re[start + k + half];
                let bi = im[start + k + half];
                let vr = br * wr - bi * wi;
                let vi = br * wi + bi * wr;
                let ur = re[start + k];
                let ui = im[start + k];
                re[start + k] = ur + vr;
                im[start + k] = ui + vi;
                re[start + k + half] = ur - vr;
                im[start + k + half] = ui - vi;
            }
        }
        len = len * 2;
    }

    // Large-amplitude signals get a scaled (overflow-safe) power pass —
    // a path only high-gain configurations execute.
    let cs = 0.0;
    if (amp > 50.0) {
        for (i = 0; i < n; i = i + 1) {
            let sr = re[i] * 0.01;
            let si = im[i] * 0.01;
            cs = cs + (sr * sr + si * si) * 10000.0;
        }
    } else {
        for (i = 0; i < n; i = i + 1) {
            cs = cs + re[i] * re[i] + im[i] * im[i];
        }
    }
    output floor(cs * 100.0 + 0.5);
    output floor(re[1] * 1000.0 + 0.5);
    output floor(im[n / 2] * 1000.0 + 0.5);
}
"#;

/// Builds the compiled benchmark.
pub fn benchmark() -> Benchmark {
    Benchmark::compile(
        "FFT",
        "SPLASH-2",
        "1D fast Fourier transform (radix-2 DIT with bit reversal)",
        SOURCE,
        vec![
            ArgSpec::int("logn", 3, 9, (3, 4)),
            ArgSpec::int("fseed", 1, 1_000_000, (1, 64)),
            ArgSpec::float("amp", 0.1, 100.0, (0.5, 2.0)),
        ],
        vec![8.0, 4242.0, 1.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::{ExecLimits, RunStatus, Vm};

    #[test]
    fn compiles_and_runs() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&b.reference_input, None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.output.len(), 3);
    }

    #[test]
    fn parseval_energy_preserved() {
        // Parseval: sum |X|^2 = n * sum |x|^2. The input signal is in
        // [-amp, amp], so time-domain power <= 2 n amp^2.
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let logn = 6.0;
        let amp = 2.0;
        let out = vm.run_numeric(&[logn, 7.0, amp], None);
        let n = 1u64 << (logn as u32);
        let power = f64::from_bits(out.output[0]) / 100.0;
        let bound = (n * n) as f64 * 2.0 * amp * amp;
        assert!(
            power > 0.0 && power < bound,
            "power {power} vs bound {bound}"
        );
    }

    #[test]
    fn size_scales_footprint_superlinearly() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let small = vm.run_numeric(&[3.0, 7.0, 1.0], None);
        let large = vm.run_numeric(&[9.0, 7.0, 1.0], None);
        // n log n: 512*9 / 8*3 = 192x ratio on butterfly work.
        assert!(large.profile.dynamic > 50 * small.profile.dynamic);
    }
}

//! The seven HPC benchmark kernels of the PEPPA-X evaluation (Table 1),
//! re-implemented in MiniC and compiled to PIR.
//!
//! | Benchmark     | Suite     | Kernel reproduced                              |
//! |---------------|-----------|-------------------------------------------------|
//! | Pathfinder    | Rodinia   | dynamic-programming min-path over a 2-D grid    |
//! | Needle        | Rodinia   | Needleman–Wunsch DNA sequence alignment DP      |
//! | Particlefilter| Rodinia   | Bayesian particle filter tracking a noisy target|
//! | CoMD          | Mantevo   | Lennard-Jones molecular-dynamics force/integrate|
//! | HPCCG         | Mantevo   | conjugate gradient on a 3-D chimney stencil     |
//! | XSBench       | CESAR     | Monte Carlo neutronics macroscopic-XS lookup    |
//! | FFT           | SPLASH-2  | radix-2 DIT FFT with bit-reversal               |
//!
//! Scale substitution (documented in DESIGN.md): the paper's inputs run
//! ~4.4 billion dynamic instructions on native hardware; ours run 10⁴–10⁶
//! on the PIR interpreter. Every PEPPA-X metric is a probability or a
//! ranking over the *shape* of the computation (masking structure,
//! footprint distribution), which these kernels preserve: the same
//! algorithmic skeletons, the same masking idioms (min/max in DP
//! wavefronts, cutoff branches, convergence loops, table lookups,
//! bit-reversal), and genuinely input-dependent control and data flow.
//!
//! Each benchmark declares:
//! * numeric input arguments with valid ranges ([`ArgSpec`]) — the search
//!   space of PEPPA-X;
//! * a **default reference input** — standing in for the benchmark
//!   suite's provided test input (§3.2.1);
//! * a **small seed range** per argument — the starting window for the
//!   small-FI-input fuzzing step (§4.2.1).

pub mod comd;
pub mod fft;
pub mod gen;
pub mod hpccg;
pub mod needle;
pub mod particlefilter;
pub mod pathfinder;
pub mod registry;
pub mod xsbench;

pub use gen::{random_inputs, sample_input, valid_input};
pub use registry::{all_benchmarks, benchmark_by_name, ArgSpec, Benchmark};

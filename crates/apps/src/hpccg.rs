//! HPCCG (Mantevo): conjugate gradient on a 3-D chimney domain.
//!
//! Matrix-free CG with the 27-point stencil HPCCG generates (diagonal 27,
//! every existing neighbour −1) and the standard right-hand side that
//! makes the all-ones vector the exact solution. The residual norm is
//! emitted every iteration — a long chain of dot products and AXPYs in
//! which *any* surviving FP corruption shows up in the output, matching
//! HPCCG's position as the most SDC-prone benchmark in Figure 1 and its
//! dense-dark heat map in Figure 6.
//!
//! Inputs: `nx`, `ny`, `nz` (domain → footprint), `maxit` (iteration
//! budget), `tol` (convergence threshold → input-dependent trip count).

use crate::registry::{ArgSpec, Benchmark};

pub const SOURCE: &str = r#"
// HPCCG: CG solve of A x = b, A = 27-point stencil, matrix-free.
global float xv[216];
global float bv[216];
global float rv[216];
global float pv[216];
global float av[216]; // A * p

// av = A * pv for the 27-point stencil on an nx x ny x nz box.
fn spmv(nx: int, ny: int, nz: int) {
    for (k = 0; k < nz; k = k + 1) {
        for (j = 0; j < ny; j = j + 1) {
            for (i = 0; i < nx; i = i + 1) {
                let row = (k * ny + j) * nx + i;
                let acc = 27.0 * pv[row];
                for (dk = -1; dk <= 1; dk = dk + 1) {
                    for (dj = -1; dj <= 1; dj = dj + 1) {
                        for (di = -1; di <= 1; di = di + 1) {
                            if (!(di == 0 && dj == 0 && dk == 0)) {
                                let ii = i + di;
                                let jj = j + dj;
                                let kk = k + dk;
                                if (ii >= 0 && ii < nx && jj >= 0 && jj < ny
                                    && kk >= 0 && kk < nz) {
                                    acc = acc - pv[(kk * ny + jj) * nx + ii];
                                }
                            }
                        }
                    }
                }
                av[row] = acc;
            }
        }
    }
}

fn main(nx: int, ny: int, nz: int, maxit: int, tol: float) {
    let n = nx * ny * nz;

    // b chosen so the exact solution is all ones: b[row] = 27 - #neighbours.
    for (k = 0; k < nz; k = k + 1) {
        for (j = 0; j < ny; j = j + 1) {
            for (i = 0; i < nx; i = i + 1) {
                let row = (k * ny + j) * nx + i;
                let cnt = 0;
                for (dk = -1; dk <= 1; dk = dk + 1) {
                    for (dj = -1; dj <= 1; dj = dj + 1) {
                        for (di = -1; di <= 1; di = di + 1) {
                            let ii = i + di;
                            let jj = j + dj;
                            let kk = k + dk;
                            if (!(di == 0 && dj == 0 && dk == 0)
                                && ii >= 0 && ii < nx && jj >= 0 && jj < ny
                                && kk >= 0 && kk < nz) {
                                cnt = cnt + 1;
                            }
                        }
                    }
                }
                bv[row] = 27.0 - i2f(cnt);
                xv[row] = 0.0;
            }
        }
    }

    // r = b, p = r, rho = r . r   (x starts at zero)
    let rho = 0.0;
    for (q = 0; q < n; q = q + 1) {
        rv[q] = bv[q];
        pv[q] = bv[q];
        rho = rho + rv[q] * rv[q];
    }

    let iters = 0;
    for (it = 0; it < maxit; it = it + 1) {
        spmv(nx, ny, nz);
        let pap = 0.0;
        for (q = 0; q < n; q = q + 1) { pap = pap + pv[q] * av[q]; }
        let alpha = rho / (pap + 0.000000000001);
        let rho2 = 0.0;
        for (q = 0; q < n; q = q + 1) {
            xv[q] = xv[q] + alpha * pv[q];
            rv[q] = rv[q] - alpha * av[q];
            rho2 = rho2 + rv[q] * rv[q];
        }
        let rnorm = sqrt(rho2);
        output floor(rnorm * 1000000.0 + 0.5);
        iters = iters + 1;
        if (rnorm < tol) {
            // Converged: report the achieved accuracy class, a path only
            // tight tolerances reach within the iteration budget.
            output f2i(rnorm * 1000000000.0);
            break;
        }
        let beta = rho2 / (rho + 0.000000000001);
        for (q = 0; q < n; q = q + 1) { pv[q] = rv[q] + beta * pv[q]; }
        rho = rho2;
    }

    // Solution checksum: should be ~n at convergence.
    let cs = 0.0;
    for (q = 0; q < n; q = q + 1) { cs = cs + xv[q]; }
    output floor(cs * 10000.0 + 0.5);
    output iters;
}
"#;

/// Builds the compiled benchmark.
pub fn benchmark() -> Benchmark {
    Benchmark::compile(
        "Hpccg",
        "Mantevo",
        "A simple conjugate gradient benchmark code for a 3D chimney domain",
        SOURCE,
        vec![
            ArgSpec::int("nx", 3, 6, (3, 3)),
            ArgSpec::int("ny", 3, 6, (3, 3)),
            ArgSpec::int("nz", 3, 6, (3, 3)),
            ArgSpec::int("maxit", 5, 30, (5, 6)),
            ArgSpec::float("tol", 1e-8, 1e-2, (1e-4, 1e-2)),
        ],
        vec![5.0, 5.0, 5.0, 25.0, 1e-6],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::{ExecLimits, RunStatus, Vm};

    #[test]
    fn converges_to_all_ones() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&b.reference_input, None);
        assert_eq!(out.status, RunStatus::Ok);
        // Second-to-last output is the solution checksum; exact solution
        // is all ones -> checksum ~ n = 125.
        let cs = f64::from_bits(out.output[out.output.len() - 2]) / 10000.0;
        assert!((cs - 125.0).abs() < 0.1, "checksum {cs}");
    }

    #[test]
    fn residuals_decrease() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&[4.0, 4.0, 4.0, 10.0, 1e-8], None);
        // Output layout: [r_1 .. r_iters, (accuracy class if converged),
        // checksum, iters]; iters is last.
        let iters = *out.output.last().unwrap() as usize;
        let first = f64::from_bits(out.output[0]);
        let last_resid = f64::from_bits(out.output[iters - 1]);
        assert!(
            last_resid < first,
            "residual did not decrease: {first} -> {last_resid}"
        );
    }

    #[test]
    fn tolerance_controls_iteration_count() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let loose = vm.run_numeric(&[4.0, 4.0, 4.0, 30.0, 1e-2], None);
        let tight = vm.run_numeric(&[4.0, 4.0, 4.0, 30.0, 1e-8], None);
        let it_loose = *loose.output.last().unwrap();
        let it_tight = *tight.output.last().unwrap();
        assert!(it_tight > it_loose, "iters {it_loose} !< {it_tight}");
    }
}

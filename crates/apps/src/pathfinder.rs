//! Pathfinder (Rodinia): dynamic-programming minimum path on a 2-D grid.
//!
//! The kernel fills a grid with pseudo-random costs, then sweeps row by
//! row keeping the minimum cumulative cost reachable at each column —
//! the same wavefront-with-`min` structure as Rodinia's pathfinder. The
//! repeated `fmin` is a strong masking idiom: a corrupted candidate that
//! is not the minimum vanishes without a trace, which is why the paper
//! finds Pathfinder's SDC-bound inputs *sparse* in the input space
//! (Figure 6, bottom row).
//!
//! Inputs: `rows`, `cols` (grid shape → footprint), `vseed` (cost
//! pattern), `spread` (cost magnitude scale → how often `min` masks a
//! flipped low-order bit).

use crate::registry::{ArgSpec, Benchmark};

pub const SOURCE: &str = r#"
// Pathfinder: DP min-path over a rows x cols grid.
global float grid[4096];
global float dst[64];
global float tmp[64];

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) % 2147483648;
}

fn main(rows: int, cols: int, vseed: int, spread: float) {
    // Generate grid costs in [1, 1 + spread).
    let s = vseed;
    for (i = 0; i < rows * cols; i = i + 1) {
        s = lcg(s);
        grid[i] = i2f(abs(s) % 1000) * 0.001 * spread + 1.0;
    }

    // Wide-spread grids are renormalized (an input-dependent path, as in
    // the original's data preconditioning for large weight ranges).
    if (spread > 50.0) {
        let peak = 0.0;
        for (i = 0; i < rows * cols; i = i + 1) { peak = fmax(peak, grid[i]); }
        for (i = 0; i < rows * cols; i = i + 1) {
            grid[i] = grid[i] * 50.0 / peak + 1.0;
        }
    }

    // First row seeds the wavefront.
    for (j = 0; j < cols; j = j + 1) {
        dst[j] = grid[j];
    }

    // DP sweep: each cell takes its cost plus the cheapest of the three
    // neighbours in the previous row.
    for (i = 1; i < rows; i = i + 1) {
        for (j = 0; j < cols; j = j + 1) {
            let best = dst[j];
            if (j > 0) { best = fmin(best, dst[j - 1]); }
            if (j < cols - 1) { best = fmin(best, dst[j + 1]); }
            tmp[j] = grid[i * cols + j] + best;
        }
        for (j = 0; j < cols; j = j + 1) {
            dst[j] = tmp[j];
        }
    }

    // Observables: cheapest path cost and the frontier checksum,
    // quantized as a printf("%.4f")-style output would be.
    let best = dst[0];
    let sum = 0.0;
    for (j = 0; j < cols; j = j + 1) {
        best = fmin(best, dst[j]);
        sum = sum + dst[j];
    }
    output floor(best * 10000.0 + 0.5);
    output floor(sum * 100.0 + 0.5);
}
"#;

/// Builds the compiled benchmark.
pub fn benchmark() -> Benchmark {
    Benchmark::compile(
        "Pathfinder",
        "Rodinia",
        "Use dynamic programming to find a path on a 2-D grid",
        SOURCE,
        vec![
            ArgSpec::int("rows", 4, 56, (4, 8)),
            ArgSpec::int("cols", 4, 64, (4, 8)),
            ArgSpec::int("vseed", 1, 1_000_000, (1, 64)),
            ArgSpec::float("spread", 0.001, 100.0, (0.01, 0.2)),
        ],
        vec![32.0, 48.0, 7919.0, 10.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::{ExecLimits, RunStatus, Vm};

    #[test]
    fn compiles_and_runs_reference_input() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&b.reference_input, None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.output.len(), 2);
        // Path cost must be at least `rows` (every cell costs >= 1).
        let best = f64::from_bits(out.output[0]) / 10000.0;
        assert!(best >= 32.0, "path cost {best}");
    }

    #[test]
    fn output_depends_on_every_input_dimension() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let base = vm.run_numeric(&b.reference_input, None).output;
        for (i, delta) in [(0usize, 4.0), (1, 4.0), (2, 17.0), (3, 1.5)] {
            let mut input = b.reference_input.clone();
            input[i] += delta;
            let out = vm.run_numeric(&input, None).output;
            assert_ne!(out, base, "changing arg {i} did not change the output");
        }
    }

    #[test]
    fn grid_shape_changes_footprint() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let small = vm.run_numeric(&[4.0, 4.0, 1.0, 1.0], None);
        let large = vm.run_numeric(&[56.0, 64.0, 1.0, 1.0], None);
        assert!(large.profile.dynamic > 20 * small.profile.dynamic);
    }
}

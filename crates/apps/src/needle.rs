//! Needle (Rodinia): Needleman–Wunsch global DNA sequence alignment.
//!
//! A classic DP over two pseudo-random 4-letter sequences with a
//! match/mismatch score and a gap penalty; each cell takes the `max` of
//! three predecessors — the integer-domain counterpart of Pathfinder's
//! `min` masking. A traceback pass adds control-flow that is sensitive
//! to corrupted table entries (a flipped cell can reroute the traceback,
//! a visible SDC even when the final score is unchanged).
//!
//! Inputs: `len1`, `len2` (sequence lengths → footprint), `penalty`
//! (gap cost → how decisive `max` is), `sseed` (sequence content).

use crate::registry::{ArgSpec, Benchmark};

pub const SOURCE: &str = r#"
// Needleman-Wunsch alignment of two random sequences.
global int seq1[64];
global int seq2[64];
global int table[4225]; // (64+1) * (64+1)

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) % 2147483648;
}

fn main(len1: int, len2: int, penalty: int, sseed: int) {
    let s = sseed;
    for (i = 0; i < len1; i = i + 1) { s = lcg(s); seq1[i] = abs(s) % 4; }
    for (i = 0; i < len2; i = i + 1) { s = lcg(s); seq2[i] = abs(s) % 4; }

    let w = len2 + 1;
    for (j = 0; j < w; j = j + 1) { table[j] = -(j * penalty); }

    for (i = 1; i <= len1; i = i + 1) {
        table[i * w] = -(i * penalty);
        for (j = 1; j <= len2; j = j + 1) {
            let sc = -3;
            if (seq1[i - 1] == seq2[j - 1]) { sc = 5; }
            let diag = table[(i - 1) * w + (j - 1)] + sc;
            let up   = table[(i - 1) * w + j] - penalty;
            let left = table[i * w + (j - 1)] - penalty;
            table[i * w + j] = max(diag, max(up, left));
        }
    }

    output table[len1 * w + len2];

    // Strong-penalty regime reports the band of gap-free scores too (a
    // path only heavy penalties exercise).
    if (penalty > 12) {
        let band = 0;
        for (i = 1; i <= len1; i = i + 1) {
            if (i <= len2) {
                band = band + max(table[i * w + i], 0);
            }
        }
        output band;
    }

    // Traceback: its path length and turn pattern are observables.
    let ti = len1;
    let tj = len2;
    let steps = 0;
    let turns = 0;
    while (ti > 0 && tj > 0) {
        let diag = table[(ti - 1) * w + (tj - 1)];
        let up   = table[(ti - 1) * w + tj];
        let left = table[ti * w + (tj - 1)];
        if (diag >= up && diag >= left) { ti = ti - 1; tj = tj - 1; }
        else if (up >= left) { ti = ti - 1; turns = turns + 1; }
        else { tj = tj - 1; turns = turns + 2; }
        steps = steps + 1;
    }
    output steps + ti + tj;
    output turns;
}
"#;

/// Builds the compiled benchmark.
pub fn benchmark() -> Benchmark {
    Benchmark::compile(
        "Needle",
        "Rodinia",
        "A nonlinear global optimization method for DNA sequence alignments",
        SOURCE,
        vec![
            ArgSpec::int("len1", 4, 64, (4, 8)),
            ArgSpec::int("len2", 4, 64, (4, 8)),
            ArgSpec::int("penalty", 1, 20, (1, 3)),
            ArgSpec::int("sseed", 1, 1_000_000, (1, 64)),
        ],
        vec![48.0, 48.0, 10.0, 3571.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::{ExecLimits, RunStatus, Vm};

    #[test]
    fn compiles_and_runs() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&b.reference_input, None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.output.len(), 3);
    }

    #[test]
    fn identical_sequences_score_all_matches() {
        // len1 == len2 with the same seed portion... instead check the
        // self-alignment property: score of (n, n) with any seed is at
        // most 5n and traceback covers the diagonal.
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&[16.0, 16.0, 5.0, 99.0], None);
        let score = out.output[0] as i64;
        assert!(score <= 5 * 16, "score {score}");
    }

    #[test]
    fn penalty_changes_alignment() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let cheap = vm.run_numeric(&[32.0, 24.0, 1.0, 777.0], None).output;
        let dear = vm.run_numeric(&[32.0, 24.0, 15.0, 777.0], None).output;
        assert_ne!(cheap, dear);
    }
}

//! CoMD (Mantevo): Lennard-Jones molecular dynamics.
//!
//! Atoms start on a jittered cubic lattice; each timestep computes O(n²)
//! pairwise Lennard-Jones forces with a cutoff branch, integrates with
//! explicit Euler, and reports total energy — the force/integrate
//! skeleton of Mantevo's CoMD at miniature scale. The cutoff test makes
//! control flow data-dependent (a corrupted coordinate moves pairs in
//! and out of range); the symmetric force accumulation gives partial
//! error cancellation, reproducing CoMD's comparatively narrow SDC range
//! in Figure 1.
//!
//! Inputs: `natoms`, `nsteps` (footprint), `dt` (integration step →
//! sensitivity of trajectories), `cutoff` (pair-list density), `lseed`
//! (lattice jitter).

use crate::registry::{ArgSpec, Benchmark};

pub const SOURCE: &str = r#"
// Miniature CoMD: Lennard-Jones MD with cutoff, sigma = epsilon = 1.
global float posx[64];
global float posy[64];
global float posz[64];
global float velx[64];
global float vely[64];
global float velz[64];
global float fx[64];
global float fy[64];
global float fz[64];

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) % 2147483648;
}

fn main(natoms: int, nsteps: int, dt: float, cutoff: float, lseed: int) {
    // Jittered 4x4x4 lattice at ~2^(1/6) spacing (the LJ minimum).
    let s = lseed;
    for (a = 0; a < natoms; a = a + 1) {
        let ix = a % 4;
        let iy = (a / 4) % 4;
        let iz = a / 16;
        s = lcg(s);
        let jx = i2f(abs(s) % 100) * 0.002 - 0.1;
        s = lcg(s);
        let jy = i2f(abs(s) % 100) * 0.002 - 0.1;
        s = lcg(s);
        let jz = i2f(abs(s) % 100) * 0.002 - 0.1;
        posx[a] = i2f(ix) * 1.1225 + jx;
        posy[a] = i2f(iy) * 1.1225 + jy;
        posz[a] = i2f(iz) * 1.1225 + jz;
        velx[a] = 0.0;
        vely[a] = 0.0;
        velz[a] = 0.0;
    }

    let cut2 = cutoff * cutoff;
    for (step = 0; step < nsteps; step = step + 1) {
        for (a = 0; a < natoms; a = a + 1) {
            fx[a] = 0.0;
            fy[a] = 0.0;
            fz[a] = 0.0;
        }

        // Pairwise Lennard-Jones forces within the cutoff.
        let pe = 0.0;
        for (a = 0; a < natoms; a = a + 1) {
            for (b = a + 1; b < natoms; b = b + 1) {
                let dx = posx[a] - posx[b];
                let dy = posy[a] - posy[b];
                let dz = posz[a] - posz[b];
                let r2 = dx * dx + dy * dy + dz * dz;
                if (r2 < cut2 && r2 > 0.0001) {
                    let ir2 = 1.0 / r2;
                    let s6 = ir2 * ir2 * ir2;
                    let f = 24.0 * (2.0 * s6 * s6 - s6) * ir2;
                    fx[a] = fx[a] + f * dx;
                    fy[a] = fy[a] + f * dy;
                    fz[a] = fz[a] + f * dz;
                    fx[b] = fx[b] - f * dx;
                    fy[b] = fy[b] - f * dy;
                    fz[b] = fz[b] - f * dz;
                    pe = pe + 4.0 * (s6 * s6 - s6);
                }
            }
        }

        // Integrate and accumulate kinetic energy. Aggressive timesteps
        // trigger a velocity clamp (the thermostat path of the original).
        let ke = 0.0;
        for (a = 0; a < natoms; a = a + 1) {
            velx[a] = velx[a] + fx[a] * dt;
            vely[a] = vely[a] + fy[a] * dt;
            velz[a] = velz[a] + fz[a] * dt;
            if (dt > 0.005) {
                velx[a] = fmax(-10.0, fmin(velx[a], 10.0));
                vely[a] = fmax(-10.0, fmin(vely[a], 10.0));
                velz[a] = fmax(-10.0, fmin(velz[a], 10.0));
            }
            posx[a] = posx[a] + velx[a] * dt;
            posy[a] = posy[a] + vely[a] * dt;
            posz[a] = posz[a] + velz[a] * dt;
            ke = ke + 0.5 * (velx[a] * velx[a] + vely[a] * vely[a] + velz[a] * velz[a]);
        }
        output floor((pe + ke) * 10000.0 + 0.5);
    }

    // Final position checksum.
    let cs = 0.0;
    for (a = 0; a < natoms; a = a + 1) {
        cs = cs + posx[a] + posy[a] + posz[a];
    }
    output floor(cs * 1000.0 + 0.5);
}
"#;

/// Builds the compiled benchmark.
pub fn benchmark() -> Benchmark {
    Benchmark::compile(
        "CoMD",
        "Mantevo",
        "Molecular dynamics algorithms and workloads (Lennard-Jones kernel)",
        SOURCE,
        vec![
            ArgSpec::int("natoms", 8, 64, (8, 12)),
            ArgSpec::int("nsteps", 1, 10, (1, 2)),
            ArgSpec::float("dt", 0.0001, 0.01, (0.0005, 0.002)),
            ArgSpec::float("cutoff", 1.5, 4.0, (1.5, 2.0)),
            ArgSpec::int("lseed", 1, 1_000_000, (1, 64)),
        ],
        vec![48.0, 5.0, 0.003, 2.5, 42.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::{ExecLimits, RunStatus, Vm};

    #[test]
    fn compiles_and_runs() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&b.reference_input, None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.output.len(), 6); // 5 energies + checksum
    }

    #[test]
    fn energy_roughly_conserved_at_small_dt() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&[32.0, 8.0, 0.0005, 3.0, 11.0], None);
        let energies: Vec<f64> = out.output[..8]
            .iter()
            .map(|&b| f64::from_bits(b) / 10000.0)
            .collect();
        let spread = energies.iter().cloned().fold(f64::MIN, f64::max)
            - energies.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            spread.abs() < 1.0,
            "energy drifted {spread} over {energies:?}"
        );
    }

    #[test]
    fn cutoff_changes_pair_count_and_footprint() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let near = vm.run_numeric(&[48.0, 2.0, 0.002, 1.5, 5.0], None);
        let far = vm.run_numeric(&[48.0, 2.0, 0.002, 4.0, 5.0], None);
        // Larger cutoff exercises the force-body more often.
        assert!(far.profile.dynamic > near.profile.dynamic);
    }
}

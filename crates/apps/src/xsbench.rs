//! XSBench (CESAR): the macroscopic cross-section lookup kernel of Monte
//! Carlo neutronics.
//!
//! Builds a unionized (sorted) energy grid and per-nuclide cross-section
//! tables, then performs randomized lookups: binary-search the grid,
//! linearly interpolate five cross-section channels per nuclide, and
//! accumulate a verification hash — exactly XSBench's hot loop. The
//! binary search and index arithmetic give a high density of compare and
//! pointer operations whose corruption is usually masked (a re-found
//! index is benign), reproducing XSBench's low default-input SDC rate
//! against a much higher bound (§5.1: 0.7% baseline vs 37.9% PEPPA-X at
//! 50 generations).
//!
//! Inputs: `nlookups` (footprint), `ngrid` (table size → search depth),
//! `nnuc` (nuclides per lookup), `xseed` (table content).

use crate::registry::{ArgSpec, Benchmark};

pub const SOURCE: &str = r#"
// XSBench: unionized-grid macroscopic cross-section lookups.
global float egrid[256];
global float xsdata[5120]; // ngrid * nnuc * 5 <= 256 * 4 * 5

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) % 2147483648;
}

fn main(nlookups: int, ngrid: int, nnuc: int, xseed: int) {
    // Random energy grid, then insertion sort to unionize it.
    let s = xseed;
    for (g = 0; g < ngrid; g = g + 1) {
        s = lcg(s);
        egrid[g] = i2f(abs(s) % 1000000) * 0.000001;
    }
    // Insertion sort. MiniC's && does not short-circuit, so the bounds
    // check guards the element access explicitly.
    for (g = 1; g < ngrid; g = g + 1) {
        let key = egrid[g];
        let h = g - 1;
        let moving = 1;
        while (moving == 1) {
            if (h < 0) { moving = 0; }
            else if (egrid[h] > key) {
                egrid[h + 1] = egrid[h];
                h = h - 1;
            } else { moving = 0; }
        }
        egrid[h + 1] = key;
    }

    // Cross-section tables: 5 channels per (gridpoint, nuclide).
    for (t = 0; t < ngrid * nnuc * 5; t = t + 1) {
        s = lcg(s);
        xsdata[t] = i2f(abs(s) % 1000) * 0.001;
    }

    // Lookup loop.
    let vhash = 0.0;
    for (l = 0; l < nlookups; l = l + 1) {
        s = lcg(s);
        let e = i2f(abs(s) % 1000000) * 0.000001;

        // Binary search for the bracketing grid interval.
        let lo = 0;
        let hi = ngrid - 1;
        while (hi - lo > 1) {
            let mid = (lo + hi) / 2;
            if (egrid[mid] > e) { hi = mid; } else { lo = mid; }
        }

        let denom = egrid[hi] - egrid[lo];
        let f = 0.0;
        if (denom > 0.0000001) { f = (e - egrid[lo]) / denom; }

        // Resonance-region refinement: dense grids take a second
        // interpolation pass (a path coarse grids never execute).
        if (ngrid > 128) {
            let fr = f * f * (3.0 - 2.0 * f);
            f = fr;
        }

        // Interpolate 5 channels, summed over nuclides.
        for (x = 0; x < 5; x = x + 1) {
            let macroxs = 0.0;
            for (nu = 0; nu < nnuc; nu = nu + 1) {
                let base_lo = (lo * nnuc + nu) * 5 + x;
                let base_hi = (hi * nnuc + nu) * 5 + x;
                macroxs = macroxs + (1.0 - f) * xsdata[base_lo] + f * xsdata[base_hi];
            }
            vhash = vhash + macroxs * i2f(l % 7 + 1);
        }
    }
    // Verification hash quantized to printf-style precision.
    output floor(vhash * 100.0 + 0.5);
}
"#;

/// Builds the compiled benchmark.
pub fn benchmark() -> Benchmark {
    Benchmark::compile(
        "Xsbench",
        "CESAR",
        "A mini-app representing a key computational kernel of Monte Carlo neutronics",
        SOURCE,
        vec![
            ArgSpec::int("nlookups", 16, 512, (16, 32)),
            ArgSpec::int("ngrid", 16, 256, (16, 24)),
            ArgSpec::int("nnuc", 1, 4, (1, 2)),
            ArgSpec::int("xseed", 1, 1_000_000, (1, 64)),
        ],
        vec![256.0, 128.0, 4.0, 97.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::{ExecLimits, RunStatus, Vm};

    #[test]
    fn compiles_and_runs() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&b.reference_input, None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.output.len(), 1);
    }

    #[test]
    fn hash_bounded_by_construction() {
        // Each channel value is < nnuc; weights are <= 7; 5 channels.
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&[100.0, 64.0, 2.0, 3.0], None);
        let vhash = f64::from_bits(out.output[0]) / 100.0;
        assert!((0.0..=100.0 * 5.0 * 2.0 * 7.0).contains(&vhash), "{vhash}");
    }

    #[test]
    fn lookup_count_scales_footprint() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let few = vm.run_numeric(&[16.0, 64.0, 2.0, 3.0], None);
        let many = vm.run_numeric(&[512.0, 64.0, 2.0, 3.0], None);
        assert!(many.profile.dynamic > few.profile.dynamic * 3);
    }
}

//! Benchmark metadata and registry.

use peppa_ir::Module;
use serde::{Deserialize, Serialize};

/// One numeric input argument of a benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArgSpec {
    pub name: &'static str,
    /// Inclusive lower bound of the valid range.
    pub lo: f64,
    /// Inclusive upper bound of the valid range.
    pub hi: f64,
    /// Integer-valued argument (sizes, seeds, iteration counts).
    pub integer: bool,
    /// Lower/upper bound of the *small* starting window used by the
    /// small-FI-input fuzzing step (§4.2.1) — a light-workload corner of
    /// the range.
    pub small: (f64, f64),
}

impl ArgSpec {
    pub fn int(name: &'static str, lo: i64, hi: i64, small: (i64, i64)) -> ArgSpec {
        ArgSpec {
            name,
            lo: lo as f64,
            hi: hi as f64,
            integer: true,
            small: (small.0 as f64, small.1 as f64),
        }
    }

    pub fn float(name: &'static str, lo: f64, hi: f64, small: (f64, f64)) -> ArgSpec {
        ArgSpec {
            name,
            lo,
            hi,
            integer: false,
            small,
        }
    }

    /// Clamps a raw value into the argument's valid range.
    pub fn clamp(&self, x: f64) -> f64 {
        let c = x.clamp(self.lo, self.hi);
        if self.integer {
            c.round().clamp(self.lo, self.hi)
        } else {
            c
        }
    }
}

/// A compiled benchmark with its search-space metadata.
pub struct Benchmark {
    pub name: &'static str,
    pub suite: &'static str,
    pub description: &'static str,
    /// The MiniC source the module was compiled from.
    pub source: &'static str,
    pub module: Module,
    pub args: Vec<ArgSpec>,
    /// The "default reference input" — the stand-in for the input
    /// shipped with the benchmark suite (§3.2.1's red marks).
    pub reference_input: Vec<f64>,
}

impl Benchmark {
    pub(crate) fn compile(
        name: &'static str,
        suite: &'static str,
        description: &'static str,
        source: &'static str,
        args: Vec<ArgSpec>,
        reference_input: Vec<f64>,
    ) -> Benchmark {
        let module = peppa_lang::compile(source, name)
            .unwrap_or_else(|e| panic!("benchmark {name} failed to compile: {e}"));
        assert_eq!(
            module.entry_func().params.len(),
            args.len(),
            "benchmark {name}: arg spec arity mismatch"
        );
        assert_eq!(reference_input.len(), args.len());
        Benchmark {
            name,
            suite,
            description,
            source,
            module,
            args,
            reference_input,
        }
    }

    /// Static instruction count (Table 1's rightmost column).
    pub fn static_instrs(&self) -> usize {
        self.module.num_instrs
    }
}

/// Compiles and returns all seven benchmarks, in the paper's Table 1
/// order.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        crate::pathfinder::benchmark(),
        crate::needle::benchmark(),
        crate::particlefilter::benchmark(),
        crate::comd::benchmark(),
        crate::hpccg::benchmark(),
        crate::xsbench::benchmark(),
        crate::fft::benchmark(),
    ]
}

/// Looks a benchmark up by (case-insensitive) name.
pub fn benchmark_by_name(name: &str) -> Option<Benchmark> {
    let lower = name.to_lowercase();
    match lower.as_str() {
        "pathfinder" => Some(crate::pathfinder::benchmark()),
        "needle" => Some(crate::needle::benchmark()),
        "particlefilter" => Some(crate::particlefilter::benchmark()),
        "comd" => Some(crate::comd::benchmark()),
        "hpccg" => Some(crate::hpccg::benchmark()),
        "xsbench" => Some(crate::xsbench::benchmark()),
        "fft" => Some(crate::fft::benchmark()),
        _ => None,
    }
}

//! Particlefilter (Rodinia): Bayesian particle filter tracking a noisy
//! target.
//!
//! Each step predicts particle positions, weights them against a noisy
//! measurement with a Gaussian likelihood (`exp` of a squared distance),
//! normalizes, emits the weighted-mean estimate, and systematically
//! resamples from the cumulative weight distribution. The resampling
//! index walk is the characteristic compare-and-index structure of the
//! original; weight normalization gives a division chain whose
//! corruption spreads to every particle.
//!
//! Inputs: `nparticles`, `nsteps` (footprint), `noise` (likelihood
//! bandwidth → masking strength), `pseed` (noise pattern).

use crate::registry::{ArgSpec, Benchmark};

pub const SOURCE: &str = r#"
// Particle filter: 1-D target tracking with systematic resampling.
global float px[256];
global float pw[256];
global float cdf[256];
global float npx[256];

fn lcg(x: int) -> int {
    return (x * 1103515245 + 12345) % 2147483648;
}

fn main(nparticles: int, nsteps: int, noise: float, pseed: int) {
    let s = pseed;
    for (p = 0; p < nparticles; p = p + 1) {
        s = lcg(s);
        px[p] = i2f(abs(s) % 1000) * 0.002 - 1.0;
    }

    let truex = 0.0;
    for (t = 0; t < nsteps; t = t + 1) {
        let drift = 1.0 + sin(i2f(t) * 0.5);
        truex = truex + drift;
        s = lcg(s);
        let meas = truex + (i2f(abs(s) % 1000) * 0.002 - 1.0) * noise;

        // Predict and weight.
        let wsum = 0.0;
        for (p = 0; p < nparticles; p = p + 1) {
            s = lcg(s);
            let jitter = (i2f(abs(s) % 1000) * 0.002 - 1.0) * noise;
            px[p] = px[p] + drift + jitter;
            let d = px[p] - meas;
            pw[p] = exp(0.0 - d * d / (2.0 * noise * noise + 0.0001));
            wsum = wsum + pw[p];
        }

        // Degeneracy rescue: when all weights collapse (high noise far
        // from the target), reset to uniform — a path only noisy
        // configurations exercise.
        if (wsum < 0.000001 * i2f(nparticles)) {
            for (p = 0; p < nparticles; p = p + 1) {
                pw[p] = 1.0 / i2f(nparticles);
            }
            wsum = 1.0;
        }

        // Normalize and build the CDF.
        let c = 0.0;
        for (p = 0; p < nparticles; p = p + 1) {
            pw[p] = pw[p] / (wsum + 0.000001);
            c = c + pw[p];
            cdf[p] = c;
        }

        // Weighted-mean estimate is the step's observable.
        let est = 0.0;
        for (p = 0; p < nparticles; p = p + 1) {
            est = est + px[p] * pw[p];
        }
        output floor(est * 1000.0 + 0.5);

        // Systematic resampling.
        s = lcg(s);
        let u0 = i2f(abs(s) % 1000) * 0.001 / i2f(nparticles);
        let idx = 0;
        for (p = 0; p < nparticles; p = p + 1) {
            let u = u0 + i2f(p) / i2f(nparticles);
            while (idx < nparticles - 1 && cdf[idx] < u) {
                idx = idx + 1;
            }
            npx[p] = px[idx];
        }
        for (p = 0; p < nparticles; p = p + 1) {
            px[p] = npx[p];
        }
    }
}
"#;

/// Builds the compiled benchmark.
pub fn benchmark() -> Benchmark {
    Benchmark::compile(
        "Particlefilter",
        "Rodinia",
        "Statistical estimator of the location of a target object given noisy measurements",
        SOURCE,
        vec![
            ArgSpec::int("nparticles", 8, 192, (8, 16)),
            ArgSpec::int("nsteps", 2, 24, (2, 3)),
            ArgSpec::float("noise", 0.05, 4.0, (0.1, 0.5)),
            ArgSpec::int("pseed", 1, 1_000_000, (1, 64)),
        ],
        vec![64.0, 10.0, 1.0, 1234.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_vm::{ExecLimits, RunStatus, Vm};

    #[test]
    fn compiles_and_runs() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&b.reference_input, None);
        assert_eq!(out.status, RunStatus::Ok);
        assert_eq!(out.output.len(), 10); // one estimate per step
    }

    #[test]
    fn estimates_track_the_target() {
        // With low noise the final estimate should be near the true
        // trajectory sum_t (1 + sin(t/2)).
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let out = vm.run_numeric(&[128.0, 8.0, 0.1, 42.0], None);
        let est = f64::from_bits(*out.output.last().unwrap()) / 1000.0;
        let mut truex = 0.0;
        for t in 0..8 {
            truex += 1.0 + (t as f64 * 0.5).sin();
        }
        assert!((est - truex).abs() < 1.0, "estimate {est} vs true {truex}");
    }

    #[test]
    fn noise_changes_behaviour() {
        let b = benchmark();
        let vm = Vm::new(&b.module, ExecLimits::default());
        let low = vm.run_numeric(&[64.0, 6.0, 0.1, 7.0], None).output;
        let high = vm.run_numeric(&[64.0, 6.0, 3.0, 7.0], None).output;
        assert_ne!(low, high);
    }
}

//! The baseline SDC-bound search (§5.1): random input generation where
//! every candidate input is evaluated with a full statistical FI
//! campaign — "the only currently available approach".

use peppa_apps::{sample_input, Benchmark};
use peppa_inject::{run_campaign, CampaignConfig};
use peppa_stats::Pcg64;
use peppa_vm::{EngineKind, ExecLimits};
use serde::{Deserialize, Serialize};

/// Baseline configuration.
#[derive(Debug, Clone, Copy)]
pub struct BaselineConfig {
    pub seed: u64,
    /// FI trials per candidate input (1,000 in the paper).
    pub fi_trials: u32,
    pub limits: ExecLimits,
    pub threads: usize,
    /// Safety cap on evaluated inputs regardless of budget.
    pub max_inputs: usize,
    /// Execution backend for the FI campaigns (outcome-invariant).
    pub engine: EngineKind,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            seed: 0xba5e,
            fi_trials: 1000,
            limits: ExecLimits::default(),
            threads: 0,
            max_inputs: 10_000,
            engine: EngineKind::Interp,
        }
    }
}

/// One evaluated input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineEval {
    pub input: Vec<f64>,
    pub sdc_prob: f64,
    /// Cumulative dynamic-instruction cost *after* this evaluation.
    pub cumulative_cost: u64,
}

/// Baseline search trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselineReport {
    pub benchmark: String,
    pub evals: Vec<BaselineEval>,
    pub total_cost: u64,
}

impl BaselineReport {
    /// Best SDC probability found within a cost budget (for comparing
    /// trajectories at different time budgets, Figures 5 and 7).
    pub fn best_at_budget(&self, budget: u64) -> Option<f64> {
        self.evals
            .iter()
            .take_while(|e| e.cumulative_cost <= budget)
            .map(|e| e.sdc_prob)
            .fold(None, |acc, p| Some(acc.map_or(p, |a: f64| a.max(p))))
    }

    /// Best over the whole search.
    pub fn best(&self) -> Option<f64> {
        self.best_at_budget(u64::MAX)
    }
}

/// Runs the baseline search until `budget_dynamic` dynamic instructions
/// have been spent (or `max_inputs` candidates evaluated).
pub fn baseline_search(
    bench: &Benchmark,
    budget_dynamic: u64,
    cfg: BaselineConfig,
) -> BaselineReport {
    let mut rng = Pcg64::new(cfg.seed);
    let mut evals = Vec::new();
    let mut cost = 0u64;

    while cost < budget_dynamic && evals.len() < cfg.max_inputs {
        let input = sample_input(bench, &mut rng);
        let campaign_cfg = CampaignConfig {
            trials: cfg.fi_trials,
            seed: rng.next_u64(),
            hang_factor: 8,
            threads: cfg.threads,
            burst: 0,
            engine: cfg.engine,
        };
        match run_campaign(&bench.module, &input, cfg.limits, campaign_cfg) {
            Ok(r) => {
                // Each trial re-executes the program; charge executions
                // times the input's run length.
                cost = cost.saturating_add(r.executions.saturating_mul(r.golden_dynamic));
                evals.push(BaselineEval {
                    input,
                    sdc_prob: r.sdc_prob(),
                    cumulative_cost: cost,
                });
            }
            Err(_) => {
                // Invalid input: the golden run still cost one execution.
                let vm = peppa_vm::Vm::new(&bench.module, cfg.limits);
                let probe = vm.run_numeric(&input, None);
                cost = cost.saturating_add(probe.profile.dynamic.max(1));
            }
        }
    }

    BaselineReport {
        benchmark: bench.name.to_string(),
        evals,
        total_cost: cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_apps::pathfinder;

    fn quick_cfg() -> BaselineConfig {
        BaselineConfig {
            seed: 5,
            fi_trials: 40,
            max_inputs: 6,
            ..Default::default()
        }
    }

    #[test]
    fn respects_budget_and_caps() {
        let b = pathfinder::benchmark();
        let r = baseline_search(&b, 10_000_000, quick_cfg());
        assert!(!r.evals.is_empty());
        assert!(r.evals.len() <= 6);
        // Cumulative costs are monotone.
        for w in r.evals.windows(2) {
            assert!(w[1].cumulative_cost >= w[0].cumulative_cost);
        }
    }

    #[test]
    fn best_at_budget_monotone_in_budget() {
        let b = pathfinder::benchmark();
        let r = baseline_search(&b, 50_000_000, quick_cfg());
        let mid = r.evals[r.evals.len() / 2].cumulative_cost;
        let early = r.best_at_budget(mid).unwrap_or(0.0);
        let late = r.best().unwrap_or(0.0);
        assert!(late >= early);
    }

    #[test]
    fn deterministic() {
        let b = pathfinder::benchmark();
        let a = baseline_search(&b, 8_000_000, quick_cfg());
        let c = baseline_search(&b, 8_000_000, quick_cfg());
        assert_eq!(a.evals.len(), c.evals.len());
        for (x, y) in a.evals.iter().zip(&c.evals) {
            assert_eq!(x.input, y.input);
            assert_eq!(x.sdc_prob, y.sdc_prob);
        }
    }

    #[test]
    fn zero_budget_evaluates_nothing() {
        let b = pathfinder::benchmark();
        let r = baseline_search(&b, 0, quick_cfg());
        assert!(r.evals.is_empty());
    }
}

//! Fuzzing for the small FI input (§4.2.1).
//!
//! The SDC-sensitivity distribution only needs an input that *covers* the
//! representative program regions, not a heavy workload. Starting from a
//! small numeric window per argument, the fuzzer samples random inputs
//! and widens the window until the sampled input's static-instruction
//! coverage reaches a target fraction of the reference input's coverage.

use peppa_apps::Benchmark;
use peppa_stats::Pcg64;
use peppa_vm::{ExecLimits, RunStatus, Vm};
use serde::{Deserialize, Serialize};

/// Configuration of the small-input fuzzing step.
#[derive(Debug, Clone, Copy)]
pub struct SmallInputConfig {
    /// Required coverage as a fraction of the reference input's coverage
    /// (the paper fuzzes "until reaching a specified code coverage").
    pub coverage_fraction: f64,
    /// Samples per widening stage.
    pub samples_per_stage: usize,
    /// Widening stages from the small window to the full range.
    pub stages: usize,
    pub seed: u64,
}

impl Default for SmallInputConfig {
    fn default() -> Self {
        SmallInputConfig {
            coverage_fraction: 0.95,
            samples_per_stage: 24,
            stages: 8,
            seed: 0xf0,
        }
    }
}

/// The small FI input found by fuzzing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmallInput {
    pub input: Vec<f64>,
    pub coverage: f64,
    pub reference_coverage: f64,
    /// Dynamic instructions of the small input's run.
    pub dynamic: u64,
    /// Dynamic instructions of the reference input's run, for the
    /// speed-up comparison.
    pub reference_dynamic: u64,
    /// Candidate executions spent fuzzing.
    pub attempts: u64,
    /// Total dynamic instructions spent fuzzing (the step's cost).
    pub cost_dynamic: u64,
}

/// Errors from the fuzzing step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmallInputError {
    ReferenceRunFailed,
    CoverageTargetUnreachable { best: u64 },
}

impl std::fmt::Display for SmallInputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmallInputError::ReferenceRunFailed => write!(f, "reference input failed to run"),
            SmallInputError::CoverageTargetUnreachable { best } => {
                write!(
                    f,
                    "coverage target unreachable (best coverage seen: {best} instrs)"
                )
            }
        }
    }
}

impl std::error::Error for SmallInputError {}

/// Runs the fuzzing procedure of §4.2.1.
pub fn fuzz_small_input(
    bench: &Benchmark,
    limits: ExecLimits,
    cfg: SmallInputConfig,
) -> Result<SmallInput, SmallInputError> {
    let vm = Vm::new(&bench.module, limits);
    let ref_run = vm.run_numeric(&bench.reference_input, None);
    if ref_run.status != RunStatus::Ok {
        return Err(SmallInputError::ReferenceRunFailed);
    }
    let ref_cov = ref_run.profile.coverage();
    let target = ref_cov * cfg.coverage_fraction;

    let mut rng = Pcg64::new(cfg.seed);
    let mut attempts = 0u64;
    let mut cost = ref_run.profile.dynamic;
    let mut best: Option<(Vec<f64>, f64, u64)> = None;

    for stage in 0..cfg.stages {
        // Interpolate each argument's window from its small range toward
        // the full range.
        let t = stage as f64 / (cfg.stages - 1).max(1) as f64;
        let windows: Vec<(f64, f64)> = bench
            .args
            .iter()
            .map(|a| {
                let lo = a.small.0 + (a.lo - a.small.0) * t;
                let hi = a.small.1 + (a.hi - a.small.1) * t;
                (lo, hi)
            })
            .collect();

        for _ in 0..cfg.samples_per_stage {
            let candidate: Vec<f64> = bench
                .args
                .iter()
                .zip(&windows)
                .map(|(a, &(lo, hi))| a.clamp(rng.gen_range_f64(lo, hi)))
                .collect();
            attempts += 1;
            let out = vm.run_numeric(&candidate, None);
            cost += out.profile.dynamic;
            if out.status != RunStatus::Ok {
                continue;
            }
            let cov = out.profile.coverage();
            let dynamic = out.profile.dynamic;
            // Prefer: coverage first, then smaller workload.
            let better = match &best {
                None => true,
                Some((_, bcov, bdyn)) => {
                    cov > *bcov + 1e-12 || (cov >= *bcov - 1e-12 && dynamic < *bdyn)
                }
            };
            if better {
                best = Some((candidate, cov, dynamic));
            }
        }

        if let Some((input, cov, dynamic)) = &best {
            if *cov >= target {
                return Ok(SmallInput {
                    input: input.clone(),
                    coverage: *cov,
                    reference_coverage: ref_cov,
                    dynamic: *dynamic,
                    reference_dynamic: ref_run.profile.dynamic,
                    attempts,
                    cost_dynamic: cost,
                });
            }
        }
    }

    match best {
        // Accept the best coverage found even if slightly under target:
        // the distribution only needs the dominant regions.
        Some((input, cov, dynamic)) if cov >= target * 0.8 => Ok(SmallInput {
            input,
            coverage: cov,
            reference_coverage: ref_cov,
            dynamic,
            reference_dynamic: ref_run.profile.dynamic,
            attempts,
            cost_dynamic: cost,
        }),
        Some((_, _, d)) => Err(SmallInputError::CoverageTargetUnreachable { best: d }),
        None => Err(SmallInputError::CoverageTargetUnreachable { best: 0 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_apps::all_benchmarks;

    #[test]
    fn finds_small_input_for_every_benchmark() {
        for b in all_benchmarks() {
            let s = fuzz_small_input(&b, ExecLimits::default(), SmallInputConfig::default())
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(
                s.coverage >= 0.8 * 0.95 * s.reference_coverage,
                "{}: coverage {} vs ref {}",
                b.name,
                s.coverage,
                s.reference_coverage
            );
            // The point of the step: the small input must be cheaper than
            // the reference input.
            assert!(
                s.dynamic <= s.reference_dynamic,
                "{}: small input not smaller ({} vs {})",
                b.name,
                s.dynamic,
                s.reference_dynamic
            );
        }
    }

    #[test]
    fn deterministic() {
        let b = peppa_apps::pathfinder::benchmark();
        let a = fuzz_small_input(&b, ExecLimits::default(), SmallInputConfig::default()).unwrap();
        let c = fuzz_small_input(&b, ExecLimits::default(), SmallInputConfig::default()).unwrap();
        assert_eq!(a.input, c.input);
    }

    #[test]
    fn small_input_is_much_cheaper_for_big_kernels() {
        // CoMD's reference input runs hundreds of thousands of dynamic
        // instructions; the small input should be at least 5x cheaper.
        let b = peppa_apps::comd::benchmark();
        let s = fuzz_small_input(&b, ExecLimits::default(), SmallInputConfig::default()).unwrap();
        assert!(
            s.dynamic * 5 <= s.reference_dynamic,
            "small {} vs reference {}",
            s.dynamic,
            s.reference_dynamic
        );
    }
}

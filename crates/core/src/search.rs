//! The PEPPA-X search driver (§4.1, §4.2.4).

use crate::distribution::{derive_sdc_scores, SdcScores};
use crate::fitness::FitnessOracle;
use crate::small_input::{fuzz_small_input, SmallInput, SmallInputConfig};
use peppa_apps::Benchmark;
use peppa_ga::{ArgBounds, GaConfig, GeneticEngine, Individual};
use peppa_inject::{run_campaign_observed, CampaignConfig, CampaignResult};
use peppa_obs::{Event, NullObserver, Observer};
use peppa_vm::{EngineKind, ExecLimits};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Full PEPPA-X configuration; defaults follow the paper.
#[derive(Debug, Clone, Copy)]
pub struct PeppaConfig {
    pub seed: u64,
    /// GA population size.
    pub population: usize,
    /// §4.2.4: mutation rate 0.4.
    pub mutation_rate: f64,
    /// §4.2.4: crossover rate 0.05.
    pub crossover_rate: f64,
    /// §4.2.3: FI trials per pruned representative (30).
    pub distribution_trials: u32,
    /// Final FI campaign size for the reported SDC-bound input (1,000).
    pub final_fi_trials: u32,
    pub limits: ExecLimits,
    /// Worker threads for FI phases; 0 = all cores.
    pub threads: usize,
    /// Execution backend for the FI phases (outcome-invariant).
    pub engine: EngineKind,
    pub small_input: SmallInputConfig,
}

impl Default for PeppaConfig {
    fn default() -> Self {
        PeppaConfig {
            seed: 0xbeef,
            population: 20,
            mutation_rate: 0.4,
            crossover_rate: 0.05,
            distribution_trials: 30,
            final_fi_trials: 1000,
            limits: ExecLimits::default(),
            threads: 0,
            engine: EngineKind::Interp,
            small_input: SmallInputConfig::default(),
        }
    }
}

/// Errors during the preparation phase.
#[derive(Debug)]
pub enum PrepareError {
    SmallInput(crate::small_input::SmallInputError),
    Distribution(peppa_inject::campaign::CampaignError),
}

impl std::fmt::Display for PrepareError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PrepareError::SmallInput(e) => write!(f, "small-input fuzzing failed: {e}"),
            PrepareError::Distribution(e) => write!(f, "distribution analysis failed: {e}"),
        }
    }
}

impl std::error::Error for PrepareError {}

/// The search state at one generation checkpoint, FI-evaluated.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    pub generation: u64,
    /// Best input found so far.
    pub input: Vec<f64>,
    /// Its Eq.-2 fitness.
    pub fitness: f64,
    /// Its measured SDC probability (the checkpoint's FI campaign).
    pub sdc: CampaignResult,
    /// Dynamic-instruction search cost up to this generation (analysis +
    /// GA evaluations, excluding the final FI evaluations).
    pub search_cost_dynamic: u64,
}

/// Outcome of one PEPPA-X search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchReport {
    pub benchmark: String,
    pub checkpoints: Vec<SearchCheckpoint>,
    /// Fixed cost: small-input fuzzing + distribution analysis (Figure
    /// 8's dark series).
    pub analysis_cost_dynamic: u64,
    /// GA evaluations performed in total.
    pub ga_evaluations: u64,
}

impl SearchReport {
    /// The SDC-bound input: the checkpoint whose FI evaluation is
    /// highest.
    pub fn sdc_bound(&self) -> &SearchCheckpoint {
        self.checkpoints
            .iter()
            .max_by(|a, b| {
                a.sdc
                    .sdc_prob()
                    .partial_cmp(&b.sdc.sdc_prob())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("search produced no checkpoints")
    }
}

/// A prepared PEPPA-X instance: small FI input fuzzed, SDC-sensitivity
/// distribution measured. Reusable across searches with different
/// budgets or seeds.
pub struct PeppaX<'b> {
    pub bench: &'b Benchmark,
    pub cfg: PeppaConfig,
    pub small: SmallInput,
    pub scores: SdcScores,
}

impl<'b> PeppaX<'b> {
    /// Runs steps 1–3 of the pipeline (Figure 3's ❶–❸).
    pub fn prepare(bench: &'b Benchmark, cfg: PeppaConfig) -> Result<Self, PrepareError> {
        let small = fuzz_small_input(bench, cfg.limits, cfg.small_input)
            .map_err(PrepareError::SmallInput)?;
        let scores = derive_sdc_scores(
            bench,
            &small.input,
            cfg.limits,
            cfg.distribution_trials,
            cfg.seed ^ 0xd157,
            true,
            cfg.threads,
        )
        .map_err(PrepareError::Distribution)?;
        Ok(PeppaX {
            bench,
            cfg,
            small,
            scores,
        })
    }

    fn ga_bounds(&self) -> Vec<ArgBounds> {
        self.bench
            .args
            .iter()
            .map(|a| ArgBounds {
                lo: a.lo,
                hi: a.hi,
                integer: a.integer,
            })
            .collect()
    }

    /// Runs the GA search (Figure 3's ❹–❺), recording and FI-evaluating
    /// the best input at each generation checkpoint. `checkpoints` must
    /// be sorted ascending; the search runs to the last one.
    pub fn search(&self, checkpoints: &[u64]) -> SearchReport {
        self.search_observed(checkpoints, &NullObserver)
    }

    /// [`search`](Self::search) with an [`Observer`] attached.
    ///
    /// Emits `SearchStarted`, one `GenerationFinished` per generation
    /// (best/mean Eq.-2 fitness, population diversity, fitness-memo
    /// hits, cumulative evaluations), `SearchFinished`, and — through
    /// the checkpoint FI campaigns — the full campaign event stream of
    /// each checkpoint evaluation.
    pub fn search_observed(&self, checkpoints: &[u64], observer: &dyn Observer) -> SearchReport {
        assert!(!checkpoints.is_empty(), "need at least one checkpoint");
        assert!(
            checkpoints.windows(2).all(|w| w[0] < w[1]),
            "checkpoints must be ascending"
        );
        let start = Instant::now();

        let mut oracle = FitnessOracle::new(self.bench, &self.scores, self.cfg.limits);
        let ga_cfg = GaConfig {
            population: self.cfg.population,
            mutation_rate: self.cfg.mutation_rate,
            crossover_rate: self.cfg.crossover_rate,
            seed: self.cfg.seed,
            bounds: self.ga_bounds(),
        };

        struct OracleAdapter<'x, 'y>(&'x mut FitnessOracle<'y>);
        impl peppa_ga::Fitness for OracleAdapter<'_, '_> {
            fn eval(&mut self, genome: &[f64]) -> Option<f64> {
                self.0.eval(genome)
            }
        }

        let bounds = self.ga_bounds();
        let mut adapter = OracleAdapter(&mut oracle);
        let mut ga = GeneticEngine::new(ga_cfg, &mut adapter);

        let mut pending: Vec<(u64, Vec<f64>, f64, u64)> = Vec::new();
        let last = *checkpoints.last().unwrap();
        observer.on_event(&Event::SearchStarted {
            benchmark: self.bench.name.to_string(),
            generations: last,
            population: self.cfg.population,
            seed: self.cfg.seed,
        });
        let mut next_cp = 0usize;
        for gen in 1..=last {
            ga.step(&mut adapter);
            let (mean, diversity) = population_stats(ga.population(), &bounds);
            observer.on_event(&Event::GenerationFinished {
                generation: gen,
                best: ga.best().fitness,
                mean,
                diversity,
                cache_hits: adapter.0.cache_hits,
                evaluations: ga.evaluations(),
            });
            if next_cp < checkpoints.len() && gen == checkpoints[next_cp] {
                let best = ga.best().clone();
                let cost =
                    self.scores.cost_dynamic + self.small.cost_dynamic + adapter.0.cost_dynamic;
                pending.push((gen, best.genome, best.fitness, cost));
                next_cp += 1;
            }
        }
        let ga_evaluations = ga.evaluations();
        observer.on_event(&Event::SearchFinished {
            generations: last,
            evaluations: ga_evaluations,
            wall_ns: start.elapsed().as_nanos() as u64,
        });

        // FI-evaluate each checkpoint's best input (§4.1: FI only at the
        // end of the search).
        let mut results = Vec::with_capacity(pending.len());
        for (generation, input, fitness, search_cost_dynamic) in pending {
            let campaign_cfg = CampaignConfig {
                trials: self.cfg.final_fi_trials,
                seed: self.cfg.seed ^ generation,
                hang_factor: 8,
                threads: self.cfg.threads,
                burst: 0,
                engine: self.cfg.engine,
            };
            let sdc = run_campaign_observed(
                &self.bench.module,
                &input,
                self.cfg.limits,
                campaign_cfg,
                observer,
            )
            .expect("GA best input must be valid (oracle rejected invalid genomes)");
            results.push(SearchCheckpoint {
                generation,
                input,
                fitness,
                sdc,
                search_cost_dynamic,
            });
        }
        observer.flush();

        SearchReport {
            benchmark: self.bench.name.to_string(),
            checkpoints: results,
            analysis_cost_dynamic: self.scores.cost_dynamic + self.small.cost_dynamic,
            ga_evaluations,
        }
    }
}

/// Mean finite fitness and population diversity.
///
/// Diversity is the mean over arguments of the population's standard
/// deviation in that argument, normalized by the argument's search
/// range — 0 when the population has collapsed to one point, ~0.29 for
/// a uniform spread over the range.
fn population_stats(pop: &[Individual], bounds: &[ArgBounds]) -> (f64, f64) {
    let finite: Vec<f64> = pop
        .iter()
        .map(|i| i.fitness)
        .filter(|f| f.is_finite())
        .collect();
    let mean = if finite.is_empty() {
        0.0
    } else {
        finite.iter().sum::<f64>() / finite.len() as f64
    };

    if pop.len() < 2 || bounds.is_empty() {
        return (mean, 0.0);
    }
    let mut acc = 0.0;
    for (d, b) in bounds.iter().enumerate() {
        let vals: Vec<f64> = pop
            .iter()
            .filter_map(|i| i.genome.get(d).copied())
            .collect();
        if vals.len() < 2 {
            continue;
        }
        let m = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / vals.len() as f64;
        let range = (b.hi - b.lo).abs().max(f64::MIN_POSITIVE);
        acc += var.sqrt() / range;
    }
    (mean, acc / bounds.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_apps::pathfinder;

    fn quick_cfg() -> PeppaConfig {
        PeppaConfig {
            seed: 11,
            population: 8,
            distribution_trials: 8,
            final_fi_trials: 80,
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_search_improves_over_generations() {
        let b = pathfinder::benchmark();
        let px = PeppaX::prepare(&b, quick_cfg()).unwrap();
        let report = px.search(&[2, 10]);
        assert_eq!(report.checkpoints.len(), 2);
        let early = &report.checkpoints[0];
        let late = &report.checkpoints[1];
        assert!(late.fitness >= early.fitness, "fitness regressed");
        assert!(late.search_cost_dynamic > early.search_cost_dynamic);
    }

    #[test]
    fn deterministic_given_seed() {
        let b = pathfinder::benchmark();
        let r1 = PeppaX::prepare(&b, quick_cfg()).unwrap().search(&[5]);
        let r2 = PeppaX::prepare(&b, quick_cfg()).unwrap().search(&[5]);
        assert_eq!(r1.checkpoints[0].input, r2.checkpoints[0].input);
        assert_eq!(r1.checkpoints[0].sdc.sdc, r2.checkpoints[0].sdc.sdc);
    }

    #[test]
    fn sdc_bound_is_max_checkpoint() {
        let b = pathfinder::benchmark();
        let report = PeppaX::prepare(&b, quick_cfg()).unwrap().search(&[2, 5, 8]);
        let best = report.sdc_bound();
        for c in &report.checkpoints {
            assert!(best.sdc.sdc_prob() >= c.sdc.sdc_prob());
        }
    }

    #[test]
    fn observed_search_emits_generation_telemetry() {
        struct Collecting(std::sync::Mutex<Vec<Event>>);
        impl Observer for Collecting {
            fn on_event(&self, event: &Event) {
                self.0.lock().unwrap().push(event.clone());
            }
        }

        let b = pathfinder::benchmark();
        let px = PeppaX::prepare(&b, quick_cfg()).unwrap();
        let obs = Collecting(std::sync::Mutex::new(Vec::new()));
        let report = px.search_observed(&[3], &obs);
        let events = obs.0.into_inner().unwrap();

        let gens: Vec<&Event> = events
            .iter()
            .filter(|e| e.kind() == "generation_finished")
            .collect();
        assert_eq!(gens.len(), 3);
        match gens.last().unwrap() {
            Event::GenerationFinished {
                best,
                mean,
                diversity,
                evaluations,
                ..
            } => {
                assert!(
                    best.is_finite() && *best >= *mean - 1e-12,
                    "best {best} mean {mean}"
                );
                assert!((0.0..=1.0).contains(diversity), "diversity {diversity}");
                assert_eq!(*evaluations, report.ga_evaluations);
            }
            _ => unreachable!(),
        }
        // The checkpoint FI campaign streamed through the same observer.
        let trial_events = events
            .iter()
            .filter(|e| e.kind() == "trial_finished")
            .count();
        assert_eq!(trial_events, quick_cfg().final_fi_trials as usize);
        assert_eq!(
            events
                .iter()
                .filter(|e| e.kind() == "search_finished")
                .count(),
            1
        );

        // Telemetry must not perturb the search itself.
        let plain = PeppaX::prepare(&b, quick_cfg()).unwrap().search(&[3]);
        assert_eq!(plain.checkpoints[0].input, report.checkpoints[0].input);
        assert_eq!(plain.checkpoints[0].sdc.sdc, report.checkpoints[0].sdc.sdc);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn checkpoints_must_ascend() {
        let b = pathfinder::benchmark();
        let px = PeppaX::prepare(&b, quick_cfg()).unwrap();
        px.search(&[5, 5]);
    }
}

//! The dynamic SDC-vulnerability potential — Eq. 2's fitness (§4.2.5).
//!
//! ```text
//! P_overall = Σ_i  P_i · (N_i / N_total)
//! ```
//!
//! `P_i` is approximated by the (stationary) SDC score of instruction
//! `i`; `N_i / N_total` comes from *one* profiled execution of the
//! candidate input — no fault injection. This is the 4-orders-of-
//! magnitude speedup of Table 6: one run per candidate instead of a
//! thousand.

use crate::distribution::SdcScores;
use peppa_apps::Benchmark;
use peppa_vm::{ExecLimits, RunStatus, Vm};

/// Computes the fitness of one input: `Σ score_i · N_i / N_total`, or
/// `None` when the input is invalid (run fails or exceeds the dynamic
/// cap).
pub fn fitness_of_input(
    bench: &Benchmark,
    scores: &SdcScores,
    input: &[f64],
    limits: ExecLimits,
) -> Option<(f64, u64)> {
    let vm = Vm::new(&bench.module, limits);
    let out = vm.run_numeric(input, None);
    if out.status != RunStatus::Ok || out.profile.dynamic == 0 {
        return None;
    }
    let total = out.profile.dynamic as f64;
    let mut acc = 0.0;
    for (sid, &count) in out.profile.exec_counts.iter().enumerate() {
        if count > 0 {
            acc += scores.score[sid] * (count as f64 / total);
        }
    }
    Some((acc, out.profile.dynamic))
}

/// A reusable fitness oracle that tracks the cumulative dynamic-
/// instruction cost of all evaluations (the GA's search budget).
///
/// Results are memoized on the clamped genome's bit pattern: elitism and
/// low-rate crossover re-propose identical genomes constantly, and the
/// fitness run is deterministic, so a repeat costs a map lookup instead
/// of a full profiled execution. `cost_dynamic` only grows on real runs,
/// keeping the reported search budget honest.
pub struct FitnessOracle<'a> {
    pub bench: &'a Benchmark,
    pub scores: &'a SdcScores,
    pub limits: ExecLimits,
    pub cost_dynamic: u64,
    pub evaluations: u64,
    /// Memoized evaluations served without running the VM.
    pub cache_hits: u64,
    cache: std::collections::HashMap<Vec<u64>, Option<f64>>,
}

impl<'a> FitnessOracle<'a> {
    pub fn new(bench: &'a Benchmark, scores: &'a SdcScores, limits: ExecLimits) -> Self {
        FitnessOracle {
            bench,
            scores,
            limits,
            cost_dynamic: 0,
            evaluations: 0,
            cache_hits: 0,
            cache: std::collections::HashMap::new(),
        }
    }

    /// Evaluates one genome, accounting its cost.
    pub fn eval(&mut self, genome: &[f64]) -> Option<f64> {
        self.evaluations += 1;
        let clamped: Vec<f64> = genome
            .iter()
            .zip(&self.bench.args)
            .map(|(&x, a)| a.clamp(x))
            .collect();
        let key: Vec<u64> = clamped.iter().map(|x| x.to_bits()).collect();
        if let Some(&cached) = self.cache.get(&key) {
            self.cache_hits += 1;
            return cached;
        }
        let result = match fitness_of_input(self.bench, self.scores, &clamped, self.limits) {
            Some((f, dynamic)) => {
                self.cost_dynamic += dynamic;
                Some(f)
            }
            None => None,
        };
        self.cache.insert(key, result);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distribution::derive_sdc_scores;
    use peppa_apps::pathfinder;

    fn setup() -> (Benchmark, SdcScores) {
        let b = pathfinder::benchmark();
        let s = derive_sdc_scores(
            &b,
            &[6.0, 6.0, 3.0, 0.1],
            ExecLimits::default(),
            10,
            2,
            true,
            0,
        )
        .unwrap();
        (b, s)
    }

    #[test]
    fn fitness_bounded_by_max_score() {
        // Fitness is a convex combination of scores scaled by footprint
        // fractions, so it can never exceed 1 (max normalized score).
        let (b, s) = setup();
        let (f, _) = fitness_of_input(&b, &s, &b.reference_input, ExecLimits::default()).unwrap();
        assert!(f > 0.0 && f <= 1.0, "fitness {f}");
    }

    #[test]
    fn invalid_input_gives_none() {
        let (b, s) = setup();
        // rows = 0 -> the generation loop writes nothing, first-row copy
        // still runs 0 times... craft a genuinely invalid one: huge rows
        // beyond the clamp is clamped, so use an un-clamped call.
        let r = fitness_of_input(&b, &s, &[0.0, 0.0, 1.0, 1.0], ExecLimits::default());
        // rows=0/cols=0 runs fine (empty loops) — fitness may be Some.
        // A zero-dynamic run would be None; pathfinder always executes
        // some instructions, so just assert the call doesn't panic.
        let _ = r;
    }

    #[test]
    fn oracle_accumulates_cost_and_memoizes_repeats() {
        let (b, s) = setup();
        let mut oracle = FitnessOracle::new(&b, &s, ExecLimits::default());
        let f1 = oracle.eval(&b.reference_input).unwrap();
        let c1 = oracle.cost_dynamic;
        assert!(c1 > 0);
        // Identical genome: served from the memo, costing nothing.
        let f2 = oracle.eval(&b.reference_input).unwrap();
        assert_eq!(f1, f2);
        assert_eq!(oracle.cost_dynamic, c1);
        assert_eq!(oracle.evaluations, 2);
        assert_eq!(oracle.cache_hits, 1);
        // A different genome is a real run again.
        let probe = [4.0, 4.0, 3.0, 0.01];
        oracle.eval(&probe);
        assert!(oracle.cost_dynamic > c1);
        assert_eq!(oracle.cache_hits, 1);
    }

    #[test]
    fn fitness_distinguishes_inputs() {
        let (b, s) = setup();
        let (f_small, _) =
            fitness_of_input(&b, &s, &[4.0, 4.0, 3.0, 0.01], ExecLimits::default()).unwrap();
        let (f_ref, _) =
            fitness_of_input(&b, &s, &b.reference_input, ExecLimits::default()).unwrap();
        assert_ne!(f_small, f_ref);
    }
}

//! The PEPPA-X pipeline (§4) and the baseline search (§5.1).
//!
//! PEPPA-X finds an *SDC-bound input*: a program input that (approximately)
//! maximizes the program's SDC probability, giving developers a
//! conservative bound for resilience evaluation. The pipeline:
//!
//! 1. **Fuzz for a small FI input** ([`small_input`], §4.2.1) — a
//!    light-workload input matching the reference input's code coverage,
//!    so the distribution analysis runs on a cheap execution.
//! 2. **Prune the FI space** (`peppa-analysis`, §4.2.2) — group
//!    instructions along static data dependencies; measure one
//!    representative per subgroup.
//! 3. **Derive SDC scores** ([`distribution`], §4.2.3) — ~30 FI trials
//!    per representative on the small input, normalized into a
//!    per-instruction SDC-sensitivity distribution. The paper's key
//!    insight (§3.2.3) is that this distribution is *stationary across
//!    inputs*, so it can be measured once.
//! 4. **Search with a genetic engine** ([`search`], §4.2.4) — candidates
//!    are program inputs; fitness is the *dynamic SDC-vulnerability
//!    potential* of Eq. 2 ([`fitness`], §4.2.5): one profiled run per
//!    candidate, no fault injection.
//! 5. **Final FI evaluation** — only the reported SDC-bound input gets a
//!    full statistical FI campaign.
//!
//! The [`baseline`] module implements the comparison method: random input
//! generation where *every* candidate needs a full FI campaign.
//!
//! Budget accounting: search costs are measured in **dynamic instructions
//! executed** — the deterministic, hardware-independent analogue of the
//! paper's wall-clock search time (each FI trial or profiled run costs
//! roughly one program execution of its input).

pub mod baseline;
pub mod distribution;
pub mod fitness;
pub mod search;
pub mod small_input;

pub use baseline::{baseline_search, BaselineConfig, BaselineReport};
pub use distribution::{derive_sdc_scores, SdcScores};
pub use fitness::{fitness_of_input, FitnessOracle};
pub use search::{PeppaConfig, PeppaX, SearchCheckpoint, SearchReport};
pub use small_input::{fuzz_small_input, SmallInput, SmallInputConfig};

//! Deriving the SDC-sensitivity distribution (§4.2.2–§4.2.3).
//!
//! After pruning, only one representative per dataflow subgroup receives
//! FI trials (30 by default); its measured SDC probability becomes the
//! *SDC score* of every instruction in the subgroup. Scores are
//! normalized to `[0, 1]` — the distribution is used for *relative*
//! ranking (Eq. 2), not absolute probabilities.

use peppa_analysis::{prune_fi_space, PruningResult};
use peppa_apps::Benchmark;
use peppa_inject::{per_instruction_sdc, PerInstrConfig};
use peppa_ir::InstrId;
use peppa_vm::ExecLimits;
use serde::{Deserialize, Serialize};

/// The per-instruction SDC-sensitivity distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SdcScores {
    /// `score[sid] ∈ [0, 1]`: relative SDC sensitivity; 0 for
    /// instructions outside the FI space or never executed by the small
    /// input.
    pub score: Vec<f64>,
    /// Representatives measured (one per subgroup).
    pub representatives: Vec<InstrId>,
    /// Pruning statistics for reporting (Table 4).
    pub pruning_ratio: f64,
    /// FI trials spent.
    pub trials: u64,
    /// Dynamic-instruction cost of the measurement (≈ trials × small
    /// input's run length).
    pub cost_dynamic: u64,
}

impl SdcScores {
    /// Raw (pre-normalization) scores are not retained; this returns the
    /// number of instructions with non-zero sensitivity.
    pub fn hot_instructions(&self) -> usize {
        self.score.iter().filter(|&&s| s > 0.0).count()
    }
}

/// Measures the distribution with pruning (`use_pruning = true`, the
/// PEPPA-X configuration) or exhaustively (`false`, the "without
/// heuristics" row of Table 5).
pub fn derive_sdc_scores(
    bench: &Benchmark,
    fi_input: &[f64],
    limits: ExecLimits,
    trials_per_instr: u32,
    seed: u64,
    use_pruning: bool,
    threads: usize,
) -> Result<SdcScores, peppa_inject::campaign::CampaignError> {
    let pruning: PruningResult = prune_fi_space(&bench.module);
    let cfg = PerInstrConfig {
        trials_per_instr,
        seed,
        hang_factor: 8,
        threads,
    };

    let (targets, ratio): (Vec<InstrId>, f64) = if use_pruning {
        (pruning.representatives(), pruning.pruning_ratio())
    } else {
        (
            (0..bench.module.num_instrs as u32).map(InstrId).collect(),
            0.0,
        )
    };

    let measured = per_instruction_sdc(&bench.module, fi_input, limits, cfg, Some(&targets))?;

    // Propagate each representative's probability to its whole subgroup.
    let mut raw = vec![0.0f64; bench.module.num_instrs];
    if use_pruning {
        for group in &pruning.groups {
            let rep = group[0];
            if let Some(p) = measured.sdc_prob[rep.0 as usize] {
                for sid in group {
                    raw[sid.0 as usize] = p;
                }
            }
        }
    } else {
        for (sid, p) in measured.sdc_prob.iter().enumerate() {
            if let Some(p) = p {
                raw[sid] = *p;
            }
        }
    }

    // Normalize to [0, 1].
    let max = raw.iter().cloned().fold(0.0f64, f64::max);
    if max > 0.0 {
        for s in &mut raw {
            *s /= max;
        }
    }

    // Cost: each trial re-executes the program on the FI input.
    let vm = peppa_vm::Vm::new(&bench.module, limits);
    let golden = vm.run_numeric(fi_input, None);
    let cost =
        measured.total_trials.saturating_mul(golden.profile.dynamic) + golden.profile.dynamic;

    Ok(SdcScores {
        score: raw,
        representatives: targets,
        pruning_ratio: ratio,
        trials: measured.total_trials,
        cost_dynamic: cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use peppa_apps::pathfinder;

    fn scores(use_pruning: bool) -> SdcScores {
        let b = pathfinder::benchmark();
        let small = vec![6.0, 6.0, 3.0, 0.1];
        derive_sdc_scores(&b, &small, ExecLimits::default(), 12, 9, use_pruning, 0).unwrap()
    }

    #[test]
    fn scores_normalized() {
        let s = scores(true);
        let max = s.score.iter().cloned().fold(0.0f64, f64::max);
        assert!(s.score.iter().all(|&x| (0.0..=1.0).contains(&x)));
        assert!((max - 1.0).abs() < 1e-12, "max score {max}");
        assert!(s.hot_instructions() > 0);
    }

    #[test]
    fn pruning_reduces_trials() {
        let with = scores(true);
        let without = scores(false);
        assert!(
            with.trials < without.trials,
            "pruned {} !< exhaustive {}",
            with.trials,
            without.trials
        );
        assert!(with.pruning_ratio > 0.0);
    }

    #[test]
    fn group_members_share_scores() {
        let b = pathfinder::benchmark();
        let small = vec![6.0, 6.0, 3.0, 0.1];
        let s = derive_sdc_scores(&b, &small, ExecLimits::default(), 10, 4, true, 0).unwrap();
        let pruning = peppa_analysis::prune_fi_space(&b.module);
        for g in &pruning.groups {
            let first = s.score[g[0].0 as usize];
            for sid in g {
                assert_eq!(s.score[sid.0 as usize], first, "subgroup not uniform");
            }
        }
    }
}

//! Table 6's microbenchmark: the cost of evaluating ONE candidate input
//! in PEPPA-X (a single profiled run + Eq.-2 weighting) vs the baseline
//! (a statistical FI campaign).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peppa_core::{derive_sdc_scores, fitness_of_input, fuzz_small_input, SmallInputConfig};
use peppa_inject::{run_campaign, CampaignConfig};
use peppa_vm::ExecLimits;

fn per_input_eval(c: &mut Criterion) {
    let limits = ExecLimits::default();
    // Two representative kernels keep the bench short.
    for name in ["Pathfinder", "FFT"] {
        let bench = peppa_apps::benchmark_by_name(name).unwrap();
        let small = fuzz_small_input(&bench, limits, SmallInputConfig::default()).unwrap();
        let scores = derive_sdc_scores(&bench, &small.input, limits, 10, 1, true, 0).unwrap();

        let mut group = c.benchmark_group(format!("per_input_eval/{name}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("peppa_fitness", name), |b| {
            b.iter(|| {
                fitness_of_input(
                    &bench,
                    &scores,
                    std::hint::black_box(&bench.reference_input),
                    limits,
                )
                .unwrap()
                .0
            })
        });
        // 100-trial campaign: 1/10th of the paper's 1,000 so the bench
        // terminates quickly; the per-trial cost is what matters.
        group.bench_function(BenchmarkId::new("baseline_fi_campaign_100", name), |b| {
            b.iter(|| {
                run_campaign(
                    &bench.module,
                    std::hint::black_box(&bench.reference_input),
                    limits,
                    CampaignConfig {
                        trials: 100,
                        seed: 2,
                        hang_factor: 8,
                        threads: 1,
                        burst: 0,
                        ..Default::default()
                    },
                )
                .unwrap()
                .sdc
            })
        });
        group.finish();
    }
}

criterion_group!(benches, per_input_eval);
criterion_main!(benches);

//! Interpreter throughput on each benchmark kernel (the substrate cost
//! underlying every experiment: one FI trial ≈ one of these runs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use peppa_vm::{ExecLimits, Vm};

fn vm_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_golden_run");
    for bench in peppa_apps::all_benchmarks() {
        let vm = Vm::new(&bench.module, ExecLimits::default());
        let dynamic = vm.run_numeric(&bench.reference_input, None).profile.dynamic;
        group.throughput(Throughput::Elements(dynamic));
        group.sample_size(20);
        group.bench_with_input(
            BenchmarkId::from_parameter(bench.name),
            &bench.reference_input,
            |b, input| {
                b.iter(|| {
                    let out = vm.run_numeric(std::hint::black_box(input), None);
                    assert!(out.status.is_ok());
                    out.profile.dynamic
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, vm_throughput);
criterion_main!(benches);

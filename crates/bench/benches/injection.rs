//! Fault-injection microbenchmarks: single-trial cost and campaign
//! scaling, including thread-parallel campaigns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peppa_inject::{run_campaign, CampaignConfig};
use peppa_vm::{ExecLimits, Injection, InjectionTarget, Vm};

fn injection_benches(c: &mut Criterion) {
    let bench = peppa_apps::benchmark_by_name("Needle").unwrap();
    let limits = ExecLimits::default();
    let vm = Vm::new(&bench.module, limits);
    let golden = vm.run_numeric(&bench.reference_input, None);

    // One faulty run vs one golden run: the injection hook's overhead.
    let mut group = c.benchmark_group("single_run");
    group.sample_size(20);
    group.bench_function("golden", |b| {
        b.iter(|| {
            vm.run_numeric(std::hint::black_box(&bench.reference_input), None)
                .profile
                .dynamic
        })
    });
    let inj = Injection {
        target: InjectionTarget::DynamicIndex(golden.profile.value_dynamic / 2),
        bit: 17,
        burst: 0,
    };
    group.bench_function("injected", |b| {
        b.iter(|| {
            vm.run_numeric(std::hint::black_box(&bench.reference_input), Some(inj))
                .fault_activated
        })
    });
    group.finish();

    // Campaign scaling across thread counts.
    let mut group = c.benchmark_group("campaign_100_trials");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_campaign(
                        &bench.module,
                        &bench.reference_input,
                        limits,
                        CampaignConfig {
                            trials: 100,
                            seed: 5,
                            hang_factor: 8,
                            threads,
                            burst: 0,
                            ..Default::default()
                        },
                    )
                    .unwrap()
                    .sdc
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, injection_benches);
criterion_main!(benches);

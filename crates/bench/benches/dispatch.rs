//! Dispatch-engine microbenchmark: interpreter vs compiled bytecode on a
//! synthetic hot loop, so an engine regression shows up in seconds
//! without running a full FI campaign.
//!
//! The kernel is chosen to exercise the superinstruction set: an
//! integer counter loop (fused compare-and-branch), array reads/writes
//! through computed indices (fused addr-calc load/store), and a mix of
//! int/float arithmetic feeding a reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use peppa_vm::{CompiledModule, Engine, ExecLimits, Vm};

const HOT_LOOP: &str = r#"
global float buf[1024];

fn main(n: int, rounds: int) {
    for (i = 0; i < n; i = i + 1) {
        buf[i] = i2f(i) * 0.5 + 1.0;
    }
    let acc = 0.0;
    for (r = 0; r < rounds; r = r + 1) {
        for (i = 1; i < n; i = i + 1) {
            buf[i] = buf[i] * 0.999 + buf[i - 1] * 0.001;
            acc = acc + buf[i];
        }
    }
    output acc;
}
"#;

fn dispatch(c: &mut Criterion) {
    let module = peppa_lang::compile(HOT_LOOP, "hotloop").unwrap();
    let limits = ExecLimits::default();
    let input = [512.0, 64.0];

    let vm = Vm::new(&module, limits);
    let golden = vm.run_numeric(&input, None);
    assert!(golden.status.is_ok());
    let dynamic = golden.profile.dynamic;

    let code = CompiledModule::lower(&module);
    let compiled = Engine::new(&module, limits, Some(&code));
    // The engines must agree before their speeds are worth comparing.
    let out = compiled.run_numeric(&input, None);
    assert_eq!(out.output, golden.output);
    assert_eq!(out.profile.dynamic, dynamic);

    let mut group = c.benchmark_group("dispatch_hot_loop");
    group.throughput(Throughput::Elements(dynamic));
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::from_parameter("interp"), &input, |b, input| {
        b.iter(|| {
            let out = vm.run_numeric(std::hint::black_box(input), None);
            assert!(out.status.is_ok());
            out.profile.dynamic
        })
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("compiled"),
        &input,
        |b, input| {
            b.iter(|| {
                let out = compiled.run_numeric(std::hint::black_box(input), None);
                assert!(out.status.is_ok());
                out.profile.dynamic
            })
        },
    );
    group.finish();
}

criterion_group!(benches, dispatch);
criterion_main!(benches);

//! Static-analysis and search-machinery microbenchmarks: def-use
//! construction, FI-space pruning (Table 4's analysis), the per-bit
//! interprocedural summary and fault-reachability passes behind
//! `--static-prune`, the input-specific deviation analysis, the
//! knapsack solver (§6), and a GA generation step.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peppa_analysis::deviation::DeviationAnalysis;
use peppa_analysis::{defuse::def_use, prune_fi_space, CallGraph, FaultReach, ModuleSummaries};
use peppa_ga::{ArgBounds, GaConfig, GeneticEngine};
use peppa_protect::{knapsack, Item};

fn analysis_benches(c: &mut Criterion) {
    // Def-use and pruning over the largest kernels.
    let mut group = c.benchmark_group("static_analysis");
    for bench in peppa_apps::all_benchmarks() {
        group.bench_with_input(
            BenchmarkId::new("def_use", bench.name),
            &bench.module,
            |b, m| b.iter(|| def_use(std::hint::black_box(m)).edges.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("prune_fi_space", bench.name),
            &bench.module,
            |b, m| b.iter(|| prune_fi_space(std::hint::black_box(m)).groups.len()),
        );
        // The per-bit interprocedural summary pass alone (bottom-up SCC
        // fixpoint + k=1 call-site specialization)...
        group.bench_with_input(
            BenchmarkId::new("summarize_bits", bench.name),
            &bench.module,
            |b, m| {
                b.iter(|| {
                    let cg = CallGraph::new(std::hint::black_box(m));
                    ModuleSummaries::compute(m, &cg).base.len()
                })
            },
        );
        // ...and the full fault-reachability analysis built on it, the
        // whole static cost of a `--static-prune` campaign table.
        group.bench_with_input(
            BenchmarkId::new("fault_reach", bench.name),
            &bench.module,
            |b, m| b.iter(|| FaultReach::analyze(std::hint::black_box(m)).widths.len()),
        );
        // The input-specific deviation half of the union table (includes
        // one golden run under the reference input).
        group.bench_with_input(
            BenchmarkId::new("deviation", bench.name),
            &bench,
            |b, bm| {
                b.iter(|| {
                    DeviationAnalysis::from_run(
                        std::hint::black_box(&bm.module),
                        &bm.reference_input,
                        peppa_vm::ExecLimits::default(),
                    )
                    .map(|(d, _)| d.tol.len())
                })
            },
        );
    }
    group.finish();

    // Knapsack at protection-planning sizes.
    let items: Vec<Item> = (0..500)
        .map(|i| Item {
            benefit: ((i * 37) % 101) as f64 / 100.0,
            cost: 100 + ((i * 7919) % 10_000) as u64,
        })
        .collect();
    let budget: u64 = items.iter().map(|i| i.cost).sum::<u64>() / 2;
    c.bench_function("knapsack_500_items", |b| {
        b.iter(|| knapsack(std::hint::black_box(&items), budget, 100_000).len())
    });

    // One GA generation on a 5-dimensional genome with a cheap fitness.
    c.bench_function("ga_generation_pop20", |b| {
        let cfg = GaConfig {
            population: 20,
            mutation_rate: 0.4,
            crossover_rate: 0.05,
            seed: 1,
            bounds: (0..5).map(|_| ArgBounds::float(0.0, 100.0)).collect(),
        };
        let mut fit = |g: &[f64]| Some(-g.iter().map(|x| (x - 42.0).abs()).sum::<f64>());
        let mut ga = GeneticEngine::new(cfg, &mut fit);
        b.iter(|| ga.step(&mut fit))
    });
}

criterion_group!(benches, analysis_benches);
criterion_main!(benches);

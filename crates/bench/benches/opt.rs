//! Optimizer microbenchmarks: per-pass cost and the full `-O2` fixpoint
//! pipeline on every bundled benchmark. The pipeline reruns its sweep
//! until no pass fires, so the full-pipeline numbers include the
//! convergence overhead the `peppa opt` CLI actually pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use peppa_analysis::rewrite::pipeline;
use peppa_analysis::{optimize, OptLevel};

fn opt_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("opt");
    for bench in peppa_apps::all_benchmarks() {
        // Each pass alone, one sweep over the unoptimized module (the
        // clone is part of the measured loop; the pipeline rows below
        // give the clone-free end-to-end figure).
        for pass in pipeline(OptLevel::O2) {
            group.bench_with_input(
                BenchmarkId::new(pass.name(), bench.name),
                &bench.module,
                |b, m| {
                    b.iter(|| {
                        let mut module = std::hint::black_box(m).clone();
                        pass.run(&mut module)
                    })
                },
            );
        }
        // The full fixpoint pipelines the CLI levels map to.
        for level in [OptLevel::O1, OptLevel::O2] {
            group.bench_with_input(
                BenchmarkId::new(format!("pipeline_{level}"), bench.name),
                &bench.module,
                |b, m| b.iter(|| optimize(std::hint::black_box(m), level).module.num_instrs),
            );
        }
    }
    group.finish();
}

criterion_group!(opt, opt_benches);
criterion_main!(opt);

//! Diagnostic probe: per-engine trial-latency sums for one benchmark,
//! replicating exactly the measurement `repro baseline` folds into its
//! `vm_instrs_per_sec` columns (sum of per-trial latencies around the
//! amortized engine entry point). Useful for separating real engine
//! regressions from host scheduler noise or link-time code-layout
//! swings: this binary and `repro` link the same sources, so a large
//! disagreement between the two on the same machine is layout/noise,
//! not a code change (`cargo run --release -p peppa-bench --example
//! latsum`).

use peppa_apps::all_benchmarks;
use peppa_inject::{run_campaign_observed, CampaignConfig};
use peppa_obs::{Event, Observer};
use peppa_vm::{EngineKind, ExecLimits};
use std::sync::Mutex;

struct Lat(Mutex<Vec<u64>>);
impl Observer for Lat {
    fn on_event(&self, event: &Event) {
        if let Event::TrialFinished { latency_ns, .. } = event {
            self.0.lock().unwrap().push(*latency_ns);
        }
    }
}

fn main() {
    let bench = all_benchmarks()
        .into_iter()
        .find(|b| b.name == "Pathfinder")
        .unwrap();
    for engine in [EngineKind::Interp, EngineKind::Compiled] {
        let obs = Lat(Mutex::new(Vec::new()));
        let cfg = CampaignConfig {
            trials: 500,
            seed: 2021,
            hang_factor: 8,
            threads: 1,
            burst: 0,
            engine,
        };
        let t0 = std::time::Instant::now();
        let r = run_campaign_observed(
            &bench.module,
            &bench.reference_input,
            ExecLimits::default(),
            cfg,
            &obs,
        )
        .unwrap();
        let wall = t0.elapsed().as_secs_f64();
        let lats = obs.0.lock().unwrap();
        let sum_ns: u64 = lats.iter().sum();
        println!(
            "{engine}: wall {wall:.3}s  lat_sum {:.3}s  mean {:.3}ms  n {}  sdc {}",
            sum_ns as f64 / 1e9,
            sum_ns as f64 / 1e6 / lats.len() as f64,
            lats.len(),
            r.sdc
        );
    }
}

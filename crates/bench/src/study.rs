//! The initial fault-injection study (§3): Figure 1 and Table 2.
//!
//! For each benchmark, run statistical FI campaigns on N random inputs
//! plus the default reference input, recording each input's overall SDC
//! probability and code coverage. Figure 1 reports the min/max range with
//! the reference input's mark; Table 2 reports Spearman's correlation
//! between coverage and SDC probability.

use crate::scale::Ctx;
use peppa_apps::{all_benchmarks, random_inputs, Benchmark};
use peppa_inject::{run_campaign, CampaignConfig};
use peppa_stats::spearman;
use peppa_vm::Vm;
use serde::{Deserialize, Serialize};

/// One input's measurements.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InputMeasurement {
    pub input: Vec<f64>,
    pub sdc_prob: f64,
    pub crash_prob: f64,
    pub coverage: f64,
    pub dynamic: u64,
}

/// One benchmark's row of the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyRow {
    pub benchmark: String,
    pub random: Vec<InputMeasurement>,
    pub reference: InputMeasurement,
    /// Table 2's entry: Spearman(coverage, SDC probability).
    pub coverage_correlation: f64,
}

impl StudyRow {
    pub fn sdc_min(&self) -> f64 {
        self.random
            .iter()
            .map(|m| m.sdc_prob)
            .fold(f64::INFINITY, f64::min)
    }

    pub fn sdc_max(&self) -> f64 {
        self.random.iter().map(|m| m.sdc_prob).fold(0.0, f64::max)
    }

    /// Fraction of random inputs whose SDC probability exceeds the
    /// reference input's ("the red marks are all in the lower half").
    pub fn reference_percentile(&self) -> f64 {
        if self.random.is_empty() {
            return 0.0;
        }
        self.random
            .iter()
            .filter(|m| m.sdc_prob < self.reference.sdc_prob)
            .count() as f64
            / self.random.len() as f64
    }
}

/// Full study output (Figure 1 + Table 2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyReport {
    pub rows: Vec<StudyRow>,
}

impl StudyReport {
    /// Table 2's average correlation (the paper reports 0.01).
    pub fn mean_correlation(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| r.coverage_correlation)
            .sum::<f64>()
            / self.rows.len() as f64
    }
}

fn measure_input(bench: &Benchmark, input: &[f64], ctx: &Ctx, seed: u64) -> InputMeasurement {
    let cfg = CampaignConfig {
        trials: ctx.campaign_trials(),
        seed,
        hang_factor: 8,
        threads: ctx.threads,
        burst: 0,
        engine: ctx.engine,
    };
    let r = run_campaign(&bench.module, input, ctx.limits, cfg)
        .unwrap_or_else(|e| panic!("{}: campaign failed on validated input: {e}", bench.name));
    let vm = Vm::new(&bench.module, ctx.limits);
    let golden = vm.run_numeric(input, None);
    InputMeasurement {
        input: input.to_vec(),
        sdc_prob: r.sdc_prob(),
        crash_prob: r.crash_prob(),
        coverage: golden.profile.coverage(),
        dynamic: golden.profile.dynamic,
    }
}

/// Runs the study for one benchmark.
pub fn study_benchmark(bench: &Benchmark, ctx: &Ctx) -> StudyRow {
    let inputs = random_inputs(
        bench,
        ctx.study_inputs(),
        ctx.seed,
        ctx.limits,
        peppa_apps::gen::DEFAULT_DYNAMIC_CAP,
    );
    let random: Vec<InputMeasurement> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| measure_input(bench, input, ctx, ctx.seed ^ (i as u64 + 1) << 8))
        .collect();
    let reference = measure_input(bench, &bench.reference_input, ctx, ctx.seed ^ 0x4ef5);

    let cov: Vec<f64> = random.iter().map(|m| m.coverage).collect();
    let sdc: Vec<f64> = random.iter().map(|m| m.sdc_prob).collect();
    StudyRow {
        benchmark: bench.name.to_string(),
        coverage_correlation: spearman(&cov, &sdc),
        random,
        reference,
    }
}

/// Runs the whole study (all seven benchmarks).
pub fn run_study(ctx: &Ctx) -> StudyReport {
    StudyReport {
        rows: all_benchmarks()
            .iter()
            .map(|b| study_benchmark(b, ctx))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;

    #[test]
    fn single_benchmark_study_shapes() {
        let ctx = Ctx::new(Scale::Quick, 3);
        let b = peppa_apps::pathfinder::benchmark();
        let row = study_benchmark(&b, &ctx);
        assert_eq!(row.random.len(), ctx.study_inputs());
        assert!(row.sdc_max() >= row.sdc_min());
        assert!((0.0..=1.0).contains(&row.reference.sdc_prob));
        assert!((-1.0..=1.0).contains(&row.coverage_correlation));
    }
}

//! `repro optstudy`: does compiler optimization change a program's SDC
//! vulnerability profile?
//!
//! Every bundled benchmark is run through the `-O2` rewrite pipeline
//! and compared against its `-O0` form along four axes:
//!
//! 1. **Cost** — static and dynamic instruction reduction at the
//!    reference input, plus the wall-time change of an identical FI
//!    campaign (fewer dynamic instructions ⇒ cheaper campaigns).
//! 2. **Outcome distribution** — SDC/crash/hang/benign counts of the
//!    two campaigns, same trial count and seed.
//! 3. **Rank stability** — Spearman correlation between per-instruction
//!    SDC probabilities at O0 and O2, paired through the optimizer's
//!    provenance map (`provenance[new_sid]` = original sid), answering
//!    whether optimization *reshuffles* which instructions are
//!    vulnerable or merely removes some.
//! 4. **Search transfer** — the GA worst-case input found against the
//!    O0 module is re-evaluated on the O2 module (and vice versa): does
//!    a vulnerability bound established at one opt level transfer to
//!    the other?
//!
//! The report's soundness gate is the PR's acceptance criterion: a
//! geometric-mean dynamic-instruction reduction of at least 10% at O2.

use crate::scale::{Ctx, Scale};
use peppa_analysis::{optimize, OptLevel};
use peppa_apps::{all_benchmarks, random_inputs, Benchmark};
use peppa_core::{PeppaConfig, PeppaX};
use peppa_inject::campaign::golden_run;
use peppa_inject::{
    per_instruction_sdc, run_campaign_observed, CampaignConfig, CampaignResult, PerInstrConfig,
};
use peppa_ir::{InstrId, Module};
use peppa_obs::NullObserver;
use peppa_stats::corr::spearman;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// GA worst-case-input transfer between opt levels, one direction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferRow {
    /// Opt level the GA searched against.
    pub searched_at: String,
    /// The SDC-bound input the search produced.
    pub input: Vec<f64>,
    /// Measured SDC probability on the module it was searched against.
    pub sdc_at_home: f64,
    /// Measured SDC probability of the *same input* on the other level.
    pub sdc_transferred: f64,
}

/// One benchmark's O0-vs-O2 comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptStudyRow {
    pub benchmark: String,
    pub static_before: usize,
    pub static_after: usize,
    /// Dynamic instructions of the golden run at the reference input.
    pub dynamic_before: u64,
    pub dynamic_after: u64,
    /// `1 - after/before` at the reference input.
    pub dynamic_reduction: f64,
    /// Identical-seed FI campaigns at each level.
    pub campaign_o0: CampaignResult,
    pub campaign_o2: CampaignResult,
    pub campaign_o0_wall_ms: f64,
    pub campaign_o2_wall_ms: f64,
    /// O2 campaign wall time over O0 (< 1 ⇒ optimization made the
    /// campaign cheaper).
    pub campaign_wall_ratio: f64,
    /// Per-instruction SDC probabilities paired through provenance.
    pub rank_shift_spearman: Option<f64>,
    /// Surviving instructions measurable at both levels.
    pub paired_instrs: usize,
    /// Both transfer directions (searched at O0, searched at O2).
    pub transfer: Vec<TransferRow>,
}

/// `repro optstudy` report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OptStudyReport {
    pub rows: Vec<OptStudyRow>,
    /// Geometric-mean dynamic-instruction reduction at O2 across
    /// benchmarks (`1 - geomean(after/before)`).
    pub geomean_dynamic_reduction: f64,
    pub seed: u64,
    pub trials: u32,
    pub smoke: bool,
}

impl OptStudyReport {
    /// The CI gate: O2 must deliver at least a 10% geometric-mean
    /// dynamic-instruction reduction (the PR's acceptance criterion).
    pub fn sound(&self) -> bool {
        self.geomean_dynamic_reduction >= 0.10
    }
}

/// A benchmark re-pointed at its optimized module; search-space
/// metadata (arg bounds, reference input) is level-invariant.
fn with_module(bench: &Benchmark, module: Module) -> Benchmark {
    Benchmark {
        name: bench.name,
        suite: bench.suite,
        description: bench.description,
        source: bench.source,
        module,
        args: bench.args.clone(),
        reference_input: bench.reference_input.clone(),
    }
}

fn campaign(module: &Module, input: &[f64], ctx: &Ctx, trials: u32) -> (CampaignResult, f64) {
    let cfg = CampaignConfig {
        trials,
        seed: ctx.seed ^ 0x0b7d,
        hang_factor: 8,
        burst: 0,
        threads: ctx.threads,
        engine: ctx.engine,
    };
    let t = Instant::now();
    let r = run_campaign_observed(module, input, ctx.limits, cfg, &NullObserver)
        .expect("reference input must run");
    (r, t.elapsed().as_secs_f64() * 1e3)
}

/// Spearman rank correlation between per-instruction SDC probabilities
/// at the two levels, paired via the provenance map. Sampled on a
/// light-workload input (per-instruction FI costs instrs × trials whole
/// runs), over at most `sample` surviving instructions.
fn rank_shift(
    bench: &Benchmark,
    opt: &Module,
    provenance: &[u32],
    ctx: &Ctx,
    trials: u32,
    sample: usize,
) -> (Option<f64>, usize) {
    let cap = match ctx.scale {
        Scale::Quick => 150_000,
        Scale::Paper => 2_000_000,
    };
    let input = random_inputs(bench, 1, ctx.seed ^ 0x4a4a, ctx.limits, cap)
        .pop()
        .expect("one valid input");

    // Sample surviving instructions with a stride so the subset spans
    // the whole module rather than its first basic blocks.
    let survivors: Vec<u32> = (0..opt.num_instrs as u32).collect();
    let stride = (survivors.len() / sample).max(1);
    let new_sids: Vec<InstrId> = survivors
        .iter()
        .step_by(stride)
        .take(sample)
        .map(|&s| InstrId(s))
        .collect();
    let old_sids: Vec<InstrId> = new_sids
        .iter()
        .map(|s| InstrId(provenance[s.0 as usize]))
        .collect();

    let cfg = PerInstrConfig {
        trials_per_instr: trials,
        seed: ctx.seed ^ 0x9a7e,
        hang_factor: 8,
        threads: ctx.threads,
    };
    let o0 = per_instruction_sdc(&bench.module, &input, ctx.limits, cfg, Some(&old_sids))
        .expect("validated input must run");
    let o2 = per_instruction_sdc(opt, &input, ctx.limits, cfg, Some(&new_sids))
        .expect("validated input must run");

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (new, old) in new_sids.iter().zip(&old_sids) {
        if let (Some(a), Some(b)) = (o0.sdc_prob[old.0 as usize], o2.sdc_prob[new.0 as usize]) {
            xs.push(a);
            ys.push(b);
        }
    }
    if xs.len() < 3 {
        return (None, xs.len());
    }
    (Some(spearman(&xs, &ys)), xs.len())
}

/// Runs the GA against `home`, then measures its SDC-bound input on
/// both `home` and `away` with identical campaigns.
fn transfer(
    home: &Benchmark,
    away: &Module,
    label: &str,
    ctx: &Ctx,
    trials: u32,
    generations: u64,
) -> TransferRow {
    let cfg = PeppaConfig {
        seed: ctx.seed,
        population: ctx.population(),
        distribution_trials: ctx.distribution_trials(),
        final_fi_trials: trials,
        limits: ctx.limits,
        threads: ctx.threads,
        engine: ctx.engine,
        ..Default::default()
    };
    let px = PeppaX::prepare(home, cfg).unwrap_or_else(|e| panic!("{}: {e}", home.name));
    let report = px.search(&[generations]);
    let bound = report.sdc_bound();
    let (at_home, _) = campaign(&home.module, &bound.input, ctx, trials);
    let (transferred, _) = campaign(away, &bound.input, ctx, trials);
    TransferRow {
        searched_at: label.to_string(),
        input: bound.input.clone(),
        sdc_at_home: at_home.sdc_prob(),
        sdc_transferred: transferred.sdc_prob(),
    }
}

/// Runs the full O0-vs-O2 comparison for one benchmark.
pub fn optstudy_benchmark(bench: &Benchmark, ctx: &Ctx, smoke: bool) -> OptStudyRow {
    let trials = if smoke { 120 } else { ctx.campaign_trials() };
    let per_instr_trials = if smoke { 6 } else { ctx.per_instr_trials() };
    let sample = if smoke { 24 } else { 96 };
    let generations = if smoke {
        3
    } else {
        *ctx.generation_checkpoints().last().unwrap()
    };

    let opt = optimize(&bench.module, OptLevel::O2);
    let o2_bench = with_module(bench, opt.module.clone());

    let dyn_before = golden_run(&bench.module, &bench.reference_input, ctx.limits)
        .expect("reference input must run")
        .profile
        .dynamic;
    let dyn_after = golden_run(&opt.module, &bench.reference_input, ctx.limits)
        .expect("reference input must run")
        .profile
        .dynamic;

    let (campaign_o0, wall_o0) = campaign(&bench.module, &bench.reference_input, ctx, trials);
    let (campaign_o2, wall_o2) = campaign(&opt.module, &bench.reference_input, ctx, trials);

    let (rank_shift_spearman, paired_instrs) = rank_shift(
        bench,
        &opt.module,
        &opt.provenance,
        ctx,
        per_instr_trials,
        sample,
    );

    let transfer = vec![
        transfer(bench, &opt.module, "O0", ctx, trials, generations),
        transfer(&o2_bench, &bench.module, "O2", ctx, trials, generations),
    ];

    OptStudyRow {
        benchmark: bench.name.to_string(),
        static_before: bench.module.num_instrs,
        static_after: opt.module.num_instrs,
        dynamic_before: dyn_before,
        dynamic_after: dyn_after,
        dynamic_reduction: 1.0 - dyn_after as f64 / dyn_before as f64,
        campaign_o0,
        campaign_o2,
        campaign_o0_wall_ms: wall_o0,
        campaign_o2_wall_ms: wall_o2,
        campaign_wall_ratio: wall_o2 / wall_o0.max(1e-9),
        rank_shift_spearman,
        paired_instrs,
        transfer,
    }
}

/// Runs the study over every bundled benchmark. `smoke` shrinks trial,
/// sample, and generation counts to CI size.
pub fn run_optstudy(ctx: &Ctx, smoke: bool) -> OptStudyReport {
    let rows: Vec<OptStudyRow> = all_benchmarks()
        .iter()
        .map(|b| optstudy_benchmark(b, ctx, smoke))
        .collect();
    let geomean_dynamic_reduction = 1.0
        - (rows
            .iter()
            .map(|r| (r.dynamic_after as f64 / r.dynamic_before as f64).ln())
            .sum::<f64>()
            / rows.len() as f64)
            .exp();
    OptStudyReport {
        rows,
        geomean_dynamic_reduction,
        seed: ctx.seed,
        trials: if smoke { 120 } else { ctx.campaign_trials() },
        smoke,
    }
}

/// Paper-shaped text rendering.
pub fn render_optstudy(r: &OptStudyReport) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    writeln!(
        s,
        "Optimization vs SDC vulnerability ({} trials{})",
        r.trials,
        if r.smoke { ", smoke" } else { "" }
    )
    .unwrap();
    writeln!(
        s,
        "{:<16} {:>7} {:>12} {:>7} {:>8} {:>8} {:>8} {:>8} {:>11} {:>11}",
        "benchmark",
        "dyn red",
        "wall O2/O0",
        "rho",
        "sdc O0",
        "sdc O2",
        "crash Δ",
        "hang Δ",
        "xfer O0→O2",
        "xfer O2→O0",
    )
    .unwrap();
    for row in &r.rows {
        let rho = row
            .rank_shift_spearman
            .map(|v| format!("{v:.2}"))
            .unwrap_or_else(|| "-".into());
        let xfer = |at: &str| {
            row.transfer
                .iter()
                .find(|t| t.searched_at == at)
                .map(|t| format!("{:.3}→{:.3}", t.sdc_at_home, t.sdc_transferred))
                .unwrap_or_else(|| "-".into())
        };
        writeln!(
            s,
            "{:<16} {:>6.1}% {:>12.2} {:>7} {:>8.3} {:>8.3} {:>8} {:>8} {:>11} {:>11}",
            row.benchmark,
            row.dynamic_reduction * 100.0,
            row.campaign_wall_ratio,
            rho,
            row.campaign_o0.sdc_prob(),
            row.campaign_o2.sdc_prob(),
            row.campaign_o2.crash as i64 - row.campaign_o0.crash as i64,
            row.campaign_o2.hang as i64 - row.campaign_o0.hang as i64,
            xfer("O0"),
            xfer("O2"),
        )
        .unwrap();
    }
    writeln!(
        s,
        "geomean dynamic-instruction reduction at O2: {:.1}% (gate: >= 10%)",
        r.geomean_dynamic_reduction * 100.0
    )
    .unwrap();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Ctx;

    #[test]
    fn optstudy_smoke_passes_reduction_gate() {
        // One benchmark end-to-end keeps the test fast; the full-suite
        // geomean gate runs as `repro optstudy --smoke` in CI.
        let ctx = Ctx::new(crate::scale::Scale::Quick, 0xbe7c);
        let bench = &all_benchmarks()[0];
        let row = optstudy_benchmark(bench, &ctx, true);
        assert!(row.dynamic_before > 0);
        assert!(
            row.dynamic_after < row.dynamic_before,
            "{}: O2 did not reduce dynamic instructions ({} -> {})",
            row.benchmark,
            row.dynamic_before,
            row.dynamic_after
        );
        assert_eq!(row.campaign_o0.trials, 120);
        assert_eq!(row.transfer.len(), 2);
        for t in &row.transfer {
            assert!((0.0..=1.0).contains(&t.sdc_at_home));
            assert!((0.0..=1.0).contains(&t.sdc_transferred));
        }
    }
}
